// Duplicate-prevention gatekeeper — the paper's second motivating use
// (Section 1): "a fuzzy match operation that is resilient to input errors
// can effectively prevent the proliferation of fuzzy duplicates in a
// relation".
//
// New customer registrations stream in. Each is fuzzily matched against
// the current customer relation:
//   - a strong match  -> rejected as a duplicate of the matched customer;
//   - otherwise       -> admitted, and inserted into BOTH the relation and
//                        the ETI via incremental maintenance, so the very
//                        next registration is checked against it too.
//
// Run: dedup_gatekeeper [initial_customers] [registrations]

#include <cstdio>
#include <cstdlib>

#include "core/fuzzy_match.h"
#include "gen/customer_gen.h"
#include "gen/error_model.h"

using namespace fuzzymatch;

int main(int argc, char** argv) {
  const size_t initial = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                  : 10000;
  const size_t registrations =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 300;
  constexpr double kDuplicateThreshold = 0.85;

  auto db_or = Database::Open(DatabaseOptions{});
  if (!db_or.ok()) return 1;
  auto db = std::move(*db_or);
  auto table_or =
      db->CreateTable("customers", CustomerGenerator::CustomerSchema());
  if (!table_or.ok()) return 1;
  CustomerGenOptions gen_options;
  gen_options.num_tuples = initial;
  CustomerGenerator generator(gen_options);
  if (!generator.Populate(*table_or).ok()) return 1;

  FuzzyMatchConfig config;
  config.eti.signature_size = 3;
  config.eti.index_tokens = true;
  auto matcher_or = FuzzyMatcher::Build(db.get(), "customers", config);
  if (!matcher_or.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 matcher_or.status().ToString().c_str());
    return 1;
  }
  auto& matcher = *matcher_or;
  std::printf("gatekeeping a %zu-customer relation (threshold %.2f)\n\n",
              initial, kDuplicateThreshold);

  // The registration stream: half genuinely-new customers, half noisy
  // re-registrations of existing ones (the duplicates to catch).
  CustomerGenOptions fresh_options;
  fresh_options.seed = 777;
  fresh_options.num_tuples = registrations;
  CustomerGenerator fresh(fresh_options);
  ErrorModelOptions error_options;
  error_options.column_error_prob = {0.6, 0.3, 0.2, 0.3};
  const ErrorInjector injector(error_options);
  Rng rng(4242);

  size_t admitted = 0, rejected = 0, true_duplicates = 0,
         caught_duplicates = 0;
  for (size_t i = 0; i < registrations; ++i) {
    Row registration;
    bool is_duplicate = false;
    if (rng.Bernoulli(0.5)) {
      // A real customer registering again, sloppily.
      const Tid existing =
          static_cast<Tid>(rng.Uniform(matcher->reference().row_count()));
      auto row = matcher->GetReferenceTuple(existing);
      if (!row.ok()) return 1;
      registration = injector.Inject(*row, rng);
      is_duplicate = true;
      ++true_duplicates;
    } else {
      registration = fresh.NextRow();
    }

    auto matches = matcher->FindMatches(registration);
    if (!matches.ok()) return 1;
    const bool strong_match =
        !matches->empty() &&
        (*matches)[0].similarity >= kDuplicateThreshold;
    if (strong_match) {
      ++rejected;
      caught_duplicates += is_duplicate;
    } else {
      // Admit: becomes part of the reference, ETI updated in place.
      auto tid = matcher->InsertReferenceTuple(registration);
      if (!tid.ok()) {
        std::fprintf(stderr, "insert: %s\n",
                     tid.status().ToString().c_str());
        return 1;
      }
      ++admitted;
    }
  }

  std::printf("registrations : %zu (%zu were duplicates)\n", registrations,
              true_duplicates);
  std::printf("admitted      : %zu\n", admitted);
  std::printf("rejected      : %zu (%zu correctly, %zu false alarms)\n",
              rejected, caught_duplicates, rejected - caught_duplicates);
  std::printf("missed dups   : %zu\n", true_duplicates - caught_duplicates);
  std::printf("relation grew : %zu -> %llu tuples\n", initial,
              static_cast<unsigned long long>(
                  matcher->reference().row_count()));
  std::printf("\nEvery admitted tuple was added to the ETI incrementally — "
              "re-registering it\nimmediately afterwards would now be "
              "caught.\n");
  return 0;
}

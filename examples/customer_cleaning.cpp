// Online data-cleaning pipeline (Figure 1 of the paper).
//
// A data warehouse holds a clean Customer reference relation. A stream of
// incoming sales records arrives with errors; each record is fuzzily
// matched against the reference:
//   - similarity 1.0          -> validated, loaded as-is;
//   - similarity >= threshold -> corrected to the matched reference tuple;
//   - below threshold         -> routed for further (manual) cleaning.
//
// Run: customer_cleaning [num_reference_tuples] [num_incoming]

#include <cstdio>
#include <cstdlib>

#include "core/fuzzy_match.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"

using namespace fuzzymatch;

int main(int argc, char** argv) {
  const size_t ref_size = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                   : 20000;
  const size_t incoming = argc > 2 ? std::strtoul(argv[2], nullptr, 10)
                                   : 500;
  constexpr double kLoadThreshold = 0.80;

  // The warehouse: a clean reference relation.
  auto db_or = Database::Open(DatabaseOptions{});
  if (!db_or.ok()) return 1;
  auto db = std::move(*db_or);
  auto table_or =
      db->CreateTable("customers", CustomerGenerator::CustomerSchema());
  if (!table_or.ok()) return 1;
  CustomerGenOptions gen_options;
  gen_options.num_tuples = ref_size;
  CustomerGenerator generator(gen_options);
  if (!generator.Populate(*table_or).ok()) return 1;
  std::printf("Reference relation: %zu customer tuples\n", ref_size);

  // One-time index build.
  FuzzyMatchConfig config;
  config.eti.q = 4;
  config.eti.signature_size = 3;
  config.eti.index_tokens = true;  // Q+T_3: the paper's best trade-off
  config.matcher.min_similarity = 0.0;
  auto matcher_or = FuzzyMatcher::Build(db.get(), "customers", config);
  if (!matcher_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 matcher_or.status().ToString().c_str());
    return 1;
  }
  auto& matcher = *matcher_or;
  std::printf("ETI built in %.2fs (%llu rows, %llu stop q-grams)\n\n",
              matcher->build_stats().total_seconds,
              static_cast<unsigned long long>(matcher->build_stats().eti_rows),
              static_cast<unsigned long long>(
                  matcher->build_stats().stop_qgrams));

  // The incoming feed: reference tuples corrupted with the paper's D2
  // error profile.
  DatasetSpec spec = DatasetD2();
  spec.num_inputs = incoming;
  auto ref = db->GetTable("customers");
  if (!ref.ok()) return 1;
  auto inputs = GenerateInputs(*ref, spec, &matcher->weights());
  if (!inputs.ok()) return 1;

  size_t validated = 0, corrected = 0, routed = 0, miscorrected = 0;
  for (const InputTuple& record : *inputs) {
    auto matches = matcher->FindMatches(record.dirty);
    if (!matches.ok()) {
      std::fprintf(stderr, "match failed: %s\n",
                   matches.status().ToString().c_str());
      return 1;
    }
    if (matches->empty() || (*matches)[0].similarity < kLoadThreshold) {
      ++routed;
      continue;
    }
    const Match& best = (*matches)[0];
    if (best.similarity >= 1.0) {
      ++validated;
    } else {
      ++corrected;
      if (best.tid != record.seed_tid) {
        ++miscorrected;  // known only because this is a simulation
      }
    }
  }

  const AggregateStats& stats = matcher->aggregate_stats();
  std::printf("Processed %zu incoming records at threshold %.2f:\n",
              inputs->size(), kLoadThreshold);
  std::printf("  validated (exact)      : %zu\n", validated);
  std::printf("  corrected (fuzzy)      : %zu  (of which %zu to a wrong "
              "customer)\n",
              corrected, miscorrected);
  std::printf("  routed for cleaning    : %zu\n", routed);
  std::printf("\nPer-record work (averages):\n");
  std::printf("  ETI lookups            : %.1f\n",
              static_cast<double>(stats.eti_lookups) / stats.queries);
  std::printf("  tids scored            : %.1f\n",
              static_cast<double>(stats.tids_processed) / stats.queries);
  std::printf("  reference fetches      : %.2f\n",
              static_cast<double>(stats.ref_tuples_fetched) / stats.queries);
  std::printf("  OSC success fraction   : %.2f\n",
              static_cast<double>(stats.osc_succeeded) / stats.queries);
  std::printf("  latency                : %.2f ms\n",
              1e3 * stats.elapsed_seconds / stats.queries);
  return 0;
}

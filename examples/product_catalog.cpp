// Product-catalog validation — the scenario from the paper's
// introduction: sales records from distributors carry product fields that
// must match the enterprise's Product reference relation.
//
// Demonstrates two extensions:
//   - column weights (Section 5.2): the part-number column is boosted, so
//     agreement on it dominates noisy description text;
//   - token transpositions (Section 5.3): reordered description tokens
//     ("cable hdmi 2m" vs "hdmi cable 2m") stay cheap.

#include <cstdio>

#include "core/fuzzy_match.h"
#include "common/string_util.h"
#include "common/random.h"

using namespace fuzzymatch;

namespace {

// A small synthetic product catalog: part number + description.
std::vector<Row> MakeCatalog() {
  std::vector<Row> rows;
  const char* kinds[] = {"cable", "adapter", "charger", "mount", "case"};
  const char* specs[] = {"hdmi", "usb c", "usb a", "vga", "displayport"};
  const char* extras[] = {"2m", "1m", "braided", "slim", "pro"};
  Rng rng(7);
  int part = 10000;
  for (const char* kind : kinds) {
    for (const char* spec : specs) {
      for (const char* extra : extras) {
        rows.push_back(Row{StringPrintf("PN-%05d", part++),
                           StringPrintf("%s %s %s", spec, kind, extra)});
      }
    }
  }
  return rows;
}

void Report(const char* label, const Row& input,
            const FuzzyMatcher& matcher) {
  auto matches = matcher.FindMatches(input);
  std::printf("%-34s", label);
  if (!matches.ok() || matches->empty()) {
    std::printf("-> no match\n");
    return;
  }
  auto row = matcher.GetReferenceTuple((*matches)[0].tid);
  std::printf("-> [%s | %s]  sim %.3f\n", (*row)[0]->c_str(),
              (*row)[1]->c_str(), (*matches)[0].similarity);
}

}  // namespace

int main() {
  auto db_or = Database::Open(DatabaseOptions{});
  if (!db_or.ok()) return 1;
  auto db = std::move(*db_or);
  auto table_or =
      db->CreateTable("products", Schema({"part_number", "description"}));
  if (!table_or.ok()) return 1;
  const auto catalog = MakeCatalog();
  for (const Row& row : catalog) {
    if (!(*table_or)->Insert(row).ok()) return 1;
  }
  std::printf("Product reference relation: %zu tuples\n\n", catalog.size());

  // Part numbers are near-unique identifiers: boost their column. The IDF
  // weights already make them important; the column weight adds the
  // domain knowledge that a part-number digit error matters even more.
  FuzzyMatchConfig config;
  config.eti.q = 3;
  config.eti.signature_size = 3;
  config.eti.index_tokens = true;
  config.matcher.fms.enable_transposition = true;
  config.matcher.fms.column_weights = {1.5, 1.0};
  auto matcher_or = FuzzyMatcher::Build(db.get(), "products", config);
  if (!matcher_or.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 matcher_or.status().ToString().c_str());
    return 1;
  }
  const FuzzyMatcher& matcher = **matcher_or;

  // Incoming records are corruptions of real catalog rows, so the "right
  // answer" is known. catalog[i] has part number PN-(10000+i).
  auto corrupt = [&](size_t idx, auto&& fn) {
    Row dirty = catalog[idx];
    fn(dirty);
    return dirty;
  };

  std::printf("Incoming distributor records:\n");
  Report("exact record", catalog[0], matcher);
  Report("part-number typo (PN-10060)",
         corrupt(60, [](Row& r) { (*r[0])[4] = '9'; }), matcher);
  Report("reordered description (PN-10025)",
         corrupt(25,
                 [](Row& r) {
                   // "usb c cable 2m" -> "cable usb c 2m"
                   r[1] = "cable usb c 2m";
                 }),
         matcher);
  Report("missing part number (PN-10122)",
         corrupt(122, [](Row& r) { r[0] = std::nullopt; }), matcher);
  // PN-10047 is "displayport adapter braided": long tokens survive typos
  // because their q-gram signatures still overlap.
  Report("typos everywhere (PN-10047)", corrupt(47, [](Row& r) {
           (*r[0])[3] = 'O';         // PN-1O047
           r[1] = "displayporr adaptor braided";
         }),
         matcher);
  // Tokens no longer than q can only match exactly through the ETI (their
  // signature is the token itself) — 'vga' -> 'vguh' severs that column's
  // contribution entirely. The remaining columns still carry the match.
  Report("short-token typo (PN-10115)", corrupt(115, [](Row& r) {
           r[1] = "vguh case 2m";
         }),
         matcher);

  const AggregateStats& stats = matcher.aggregate_stats();
  std::printf("\n%llu queries, %.2f reference fetches per query, OSC "
              "succeeded on %llu\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<double>(stats.ref_tuples_fetched) / stats.queries,
              static_cast<unsigned long long>(stats.osc_succeeded));
  return 0;
}

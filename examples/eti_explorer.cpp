// ETI explorer: reproduces Table 3 of the paper — the ETI relation built
// from the 3-row organization reference relation with q=3, H=2 — and then
// walks through candidate-set generation for input I1 (Figure 2).
//
// Exact q-grams differ from the paper's illustration (they depend on the
// min-hash function family), but the structure is identical: one row per
// [QGram, Coordinate, Column] with frequency and tid-list.

#include <cstdio>
#include <cstring>

#include "eti/eti_builder.h"
#include "eti/signature.h"
#include "storage/database.h"
#include "text/idf_weights.h"

using namespace fuzzymatch;

int main() {
  auto db_or = Database::Open(DatabaseOptions{});
  if (!db_or.ok()) return 1;
  auto db = std::move(*db_or);
  auto table_or =
      db->CreateTable("orgs", Schema({"name", "city", "state", "zipcode"}));
  if (!table_or.ok()) return 1;
  Table* orgs = *table_or;
  const std::vector<Row> reference = {
      {std::string("Boeing Company"), std::string("Seattle"),
       std::string("WA"), std::string("98004")},
      {std::string("Bon Corporation"), std::string("Seattle"),
       std::string("WA"), std::string("98014")},
      {std::string("Companions"), std::string("Seattle"), std::string("WA"),
       std::string("98024")},
  };
  for (const Row& row : reference) {
    if (!orgs->Insert(row).ok()) return 1;
  }

  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  auto built_or = EtiBuilder::Build(db.get(), orgs, options);
  if (!built_or.ok()) {
    std::fprintf(stderr, "%s\n", built_or.status().ToString().c_str());
    return 1;
  }
  BuiltEti& built = *built_or;

  // Dump the full ETI relation, Table 3 style, via the ETI rows table.
  std::printf("ETI relation for Table 1 (q=3, H=2), cf. paper Table 3:\n");
  std::printf("%-8s %-10s %-7s %-9s %s\n", "QGram", "Coordinate", "Column",
              "Frequency", "Tid-list");
  auto eti_table = db->GetTable("orgs_eti_Q_2");
  if (!eti_table.ok()) return 1;
  Table::Scanner scanner = (*eti_table)->Scan();
  Tid tid;
  Row row;
  for (;;) {
    auto more = scanner.Next(&tid, &row);
    if (!more.ok() || !*more) break;
    auto entry = Eti::DecodeEntry(row);
    if (!entry.ok()) return 1;
    uint32_t coord, col;
    std::memcpy(&coord, row[1]->data(), 4);
    std::memcpy(&col, row[2]->data(), 4);
    std::string tids = entry->is_stop ? "NULL" : "{";
    if (!entry->is_stop) {
      for (size_t i = 0; i < entry->tids.size(); ++i) {
        tids += (i ? ",R" : "R") + std::to_string(entry->tids[i] + 1);
      }
      tids += "}";
    }
    std::printf("%-8s %-10u %-7u %-9u %s\n", row[0]->c_str(), coord, col,
                entry->frequency, tids.c_str());
  }

  // Candidate-set generation for I1 (Figure 2): look up each signature
  // coordinate of each input token and union the tid-lists.
  std::printf("\nCandidate generation for I1 = [Beoing Company, Seattle, "
              "WA, 98004]:\n");
  const Row i1{std::string("Beoing Company"), std::string("Seattle"),
               std::string("WA"), std::string("98004")};
  const Tokenizer tokenizer = built.eti.MakeTokenizer();
  const MinHasher hasher = built.eti.MakeHasher();
  const TokenizedTuple tokens = tokenizer.TokenizeTuple(i1);
  for (uint32_t col = 0; col < tokens.size(); ++col) {
    for (const auto& token : tokens[col]) {
      const double weight = built.weights.Weight(token, col);
      std::printf("  %-9s (col %u, w=%.2f): ", token.c_str(), col, weight);
      for (const auto& tc :
           MakeTokenCoordinates(hasher, false, token, weight)) {
        auto entry = built.eti.Lookup(tc.gram, tc.coordinate, col);
        std::printf("[%s -> ", tc.gram.c_str());
        if (!entry.ok() || !entry->has_value()) {
          std::printf("{}] ");
          continue;
        }
        std::printf("{");
        for (size_t i = 0; i < (*entry)->tids.size(); ++i) {
          std::printf("%sR%u", i ? "," : "", (*entry)->tids[i] + 1);
        }
        std::printf("}] ");
      }
      std::printf("\n");
    }
  }
  std::printf("\nThe union of these tid-lists is the candidate set; scores "
              "weight each hit\nby w(token)/|mh(token)| and the top "
              "candidates are verified with fms.\n");
  return 0;
}

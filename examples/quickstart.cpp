// Quickstart: the paper's worked example (Tables 1 and 2).
//
// Builds the 3-row organization reference relation, constructs a fuzzy
// matcher over it, and pushes the four dirty input tuples of Table 2
// through — including I3 and I4, the inputs on which plain edit distance
// picks the wrong target.

#include <cstdio>

#include "core/fuzzy_match.h"
#include "sim/ed_tuple.h"
#include "text/tokenizer.h"

using namespace fuzzymatch;

namespace {

const char* FieldOrNull(const std::optional<std::string>& f) {
  return f ? f->c_str() : "NULL";
}

void PrintRow(const char* label, const Row& row) {
  std::printf("%-4s [%s | %s | %s | %s]\n", label, FieldOrNull(row[0]),
              FieldOrNull(row[1]), FieldOrNull(row[2]), FieldOrNull(row[3]));
}

}  // namespace

int main() {
  // 1. A database with the reference relation (Table 1).
  auto db_or = Database::Open(DatabaseOptions{});
  if (!db_or.ok()) {
    std::fprintf(stderr, "open db: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*db_or);
  auto table_or =
      db->CreateTable("orgs", Schema({"name", "city", "state", "zipcode"}));
  if (!table_or.ok()) return 1;
  Table* orgs = *table_or;

  const std::vector<Row> reference = {
      {std::string("Boeing Company"), std::string("Seattle"),
       std::string("WA"), std::string("98004")},
      {std::string("Bon Corporation"), std::string("Seattle"),
       std::string("WA"), std::string("98014")},
      {std::string("Companions"), std::string("Seattle"), std::string("WA"),
       std::string("98024")},
  };
  std::printf("Reference relation (Table 1):\n");
  for (size_t i = 0; i < reference.size(); ++i) {
    if (!orgs->Insert(reference[i]).ok()) return 1;
    std::string label = "R";
    label += std::to_string(i + 1);
    PrintRow(label.c_str(), reference[i]);
  }

  // 2. Build the error tolerant index. Small relation, so a small q and
  // the token transposition operation switched on (Section 5.3).
  FuzzyMatchConfig config;
  config.eti.q = 3;
  config.eti.signature_size = 2;
  config.eti.index_tokens = true;
  config.matcher.fms.enable_transposition = true;
  // Token swaps are a common data-entry slip, so price them at a small
  // constant rather than the swapped tokens' weights (Section 5.3 allows
  // either); with only 3 reference tuples the IDF weights are too flat for
  // the average-cost variant to recover I4.
  config.matcher.fms.transposition_cost = TranspositionCost::kConstant;
  config.matcher.fms.transposition_constant = 0.25;
  auto matcher_or = FuzzyMatcher::Build(db.get(), "orgs", config);
  if (!matcher_or.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 matcher_or.status().ToString().c_str());
    return 1;
  }
  auto& matcher = *matcher_or;
  std::printf("\nBuilt ETI: %llu rows over %llu reference tuples\n",
              static_cast<unsigned long long>(matcher->eti().entry_count()),
              static_cast<unsigned long long>(
                  matcher->build_stats().reference_tuples));

  // 3. Fuzzy match the dirty inputs of Table 2.
  const std::vector<Row> inputs = {
      {std::string("Beoing Company"), std::string("Seattle"),
       std::string("WA"), std::string("98004")},
      {std::string("Beoing Co."), std::string("Seattle"), std::string("WA"),
       std::string("98004")},
      {std::string("Boeing Corporation"), std::string("Seattle"),
       std::string("WA"), std::string("98004")},
      {std::string("Company Beoing"), std::string("Seattle"), std::nullopt,
       std::string("98014")},
  };

  std::printf("\nFuzzy matching the inputs of Table 2 (fms vs ed):\n");
  const Tokenizer tokenizer;
  for (size_t i = 0; i < inputs.size(); ++i) {
    std::string label = "I";
    label += std::to_string(i + 1);
    PrintRow(label.c_str(), inputs[i]);
    auto matches = matcher->FindMatches(inputs[i]);
    if (!matches.ok() || matches->empty()) {
      std::printf("     -> no match\n");
      continue;
    }
    const Match& best = (*matches)[0];
    auto target = matcher->GetReferenceTuple(best.tid);
    if (!target.ok()) return 1;
    std::printf("     -> fms picks R%u (similarity %.3f): %s\n",
                best.tid + 1, best.similarity,
                FieldOrNull((*target)[0]));

    // Show what plain edit distance would have picked.
    const auto u = tokenizer.TokenizeTuple(inputs[i]);
    double best_ed = -1.0;
    size_t ed_pick = 0;
    for (size_t r = 0; r < reference.size(); ++r) {
      const double sim =
          EdTupleSimilarity(u, tokenizer.TokenizeTuple(reference[r]));
      if (sim > best_ed) {
        best_ed = sim;
        ed_pick = r;
      }
    }
    std::printf("        ed  picks R%zu (similarity %.3f)%s\n", ed_pick + 1,
                best_ed, ed_pick != best.tid ? "  <-- disagrees" : "");
  }

  std::printf(
      "\nI3 and I4 are the paper's motivating cases: fms resolves both to "
      "R1\nwhile character-level edit distance is misled by token length "
      "and order.\n");
  return 0;
}

// Integration tests for the serving subsystem: a real MatchServer on an
// ephemeral loopback port, driven by real sockets. Covers the protocol
// (JSON + CSV forms, errors), result correctness vs the in-process
// matcher, admission control (shed), the metrics endpoint, concurrent
// mixed clients, and graceful drain.

#include "server/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/json.h"

namespace fuzzymatch {
namespace server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table =
        db_->CreateTable("customers", CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions options;
    options.num_tuples = 1200;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
    FuzzyMatchConfig config;
    auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
    ASSERT_TRUE(matcher.ok());
    matcher_ = std::move(*matcher);
  }

  std::unique_ptr<MatchServer> StartServer(ServerOptions options = {}) {
    options.port = 0;  // ephemeral
    auto srv = std::make_unique<MatchServer>(matcher_.get(),
                                             BatchCleaner::Options{}, options);
    EXPECT_TRUE(srv->Start().ok());
    return srv;
  }

  /// A clean reference row rendered as the JSON "row" array body.
  std::string RowJson(const Row& row) {
    std::string out = "[";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      if (row[i].has_value()) {
        AppendJsonString(*row[i], &out);
      } else {
        out += "null";
      }
    }
    out.push_back(']');
    return out;
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
  std::unique_ptr<FuzzyMatcher> matcher_;
};

TEST_F(ServerTest, PingAndQuit) {
  auto srv = StartServer();
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  auto pong = client.Roundtrip("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "{\"ok\":true,\"op\":\"ping\"}");
  auto bye = client.Roundtrip("quit");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "{\"ok\":true,\"op\":\"quit\"}");
  // The server closes the connection after quit.
  auto eof = client.ReadLine();
  EXPECT_FALSE(eof.ok());
}

TEST_F(ServerTest, MatchAgainstExactReferenceRow) {
  auto srv = StartServer();
  auto clean = ref_->Get(5);
  ASSERT_TRUE(clean.ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  auto response = client.Roundtrip("{\"op\":\"match\",\"id\":9,\"row\":" +
                                   RowJson(*clean) + "}");
  ASSERT_TRUE(response.ok());
  auto doc = ParseJson(*response);
  ASSERT_TRUE(doc.ok()) << *response;
  EXPECT_TRUE(doc->Find("ok")->bool_value());
  EXPECT_EQ(doc->Find("id")->number_value(), 9.0);
  const JsonValue* matches = doc->Find("matches");
  ASSERT_NE(matches, nullptr);
  ASSERT_FALSE(matches->array_items().empty());
  const JsonValue& best = matches->array_items()[0];
  EXPECT_EQ(best.Find("tid")->number_value(), 5.0);
  EXPECT_DOUBLE_EQ(best.Find("similarity")->number_value(), 1.0);
}

TEST_F(ServerTest, ServedMatchEqualsInProcessMatch) {
  auto srv = StartServer();
  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 30;
  auto inputs = GenerateInputs(ref_, spec, nullptr);
  ASSERT_TRUE(inputs.ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  for (const InputTuple& input : *inputs) {
    auto expected = matcher_->FindMatches(input.dirty);
    ASSERT_TRUE(expected.ok());
    auto response = client.Roundtrip("{\"op\":\"match\",\"row\":" +
                                     RowJson(input.dirty) + "}");
    ASSERT_TRUE(response.ok());
    auto doc = ParseJson(*response);
    ASSERT_TRUE(doc.ok());
    const JsonValue* matches = doc->Find("matches");
    ASSERT_NE(matches, nullptr) << *response;
    ASSERT_EQ(matches->array_items().size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      const JsonValue& m = matches->array_items()[i];
      EXPECT_EQ(static_cast<Tid>(m.Find("tid")->number_value()),
                (*expected)[i].tid);
      EXPECT_DOUBLE_EQ(m.Find("similarity")->number_value(),
                       (*expected)[i].similarity);
    }
  }
}

TEST_F(ServerTest, CsvFormAndErrors) {
  auto srv = StartServer();
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());

  // CSV clean of an exact reference row validates it.
  auto clean = ref_->Get(11);
  ASSERT_TRUE(clean.ok());
  std::string csv = "clean ";
  for (size_t i = 0; i < clean->size(); ++i) {
    if (i > 0) csv.push_back(',');
    csv += (*clean)[i].value_or("");
  }
  auto response = client.Roundtrip(csv);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("\"outcome\":\"validated\""), std::string::npos)
      << *response;

  // Malformed request: error response, connection stays usable.
  auto err = client.Roundtrip("garbage request");
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->rfind("{\"ok\":false", 0), 0u);

  // Wrong arity: per-request error, not a connection error.
  auto arity = client.Roundtrip("{\"op\":\"match\",\"row\":[\"one\"]}");
  ASSERT_TRUE(arity.ok());
  EXPECT_NE(arity->find("arity"), std::string::npos) << *arity;

  auto pong = client.Roundtrip("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->rfind("{\"ok\":true", 0), 0u);
}

TEST_F(ServerTest, MetricsEndpointRendersRegistry) {
  auto srv = StartServer();
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  // Issue one query so query-path counters exist.
  auto clean = ref_->Get(3);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(
      client.Roundtrip("{\"op\":\"match\",\"row\":" + RowJson(*clean) + "}")
          .ok());

  auto body = client.FetchMetrics();
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("fm_server_requests"), std::string::npos);
  EXPECT_NE(body->find("fm_server_active_connections"), std::string::npos);
  EXPECT_NE(body->find("fm_server_workers"), std::string::npos);
  // The alias spelling works too, and the terminator protocol holds.
  ASSERT_TRUE(client.Send("GET /metrics").ok());
  bool saw_eof = false;
  for (int i = 0; i < 10000; ++i) {
    auto line = client.ReadLine();
    ASSERT_TRUE(line.ok());
    if (*line == kMetricsEndMarker) {
      saw_eof = true;
      break;
    }
  }
  EXPECT_TRUE(saw_eof);
}

TEST_F(ServerTest, OverloadShedsWithExplicitResponse) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.handler_delay_ms = 200;  // every query occupies the one worker
  auto srv = StartServer(options);

  auto clean = ref_->Get(0);
  ASSERT_TRUE(clean.ok());
  const std::string request =
      "{\"op\":\"match\",\"row\":" + RowJson(*clean) + "}";

  // More concurrent clients than worker+queue slots: some must shed.
  constexpr size_t kClients = 6;
  std::atomic<uint64_t> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      LineClient client;
      if (!client.Connect("127.0.0.1", srv->port()).ok()) {
        other.fetch_add(1);
        return;
      }
      auto response = client.Roundtrip(request);
      if (!response.ok()) {
        other.fetch_add(1);
      } else if (response->find("\"shed\":true") != std::string::npos) {
        shed.fetch_add(1);
      } else if (response->rfind("{\"ok\":true", 0) == 0) {
        ok.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(ok.load() + shed.load(), kClients);
  EXPECT_GE(ok.load(), 1u) << "admitted requests must still be served";
  EXPECT_GE(shed.load(), 1u)
      << "with 6 clients against 1 worker + 1 queue slot, something sheds";
  EXPECT_EQ(srv->shed_requests(), shed.load());
}

TEST_F(ServerTest, ConcurrentMixedClients) {
  ServerOptions options;
  options.workers = 3;
  auto srv = StartServer(options);
  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 40;
  auto inputs = GenerateInputs(ref_, spec, nullptr);
  ASSERT_TRUE(inputs.ok());

  constexpr size_t kClients = 5;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect("127.0.0.1", srv->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < inputs->size(); ++i) {
        const Row& row = (*inputs)[i].dirty;
        std::string request;
        switch ((c + i) % 3) {
          case 0:
            request = "{\"op\":\"match\",\"row\":" + RowJson(row) + "}";
            break;
          case 1:
            request = "{\"op\":\"clean\",\"row\":" + RowJson(row) + "}";
            break;
          default:
            request = "ping";
        }
        auto response = client.Roundtrip(request);
        if (!response.ok() || response->rfind("{\"ok\":true", 0) != 0) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0u);
}

TEST_F(ServerTest, GracefulDrainCompletesInFlightRequests) {
  ServerOptions options;
  options.workers = 2;
  options.handler_delay_ms = 150;
  auto srv = StartServer(options);

  auto clean = ref_->Get(1);
  ASSERT_TRUE(clean.ok());
  const std::string request =
      "{\"op\":\"match\",\"row\":" + RowJson(*clean) + "}";

  // Two clients put requests in flight, then the server drains while
  // they wait: both must still receive full responses.
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      LineClient client;
      if (!client.Connect("127.0.0.1", srv->port()).ok()) return;
      auto response = client.Roundtrip(request);
      if (response.ok() && response->rfind("{\"ok\":true", 0) == 0) {
        completed.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  srv->RequestStop();  // what the SIGTERM handler calls
  srv->Shutdown();
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(completed.load(), 2u)
      << "drain must flush responses for admitted requests";

  // After shutdown the port no longer accepts.
  LineClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", srv->port()).ok());
}

TEST_F(ServerTest, ShutdownInvokesDrainFlushExactlyOnce) {
  std::atomic<int> flushes{0};
  ServerOptions options;
  options.drain_flush = [&flushes] {
    flushes.fetch_add(1);
    return Status::OK();
  };
  auto srv = StartServer(options);
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  ASSERT_TRUE(client.Roundtrip("ping").ok());
  EXPECT_EQ(flushes.load(), 0) << "drain flush must wait for shutdown";
  srv->Shutdown();
  EXPECT_EQ(flushes.load(), 1);
  // The destructor's Shutdown() is a no-op on an already-drained server.
  srv.reset();
  EXPECT_EQ(flushes.load(), 1);
}

TEST_F(ServerTest, RebuildVerbWithoutHandlerIsNotSupported) {
  auto srv = StartServer();
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  auto response = client.Roundtrip("rebuild");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->rfind("{\"ok\":false", 0), 0u) << *response;
  EXPECT_NE(response->find("\"code\":\"not_supported\""), std::string::npos)
      << *response;
}

TEST_F(ServerTest, RebuildVerbInvokesHandler) {
  std::atomic<int> rebuilds{0};
  ServerOptions options;
  options.rebuild_handler = [&rebuilds]() -> Result<EtiRebuildStats> {
    rebuilds.fetch_add(1);
    EtiRebuildStats stats;
    stats.build.eti_rows = 12345;
    stats.side_ops_replayed = 7;
    stats.total_seconds = 0.25;
    return stats;
  };
  auto srv = StartServer(options);
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  auto response = client.Roundtrip("{\"op\":\"rebuild\"}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(rebuilds.load(), 1);
  EXPECT_EQ(response->rfind("{\"ok\":true", 0), 0u) << *response;
  EXPECT_NE(response->find("\"op\":\"rebuild\""), std::string::npos);
  EXPECT_NE(response->find("\"eti_rows\":12345"), std::string::npos)
      << *response;
  EXPECT_NE(response->find("\"side_ops_replayed\":7"), std::string::npos);
}

TEST_F(ServerTest, RegistryInvariantsAfterServing) {
  obs::MetricsRegistry::Global().ResetAll();
  ServerOptions options;
  options.workers = 2;
  auto srv = StartServer(options);
  auto clean = ref_->Get(2);
  ASSERT_TRUE(clean.ok());
  {
    LineClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
    for (int i = 0; i < 10; ++i) {
      auto response = client.Roundtrip("{\"op\":\"match\",\"row\":" +
                                       RowJson(*clean) + "}");
      ASSERT_TRUE(response.ok());
    }
  }
  srv->Shutdown();

  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("server.requests")->value(), 10u);
  EXPECT_EQ(reg.GetCounter("server.responses")->value(), 10u);
  EXPECT_EQ(reg.GetCounter("server.shed_requests")->value(), 0u);
  EXPECT_EQ(reg.GetHistogram("server.request_seconds")->count(), 10u);
  EXPECT_EQ(reg.GetGauge("server.active_connections")->value(), 0.0);
  EXPECT_EQ(srv->requests_received(), 10u);
  EXPECT_EQ(srv->responses_sent(), 10u);
}

}  // namespace
}  // namespace server
}  // namespace fuzzymatch

// Live-introspection tests: statusz/tracez JSON shape, slow-query
// capture via an injected sleep failpoint, and error-trace retention
// with the failing status — all over real sockets.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/failpoint.h"
#include "gen/customer_gen.h"
#include "obs/flight_recorder.h"
#include "server/client.h"
#include "server/json.h"
#include "server/server.h"

namespace fuzzymatch {
namespace server {
namespace {

class IntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table =
        db_->CreateTable("customers", CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions options;
    options.num_tuples = 600;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
    FuzzyMatchConfig config;
    auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
    ASSERT_TRUE(matcher.ok());
    matcher_ = std::move(*matcher);
  }

  void TearDown() override { fault::Failpoints::Global().DisarmAll(); }

  std::unique_ptr<MatchServer> StartServer(ServerOptions options = {}) {
    options.port = 0;
    auto srv = std::make_unique<MatchServer>(matcher_.get(),
                                             BatchCleaner::Options{}, options);
    EXPECT_TRUE(srv->Start().ok());
    return srv;
  }

  std::string RowJson(const Row& row) {
    std::string out = "[";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      if (row[i].has_value()) {
        AppendJsonString(*row[i], &out);
      } else {
        out += "null";
      }
    }
    out.push_back(']');
    return out;
  }

  /// One served match of reference row `tid`; asserts transport success.
  void ServeMatch(LineClient* client, Tid tid, bool expect_ok = true) {
    auto clean = ref_->Get(tid);
    ASSERT_TRUE(clean.ok());
    auto response =
        client->Roundtrip("{\"op\":\"match\",\"row\":" + RowJson(*clean) + "}");
    ASSERT_TRUE(response.ok());
    auto doc = ParseJson(*response);
    ASSERT_TRUE(doc.ok()) << *response;
    EXPECT_EQ(doc->Find("ok")->bool_value(), expect_ok) << *response;
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
  std::unique_ptr<FuzzyMatcher> matcher_;
};

TEST_F(IntrospectionTest, StatuszReportsServerState) {
  ServerOptions options;
  options.workers = 3;
  auto srv = StartServer(options);
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  ServeMatch(&client, 1);

  auto response = client.Roundtrip("statusz");
  ASSERT_TRUE(response.ok());
  auto doc = ParseJson(*response);
  ASSERT_TRUE(doc.ok()) << *response;
  ASSERT_TRUE(doc->is_object());
  EXPECT_TRUE(doc->Find("ok")->bool_value());
  EXPECT_EQ(doc->Find("op")->string_value(), "statusz");
  EXPECT_GE(doc->Find("uptime_seconds")->number_value(), 0.0);
  EXPECT_NE(doc->Find("tracing_enabled"), nullptr);

  const JsonValue* build = doc->Find("build");
  ASSERT_NE(build, nullptr);
  for (const char* key : {"version", "build_type", "compiler"}) {
    ASSERT_NE(build->Find(key), nullptr) << key;
    EXPECT_FALSE(build->Find(key)->string_value().empty()) << key;
  }
  EXPECT_NE(build->Find("failpoints"), nullptr);

  const JsonValue* workers = doc->Find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_TRUE(workers->is_array());
  EXPECT_EQ(workers->array_items().size(), 3u);
  for (const JsonValue& w : workers->array_items()) {
    EXPECT_NE(w.Find("busy"), nullptr);
  }

  const JsonValue* queue = doc->Find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_GE(queue->Find("capacity")->number_value(), 1.0);

  const JsonValue* conns = doc->Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_GE(conns->Find("active")->number_value(), 1.0);

  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  for (const char* key :
       {"requests", "responses", "shed", "query_errors", "parse_errors"}) {
    EXPECT_NE(counters->Find(key), nullptr) << key;
  }
  EXPECT_GE(counters->Find("requests")->number_value(), 1.0);

  const JsonValue* accel = doc->Find("accel");
  ASSERT_NE(accel, nullptr);
  ASSERT_NE(accel->Find("present"), nullptr);
  if (accel->Find("present")->bool_value()) {
    EXPECT_GE(accel->Find("entries")->number_value(), 1.0);
    EXPECT_GE(accel->Find("bytes")->number_value(), 1.0);
  }

  const JsonValue* cache = doc->Find("tuple_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->Find("enabled"), nullptr);

  const JsonValue* recorder = doc->Find("recorder");
  ASSERT_NE(recorder, nullptr);
  for (const char* key :
       {"recorded", "slow", "errors", "retained", "slow_threshold_ms"}) {
    EXPECT_NE(recorder->Find(key), nullptr) << key;
  }
  EXPECT_GE(recorder->Find("recorded")->number_value(), 1.0);

  const JsonValue* process = doc->Find("process");
  ASSERT_NE(process, nullptr);
  EXPECT_GT(process->Find("rss_bytes")->number_value(), 0.0);
  EXPECT_GT(process->Find("open_fds")->number_value(), 0.0);
  EXPECT_GE(process->Find("uptime_seconds")->number_value(), 0.0);
}

TEST_F(IntrospectionTest, TracezRetainsRecentQueryWithSpanTree) {
  auto srv = StartServer();
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  ServeMatch(&client, 2);

  auto response = client.Roundtrip("tracez");
  ASSERT_TRUE(response.ok());
  auto doc = ParseJson(*response);
  ASSERT_TRUE(doc.ok()) << *response;
  EXPECT_TRUE(doc->Find("ok")->bool_value());
  EXPECT_EQ(doc->Find("op")->string_value(), "tracez");

  const JsonValue* recorder = doc->Find("recorder");
  ASSERT_NE(recorder, nullptr);
  ASSERT_NE(recorder->Find("stats"), nullptr);
  const JsonValue* traces = recorder->Find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  ASSERT_FALSE(traces->array_items().empty());

  const JsonValue& trace = traces->array_items()[0];
  EXPECT_EQ(trace.Find("op")->string_value(), "match");
  EXPECT_GE(trace.Find("request_id")->number_value(), 1.0);
  EXPECT_FALSE(trace.Find("error")->bool_value());

  const JsonValue* spans = trace.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  bool saw_handle = false, saw_match = false;
  for (const JsonValue& span : spans->array_items()) {
    const std::string& name = span.Find("name")->string_value();
    if (name == "server.handle_query") {
      saw_handle = true;
      EXPECT_EQ(span.Find("parent")->number_value(), -1.0);
    }
    if (name == "match.find_matches") {
      saw_match = true;
      EXPECT_GE(span.Find("parent")->number_value(), 0.0);
    }
    EXPECT_GE(span.Find("duration_us")->number_value(), 0.0);
  }
  EXPECT_TRUE(saw_handle);
  EXPECT_TRUE(saw_match);

  const JsonValue* counts = trace.Find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_NE(counts->Find("candidates"), nullptr);
  EXPECT_NE(counts->Find("eti_lookups"), nullptr);
}

TEST_F(IntrospectionTest, TracezLimitCapsTraceCount) {
  auto srv = StartServer();
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  for (Tid tid = 1; tid <= 5; ++tid) {
    ServeMatch(&client, tid);
  }
  auto response = client.Roundtrip("tracez 2");
  ASSERT_TRUE(response.ok());
  auto doc = ParseJson(*response);
  ASSERT_TRUE(doc.ok()) << *response;
  const JsonValue* traces = doc->Find("recorder")->Find("traces");
  ASSERT_NE(traces, nullptr);
  EXPECT_EQ(traces->array_items().size(), 2u);

  auto bad = client.Roundtrip("tracez zero");
  ASSERT_TRUE(bad.ok());
  auto bad_doc = ParseJson(*bad);
  ASSERT_TRUE(bad_doc.ok());
  EXPECT_FALSE(bad_doc->Find("ok")->bool_value());
}

TEST_F(IntrospectionTest, SleepFailpointMakesQuerySlowAndCaptured) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  ServerOptions options;
  options.slow_trace_ms = 20;
  auto srv = StartServer(options);
  ASSERT_TRUE(fault::ArmFromSpec("match.query_delay=sleep:40").ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  ServeMatch(&client, 3);
  fault::Failpoints::Global().DisarmAll();

  auto response = client.Roundtrip("tracez");
  ASSERT_TRUE(response.ok());
  auto doc = ParseJson(*response);
  ASSERT_TRUE(doc.ok()) << *response;
  const JsonValue* recorder = doc->Find("recorder");
  EXPECT_GE(recorder->Find("stats")->Find("slow")->number_value(), 1.0);
  const JsonValue* traces = recorder->Find("traces");
  ASSERT_FALSE(traces->array_items().empty());
  // Outliers sort first: the slow trace leads and shows the stall.
  const JsonValue& trace = traces->array_items()[0];
  EXPECT_GE(trace.Find("duration_ms")->number_value(), 20.0);
  EXPECT_FALSE(trace.Find("error")->bool_value());
}

TEST_F(IntrospectionTest, FailedQueryTraceRetainedWithStatus) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto srv = StartServer();
  ASSERT_TRUE(fault::ArmFromSpec("match.fetch_tuple=error").ok());

  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv->port()).ok());
  ServeMatch(&client, 4, /*expect_ok=*/false);

  auto response = client.Roundtrip("tracez");
  ASSERT_TRUE(response.ok());
  auto doc = ParseJson(*response);
  ASSERT_TRUE(doc.ok()) << *response;
  const JsonValue* recorder = doc->Find("recorder");
  EXPECT_GE(recorder->Find("stats")->Find("errors")->number_value(), 1.0);
  const JsonValue* traces = recorder->Find("traces");
  ASSERT_FALSE(traces->array_items().empty());
  const JsonValue& trace = traces->array_items()[0];
  EXPECT_TRUE(trace.Find("error")->bool_value());
  const JsonValue* status = trace.Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_NE(status->string_value().find("injected"), std::string::npos)
      << status->string_value();
}

}  // namespace
}  // namespace server
}  // namespace fuzzymatch

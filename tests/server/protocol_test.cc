#include "server/protocol.h"

#include <gtest/gtest.h>

#include "server/json.h"

namespace fuzzymatch {
namespace server {
namespace {

TEST(ProtocolTest, ParsesJsonMatchRequest) {
  auto request =
      ParseRequest("{\"op\":\"match\",\"row\":[\"a b\",null,\"\"],\"id\":3}");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, Request::Op::kMatch);
  ASSERT_EQ(request->row.size(), 3u);
  EXPECT_EQ(request->row[0], std::optional<std::string>("a b"));
  EXPECT_FALSE(request->row[1].has_value());
  EXPECT_FALSE(request->row[2].has_value()) << "empty string doubles as NULL";
  ASSERT_TRUE(request->id.has_value());
  EXPECT_EQ(*request->id, 3u);
}

TEST(ProtocolTest, ParsesCsvForms) {
  auto match = ParseRequest("match joe smith,seattle,wa,98052");
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->op, Request::Op::kMatch);
  ASSERT_EQ(match->row.size(), 4u);
  EXPECT_EQ(*match->row[0], "joe smith");

  auto clean = ParseRequest("clean \"a,b\",,c");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->op, Request::Op::kClean);
  ASSERT_EQ(clean->row.size(), 3u);
  EXPECT_EQ(*clean->row[0], "a,b") << "quoted CSV field";
  EXPECT_FALSE(clean->row[1].has_value());
}

TEST(ProtocolTest, ParsesControlOps) {
  EXPECT_EQ(ParseRequest("ping")->op, Request::Op::kPing);
  EXPECT_EQ(ParseRequest("metrics")->op, Request::Op::kMetrics);
  EXPECT_EQ(ParseRequest("GET /metrics")->op, Request::Op::kMetrics);
  EXPECT_EQ(ParseRequest("quit")->op, Request::Op::kQuit);
  EXPECT_EQ(ParseRequest("{\"op\":\"ping\"}")->op, Request::Op::kPing);
  // Trailing '\r' from telnet-style clients is tolerated.
  EXPECT_EQ(ParseRequest("ping\r")->op, Request::Op::kPing);
}

TEST(ProtocolTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("bogus").ok());
  EXPECT_FALSE(ParseRequest("{\"op\":\"match\"}").ok()) << "missing row";
  EXPECT_FALSE(ParseRequest("{\"op\":\"teleport\",\"row\":[]}").ok());
  EXPECT_FALSE(ParseRequest("{\"row\":[\"a\"]}").ok()) << "missing op";
  EXPECT_FALSE(
      ParseRequest("{\"op\":\"match\",\"row\":[1]}").ok())
      << "row fields must be strings or null";
  EXPECT_FALSE(
      ParseRequest("{\"op\":\"match\",\"row\":[\"a\"],\"id\":-1}").ok());
  EXPECT_FALSE(
      ParseRequest("{\"op\":\"match\",\"row\":[\"a\"],\"id\":1.5}").ok());
}

TEST(ProtocolTest, RendersMatchResponse) {
  std::vector<MatchWithRow> matches;
  matches.push_back(MatchWithRow{
      Match{12, 0.9731},
      Row{std::string("joe"), std::nullopt, std::string("wa")}});
  const std::string line = RenderMatchResponse(7, matches);
  EXPECT_EQ(line,
            "{\"ok\":true,\"op\":\"match\",\"id\":7,\"matches\":"
            "[{\"tid\":12,\"similarity\":0.9731,"
            "\"row\":[\"joe\",null,\"wa\"]}]}\n");
  // Without an id the field is omitted entirely.
  const std::string anon = RenderMatchResponse(std::nullopt, {});
  EXPECT_EQ(anon, "{\"ok\":true,\"op\":\"match\",\"matches\":[]}\n");
}

TEST(ProtocolTest, RendersCleanResponse) {
  CleanResult result;
  result.outcome = CleanOutcome::kCorrected;
  result.output = Row{std::string("fixed")};
  result.best_match = Match{4, 0.91};
  const std::string line = RenderCleanResponse(std::nullopt, result);
  EXPECT_EQ(line,
            "{\"ok\":true,\"op\":\"clean\",\"outcome\":\"corrected\","
            "\"tid\":4,\"similarity\":0.91,\"row\":[\"fixed\"]}\n");

  CleanResult routed;
  routed.outcome = CleanOutcome::kRouted;
  routed.output = Row{std::string("bad")};
  EXPECT_EQ(RenderCleanResponse(std::nullopt, routed),
            "{\"ok\":true,\"op\":\"clean\",\"outcome\":\"routed\","
            "\"row\":[\"bad\"]}\n");
}

TEST(ProtocolTest, RendersErrors) {
  EXPECT_EQ(RenderErrorResponse("boom"),
            "{\"ok\":false,\"error\":\"boom\"}\n");
  EXPECT_EQ(RenderErrorResponse("overloaded", true),
            "{\"ok\":false,\"error\":\"overloaded\",\"shed\":true}\n");
}

TEST(ProtocolTest, RoundTripsThroughItsOwnRenderer) {
  // A rendered response is itself valid protocol JSON a client can parse.
  std::vector<MatchWithRow> matches;
  matches.push_back(
      MatchWithRow{Match{3, 1.0}, Row{std::string("x \"y\" z")}});
  const std::string line = RenderMatchResponse(1, matches);
  auto doc = ParseJson(std::string_view(line).substr(0, line.size() - 1));
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(
      doc->Find("matches")->array_items()[0].Find("row")->array_items()[0]
          .string_value(),
      "x \"y\" z");
}

}  // namespace
}  // namespace server
}  // namespace fuzzymatch

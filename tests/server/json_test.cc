#include "server/json.h"

#include <gtest/gtest.h>

namespace fuzzymatch {
namespace server {
namespace {

TEST(JsonTest, ParsesScalars) {
  auto null = ParseJson("null");
  ASSERT_TRUE(null.ok());
  EXPECT_TRUE(null->is_null());

  auto truthy = ParseJson(" true ");
  ASSERT_TRUE(truthy.ok());
  EXPECT_TRUE(truthy->bool_value());

  auto number = ParseJson("-12.5e2");
  ASSERT_TRUE(number.ok());
  EXPECT_DOUBLE_EQ(number->number_value(), -1250.0);

  auto text = ParseJson("\"hi there\"");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->string_value(), "hi there");
}

TEST(JsonTest, ParsesNestedDocument) {
  auto doc = ParseJson(
      "{\"op\":\"match\",\"row\":[\"a\",null,\"c\"],\"id\":7,"
      "\"nested\":{\"k\":[1,2,3]}}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("op")->string_value(), "match");
  EXPECT_EQ(doc->Find("id")->number_value(), 7.0);
  const JsonValue* row = doc->Find("row");
  ASSERT_NE(row, nullptr);
  ASSERT_EQ(row->array_items().size(), 3u);
  EXPECT_TRUE(row->array_items()[1].is_null());
  EXPECT_EQ(doc->Find("nested")->Find("k")->array_items().size(), 3u);
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  auto s = ParseJson("\"a\\n\\t\\\"b\\\\c\\u0041\\u00e9\"");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->string_value(), "a\n\t\"b\\cA\xc3\xa9");

  // Surrogate pair: U+1F600.
  auto emoji = ParseJson("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji->string_value(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("truex").ok());
  EXPECT_FALSE(ParseJson("1 2").ok()) << "trailing content";
  EXPECT_FALSE(ParseJson("\"bad \\q escape\"").ok());
  EXPECT_FALSE(ParseJson("nan").ok());
}

TEST(JsonTest, DepthLimitStopsHostileNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, DumpRoundTrips) {
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("tid", JsonValue::Number(12));
  obj.Set("similarity", JsonValue::Number(0.9731));
  JsonValue row = JsonValue::Array();
  row.Append(JsonValue::String("a \"quoted\" field"));
  row.Append(JsonValue::Null());
  obj.Set("row", std::move(row));

  const std::string text = obj.Dump();
  EXPECT_EQ(text.find("\"tid\":12,"), text.find("\"tid\""))
      << "integers print without a fraction: " << text;

  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_TRUE(parsed->Find("ok")->bool_value());
  EXPECT_EQ(parsed->Find("tid")->number_value(), 12.0);
  EXPECT_DOUBLE_EQ(parsed->Find("similarity")->number_value(), 0.9731);
  EXPECT_EQ(parsed->Find("row")->array_items()[0].string_value(),
            "a \"quoted\" field");
}

TEST(JsonTest, EscaperHandlesControlCharacters) {
  std::string out;
  AppendJsonString("a\nb\x01", &out);
  EXPECT_EQ(out, "\"a\\nb\\u0001\"");
}

TEST(JsonTest, DuplicateKeysKeepLastValue) {
  auto doc = ParseJson("{\"a\":1,\"a\":2}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("a")->number_value(), 2.0);
  EXPECT_EQ(doc->object_items().size(), 1u);
}

}  // namespace
}  // namespace server
}  // namespace fuzzymatch

#include "common/hash.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

namespace fuzzymatch {
namespace {

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(0), Mix64(0));
  EXPECT_NE(Mix64(0), Mix64(1));
  // Consecutive inputs should produce well-separated outputs.
  std::unordered_set<uint64_t> outs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outs.insert(Mix64(i));
  }
  EXPECT_EQ(outs.size(), 10000u);
}

TEST(Hash64Test, DeterministicPerSeed) {
  const std::string s = "boeing company";
  EXPECT_EQ(Hash64(s, 1), Hash64(s, 1));
  EXPECT_NE(Hash64(s, 1), Hash64(s, 2));
}

TEST(Hash64Test, SensitiveToEveryByte) {
  const std::string base = "abcdefghijklmnopqrstuvwxyz0123456789";
  const uint64_t h0 = Hash64(base, 0);
  for (size_t i = 0; i < base.size(); ++i) {
    std::string mod = base;
    mod[i] ^= 1;
    EXPECT_NE(Hash64(mod, 0), h0) << "byte " << i;
  }
}

TEST(Hash64Test, CoversAllLengthPaths) {
  // Exercise the <4, <8, 8..31, and >=32 byte code paths.
  std::unordered_set<uint64_t> outs;
  std::string s;
  for (size_t len = 0; len <= 100; ++len) {
    outs.insert(Hash64(s, 7));
    s.push_back(static_cast<char>('a' + len % 26));
  }
  EXPECT_EQ(outs.size(), 101u);
}

TEST(Hash64Test, EmptyInputIsValid) {
  EXPECT_EQ(Hash64("", 0), Hash64(std::string_view{}, 0));
  EXPECT_NE(Hash64("", 0), Hash64("", 1));
}

TEST(Hash64Test, SeedsActAsIndependentFunctions) {
  // For min-hash we need h_i families that order elements differently.
  std::vector<std::string> grams = {"boe", "oei", "ein", "ing"};
  int different_argmins = 0;
  std::unordered_set<size_t> argmins;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    size_t best = 0;
    for (size_t g = 1; g < grams.size(); ++g) {
      if (Hash64(grams[g], seed) < Hash64(grams[best], seed)) {
        best = g;
      }
    }
    argmins.insert(best);
    different_argmins = static_cast<int>(argmins.size());
  }
  EXPECT_GE(different_argmins, 2) << "seeds never changed the argmin";
}

TEST(HashCombineTest, OrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

TEST(Hash64Test, LowCollisionRateOnShortStrings) {
  std::unordered_set<uint64_t> outs;
  size_t count = 0;
  for (char a = 'a'; a <= 'z'; ++a) {
    for (char b = 'a'; b <= 'z'; ++b) {
      for (char c = 'a'; c <= 'z'; ++c) {
        const char buf[3] = {a, b, c};
        outs.insert(Hash64(buf, 3, 42));
        ++count;
      }
    }
  }
  EXPECT_EQ(outs.size(), count);  // 17576 3-grams, zero collisions expected
}

}  // namespace
}  // namespace fuzzymatch

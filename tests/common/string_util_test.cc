#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fuzzymatch {
namespace {

TEST(AsciiLowerTest, LowercasesOnlyAsciiUppercase) {
  EXPECT_EQ(AsciiLower("Boeing Company"), "boeing company");
  EXPECT_EQ(AsciiLower("ABC-123_xyz"), "abc-123_xyz");
  EXPECT_EQ(AsciiLower(""), "");
}

TEST(SplitAndTrimTest, SplitsAndDropsEmptyPieces) {
  EXPECT_EQ(SplitAndTrim("a b  c", " "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim("  leading and trailing  ", " "),
            (std::vector<std::string>{"leading", "and", "trailing"}));
  EXPECT_EQ(SplitAndTrim("", " "), std::vector<std::string>{});
  EXPECT_EQ(SplitAndTrim("   ", " "), std::vector<std::string>{});
  EXPECT_EQ(SplitAndTrim("a,b;c", ",;"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim("single", " "),
            std::vector<std::string>{"single"});
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, " "), "a b c");
  EXPECT_EQ(Join({"x"}, ", "), "x");
  EXPECT_EQ(Join({}, " "), "");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("boeing", "boe"));
  EXPECT_TRUE(StartsWith("boeing", ""));
  EXPECT_FALSE(StartsWith("bo", "boe"));
  EXPECT_FALSE(StartsWith("xoeing", "boe"));
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%.2f", 0.125), "0.12");
  EXPECT_EQ(StringPrintf("no args"), "no args");
  // Long output exceeding any small static buffer.
  const std::string big(500, 'y');
  EXPECT_EQ(StringPrintf("%s", big.c_str()), big);
}

}  // namespace
}  // namespace fuzzymatch

#include "common/flat_u32_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace fuzzymatch {
namespace {

TEST(FlatU32MapTest, EmptyMapFindsNothing) {
  FlatU32Map<double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(42), nullptr);
}

TEST(FlatU32MapTest, InsertAndFind) {
  FlatU32Map<double> map;
  map.Insert(7, 1.5);
  map.Insert(1000000, 2.5);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_DOUBLE_EQ(*map.Find(7), 1.5);
  ASSERT_NE(map.Find(1000000), nullptr);
  EXPECT_DOUBLE_EQ(*map.Find(1000000), 2.5);
  EXPECT_EQ(map.Find(8), nullptr);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatU32MapTest, KeyZeroIsAValidKey) {
  // Tids are dense from 0, so key 0 must behave like any other key (only
  // 0xFFFFFFFF is reserved).
  FlatU32Map<int> map;
  map.Insert(0, 99);
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), 99);
  EXPECT_EQ(map.Find(1), nullptr);
}

TEST(FlatU32MapTest, FindReturnsMutableSlot) {
  FlatU32Map<double> map;
  map.Insert(3, 0.25);
  *map.Find(3) += 0.75;
  EXPECT_DOUBLE_EQ(*map.Find(3), 1.0);
}

TEST(FlatU32MapTest, GrowthKeepsEveryEntry) {
  // Push well past several power-of-two rehashes with keys spread across
  // the 32-bit space.
  FlatU32Map<uint32_t> map;
  const uint32_t n = 5000;
  for (uint32_t i = 0; i < n; ++i) {
    map.Insert(i * 2654435761u % 0xFFFFFFFEu, i);
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(n));
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t* v = map.Find(i * 2654435761u % 0xFFFFFFFEu);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(FlatU32MapTest, ReserveThenFill) {
  FlatU32Map<int> map;
  map.Reserve(1000);
  for (uint32_t i = 0; i < 1000; ++i) {
    map.Insert(i, static_cast<int>(i) + 1);
  }
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_NE(map.Find(i), nullptr);
    EXPECT_EQ(*map.Find(i), static_cast<int>(i) + 1);
  }
}

TEST(FlatU32MapTest, ForEachVisitsEveryEntryOnce) {
  FlatU32Map<int> map;
  for (uint32_t i = 10; i < 30; ++i) {
    map.Insert(i, static_cast<int>(i));
  }
  std::set<uint32_t> seen;
  int sum = 0;
  map.ForEach([&](uint32_t key, const int& value) {
    EXPECT_TRUE(seen.insert(key).second) << "duplicate visit of " << key;
    sum += value;
  });
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(sum, (10 + 29) * 20 / 2);
}

TEST(FlatU32MapTest, ClearKeepsCapacityDropsEntries) {
  FlatU32Map<int> map;
  for (uint32_t i = 0; i < 100; ++i) {
    map.Insert(i, 1);
  }
  map.Clear();
  EXPECT_TRUE(map.empty());
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(map.Find(i), nullptr);
  }
  // Reusable after Clear (the per-query pattern in the matcher).
  map.Insert(5, 7);
  ASSERT_NE(map.Find(5), nullptr);
  EXPECT_EQ(*map.Find(5), 7);
}

TEST(FlatU32MapTest, CollidingKeysProbeLinearly) {
  // Adjacent keys that land on the same small table exercise the probe
  // chain; correctness must not depend on hash spread.
  FlatU32Map<int> map;
  std::vector<uint32_t> keys = {1, 17, 33, 49, 65, 81, 97, 113};
  for (size_t i = 0; i < keys.size(); ++i) {
    map.Insert(keys[i], static_cast<int>(i));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(map.Find(keys[i]), nullptr);
    EXPECT_EQ(*map.Find(keys[i]), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace fuzzymatch

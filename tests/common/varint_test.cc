#include "common/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace fuzzymatch {
namespace {

TEST(VarintTest, RoundTripsRepresentativeValues) {
  const std::vector<uint64_t> values = {
      0,       1,
      127,     128,
      255,     256,
      16383,   16384,
      1u << 20, (1ull << 32) - 1,
      1ull << 32, (1ull << 56) + 12345,
      std::numeric_limits<uint64_t>::max()};
  for (const uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    std::string_view in = buf;
    const Result<uint64_t> out = GetVarint64(&in);
    ASSERT_TRUE(out.ok()) << v;
    EXPECT_EQ(*out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VarintTest, EncodingLengths) {
  auto len = [](uint64_t v) {
    std::string buf;
    PutVarint64(&buf, v);
    return buf.size();
  };
  EXPECT_EQ(len(0), 1u);
  EXPECT_EQ(len(127), 1u);
  EXPECT_EQ(len(128), 2u);
  EXPECT_EQ(len(16383), 2u);
  EXPECT_EQ(len(16384), 3u);
  EXPECT_EQ(len(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(VarintTest, SequentialValuesShareBuffer) {
  std::string buf;
  for (uint64_t v = 0; v < 1000; ++v) {
    PutVarint64(&buf, v * v);
  }
  std::string_view in = buf;
  for (uint64_t v = 0; v < 1000; ++v) {
    const Result<uint64_t> out = GetVarint64(&in);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, v * v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1u << 20);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    EXPECT_FALSE(GetVarint64(&in).ok()) << "cut at " << cut;
  }
}

TEST(VarintTest, EmptyInputFails) {
  std::string_view in;
  EXPECT_TRUE(GetVarint64(&in).status().IsCorruption());
}

TEST(VarintTest, OverlongEncodingFails) {
  // 11 continuation bytes exceed the 64-bit range.
  std::string bad(11, '\x80');
  std::string_view in = bad;
  EXPECT_FALSE(GetVarint64(&in).ok());
}

}  // namespace
}  // namespace fuzzymatch

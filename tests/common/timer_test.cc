#include "common/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace fuzzymatch {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.ElapsedSeconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedMillis() * 0.5);
}

TEST(TimerTest, MonotoneNonDecreasing) {
  Timer timer;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = timer.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

}  // namespace
}  // namespace fuzzymatch

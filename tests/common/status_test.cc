#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace fuzzymatch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());

  const Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "Not found: missing key");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::Corruption("bad page");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsCorruption());
  EXPECT_EQ(moved.message(), "bad page");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status s = Status::IOError("disk full").WithContext("write page 3");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "write page 3: disk full");
  EXPECT_TRUE(Status::OK().WithContext("nothing").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Corruption("a"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status Chain(int x) {
  FM_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::OutOfRange("not positive");
  }
  return x * 2;
}

Result<int> UseAssignOrReturn(int x) {
  FM_ASSIGN_OR_RETURN(const int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());

  Result<int> e = ParsePositive(0);
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsOutOfRange());
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  const Result<int> ok = UseAssignOrReturn(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_TRUE(UseAssignOrReturn(-1).status().IsOutOfRange());
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotSupported),
               "Not supported");
}

}  // namespace
}  // namespace fuzzymatch

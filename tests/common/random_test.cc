#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace fuzzymatch {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    any_diff |= (va != c.Next());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(1);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.Uniform(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ~5 sigma
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.UniformInRange(42, 42), 42);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3);
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(17);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(ZipfTest, SkewFavoursLowRanks) {
  Rng rng(19);
  ZipfSampler zipf(1000, 1.0);
  std::map<size_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 0 should dominate rank 99 by roughly 100x under theta=1.
  EXPECT_GT(counts[0], counts[99] * 20);
  // And every sampled rank must be in range.
  for (const auto& [rank, n] : counts) {
    EXPECT_LT(rank, 1000u);
  }
}

TEST(ZipfTest, SingleElementAlwaysRankZero) {
  Rng rng(23);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

}  // namespace
}  // namespace fuzzymatch

#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace fuzzymatch {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, NonFatalLevelsDoNotAbort) {
  FM_LOG(Debug) << "debug message " << 1;
  FM_LOG(Info) << "info message " << 2.5;
  FM_LOG(Warning) << "warning message " << "text";
  FM_LOG(Error) << "error message";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ FM_CHECK(1 == 2) << "impossible"; }, "Check failed");
  EXPECT_DEATH({ FM_CHECK_EQ(3, 4); }, "3 vs 4");
  EXPECT_DEATH({ FM_CHECK_LT(5, 5); }, "Check failed");
  EXPECT_DEATH(
      { FM_CHECK_OK(Status::Corruption("broken page")); }, "broken page");
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  FM_CHECK(true);
  FM_CHECK_EQ(1, 1);
  FM_CHECK_NE(1, 2);
  FM_CHECK_LT(1, 2);
  FM_CHECK_LE(2, 2);
  FM_CHECK_GT(3, 2);
  FM_CHECK_GE(3, 3);
  FM_CHECK_OK(Status::OK());
  SUCCEED();
}

}  // namespace
}  // namespace fuzzymatch

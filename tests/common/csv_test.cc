#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fuzzymatch {
namespace {

std::vector<std::vector<std::string>> ReadAll(const std::string& text) {
  std::istringstream in(text);
  CsvReader reader(&in);
  std::vector<std::vector<std::string>> out;
  std::vector<std::string> fields;
  for (;;) {
    auto more = reader.Next(&fields);
    EXPECT_TRUE(more.ok()) << more.status();
    if (!more.ok() || !*more) break;
    out.push_back(fields);
  }
  return out;
}

TEST(CsvReaderTest, PlainRecords) {
  const auto rows = ReadAll("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  const auto rows = ReadAll("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvReaderTest, EmptyFieldsAndRecords) {
  const auto rows = ReadAll(",\na,,b\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"a", "", "b"}));
}

TEST(CsvReaderTest, QuotedFields) {
  const auto rows =
      ReadAll("\"hello, world\",\"say \"\"hi\"\"\",plain\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "hello, world");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
  EXPECT_EQ(rows[0][2], "plain");
}

TEST(CsvReaderTest, EmbeddedNewlinesInQuotes) {
  const auto rows = ReadAll("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvReaderTest, CrLfLineEndings) {
  const auto rows = ReadAll("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvReaderTest, EmptyInput) {
  EXPECT_TRUE(ReadAll("").empty());
}

TEST(CsvReaderTest, MalformedQuotingFails) {
  {
    std::istringstream in("\"unterminated");
    CsvReader reader(&in);
    std::vector<std::string> fields;
    EXPECT_TRUE(reader.Next(&fields).status().IsCorruption());
  }
  {
    std::istringstream in("ab\"cd\n");
    CsvReader reader(&in);
    std::vector<std::string> fields;
    EXPECT_FALSE(reader.Next(&fields).ok());
  }
}

TEST(CsvWriterTest, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscapeField("plain"), "plain");
  EXPECT_EQ(CsvEscapeField("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvEscapeField("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvEscapeField("with\nnewline"), "\"with\nnewline\"");
  EXPECT_EQ(CsvEscapeField(""), "");
}

TEST(CsvRoundTripTest, ArbitraryContentSurvives) {
  const std::vector<std::vector<std::string>> rows = {
      {"a", "b,c", "d\"e"},
      {"", "multi\nline", "x"},
      {"trailing,", "\"quoted\"", ""},
  };
  std::ostringstream out;
  CsvWriter writer(&out);
  for (const auto& row : rows) {
    writer.Write(row);
  }
  const auto parsed = ReadAll(out.str());
  EXPECT_EQ(parsed, rows);
}

}  // namespace
}  // namespace fuzzymatch

#include "common/md5.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace fuzzymatch {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321TestVectors) {
  EXPECT_EQ(Md5::Hash("").ToHex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::Hash("a").ToHex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::Hash("abc").ToHex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::Hash("message digest").ToHex(),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::Hash("abcdefghijklmnopqrstuvwxyz").ToHex(),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::Hash(
          "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")
          .ToHex(),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::Hash("1234567890123456789012345678901234567890123456789012"
                      "3456789012345678901234567890")
                .ToHex(),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog many times over";
  const Md5Digest oneshot = Md5::Hash(data);
  // Feed in every possible split of the input.
  for (size_t split = 0; split <= data.size(); ++split) {
    Md5 md5;
    md5.Update(data.substr(0, split));
    md5.Update(data.substr(split));
    EXPECT_EQ(md5.Finish(), oneshot) << "split at " << split;
  }
}

TEST(Md5Test, MultiBlockInput) {
  // > 64 bytes forces multiple compression rounds.
  std::string data(1000, 'x');
  Md5 a;
  a.Update(data);
  Md5 b;
  for (char c : data) {
    b.Update(&c, 1);
  }
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(Md5Test, ResetRestoresInitialState) {
  Md5 md5;
  md5.Update("garbage");
  md5.Reset();
  md5.Update("abc");
  EXPECT_EQ(md5.Finish().ToHex(), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, Low64High64SplitDigest) {
  const Md5Digest d = Md5::Hash("abc");
  uint64_t lo, hi;
  std::memcpy(&lo, d.bytes.data(), 8);
  std::memcpy(&hi, d.bytes.data() + 8, 8);
  EXPECT_EQ(d.Low64(), lo);
  EXPECT_EQ(d.High64(), hi);
  EXPECT_NE(d.Low64(), d.High64());
}

TEST(Md5Test, DistinctTokensDistinctDigests) {
  // The collision-free frequency cache relies on this in practice.
  EXPECT_NE(Md5::Hash("corporation"), Md5::Hash("corporatio"));
  EXPECT_NE(Md5::Hash("boeing"), Md5::Hash("beoing"));
}

TEST(Md5Test, PaddingBoundaries) {
  // Lengths 55, 56, 63, 64, 65 hit all padding branches.
  for (const size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::string data(len, 'a');
    Md5 incremental;
    incremental.Update(data.substr(0, len / 2));
    incremental.Update(data.substr(len / 2));
    EXPECT_EQ(incremental.Finish(), Md5::Hash(data)) << "len " << len;
  }
}

}  // namespace
}  // namespace fuzzymatch

// Property tests for the SIMD delta-varint kernels (DESIGN.md 5i): every
// compiled level must agree byte-for-byte with a naive oracle on
// round-trips, block boundaries, max-width deltas, and mixed runs, and
// must reject truncated, overlong, zero-delta, and overflowing input with
// Status::Corruption instead of reading out of bounds. The suite runs in
// the ASan slice (tools/ci.sh) so "no UB" is checked, not assumed.

#include "common/simd_varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/varint.h"

namespace fuzzymatch {
namespace {

/// Every level this binary + machine can actually run.
std::vector<SimdLevel> RunnableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel best = DetectSimdLevel();
  if (best >= SimdLevel::kSse4) levels.push_back(SimdLevel::kSse4);
  if (best >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

/// Encodes absolute values as the delta stream the kernels consume.
std::string EncodeDeltas(const std::vector<uint32_t>& values,
                         uint32_t base) {
  std::string out;
  uint32_t prev = base;
  for (const uint32_t v : values) {
    PutVarint64(&out, v - prev);
    prev = v;
  }
  return out;
}

/// The independent oracle: a byte-at-a-time LEB128 walk written without
/// reference to the implementation under test. On success `*consumed` is
/// the number of bytes the stream actually used (random fuzz input may
/// contain non-canonical varints, so re-encoding cannot recover this).
Result<std::vector<uint32_t>> OracleDecode(std::string_view in,
                                           size_t count, uint32_t base,
                                           size_t* consumed = nullptr) {
  std::vector<uint32_t> out;
  uint64_t acc = base;
  size_t pos = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    int shift = 0;
    for (;;) {
      if (pos >= in.size()) return Status::Corruption("truncated");
      if (shift > 63) return Status::Corruption("overlong");
      const uint8_t b = static_cast<uint8_t>(in[pos++]);
      delta |= static_cast<uint64_t>(b & 0x7f) << shift;
      shift += 7;
      if ((b & 0x80) == 0) break;
    }
    if (delta == 0) return Status::Corruption("duplicate");
    acc += delta;
    if (acc > UINT32_MAX) return Status::Corruption("overflow");
    out.push_back(static_cast<uint32_t>(acc));
  }
  if (consumed != nullptr) *consumed = pos;
  return out;
}

/// Runs every level on `blob` and checks it agrees with the oracle —
/// same values and same consumed-byte count on success, Corruption on the
/// same inputs on failure.
void ExpectOracleAgreement(const std::string& blob, size_t count,
                           uint32_t base) {
  size_t oracle_consumed = 0;
  const auto expected = OracleDecode(blob, count, base, &oracle_consumed);
  for (const SimdLevel level : RunnableLevels()) {
    std::string_view in = blob;
    std::vector<uint32_t> out(count);
    const Status s = DecodeDeltaVarints(level, &in, count, base, out.data());
    if (expected.ok()) {
      ASSERT_TRUE(s.ok()) << SimdLevelName(level) << ": " << s
                          << " (count=" << count << ")";
      ASSERT_EQ(out, *expected) << SimdLevelName(level);
      // Success must consume exactly the encoded bytes, no more, no less
      // (trailing garbage stays for the caller to reject).
      EXPECT_EQ(in.size(), blob.size() - oracle_consumed)
          << SimdLevelName(level);
    } else {
      EXPECT_TRUE(s.IsCorruption())
          << SimdLevelName(level) << " accepted input the oracle rejects";
    }
  }
}

TEST(SimdVarintTest, LevelNamesRoundTrip) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse4, SimdLevel::kAvx2}) {
    const auto parsed = ParseSimdLevel(SimdLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_TRUE(ParseSimdLevel("avx512").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSimdLevel("").status().IsInvalidArgument());
}

TEST(SimdVarintTest, BlockBoundaryCounts) {
  // Counts straddling every 16/32-lane boundary, all-dense deltas (the
  // fast path) — the interesting part is the tail handoff.
  for (const size_t count : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                             size_t{17}, size_t{31}, size_t{32}, size_t{33},
                             size_t{48}, size_t{64}, size_t{100}}) {
    std::vector<uint32_t> values;
    uint32_t v = 7;
    for (size_t i = 0; i < count; ++i) values.push_back(v += 1 + (i % 3));
    ExpectOracleAgreement(EncodeDeltas(values, 7), count, 7);
  }
}

TEST(SimdVarintTest, MaxWidthDeltas) {
  // 5-byte varints: deltas that need the full uint32 range.
  const std::vector<uint32_t> values = {0x7fffffffu, 0xfffffffeu,
                                        0xffffffffu};
  ExpectOracleAgreement(EncodeDeltas(values, 0), values.size(), 0);

  // A run that accumulates to exactly UINT32_MAX is legal; one past is
  // Corruption at every level.
  std::string exact = EncodeDeltas({UINT32_MAX}, 5);
  ExpectOracleAgreement(exact, 1, 5);
  std::string over;
  PutVarint64(&over, static_cast<uint64_t>(UINT32_MAX));  // 5 + 2^32-1 > max
  ExpectOracleAgreement(over, 1, 5);
  EXPECT_FALSE(OracleDecode(over, 1, 5).ok());
}

TEST(SimdVarintTest, MixedWidthRuns) {
  // Dense 1-byte runs interrupted by multi-byte deltas at varying lane
  // positions: exercises the fall-back-one-value-and-re-enter path.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> values;
    uint32_t v = static_cast<uint32_t>(rng.Uniform(1000));
    const uint32_t base = v;
    const size_t n = rng.Uniform(120);
    for (size_t i = 0; i < n; ++i) {
      // Mostly dense, occasionally a wide jump (2-5 byte varint).
      const uint32_t delta = rng.Uniform(10) < 8
                                 ? 1 + static_cast<uint32_t>(rng.Uniform(100))
                                 : 1 + static_cast<uint32_t>(rng.Uniform(
                                           1u << (7 * (1 + rng.Uniform(4)))));
      if (delta > UINT32_MAX - v) break;
      v += delta;
      values.push_back(v);
    }
    ExpectOracleAgreement(EncodeDeltas(values, base), values.size(), base);
  }
}

TEST(SimdVarintTest, NearOverflowBases) {
  // Bases near UINT32_MAX force the SIMD kernels off the unchecked fast
  // path (kMaxSafeBase guard); results must still match the oracle.
  for (const uint32_t base :
       {UINT32_MAX - 1, UINT32_MAX - 40, UINT32_MAX - 16 * 127,
        UINT32_MAX - 16 * 127 - 1, UINT32_MAX - 5000}) {
    std::vector<uint32_t> values;
    uint32_t v = base;
    while (v < UINT32_MAX - 2 && values.size() < 40) values.push_back(v += 2);
    ExpectOracleAgreement(EncodeDeltas(values, base), values.size(), base);
  }
}

TEST(SimdVarintTest, TruncatedInputAtEveryByte) {
  // Every proper prefix of a valid stream must fail with Corruption (the
  // torn-write shape) — and under ASan, without touching bytes past end.
  std::vector<uint32_t> values;
  uint32_t v = 0;
  for (size_t i = 0; i < 40; ++i) {
    values.push_back(v += (i % 5 == 0) ? 100000 : 1 + (i % 7));
  }
  const std::string blob = EncodeDeltas(values, 0);
  ASSERT_GT(blob.size(), values.size());  // some multi-byte varints present
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    ExpectOracleAgreement(blob.substr(0, cut), values.size(), 0);
  }
}

TEST(SimdVarintTest, ZeroDeltaRejectedAtEveryLanePosition) {
  // A zero delta (duplicate tid) planted at each position of a dense
  // 1-byte block must be caught inside the SIMD fast path too.
  for (size_t zero_at = 0; zero_at < 20; ++zero_at) {
    std::string blob;
    for (size_t i = 0; i < 20; ++i) {
      PutVarint64(&blob, i == zero_at ? 0 : 3);
    }
    ExpectOracleAgreement(blob, 20, 0);
    EXPECT_FALSE(OracleDecode(blob, 20, 0).ok());
  }
}

TEST(SimdVarintTest, OverlongVarintRejected) {
  // 0x80 continuation bytes past the 64-bit range: overlong, not a loop.
  std::string blob(12, static_cast<char>(0x80));
  blob.push_back(0x01);
  ExpectOracleAgreement(blob, 1, 0);
  EXPECT_FALSE(OracleDecode(blob, 1, 0).ok());
}

TEST(SimdVarintTest, RandomFuzzAgainstOracle) {
  // Raw random bytes: most are invalid streams; whatever the oracle says,
  // every kernel must say the same (and never crash — ASan slice).
  Rng rng(0xf522);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t len = rng.Uniform(96);
    std::string blob;
    for (size_t i = 0; i < len; ++i) {
      blob.push_back(static_cast<char>(rng.Uniform(256)));
    }
    const size_t count = rng.Uniform(48);
    const uint32_t base = static_cast<uint32_t>(
        rng.Uniform(2) ? rng.Uniform(1000) : UINT32_MAX - rng.Uniform(1000));
    ExpectOracleAgreement(blob, count, base);
  }
}

TEST(SimdVarintTest, DetectedLevelIsRunnable) {
  // Smoke: whatever DetectSimdLevel picked decodes a real run correctly.
  std::vector<uint32_t> values;
  uint32_t v = 0;
  for (size_t i = 0; i < 1000; ++i) values.push_back(v += 1 + (i % 11));
  const std::string blob = EncodeDeltas(values, 0);
  std::string_view in = blob;
  std::vector<uint32_t> out(values.size());
  ASSERT_TRUE(DecodeDeltaVarints(DetectSimdLevel(), &in, values.size(), 0,
                                 out.data())
                  .ok());
  EXPECT_EQ(out, values);
  EXPECT_TRUE(in.empty());
}

}  // namespace
}  // namespace fuzzymatch

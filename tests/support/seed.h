// Seed handling for randomized tests (the flake guard): every randomized
// suite derives its seeds through TestSeeds() so a failure always prints
// the seed that produced it, and FM_TEST_SEED=<n> reruns exactly that
// schedule.
//
// Usage:
//
//   for (const uint64_t seed : test_support::TestSeeds({101, 102, 103})) {
//     SCOPED_TRACE(test_support::SeedTrace(seed));
//     ... run the seeded scenario ...
//   }

#ifndef FUZZYMATCH_TESTS_SUPPORT_SEED_H_
#define FUZZYMATCH_TESTS_SUPPORT_SEED_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace fuzzymatch::test_support {

/// The suite's default seed list, unless FM_TEST_SEED narrows the run to
/// a single seed for deterministic reproduction.
inline std::vector<uint64_t> TestSeeds(std::vector<uint64_t> defaults) {
  const char* env = std::getenv("FM_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return {std::strtoull(env, nullptr, 10)};
  }
  return defaults;
}

/// The SCOPED_TRACE payload: printed by gtest on any failure inside the
/// seeded scope, with the rerun recipe.
inline std::string SeedTrace(uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " (rerun with FM_TEST_SEED=" + std::to_string(seed) + ")";
}

}  // namespace fuzzymatch::test_support

#endif  // FUZZYMATCH_TESTS_SUPPORT_SEED_H_

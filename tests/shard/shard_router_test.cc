// ShardRouter tests: hash partitioning and the tid mapping, global
// (full-relation) weight override, and the persistence roundtrip of
// file-backed shard databases.

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "gen/customer_gen.h"
#include "shard/shard_router.h"

namespace fuzzymatch {
namespace shard {
namespace {

std::string TempBasePath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name + "_" +
         std::to_string(::getpid()) + ".fmdb";
}

Result<Table*> PopulateCustomers(Database* db, size_t n) {
  FM_ASSIGN_OR_RETURN(
      Table * table,
      db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
  CustomerGenOptions options;
  options.num_tuples = n;
  CustomerGenerator gen(options);
  FM_RETURN_IF_ERROR(gen.Populate(table));
  return table;
}

TEST(ShardOfTidTest, IsStableAndInRange) {
  for (Tid tid = 0; tid < 1000; ++tid) {
    const size_t k = ShardOfTid(tid, 4);
    EXPECT_LT(k, 4u);
    EXPECT_EQ(k, ShardOfTid(tid, 4));  // pure function of (tid, N)
  }
  EXPECT_EQ(ShardOfTid(12345, 1), 0u);
}

TEST(ShardRouterTest, PartitionCoversEveryTupleExactlyOnce) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto ref = PopulateCustomers(db->get(), 600);
  ASSERT_TRUE(ref.ok());

  FuzzyMatchConfig config;
  ShardRouter::Options options;
  options.num_shards = 4;
  auto router = ShardRouter::Build(*ref, config, options);
  ASSERT_TRUE(router.ok()) << router.status();

  EXPECT_EQ((*router)->num_shards(), 4u);
  EXPECT_EQ((*router)->total_reference_tuples(), 600u);
  uint64_t shard_total = 0;
  for (size_t k = 0; k < 4; ++k) {
    const uint64_t rows = (*router)->shard(k).reference().row_count();
    EXPECT_GT(rows, 0u);  // Mix64 spreads 600 tids over 4 shards
    shard_total += rows;
  }
  EXPECT_EQ(shard_total, 600u);

  // Every global tid locates to exactly its hash shard, holds the same
  // row, and the mapping round-trips.
  for (Tid gtid = 0; gtid < 600; ++gtid) {
    auto location = (*router)->Locate(gtid);
    ASSERT_TRUE(location.ok()) << location.status();
    EXPECT_EQ(location->first, ShardOfTid(gtid, 4));
    auto back = (*router)->GlobalTid(location->first, location->second);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, gtid);

    auto original = (*ref)->Get(gtid);
    auto sharded = (*router)
                       ->shard(location->first)
                       .GetReferenceTuple(location->second);
    ASSERT_TRUE(original.ok() && sharded.ok());
    EXPECT_EQ(*original, *sharded);
  }
  EXPECT_TRUE((*router)->Locate(600).status().IsNotFound());
}

TEST(ShardRouterTest, MoreShardsThanTuplesLeavesEmptyShards) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto ref = PopulateCustomers(db->get(), 3);
  ASSERT_TRUE(ref.ok());

  FuzzyMatchConfig config;
  ShardRouter::Options options;
  options.num_shards = 8;
  auto router = ShardRouter::Build(*ref, config, options);
  ASSERT_TRUE(router.ok()) << router.status();
  uint64_t total = 0;
  for (size_t k = 0; k < 8; ++k) {
    total += (*router)->shard(k).reference().row_count();
  }
  EXPECT_EQ(total, 3u);
}

TEST(ShardRouterTest, ShardWeightsMatchSingleDatabaseWeights) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto ref = PopulateCustomers(db->get(), 500);
  ASSERT_TRUE(ref.ok());

  FuzzyMatchConfig config;
  auto single = FuzzyMatcher::Build(db->get(), "customers", config);
  ASSERT_TRUE(single.ok());

  ShardRouter::Options options;
  options.num_shards = 3;
  auto router = ShardRouter::Build(*ref, config, options);
  ASSERT_TRUE(router.ok()) << router.status();

  // Weight table identical on every shard: spot-check the tokens of a
  // handful of reference tuples against the single-database weights.
  const Tokenizer tokenizer;
  for (Tid gtid = 0; gtid < 500; gtid += 97) {
    auto row = (*ref)->Get(gtid);
    ASSERT_TRUE(row.ok());
    const TokenizedTuple tokens = tokenizer.TokenizeTuple(*row);
    for (uint32_t col = 0; col < tokens.size(); ++col) {
      for (const std::string& token : tokens[col]) {
        const double expected = (*single)->weights().Weight(token, col);
        for (size_t k = 0; k < (*router)->num_shards(); ++k) {
          EXPECT_DOUBLE_EQ((*router)->shard(k).weights().Weight(token, col),
                           expected)
              << "token " << token << " col " << col << " shard " << k;
        }
      }
    }
  }
}

TEST(ShardRouterTest, PersistsAndReopensWithIdenticalAnswers) {
  const std::string base = TempBasePath("shard_router");
  FuzzyMatchConfig config;
  std::vector<Row> probes;

  {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    auto ref = PopulateCustomers(db->get(), 400);
    ASSERT_TRUE(ref.ok());
    for (Tid tid = 0; tid < 400; tid += 41) {
      auto row = (*ref)->Get(tid);
      ASSERT_TRUE(row.ok());
      probes.push_back(*row);
    }

    ShardRouter::Options options;
    options.num_shards = 4;
    options.db_path_base = base;
    auto router = ShardRouter::Build(*ref, config, options);
    ASSERT_TRUE(router.ok()) << router.status();
    ASSERT_TRUE((*router)->Checkpoint().ok());
  }

  const std::string strategy = config.eti.StrategyName();
  auto reopened = ShardRouter::Open(base, 4, strategy, config);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->total_reference_tuples(), 400u);
  for (Tid gtid = 0; gtid < 400; ++gtid) {
    auto location = (*reopened)->Locate(gtid);
    ASSERT_TRUE(location.ok());
    EXPECT_EQ(location->first, ShardOfTid(gtid, 4));
  }
  // Per-shard engines answer (probing a shard engine directly: an exact
  // copy of a reference row must come back as a similarity-1.0 match).
  for (const Row& probe : probes) {
    bool found = false;
    for (size_t k = 0; k < 4 && !found; ++k) {
      auto matches = (*reopened)->shard(k).FindMatches(probe);
      ASSERT_TRUE(matches.ok());
      found = !matches->empty() && (*matches)[0].similarity >= 1.0;
    }
    EXPECT_TRUE(found);
  }

  // Mismatched topology is refused.
  EXPECT_FALSE(ShardRouter::Open(base, 2, strategy, config).ok());

  for (size_t k = 0; k < 4; ++k) {
    std::remove(ShardDbPath(base, k).c_str());
  }
}

}  // namespace
}  // namespace shard
}  // namespace fuzzymatch

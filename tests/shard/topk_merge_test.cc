// Unit tests for the k-way top-K merge at the heart of the scatter/
// gather coordinator: ordering, deterministic tie-breaks, K larger than
// any per-shard list, and empty shards.

#include <gtest/gtest.h>

#include "shard/sharded_matcher.h"

namespace fuzzymatch {
namespace shard {
namespace {

std::vector<Match> List(std::initializer_list<Match> matches) {
  return std::vector<Match>(matches);
}

TEST(TopKMergeTest, MergesSortedListsBestFirst) {
  const std::vector<std::vector<Match>> per_shard = {
      List({{10, 0.9}, {11, 0.5}}),
      List({{20, 0.8}, {21, 0.4}}),
      List({{30, 0.7}}),
  };
  const std::vector<Match> merged = MergeTopK(per_shard, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], (Match{10, 0.9}));
  EXPECT_EQ(merged[1], (Match{20, 0.8}));
  EXPECT_EQ(merged[2], (Match{30, 0.7}));
}

TEST(TopKMergeTest, ScoreTiesBreakByAscendingTid) {
  // The tied tids arrive from different shards in "wrong" shard order;
  // the merge must still emit them by ascending tid.
  const std::vector<std::vector<Match>> per_shard = {
      List({{42, 0.75}}),
      List({{7, 0.75}}),
      List({{19, 0.75}}),
  };
  const std::vector<Match> merged = MergeTopK(per_shard, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].tid, 7u);
  EXPECT_EQ(merged[1].tid, 19u);
  EXPECT_EQ(merged[2].tid, 42u);
}

TEST(TopKMergeTest, TieAtTheCutBoundaryKeepsSmallestTid) {
  const std::vector<std::vector<Match>> per_shard = {
      List({{100, 0.9}, {50, 0.6}}),
      List({{8, 0.6}}),
  };
  const std::vector<Match> merged = MergeTopK(per_shard, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (Match{100, 0.9}));
  // 8 and 50 tie at 0.6; the smaller tid takes the last slot.
  EXPECT_EQ(merged[1], (Match{8, 0.6}));
}

TEST(TopKMergeTest, KLargerThanEveryPerShardList) {
  const std::vector<std::vector<Match>> per_shard = {
      List({{1, 0.9}}),
      List({{2, 0.3}}),
  };
  const std::vector<Match> merged = MergeTopK(per_shard, 10);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].tid, 1u);
  EXPECT_EQ(merged[1].tid, 2u);
}

TEST(TopKMergeTest, EmptyShardsAreSkipped) {
  const std::vector<std::vector<Match>> per_shard = {
      {},
      List({{5, 0.5}}),
      {},
      {},
  };
  const std::vector<Match> merged = MergeTopK(per_shard, 2);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].tid, 5u);
}

TEST(TopKMergeTest, AllShardsEmpty) {
  EXPECT_TRUE(MergeTopK({{}, {}, {}}, 4).empty());
  EXPECT_TRUE(MergeTopK({}, 4).empty());
}

TEST(TopKMergeTest, KZeroReturnsNothing) {
  const std::vector<std::vector<Match>> per_shard = {List({{1, 0.9}})};
  EXPECT_TRUE(MergeTopK(per_shard, 0).empty());
}

TEST(TopKMergeTest, TruncatesToK) {
  const std::vector<std::vector<Match>> per_shard = {
      List({{1, 0.9}, {2, 0.8}, {3, 0.7}}),
      List({{4, 0.85}, {5, 0.65}}),
  };
  const std::vector<Match> merged = MergeTopK(per_shard, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].tid, 1u);
  EXPECT_EQ(merged[1].tid, 4u);
  EXPECT_EQ(merged[2].tid, 2u);
}

}  // namespace
}  // namespace shard
}  // namespace fuzzymatch

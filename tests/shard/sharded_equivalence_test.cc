// Sharded scatter/gather vs the single-database matcher: the merged
// output must be byte-identical (same tids, bit-identical similarities,
// same order) across shard counts, seeds, K values and bound policies —
// the acceptance bar of DESIGN.md 5h. Also pins the coordinator-side
// contracts: request-id propagation into one span tree per request, and
// per-shard stats aggregation.

#include <gtest/gtest.h>

#include "core/batch_cleaner.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "obs/trace.h"
#include "shard/sharded_matcher.h"
#include "support/seed.h"

namespace fuzzymatch {
namespace shard {
namespace {

struct Env {
  std::unique_ptr<Database> db;
  Table* ref = nullptr;
  std::vector<Row> inputs;  // clean rows + corrupted rows
};

Result<Env> MakeEnv(uint64_t seed, size_t ref_size, size_t num_inputs) {
  Env env;
  DatabaseOptions db_options;
  FM_ASSIGN_OR_RETURN(env.db, Database::Open(std::move(db_options)));
  FM_ASSIGN_OR_RETURN(
      env.ref,
      env.db->CreateTable("customers",
                          CustomerGenerator::CustomerSchema()));
  CustomerGenOptions gen_options;
  gen_options.seed = seed;
  gen_options.num_tuples = ref_size;
  CustomerGenerator gen(gen_options);
  FM_RETURN_IF_ERROR(gen.Populate(env.ref));

  DatasetSpec spec = DatasetD2();
  spec.seed = seed + 1;
  spec.num_inputs = num_inputs;
  FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> dirty,
                      GenerateInputs(env.ref, spec, nullptr));
  for (const InputTuple& input : dirty) {
    env.inputs.push_back(input.dirty);
  }
  // Exact copies exercise the validated path (similarity 1.0 plus score
  // ties between duplicate-ish variants).
  for (Tid tid = 0; tid < ref_size && env.inputs.size() < 2 * num_inputs;
       tid += 13) {
    FM_ASSIGN_OR_RETURN(const Row row, env.ref->Get(tid));
    env.inputs.push_back(row);
  }
  return env;
}

/// Asserts byte-identical FindMatches output over every input. Sound
/// for the conservative bound policy (nothing true is ever pruned, on
/// either side), and for any policy at num_shards == 1.
void ExpectIdentical(const FuzzyMatcher& single,
                     const ShardedMatcher& sharded,
                     const std::vector<Row>& inputs) {
  for (size_t i = 0; i < inputs.size(); ++i) {
    SCOPED_TRACE("input " + std::to_string(i));
    auto expected = single.FindMatches(inputs[i]);
    auto actual = sharded.FindMatches(inputs[i]);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(actual.ok()) << actual.status();
    ASSERT_EQ(expected->size(), actual->size());
    for (size_t m = 0; m < expected->size(); ++m) {
      EXPECT_EQ((*expected)[m].tid, (*actual)[m].tid) << "rank " << m;
      // Bit-identical, not approximately equal: both sides sum the same
      // weights over the same per-shard tuples.
      EXPECT_EQ((*expected)[m].similarity, (*actual)[m].similarity)
          << "rank " << m;
    }
  }
}

/// The contract under the lossy bound policies (kAggressive/kTight):
/// each shard's K-th-best threshold is at most the single database's, so
/// per-shard engines prune a SUBSET of what the single engine prunes —
/// the sharded tier can recover matches the single database lost, never
/// the reverse. Divergence must stay rare (DESIGN.md 5h).
void ExpectNeverWorse(const FuzzyMatcher& single,
                      const ShardedMatcher& sharded,
                      const std::vector<Row>& inputs,
                      size_t max_diverged) {
  size_t diverged = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    SCOPED_TRACE("input " + std::to_string(i));
    auto expected = single.FindMatches(inputs[i]);
    auto actual = sharded.FindMatches(inputs[i]);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(actual.ok()) << actual.status();
    ASSERT_EQ(expected->empty(), actual->empty());
    if (expected->empty()) continue;
    if (*expected == *actual) continue;
    ++diverged;
    EXPECT_GE((*actual)[0].similarity, (*expected)[0].similarity)
        << "sharded top-1 must never be worse than single-database";
  }
  // At K=1 the lossy-policy divergence is a rare-dirty-query phenomenon,
  // not a rewrite of the result stream; deeper ranks (K>1) diverge far
  // more often, so those callers pass a lenient cap.
  EXPECT_LE(diverged, max_diverged)
      << diverged << " of " << inputs.size() << " inputs diverged";
}

TEST(ShardedEquivalenceTest, DefaultConfigIsNeverWorseThanSingleDatabase) {
  for (const uint64_t seed : test_support::TestSeeds({11, 23})) {
    SCOPED_TRACE(test_support::SeedTrace(seed));
    auto env = MakeEnv(seed, 1200, 80);
    ASSERT_TRUE(env.ok()) << env.status();

    FuzzyMatchConfig config;
    auto single = FuzzyMatcher::Build(env->db.get(), "customers", config);
    ASSERT_TRUE(single.ok()) << single.status();

    for (const size_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      ShardRouter::Options options;
      options.num_shards = shards;
      auto router = ShardRouter::Build(env->ref, config, options);
      ASSERT_TRUE(router.ok()) << router.status();
      auto sharded =
          ShardedMatcher::Create(router->get(), ShardedMatcher::Options{});
      ASSERT_TRUE(sharded.ok()) << sharded.status();
      if (shards == 1) {
        // One shard is the same engine over the same relation: identical
        // even under the default lossy bound policy.
        ExpectIdentical(**single, **sharded, env->inputs);
      } else {
        ExpectNeverWorse(**single, **sharded, env->inputs,
                         env->inputs.size() / 5);
      }
    }
  }
}

TEST(ShardedEquivalenceTest, SweepsKValuesPoliciesAndReplicas) {
  for (const uint64_t seed : test_support::TestSeeds({31})) {
    SCOPED_TRACE(test_support::SeedTrace(seed));
    auto env = MakeEnv(seed, 900, 50);
    ASSERT_TRUE(env.ok()) << env.status();

    for (const size_t k : {1u, 3u}) {
      for (const auto policy : {MatcherOptions::BoundPolicy::kAggressive,
                                MatcherOptions::BoundPolicy::kConservative}) {
        SCOPED_TRACE("k=" + std::to_string(k) + " conservative=" +
                     std::to_string(policy ==
                                    MatcherOptions::BoundPolicy::kConservative));
        FuzzyMatchConfig config;
        config.matcher.k = k;
        config.matcher.bound_policy = policy;
        {
          auto single =
              FuzzyMatcher::Build(env->db.get(), "customers", config);
          ASSERT_TRUE(single.ok()) << single.status();

          ShardRouter::Options options;
          options.num_shards = 3;
          auto router = ShardRouter::Build(env->ref, config, options);
          ASSERT_TRUE(router.ok()) << router.status();
          ShardedMatcher::Options matcher_options;
          matcher_options.replicas_per_shard = 2;  // the read fan-out stub
          auto sharded =
              ShardedMatcher::Create(router->get(), matcher_options);
          ASSERT_TRUE(sharded.ok()) << sharded.status();
          if (policy == MatcherOptions::BoundPolicy::kConservative) {
            ExpectIdentical(**single, **sharded, env->inputs);
          } else {
            ExpectNeverWorse(**single, **sharded, env->inputs,
                             env->inputs.size());
          }
        }
        // Rebuilding the single matcher reuses the database; drop the
        // persisted ETI (after the matchers above are gone) so the next
        // configuration builds fresh.
        const std::string eti_name =
            "customers_eti_" + config.eti.StrategyName();
        ASSERT_TRUE(env->db->DropTable(eti_name).ok());
        ASSERT_TRUE(env->db->DropIndex(eti_name + "_idx").ok());
        ASSERT_TRUE(env->db->DropTable(eti_name + "_meta").ok());
      }
    }
  }
}

TEST(ShardedEquivalenceTest, CleanBatchRoutesIdentically) {
  auto env = MakeEnv(47, 800, 60);
  ASSERT_TRUE(env.ok()) << env.status();
  FuzzyMatchConfig config;
  // The byte-identity contract needs the sound bound policy; see 5h.
  config.matcher.bound_policy = MatcherOptions::BoundPolicy::kConservative;
  auto single = FuzzyMatcher::Build(env->db.get(), "customers", config);
  ASSERT_TRUE(single.ok());
  ShardRouter::Options options;
  options.num_shards = 4;
  auto router = ShardRouter::Build(env->ref, config, options);
  ASSERT_TRUE(router.ok());
  auto sharded =
      ShardedMatcher::Create(router->get(), ShardedMatcher::Options{});
  ASSERT_TRUE(sharded.ok());

  const BatchCleaner single_cleaner(single->get(), BatchCleaner::Options{});
  const BatchCleaner sharded_cleaner(sharded->get(),
                                     BatchCleaner::Options{});
  for (const Row& input : env->inputs) {
    auto expected = single_cleaner.Clean(input);
    auto actual = sharded_cleaner.Clean(input);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_EQ(expected->outcome, actual->outcome);
    EXPECT_EQ(expected->output, actual->output);
    ASSERT_EQ(expected->best_match.has_value(),
              actual->best_match.has_value());
    if (expected->best_match.has_value()) {
      EXPECT_EQ(expected->best_match->tid, actual->best_match->tid);
      EXPECT_EQ(expected->best_match->similarity,
                actual->best_match->similarity);
    }
  }
}

TEST(ShardedEquivalenceTest, PropagatesRequestIdIntoOneSpanTree) {
  auto env = MakeEnv(59, 300, 5);
  ASSERT_TRUE(env.ok()) << env.status();
  FuzzyMatchConfig config;
  ShardRouter::Options options;
  options.num_shards = 3;
  auto router = ShardRouter::Build(env->ref, config, options);
  ASSERT_TRUE(router.ok());
  auto sharded =
      ShardedMatcher::Create(router->get(), ShardedMatcher::Options{});
  ASSERT_TRUE(sharded.ok());

  obs::TraceRecord record;
  {
    obs::RequestTrace trace("match", 4242,
                            obs::RequestTrace::CollectInto{&record});
    auto matches = (*sharded)->FindMatches(env->inputs[0]);
    ASSERT_TRUE(matches.ok());
  }
  EXPECT_EQ(record.request_id, 4242u);

  // One tree: every shard's subtree hangs off a shard[k] span which is
  // itself parented under the coordinator's scatter/gather span.
  int shard_roots = 0;
  int scatter_index = -1;
  for (size_t i = 0; i < record.spans.size(); ++i) {
    if (std::string(record.spans[i].name) == "shard.scatter_gather") {
      scatter_index = static_cast<int>(i);
    }
  }
  ASSERT_GE(scatter_index, 0);
  for (const obs::TraceSpan& span : record.spans) {
    const std::string name = span.name;
    if (name.rfind("shard[", 0) == 0) {
      ++shard_roots;
      EXPECT_EQ(span.parent, scatter_index);
    }
    if (name == "match.find_matches") {
      // The per-shard engine spans are inside a shard[k] subtree, not
      // roots of their own.
      ASSERT_GE(span.parent, 0);
      EXPECT_EQ(std::string(record.spans[span.parent].name).rfind("shard[", 0),
                0u);
    }
  }
  EXPECT_EQ(shard_roots, 3);

  // The shard engines' counts merged into the coordinator's tallies.
  bool saw_lookups = false;
  for (const obs::TraceCount& count : record.counts) {
    if (std::string(count.key) == "eti_lookups") {
      saw_lookups = count.value > 0;
    }
  }
  EXPECT_TRUE(saw_lookups);
}

TEST(ShardedEquivalenceTest, AggregatesQueryStatsAcrossShards) {
  auto env = MakeEnv(67, 400, 5);
  ASSERT_TRUE(env.ok()) << env.status();
  FuzzyMatchConfig config;
  ShardRouter::Options options;
  options.num_shards = 2;
  auto router = ShardRouter::Build(env->ref, config, options);
  ASSERT_TRUE(router.ok());
  auto sharded =
      ShardedMatcher::Create(router->get(), ShardedMatcher::Options{});
  ASSERT_TRUE(sharded.ok());

  QueryStats stats;
  auto matches = (*sharded)->FindMatches(env->inputs[0], &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_GT(stats.eti_lookups, 0u);
  EXPECT_GT(stats.elapsed_seconds, 0.0);

  uint64_t queries = 0;
  for (size_t k = 0; k < 2; ++k) {
    queries += (*sharded)->shard_aggregate_stats(k).queries;
    EXPECT_EQ((*sharded)->queue_depth(k), 0u);
  }
  EXPECT_EQ(queries, 2u);  // one task per shard
}

}  // namespace
}  // namespace shard
}  // namespace fuzzymatch

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace fuzzymatch {
namespace obs {
namespace {

TEST(MetricsRegistryTest, SameNameReturnsSameObject) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("layer.events");
  Counter* c2 = registry.GetCounter("layer.events");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.GetCounter("layer.other"), c1);
  // Kinds live in separate namespaces: a gauge may share a counter's name.
  Gauge* g = registry.GetGauge("layer.events");
  EXPECT_EQ(registry.GetGauge("layer.events"), g);
  Histogram* h = registry.GetHistogram("layer.events");
  EXPECT_EQ(registry.GetHistogram("layer.events"), h);
}

TEST(MetricsRegistryTest, HistogramOptionsApplyOnFirstUseOnly) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.min = 1.0;
  options.growth = 4.0;
  options.buckets = 3;
  Histogram* h = registry.GetHistogram("h", options);
  ASSERT_EQ(h->buckets(), 4u);
  // A second caller with different options gets the existing object.
  Histogram* again = registry.GetHistogram("h", HistogramOptions{});
  EXPECT_EQ(again, h);
  EXPECT_EQ(again->buckets(), 4u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hammer.count");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentLookupAndObserveAreExact) {
  // Every thread resolves the metric by name itself (registry mutex) and
  // then observes lock-free; totals must come out exact and the pointer
  // must be stable across all threads.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  std::vector<Histogram*> seen(kThreads, nullptr);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Histogram* h = registry.GetHistogram("hammer.seconds");
      seen[static_cast<size_t>(t)] = h;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h->Observe(1e-6);
        registry.GetCounter("hammer.lookups")->Increment();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_EQ(seen[0]->count(), kThreads * kPerThread);
  EXPECT_EQ(registry.GetCounter("hammer.lookups")->value(),
            kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ResetAllZeroesValuesButKeepsObjects) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  c->Increment(7);
  g->Set(3.25);
  h->Observe(0.5);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // Cached pointers stay valid and live.
  EXPECT_EQ(registry.GetCounter("c"), c);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
  Counter* c = MetricsRegistry::Global().GetCounter("registry_test.global");
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("registry_test.global"), c);
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

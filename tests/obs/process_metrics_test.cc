#include "obs/process_metrics.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace fuzzymatch {
namespace obs {
namespace {

TEST(ProcessMetricsTest, ReportsPlausibleProcessStats) {
  const ProcessStats stats = UpdateProcessMetrics();
  // A running gtest binary is comfortably past these floors.
  EXPECT_GT(stats.rss_bytes, 1u << 20);
  EXPECT_GE(stats.open_fds, 3u);  // stdin/stdout/stderr
  EXPECT_GE(stats.uptime_seconds, 0.0);
}

TEST(ProcessMetricsTest, PublishesGaugesIntoTheGlobalRegistry) {
  UpdateProcessMetrics();
  auto& reg = MetricsRegistry::Global();
  EXPECT_GT(reg.GetGauge("process.rss_bytes")->value(), 0.0);
  EXPECT_GT(reg.GetGauge("process.open_fds")->value(), 0.0);
  EXPECT_GE(reg.GetGauge("process.uptime_seconds")->value(), 0.0);
}

TEST(ProcessMetricsTest, UptimeAdvancesMonotonically) {
  const ProcessStats a = UpdateProcessMetrics();
  const ProcessStats b = UpdateProcessMetrics();
  EXPECT_GE(b.uptime_seconds, a.uptime_seconds);
}

TEST(ProcessMetricsTest, BuildInfoIsPopulated) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_FALSE(info.version.empty());
  EXPECT_TRUE(info.build_type == "release" || info.build_type == "debug");
  EXPECT_FALSE(info.compiler.empty());
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

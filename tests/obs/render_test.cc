// Golden tests for the two exposition formats. The renderers are
// deterministic (std::map ordering, %.9g doubles), so exact string
// comparison is safe and pins the schema the bench tooling consumes.

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace fuzzymatch {
namespace obs {
namespace {

// One metric of each kind with hand-checkable values. The histogram has
// edges 1, 2 and an overflow bucket; 0.5 lands in bucket 0 and 3.0 in
// the overflow, so p50 = 1 (edge of bucket 0) and p95 = p99 = 2 (the
// last finite edge, reported for overflow mass).
void Populate(MetricsRegistry& registry) {
  registry.GetCounter("a.count")->Increment(3);
  registry.GetGauge("g.rate")->Set(1.5);
  HistogramOptions options;
  options.min = 1.0;
  options.growth = 2.0;
  options.buckets = 2;
  Histogram* h = registry.GetHistogram("h", options);
  h->Observe(0.5);
  h->Observe(3.0);
}

TEST(RenderTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  Populate(registry);
  EXPECT_EQ(registry.RenderText(),
            "# HELP fm_a_count a.count\n"
            "# TYPE fm_a_count counter\n"
            "fm_a_count 3\n"
            "# HELP fm_g_rate g.rate\n"
            "# TYPE fm_g_rate gauge\n"
            "fm_g_rate 1.5\n"
            "# HELP fm_h h\n"
            "# TYPE fm_h histogram\n"
            "fm_h_bucket{le=\"1\"} 1\n"
            "fm_h_bucket{le=\"2\"} 1\n"
            "fm_h_bucket{le=\"+Inf\"} 2\n"
            "fm_h_sum 3.5\n"
            "fm_h_count 2\n"
            "# fm_h p50=1 p95=2 p99=2\n");
}

TEST(RenderTest, JsonGolden) {
  MetricsRegistry registry;
  Populate(registry);
  EXPECT_EQ(registry.RenderJson(),
            "{\n"
            "  \"counters\": {\n"
            "    \"a.count\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"g.rate\": 1.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"h\": {\n"
            "      \"count\": 2,\n"
            "      \"sum\": 3.5,\n"
            "      \"p50\": 1,\n"
            "      \"p95\": 2,\n"
            "      \"p99\": 2,\n"
            "      \"buckets\": [{\"le\": 1, \"count\": 1}, "
            "{\"le\": \"+Inf\", \"count\": 1}]\n"
            "    }\n"
            "  }\n"
            "}\n");
}

TEST(RenderTest, EmptyRegistryRendersValidSkeletons) {
  const MetricsRegistry registry;
  EXPECT_EQ(registry.RenderText(), "");
  EXPECT_EQ(registry.RenderJson(),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST(RenderTest, NamesAreSanitizedButHelpKeepsTheDottedOriginal) {
  MetricsRegistry registry;
  registry.GetCounter("buffer-pool.hits/misses")->Increment();
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP fm_buffer_pool_hits_misses "
                      "buffer-pool.hits/misses\n"),
            std::string::npos);
  EXPECT_NE(text.find("fm_buffer_pool_hits_misses 1\n"), std::string::npos);
}

TEST(RenderTest, CollidingSanitizedNamesGetDistinctSuffixes) {
  // "a.b" and "a-b" both sanitize to fm_a_b; Prometheus scrapers reject
  // duplicate series, so the renderer must disambiguate deterministically
  // (first by sorted order keeps the clean name, later ones get _2, _3).
  MetricsRegistry registry;
  registry.GetCounter("a.b")->Increment(1);
  registry.GetCounter("a-b")->Increment(2);
  registry.GetCounter("a/b")->Increment(3);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("fm_a_b 2\n"), std::string::npos) << text;    // "a-b"
  EXPECT_NE(text.find("fm_a_b_2 1\n"), std::string::npos) << text;  // "a.b"
  EXPECT_NE(text.find("fm_a_b_3 3\n"), std::string::npos) << text;  // "a/b"
  // HELP lines keep the dotted originals, so the mapping is recoverable.
  EXPECT_NE(text.find("# HELP fm_a_b a-b\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP fm_a_b_2 a.b\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP fm_a_b_3 a/b\n"), std::string::npos);
}

TEST(RenderTest, CollisionsAcrossMetricKindsAreDisambiguated) {
  // One namespace across counters, gauges, and histograms: a gauge whose
  // sanitized name matches a counter's must not emit a duplicate series.
  MetricsRegistry registry;
  registry.GetCounter("x.y")->Increment(7);
  registry.GetGauge("x-y")->Set(1.5);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("fm_x_y 7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("fm_x_y_2 1.5\n"), std::string::npos) << text;
}

TEST(RenderTest, CountersSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Increment();
  registry.GetCounter("a.first")->Increment();
  const std::string text = registry.RenderText();
  EXPECT_LT(text.find("fm_a_first"), text.find("fm_z_last"));
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

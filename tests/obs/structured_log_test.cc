#include "obs/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "obs/trace.h"
#include "server/json.h"

namespace fuzzymatch {
namespace obs {
namespace {

/// Captures structured log output into a string via a tmpfile sink.
class StructuredLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sink_ = std::tmpfile();
    ASSERT_NE(sink_, nullptr);
    previous_sink_ = SetStructuredLogSink(sink_);
    previous_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kInfo);
  }

  void TearDown() override {
    SetStructuredLogSink(previous_sink_);
    SetLogLevel(previous_level_);
    std::fclose(sink_);
  }

  std::string Captured() {
    std::fflush(sink_);
    std::string out;
    std::rewind(sink_);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), sink_)) > 0) {
      out.append(buf, n);
    }
    return out;
  }

  FILE* sink_ = nullptr;
  FILE* previous_sink_ = nullptr;
  LogLevel previous_level_ = LogLevel::kInfo;
};

TEST_F(StructuredLogTest, EmitsOneParseableJsonLine) {
  FM_SLOG(Info, "server.start")
      .Field("port", 7070)
      .Field("workers", static_cast<uint64_t>(4))
      .Field("host", "127.0.0.1")
      .Field("ready", true)
      .Field("uptime", 0.5);
  const std::string out = Captured();
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.back(), '\n');
  auto doc = server::ParseJson(out.substr(0, out.size() - 1));
  ASSERT_TRUE(doc.ok()) << out;
  EXPECT_EQ(doc->Find("level")->string_value(), "info");
  EXPECT_EQ(doc->Find("event")->string_value(), "server.start");
  EXPECT_EQ(doc->Find("port")->number_value(), 7070.0);
  EXPECT_EQ(doc->Find("workers")->number_value(), 4.0);
  EXPECT_EQ(doc->Find("host")->string_value(), "127.0.0.1");
  EXPECT_TRUE(doc->Find("ready")->bool_value());
  EXPECT_GT(doc->Find("ts")->number_value(), 0.0);
}

TEST_F(StructuredLogTest, RespectsLogLevelThreshold) {
  SetLogLevel(LogLevel::kWarning);
  FM_SLOG(Info, "suppressed").Field("k", 1);
  FM_SLOG(Warning, "emitted").Field("k", 2);
  const std::string out = Captured();
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
  EXPECT_NE(out.find("emitted"), std::string::npos);
  EXPECT_NE(out.find("\"level\":\"warning\""), std::string::npos);
}

TEST_F(StructuredLogTest, AttachesRequestIdFromCurrentTrace) {
  {
    RequestTrace trace("match", 77, nullptr);
    FM_SLOG(Info, "query.something").Field("k", 1);
  }
  FM_SLOG(Info, "no.trace").Field("k", 2);
  const std::string out = Captured();
  const size_t first_line_end = out.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
  auto doc = server::ParseJson(out.substr(0, first_line_end));
  ASSERT_TRUE(doc.ok()) << out;
  ASSERT_NE(doc->Find("request_id"), nullptr);
  EXPECT_EQ(doc->Find("request_id")->number_value(), 77.0);
  auto second = server::ParseJson(
      out.substr(first_line_end + 1,
                 out.find('\n', first_line_end + 1) - first_line_end - 1));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->Find("request_id"), nullptr);
}

TEST_F(StructuredLogTest, EscapesStringsAndRawFieldsPassThrough) {
  FM_SLOG(Info, "escape.check")
      .Field("tricky", std::string("a\"b\\c\nd"))
      .RawField("nested", "{\"x\":1}");
  const std::string out = Captured();
  auto doc = server::ParseJson(out.substr(0, out.find('\n')));
  ASSERT_TRUE(doc.ok()) << out;
  EXPECT_EQ(doc->Find("tricky")->string_value(), "a\"b\\c\nd");
  const server::JsonValue* nested = doc->Find("nested");
  ASSERT_NE(nested, nullptr);
  ASSERT_TRUE(nested->is_object());
  EXPECT_EQ(nested->Find("x")->number_value(), 1.0);
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

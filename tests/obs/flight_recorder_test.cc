#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "server/json.h"

namespace fuzzymatch {
namespace obs {
namespace {

/// A single-stripe recorder so eviction order is deterministic.
FlightRecorder::Options SmallOptions(size_t capacity) {
  FlightRecorder::Options options;
  options.recent_capacity = capacity;
  options.outlier_capacity = capacity;
  options.slow_threshold_seconds = 0.100;
  options.stripes = 1;
  options.log_outliers = false;
  return options;
}

TraceRecord FastTrace(uint64_t id) {
  TraceRecord rec;
  rec.request_id = id;
  rec.op = "match";
  rec.start_unix_ns = 1;
  rec.duration_ns = 1'000'000;  // 1ms: well under the slow threshold
  return rec;
}

TraceRecord SlowTrace(uint64_t id) {
  TraceRecord rec = FastTrace(id);
  rec.duration_ns = 250'000'000;  // 250ms
  return rec;
}

TraceRecord ErrorTrace(uint64_t id) {
  TraceRecord rec = FastTrace(id);
  rec.error = true;
  rec.status = Status::IOError("injected").ToString();
  return rec;
}

TEST(FlightRecorderTest, RetainsRecentTracesNewestFirst) {
  FlightRecorder recorder(SmallOptions(8));
  for (uint64_t id = 1; id <= 3; ++id) {
    recorder.Record(FastTrace(id));
  }
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].request_id, 3u);
  EXPECT_EQ(traces[1].request_id, 2u);
  EXPECT_EQ(traces[2].request_id, 1u);
}

TEST(FlightRecorderTest, RecentRingEvictsOldest) {
  FlightRecorder recorder(SmallOptions(4));
  for (uint64_t id = 1; id <= 10; ++id) {
    recorder.Record(FastTrace(id));
  }
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces[0].request_id, 10u);
  EXPECT_EQ(traces[3].request_id, 7u);
  const FlightRecorder::Stats stats = recorder.GetStats();
  EXPECT_EQ(stats.recorded, 10u);
  EXPECT_EQ(stats.retained, 4u);
}

TEST(FlightRecorderTest, SlowTraceSurvivesRecentEviction) {
  FlightRecorder recorder(SmallOptions(4));
  recorder.Record(SlowTrace(1));
  for (uint64_t id = 2; id <= 20; ++id) {
    recorder.Record(FastTrace(id));
  }
  const auto traces = recorder.Snapshot();
  // The slow trace was evicted from the recent ring long ago but is
  // retained in the outlier ring — and sorts first.
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces[0].request_id, 1u);
  EXPECT_EQ(recorder.GetStats().slow, 1u);
}

TEST(FlightRecorderTest, ThresholdSeparatesSlowFromFast) {
  FlightRecorder recorder(SmallOptions(4));
  TraceRecord over = FastTrace(1);
  over.duration_ns = 100'000'001;  // just over the 100ms threshold
  recorder.Record(std::move(over));
  TraceRecord under = FastTrace(2);
  under.duration_ns = 99'000'000;  // just under
  recorder.Record(std::move(under));
  EXPECT_EQ(recorder.GetStats().slow, 1u);
}

TEST(FlightRecorderTest, ErrorTraceRetainedWithStatus) {
  FlightRecorder recorder(SmallOptions(4));
  recorder.Record(ErrorTrace(1));
  for (uint64_t id = 2; id <= 20; ++id) {
    recorder.Record(FastTrace(id));
  }
  const auto traces = recorder.Snapshot();
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces[0].request_id, 1u);
  EXPECT_TRUE(traces[0].error);
  EXPECT_NE(traces[0].status.find("injected"), std::string::npos);
  EXPECT_EQ(recorder.GetStats().errors, 1u);
}

TEST(FlightRecorderTest, SnapshotDedupsOutlierAlsoInRecentRing) {
  FlightRecorder recorder(SmallOptions(8));
  recorder.Record(SlowTrace(5));  // lands in both rings
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].request_id, 5u);
}

TEST(FlightRecorderTest, SnapshotHonorsMax) {
  FlightRecorder recorder(SmallOptions(16));
  recorder.Record(SlowTrace(1));
  for (uint64_t id = 2; id <= 10; ++id) {
    recorder.Record(FastTrace(id));
  }
  const auto traces = recorder.Snapshot(3);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].request_id, 1u);  // outliers first, then newest
  EXPECT_EQ(traces[1].request_id, 10u);
}

TEST(FlightRecorderTest, StripedRecorderRetainsAcrossStripes) {
  FlightRecorder::Options options = SmallOptions(4);
  options.stripes = 4;
  FlightRecorder recorder(options);
  for (uint64_t id = 1; id <= 16; ++id) {
    recorder.Record(FastTrace(id));
  }
  EXPECT_EQ(recorder.GetStats().retained, 16u);  // 4 per stripe
}

TEST(FlightRecorderTest, ClearDropsTracesAndZeroesStats) {
  FlightRecorder recorder(SmallOptions(4));
  recorder.Record(SlowTrace(1));
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.GetStats().recorded, 0u);
  EXPECT_EQ(recorder.GetStats().slow, 0u);
}

TEST(FlightRecorderTest, RenderJsonIsValidAndComplete) {
  FlightRecorder recorder(SmallOptions(8));
  TraceRecord rec = SlowTrace(7);
  rec.op = "clean";
  rec.spans.push_back(TraceSpan{"server.handle_query", 0, 240'000'000, -1});
  rec.spans.push_back(TraceSpan{"match.find_matches", 1000, 230'000'000, 0});
  rec.counts.push_back(TraceCount{"pages_read", 12});
  rec.dropped_spans = 2;
  recorder.Record(std::move(rec));
  recorder.Record(ErrorTrace(8));

  const std::string json = recorder.RenderJson();
  auto doc = server::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;
  ASSERT_TRUE(doc->is_object());
  EXPECT_NE(doc->Find("slow_threshold_seconds"), nullptr);

  const server::JsonValue* stats = doc->Find("stats");
  ASSERT_NE(stats, nullptr);
  for (const char* key : {"recorded", "slow", "errors", "retained"}) {
    EXPECT_NE(stats->Find(key), nullptr) << key;
  }

  const server::JsonValue* traces = doc->Find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  ASSERT_EQ(traces->array_items().size(), 2u);

  // Both are outliers; the error trace (8) arrived last but outlier order
  // is insertion order — just check both ids are present with the right
  // shape.
  bool saw_slow = false;
  for (const server::JsonValue& t : traces->array_items()) {
    ASSERT_TRUE(t.is_object());
    ASSERT_NE(t.Find("request_id"), nullptr);
    EXPECT_NE(t.Find("op"), nullptr);
    EXPECT_NE(t.Find("duration_ms"), nullptr);
    EXPECT_NE(t.Find("error"), nullptr);
    if (t.Find("request_id")->number_value() == 7.0) {
      saw_slow = true;
      const server::JsonValue* spans = t.Find("spans");
      ASSERT_NE(spans, nullptr);
      ASSERT_TRUE(spans->is_array());
      ASSERT_EQ(spans->array_items().size(), 2u);
      const server::JsonValue& span = spans->array_items()[1];
      EXPECT_EQ(span.Find("name")->string_value(), "match.find_matches");
      EXPECT_EQ(span.Find("parent")->number_value(), 0.0);
      const server::JsonValue* counts = t.Find("counts");
      ASSERT_NE(counts, nullptr);
      ASSERT_NE(counts->Find("pages_read"), nullptr);
      EXPECT_EQ(counts->Find("pages_read")->number_value(), 12.0);
      EXPECT_EQ(t.Find("dropped_spans")->number_value(), 2.0);
    }
  }
  EXPECT_TRUE(saw_slow);
}

TEST(FlightRecorderTest, JsonEscapesStatusStrings) {
  FlightRecorder recorder(SmallOptions(4));
  TraceRecord rec = FastTrace(1);
  rec.error = true;
  rec.status = "quote \" backslash \\ newline \n tab \t";
  recorder.Record(std::move(rec));
  const std::string json = recorder.RenderJson();
  auto doc = server::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;
  const auto& traces = doc->Find("traces")->array_items();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].Find("status")->string_value(),
            "quote \" backslash \\ newline \n tab \t");
}

TEST(FlightRecorderTest, ConfigureReplacesOptions) {
  FlightRecorder recorder(SmallOptions(4));
  recorder.Record(SlowTrace(1));
  FlightRecorder::Options options = SmallOptions(2);
  options.slow_threshold_seconds = 0.5;
  recorder.Configure(options);
  EXPECT_TRUE(recorder.Snapshot().empty());  // Configure drops traces
  recorder.Record(SlowTrace(2));             // 250ms < new 500ms threshold
  EXPECT_EQ(recorder.GetStats().slow, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

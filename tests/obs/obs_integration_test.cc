// End-to-end invariants between the per-query/per-matcher stats structs
// and the process-wide metrics registry: the two accounts of the same
// work must agree exactly. Runs a real FuzzyMatcher over a small
// synthetic relation and compares registry deltas against QueryStats,
// AggregateStats, and the buffer pool's own member counters.

#include <gtest/gtest.h>

#include "core/fuzzy_match.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "obs/metrics.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

uint64_t Get(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions gen_options;
    gen_options.num_tuples = 1000;
    CustomerGenerator gen(gen_options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
    FuzzyMatchConfig config;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
    ASSERT_TRUE(matcher.ok()) << matcher.status();
    matcher_ = std::move(*matcher);
  }

  std::vector<InputTuple> MakeInputs(size_t n) {
    DatasetSpec spec = DatasetD2();
    spec.num_inputs = n;
    auto inputs = GenerateInputs(ref_, spec, nullptr);
    EXPECT_TRUE(inputs.ok());
    return std::move(*inputs);
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
  std::unique_ptr<FuzzyMatcher> matcher_;
};

TEST_F(ObsIntegrationTest, EtiProbesMatchQueryStatsLookups) {
  // Every Eti::Lookup increments eti.probes exactly once, and the
  // matcher counts the same events into QueryStats::eti_lookups.
  for (const auto& input : MakeInputs(10)) {
    const uint64_t before = Get("eti.probes");
    QueryStats stats;
    ASSERT_TRUE(matcher_->FindMatches(input.dirty, &stats).ok());
    EXPECT_EQ(Get("eti.probes") - before, stats.eti_lookups);
  }
}

TEST_F(ObsIntegrationTest, BufferPoolRegistryMirrorsMemberCounters) {
  // The registry aggregates across pools; with a single database in play
  // its deltas must equal the pool's own per-instance deltas.
  BufferPool* pool = db_->buffer_pool();
  const uint64_t reg_hits = Get("bufferpool.hits");
  const uint64_t reg_misses = Get("bufferpool.misses");
  const uint64_t mem_hits = pool->hits();
  const uint64_t mem_misses = pool->misses();
  for (const auto& input : MakeInputs(10)) {
    ASSERT_TRUE(matcher_->FindMatches(input.dirty).ok());
  }
  const uint64_t hit_delta = pool->hits() - mem_hits;
  const uint64_t miss_delta = pool->misses() - mem_misses;
  EXPECT_EQ(Get("bufferpool.hits") - reg_hits, hit_delta);
  EXPECT_EQ(Get("bufferpool.misses") - reg_misses, miss_delta);
  // Every page access is either a hit or a miss; this workload touches
  // the pool at least once per query.
  EXPECT_GT(hit_delta + miss_delta, 0u);
}

TEST_F(ObsIntegrationTest, MatchCountersMirrorAggregateStats) {
  matcher_->ResetAggregateStats();
  const uint64_t queries = Get("match.queries");
  const uint64_t lookups = Get("match.eti_lookups");
  const uint64_t tids = Get("match.tids_processed");
  const uint64_t fetched = Get("match.ref_tuples_fetched");
  const uint64_t osc_attempted = Get("match.osc_attempted");
  const uint64_t osc_succeeded = Get("match.osc_succeeded");
  const uint64_t ok = Get("match.fetched_when_osc_succeeded");
  const uint64_t fail = Get("match.fetched_when_osc_failed");
  const uint64_t none = Get("match.fetched_when_osc_not_attempted");
  obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
      "match.query_seconds", obs::LatencyHistogramOptions());
  const uint64_t latency_count = latency->count();

  const auto inputs = MakeInputs(25);
  for (const auto& input : inputs) {
    QueryStats stats;
    ASSERT_TRUE(matcher_->FindMatches(input.dirty, &stats).ok());
  }

  const AggregateStats& agg = matcher_->aggregate_stats();
  EXPECT_EQ(agg.queries, inputs.size());
  EXPECT_EQ(Get("match.queries") - queries, agg.queries);
  EXPECT_EQ(Get("match.eti_lookups") - lookups, agg.eti_lookups);
  EXPECT_EQ(Get("match.tids_processed") - tids, agg.tids_processed);
  EXPECT_EQ(Get("match.ref_tuples_fetched") - fetched,
            agg.ref_tuples_fetched);
  EXPECT_EQ(Get("match.osc_attempted") - osc_attempted, agg.osc_attempted);
  EXPECT_EQ(Get("match.osc_succeeded") - osc_succeeded, agg.osc_succeeded);
  EXPECT_EQ(Get("match.fetched_when_osc_succeeded") - ok,
            agg.fetched_when_osc_succeeded);
  EXPECT_EQ(Get("match.fetched_when_osc_failed") - fail,
            agg.fetched_when_osc_failed);
  EXPECT_EQ(Get("match.fetched_when_osc_not_attempted") - none,
            agg.fetched_when_osc_not_attempted);
  // One latency observation per accumulated query.
  EXPECT_EQ(latency->count() - latency_count, agg.queries);
  // The three fetch attributions partition the total.
  EXPECT_EQ(agg.fetched_when_osc_succeeded + agg.fetched_when_osc_failed +
                agg.fetched_when_osc_not_attempted,
            agg.ref_tuples_fetched);
}

TEST_F(ObsIntegrationTest, SpanHistogramsCoverTheQueryPhases) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Histogram* probe = reg.GetHistogram(
      "span.match.probe_seconds", obs::LatencyHistogramOptions());
  obs::Histogram* score = reg.GetHistogram(
      "span.match.score_seconds", obs::LatencyHistogramOptions());
  const uint64_t probes_before = probe->count();
  const uint64_t scores_before = score->count();
  QueryStats stats;
  auto row = ref_->Get(7);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(matcher_->FindMatches(*row, &stats).ok());
  // One probe span per ETI lookup; at least one scoring span.
  EXPECT_EQ(probe->count() - probes_before, stats.eti_lookups);
  EXPECT_GT(score->count(), scores_before);
}

}  // namespace
}  // namespace fuzzymatch

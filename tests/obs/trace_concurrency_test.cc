// Concurrency slice for the tracing pipeline: many worker threads each
// recording span trees into their own thread-local RequestTrace, all
// finishing into one shared lock-striped FlightRecorder, while readers
// concurrently snapshot and render. Run under TSan by tools/ci.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {
namespace obs {
namespace {

TEST(TraceConcurrencyTest, WorkersRecordIntoSharedRecorder) {
  FlightRecorder::Options options;
  options.recent_capacity = 16;
  options.outlier_capacity = 16;
  options.slow_threshold_seconds = 10.0;  // nothing here is slow
  options.stripes = 4;
  options.log_outliers = false;
  FlightRecorder recorder(options);

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 200;
  Histogram* hist = SpanHistogram("trace_concurrency.work");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, hist, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        RequestTrace trace(t % 2 == 0 ? "match" : "clean", NextRequestId(),
                           &recorder);
        {
          ScopedSpan outer("trace_concurrency.outer", hist);
          { ScopedSpan inner("trace_concurrency.inner", hist); }
          AddTraceCount("pages_read", 2);
          AddTraceCount("candidates", 1);
        }
        if (i % 50 == 0) {
          trace.SetStatus(Status::IOError("synthetic"));
        }
      }
    });
  }

  // Concurrent readers: the introspection path must be safe while
  // workers are recording.
  std::atomic<bool> stop{false};
  std::thread reader([&recorder, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto traces = recorder.Snapshot(8);
      const std::string json = recorder.RenderJson(8);
      EXPECT_LE(traces.size(), 8u);
      EXPECT_FALSE(json.empty());
      (void)recorder.GetStats();
    }
  });

  for (std::thread& thread : threads) {
    thread.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  const FlightRecorder::Stats stats = recorder.GetStats();
  EXPECT_EQ(stats.recorded,
            static_cast<uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_EQ(stats.errors, static_cast<uint64_t>(kThreads) *
                              (kRequestsPerThread / 50));
  EXPECT_EQ(stats.slow, 0u);
  EXPECT_GT(stats.retained, 0u);

  // Every retained trace carries its complete two-span tree.
  for (const TraceRecord& rec : recorder.Snapshot()) {
    ASSERT_EQ(rec.spans.size(), 2u);
    EXPECT_EQ(rec.spans[0].parent, -1);
    EXPECT_EQ(rec.spans[1].parent, 0);
    ASSERT_EQ(rec.counts.size(), 2u);
    EXPECT_EQ(rec.counts[0].value, 2u);
  }
}

TEST(TraceConcurrencyTest, RequestIdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kIdsPerThread = 1000;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      ids[t].reserve(kIdsPerThread);
      for (int i = 0; i < kIdsPerThread; ++i) {
        ids[t].push_back(NextRequestId());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  std::vector<uint64_t> all;
  for (const auto& batch : ids) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace fuzzymatch {
namespace obs {
namespace {

TEST(RequestTraceTest, InstallsAndRestoresCurrent) {
  EXPECT_EQ(RequestTrace::Current(), nullptr);
  {
    RequestTrace outer("outer", 1, nullptr);
    EXPECT_EQ(RequestTrace::Current(), &outer);
    {
      RequestTrace inner("inner", 2, nullptr);
      EXPECT_EQ(RequestTrace::Current(), &inner);
    }
    EXPECT_EQ(RequestTrace::Current(), &outer);
  }
  EXPECT_EQ(RequestTrace::Current(), nullptr);
}

TEST(RequestTraceTest, NextRequestIdIsMonotonic) {
  const uint64_t a = NextRequestId();
  const uint64_t b = NextRequestId();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
}

TEST(RequestTraceTest, SpansRecordParentLinks) {
  Histogram hist("trace_parent_test", LatencyHistogramOptions());
  RequestTrace trace("q", 7, nullptr);
  {
    ScopedSpan outer("outer", &hist);
    { ScopedSpan inner("inner", &hist); }
    { ScopedSpan sibling("sibling", &hist); }
  }
  { ScopedSpan top("top", &hist); }
  const TraceRecord& rec = trace.record();
  ASSERT_EQ(rec.spans.size(), 4u);
  EXPECT_STREQ(rec.spans[0].name, "outer");
  EXPECT_EQ(rec.spans[0].parent, -1);
  EXPECT_STREQ(rec.spans[1].name, "inner");
  EXPECT_EQ(rec.spans[1].parent, 0);
  EXPECT_STREQ(rec.spans[2].name, "sibling");
  EXPECT_EQ(rec.spans[2].parent, 0);
  EXPECT_STREQ(rec.spans[3].name, "top");
  EXPECT_EQ(rec.spans[3].parent, -1);
  EXPECT_EQ(rec.dropped_spans, 0u);
  EXPECT_EQ(rec.request_id, 7u);
  EXPECT_EQ(rec.op, "q");
}

TEST(RequestTraceTest, WidthBoundDropsExcessSpans) {
  RequestTrace::Limits limits;
  limits.max_spans = 4;
  RequestTrace trace("q", 1, nullptr, limits);
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    const int32_t idx = trace.OpenSpan("s", now);
    if (i < 4) {
      EXPECT_GE(idx, 0);
    } else {
      EXPECT_EQ(idx, -1);
    }
    trace.CloseSpan(idx, 1);
  }
  EXPECT_EQ(trace.record().spans.size(), 4u);
  EXPECT_EQ(trace.record().dropped_spans, 6u);
}

TEST(RequestTraceTest, DepthBoundDropsDeepSpans) {
  RequestTrace::Limits limits;
  limits.max_depth = 2;
  RequestTrace trace("q", 1, nullptr, limits);
  const auto now = std::chrono::steady_clock::now();
  const int32_t a = trace.OpenSpan("a", now);
  const int32_t b = trace.OpenSpan("b", now);
  const int32_t c = trace.OpenSpan("c", now);  // third level: dropped
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_EQ(c, -1);
  trace.CloseSpan(c, 1);
  trace.CloseSpan(b, 1);
  trace.CloseSpan(a, 1);
  EXPECT_EQ(trace.record().spans.size(), 2u);
  EXPECT_EQ(trace.record().dropped_spans, 1u);
}

TEST(RequestTraceTest, AddCountAggregatesByKey) {
  RequestTrace trace("q", 1, nullptr);
  trace.AddCount("pages_read", 2);
  trace.AddCount("candidates", 5);
  trace.AddCount("pages_read", 3);
  const TraceRecord& rec = trace.record();
  ASSERT_EQ(rec.counts.size(), 2u);
  EXPECT_STREQ(rec.counts[0].key, "pages_read");
  EXPECT_EQ(rec.counts[0].value, 5u);
  EXPECT_STREQ(rec.counts[1].key, "candidates");
  EXPECT_EQ(rec.counts[1].value, 5u);
}

TEST(RequestTraceTest, AddTraceCountHelperIsNoOpWithoutTrace) {
  AddTraceCount("nothing", 1);  // must not crash
  RequestTrace trace("q", 1, nullptr);
  AddTraceCount("something", 2);
  ASSERT_EQ(trace.record().counts.size(), 1u);
  EXPECT_EQ(trace.record().counts[0].value, 2u);
}

TEST(RequestTraceTest, SetStatusMarksError) {
  RequestTrace trace("q", 1, nullptr);
  EXPECT_FALSE(trace.record().error);
  trace.SetStatus(Status::IOError("disk on fire"));
  EXPECT_TRUE(trace.record().error);
  EXPECT_NE(trace.record().status.find("disk on fire"), std::string::npos);
  // OK status does not clear an error already recorded.
  trace.SetStatus(Status::OK());
  EXPECT_TRUE(trace.record().error);
}

TEST(RequestTraceTest, SummaryAggregatesByName) {
  Histogram hist("trace_summary_test", LatencyHistogramOptions());
  RequestTrace trace("q", 1, nullptr);
  { ScopedSpan s("probe", &hist); }
  { ScopedSpan s("probe", &hist); }
  { ScopedSpan s("score", &hist); }
  const std::string summary = trace.Summary();
  EXPECT_NE(summary.find("probe="), std::string::npos);
  EXPECT_NE(summary.find("score="), std::string::npos);
  EXPECT_NE(summary.find("/2"), std::string::npos);
}

TEST(RequestTraceTest, DestructionDeliversRecordToRecorder) {
  FlightRecorder::Options options;
  options.log_outliers = false;
  FlightRecorder recorder(options);
  {
    RequestTrace trace("match", 42, &recorder);
    trace.AddCount("candidates", 3);
  }
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].request_id, 42u);
  EXPECT_EQ(traces[0].op, "match");
  EXPECT_GT(traces[0].start_unix_ns, 0);
}

TEST(MaybeRequestTraceTest, InstallsOnlyAtTheOutermostBoundary) {
  FlightRecorder::Options options;
  options.log_outliers = false;
  FlightRecorder recorder(options);
  {
    MaybeRequestTrace outer("match", &recorder);
    ASSERT_NE(outer.installed(), nullptr);
    EXPECT_EQ(RequestTrace::Current(), outer.installed());
    {
      MaybeRequestTrace inner("clean", &recorder);
      EXPECT_EQ(inner.installed(), nullptr);
      EXPECT_EQ(RequestTrace::Current(), outer.installed());
      // SetStatus forwards to the upstream trace.
      inner.SetStatus(Status::NotFound("gone"));
    }
    EXPECT_TRUE(outer.installed()->record().error);
  }
  ASSERT_EQ(recorder.Snapshot().size(), 1u);  // only the outer boundary
}

TEST(MaybeRequestTraceTest, RespectsTracingEnabled) {
  SetTracingEnabled(false);
  {
    MaybeRequestTrace boundary("match", nullptr);
    EXPECT_EQ(boundary.installed(), nullptr);
    EXPECT_EQ(RequestTrace::Current(), nullptr);
    boundary.SetStatus(Status::IOError("ignored"));  // must not crash
  }
  SetTracingEnabled(true);
  {
    MaybeRequestTrace boundary("match", nullptr);
    EXPECT_NE(boundary.installed(), nullptr);
  }
}

TEST(ScopedSpanTest, ObservesIntoHistogramWithAndWithoutTrace) {
  Histogram hist("span_test", LatencyHistogramOptions());
  {
    RequestTrace trace("q", 1, nullptr);
    { const ScopedSpan span("phase", &hist); }
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_GE(hist.sum(), 0.0);
    ASSERT_EQ(trace.record().spans.size(), 1u);
    EXPECT_STREQ(trace.record().spans[0].name, "phase");
  }
  // Without a trace installed the span still feeds the histogram.
  { const ScopedSpan span("phase", &hist); }
  EXPECT_EQ(hist.count(), 2u);
}

TEST(ScopedSpanTest, SpanHistogramUsesTheRegistryNamingScheme) {
  Histogram* h = SpanHistogram("trace_test.naming");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h, MetricsRegistry::Global().GetHistogram(
                   "span.trace_test.naming_seconds"));
  // Latency layout, not the default.
  EXPECT_EQ(h->buckets(), LatencyHistogramOptions().buckets + 1);
}

uint64_t MacroSpanCount() {
  return MetricsRegistry::Global()
      .GetHistogram("span.trace_test.macro_seconds")
      ->count();
}

void FunctionWithSpan() { FM_TRACE_SPAN("trace_test.macro"); }

TEST(ScopedSpanTest, TraceSpanMacroRecordsPerCall) {
  const uint64_t before = MacroSpanCount();
  FunctionWithSpan();
  FunctionWithSpan();
  FunctionWithSpan();
  EXPECT_EQ(MacroSpanCount(), before + 3);
}

TEST(ScopedSpanTest, TwoSpansInOneScopeCompile) {
  // The __COUNTER__ plumbing must give each expansion its own variables.
  Histogram* h = SpanHistogram("trace_test.pair");
  const uint64_t before = h->count();
  {
    FM_TRACE_SPAN("trace_test.pair");
    FM_TRACE_SPAN("trace_test.pair");
  }
  EXPECT_EQ(h->count(), before + 2);
}

TEST(ScopedSpanTest, MacroSpansBuildTreeUnderRequestTrace) {
  RequestTrace trace("q", 9, nullptr);
  {
    FM_TRACE_SPAN("trace_test.tree_outer");
    FM_TRACE_SPAN("trace_test.tree_inner");
  }
  ASSERT_EQ(trace.record().spans.size(), 2u);
  EXPECT_EQ(trace.record().spans[0].parent, -1);
  EXPECT_EQ(trace.record().spans[1].parent, 0);
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {
namespace obs {
namespace {

TEST(QueryTraceTest, InstallsAndRestoresCurrent) {
  EXPECT_EQ(QueryTrace::Current(), nullptr);
  {
    QueryTrace outer("outer");
    EXPECT_EQ(QueryTrace::Current(), &outer);
    {
      QueryTrace inner("inner");
      EXPECT_EQ(QueryTrace::Current(), &inner);
    }
    EXPECT_EQ(QueryTrace::Current(), &outer);
  }
  EXPECT_EQ(QueryTrace::Current(), nullptr);
}

TEST(QueryTraceTest, RecordAggregatesByPhaseName) {
  QueryTrace trace("q");
  trace.Record("probe", 0.5);
  trace.Record("score", 2.0);
  trace.Record("probe", 0.25);
  ASSERT_EQ(trace.phases().size(), 2u);
  EXPECT_STREQ(trace.phases()[0].name, "probe");
  EXPECT_EQ(trace.phases()[0].calls, 2u);
  EXPECT_DOUBLE_EQ(trace.phases()[0].seconds, 0.75);
  EXPECT_STREQ(trace.phases()[1].name, "score");
  EXPECT_EQ(trace.phases()[1].calls, 1u);
  EXPECT_DOUBLE_EQ(trace.phases()[1].seconds, 2.0);
  const std::string summary = trace.Summary();
  EXPECT_NE(summary.find("probe="), std::string::npos);
  EXPECT_NE(summary.find("score="), std::string::npos);
  EXPECT_NE(summary.find("/2"), std::string::npos);
}

TEST(ScopedSpanTest, ObservesIntoHistogramAndCurrentTrace) {
  Histogram hist("span_test", LatencyHistogramOptions());
  {
    QueryTrace trace("q");
    {
      const ScopedSpan span("phase", &hist);
    }
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_GE(hist.sum(), 0.0);
    ASSERT_EQ(trace.phases().size(), 1u);
    EXPECT_STREQ(trace.phases()[0].name, "phase");
    EXPECT_EQ(trace.phases()[0].calls, 1u);
  }
  // Without a trace installed the span still feeds the histogram.
  {
    const ScopedSpan span("phase", &hist);
  }
  EXPECT_EQ(hist.count(), 2u);
}

TEST(ScopedSpanTest, SpanHistogramUsesTheRegistryNamingScheme) {
  Histogram* h = SpanHistogram("trace_test.naming");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h, MetricsRegistry::Global().GetHistogram(
                   "span.trace_test.naming_seconds"));
  // Latency layout, not the default.
  EXPECT_EQ(h->buckets(), LatencyHistogramOptions().buckets + 1);
}

uint64_t MacroSpanCount() {
  return MetricsRegistry::Global()
      .GetHistogram("span.trace_test.macro_seconds")
      ->count();
}

void FunctionWithSpan() { FM_TRACE_SPAN("trace_test.macro"); }

TEST(ScopedSpanTest, TraceSpanMacroRecordsPerCall) {
  const uint64_t before = MacroSpanCount();
  FunctionWithSpan();
  FunctionWithSpan();
  FunctionWithSpan();
  EXPECT_EQ(MacroSpanCount(), before + 3);
}

TEST(ScopedSpanTest, TwoSpansInOneScopeCompile) {
  // The __COUNTER__ plumbing must give each expansion its own variables.
  Histogram* h = SpanHistogram("trace_test.pair");
  const uint64_t before = h->count();
  {
    FM_TRACE_SPAN("trace_test.pair");
    FM_TRACE_SPAN("trace_test.pair");
  }
  EXPECT_EQ(h->count(), before + 2);
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

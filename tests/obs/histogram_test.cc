#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace fuzzymatch {
namespace obs {
namespace {

// A small layout with human-scale edges: buckets (-inf,1], (1,2], (2,4],
// (4,8], plus the overflow bucket (8, +inf).
HistogramOptions SmallOptions() {
  HistogramOptions options;
  options.min = 1.0;
  options.growth = 2.0;
  options.buckets = 4;
  return options;
}

TEST(HistogramTest, BucketEdgesAreLogSpaced) {
  const Histogram h("h", SmallOptions());
  ASSERT_EQ(h.buckets(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_upper_edge(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper_edge(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper_edge(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper_edge(3), 8.0);
  EXPECT_TRUE(std::isinf(h.bucket_upper_edge(4)));
}

TEST(HistogramTest, BucketIndexRespectsEdges) {
  const Histogram h("h", SmallOptions());
  // Everything at or below the first edge lands in bucket 0, including
  // non-positive and non-finite garbage.
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(-3.0), 0u);
  EXPECT_EQ(h.BucketIndex(0.5), 0u);
  EXPECT_EQ(h.BucketIndex(1.0), 0u);
  EXPECT_EQ(h.BucketIndex(std::nan("")), 0u);
  // Exact edges belong to their own bucket (range is (lo, hi]).
  EXPECT_EQ(h.BucketIndex(1.0001), 1u);
  EXPECT_EQ(h.BucketIndex(2.0), 1u);
  EXPECT_EQ(h.BucketIndex(2.0001), 2u);
  EXPECT_EQ(h.BucketIndex(4.0), 2u);
  EXPECT_EQ(h.BucketIndex(8.0), 3u);
  // Above the last finite edge: overflow.
  EXPECT_EQ(h.BucketIndex(8.0001), 4u);
  EXPECT_EQ(h.BucketIndex(1e12), 4u);
}

TEST(HistogramTest, ExactEdgesStayInTheirBucketAcrossTheLatencyLayout) {
  // The production latency layout exercises the floating-point nudge over
  // many decades: min * growth^i must index to bucket i for every i.
  const Histogram h("lat", LatencyHistogramOptions());
  const HistogramOptions& o = h.options();
  for (size_t i = 0; i < o.buckets; ++i) {
    const double edge = o.min * std::pow(o.growth, static_cast<double>(i));
    EXPECT_EQ(h.BucketIndex(edge), i) << "edge " << edge;
  }
}

TEST(HistogramTest, CountAndSumAccumulate) {
  Histogram h("h", SmallOptions());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 1.0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 2.0
  EXPECT_EQ(h.bucket_count(2), 1u);  // 3.0
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  const Histogram h("h", SmallOptions());
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesInsideTheCoveringBucket) {
  Histogram h("h", SmallOptions());
  // 100 observations, all in bucket (1, 2]. The estimator assumes a
  // uniform spread over the bucket, so the q-quantile is 1 + q.
  for (int i = 0; i < 100; ++i) {
    h.Observe(1.5);
  }
  EXPECT_NEAR(h.Quantile(0.5), 1.5, 1e-9);
  EXPECT_NEAR(h.Quantile(0.25), 1.25, 1e-9);
  EXPECT_NEAR(h.Quantile(1.0), 2.0, 1e-9);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBracketTheData) {
  Histogram h("h", SmallOptions());
  for (int i = 0; i < 50; ++i) h.Observe(0.5);
  for (int i = 0; i < 30; ++i) h.Observe(3.0);
  for (int i = 0; i < 20; ++i) h.Observe(6.0);
  double prev = 0.0;
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // p50 falls on the boundary of the first bucket; p99 within (4, 8].
  EXPECT_LE(h.Quantile(0.5), 1.0);
  EXPECT_GT(h.Quantile(0.99), 4.0);
  EXPECT_LE(h.Quantile(0.99), 8.0);
}

TEST(HistogramTest, OverflowObservationsReportTheLastFiniteEdge) {
  Histogram h("h", SmallOptions());
  h.Observe(100.0);
  h.Observe(1000.0);
  EXPECT_EQ(h.bucket_count(4), 2u);
  // No finite upper bound exists; the estimator saturates at the last
  // finite edge rather than inventing one.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 8.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h("h", SmallOptions());
  h.Observe(1.0);
  h.Observe(100.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (size_t i = 0; i < h.buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u);
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace fuzzymatch

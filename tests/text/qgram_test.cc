#include "text/qgram.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "text/edit_distance.h"

namespace fuzzymatch {
namespace {

TEST(QGramTest, PaperExampleBoeing) {
  // QG_3("boeing") = {boe, oei, ein, ing}.
  auto grams = QGramSet("boeing", 3);
  std::vector<std::string> expected{"boe", "ein", "ing", "oei"};
  EXPECT_EQ(grams, expected);
}

TEST(QGramTest, ShortTokenIsItsOwnSet) {
  EXPECT_EQ(QGramSet("wa", 3), std::vector<std::string>{"wa"});
  EXPECT_EQ(QGramSet("abc", 4), std::vector<std::string>{"abc"});
  EXPECT_EQ(QGramSet("", 3), std::vector<std::string>{});
}

TEST(QGramTest, ExactLengthYieldsSingleGram) {
  EXPECT_EQ(QGramSet("abcd", 4), std::vector<std::string>{"abcd"});
}

TEST(QGramTest, DeduplicatesRepeats) {
  // "aaaa" has a single distinct 2-gram "aa".
  EXPECT_EQ(QGramSet("aaaa", 2), std::vector<std::string>{"aa"});
  const auto grams = QGramSet("abab", 2);
  EXPECT_EQ(grams, (std::vector<std::string>{"ab", "ba"}));
}

TEST(QGramTest, SetIsSortedUnique) {
  const auto grams = QGramSet("mississippi", 3);
  EXPECT_TRUE(std::is_sorted(grams.begin(), grams.end()));
  EXPECT_EQ(std::adjacent_find(grams.begin(), grams.end()), grams.end());
  EXPECT_EQ(grams.size(), 7u);  // 9 positions; "iss" and "ssi" repeat
}

TEST(JaccardTest, KnownValues) {
  EXPECT_EQ(JaccardSorted({}, {}), 1.0);
  EXPECT_EQ(JaccardSorted({"a"}, {}), 0.0);
  EXPECT_EQ(JaccardSorted({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_EQ(JaccardSorted({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_EQ(JaccardSorted({"a"}, {"b"}), 0.0);
}

TEST(JaccardTest, SymmetricAndBounded) {
  const auto a = QGramSet("corporation", 3);
  const auto b = QGramSet("corp", 3);
  EXPECT_EQ(JaccardSorted(a, b), JaccardSorted(b, a));
  const double j = QGramJaccard("corporation", "corporal", 3);
  EXPECT_GT(j, 0.0);
  EXPECT_LT(j, 1.0);
}

// All positioned q-grams of s (with multiplicity), sorted.
std::vector<std::string> QGramMultiset(const std::string& s, int q) {
  std::vector<std::string> out;
  for (size_t i = 0; i + q <= s.size(); ++i) {
    out.push_back(s.substr(i, q));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(QGramTest, JokinenUkkonenLemma) {
  // Lemma 4.2 (Jokinen & Ukkonen): with k raw edits, the strings share at
  // least m - q + 1 - kq positioned q-grams; normalized,
  //   1 - ed(s1,s2) <= common/(m·q) + (1 - 1/q)(1 + 1/m),
  // where common counts q-grams with multiplicity and m = max(|s1|,|s2|).
  // (The paper prints the adjustment with a typo'd sign on 1/m; the
  // algorithms only use the looser d_q = 1 - 1/q.)
  const std::vector<std::string> words = {
      "boeing",  "beoing",      "bon",     "company", "corporation",
      "corp",    "companions",  "seattle", "madison", "wa",
      "98004",   "98014",       "corporal", "aaaa",   "mississippi"};
  for (const int q : {2, 3, 4}) {
    for (const auto& s1 : words) {
      for (const auto& s2 : words) {
        if (s1.size() < static_cast<size_t>(q) ||
            s2.size() < static_cast<size_t>(q)) {
          continue;  // lemma applies to full q-gram sets
        }
        const auto g1 = QGramMultiset(s1, q);
        const auto g2 = QGramMultiset(s2, q);
        std::vector<std::string> shared;
        std::set_intersection(g1.begin(), g1.end(), g2.begin(), g2.end(),
                              std::back_inserter(shared));
        const double m = static_cast<double>(std::max(s1.size(), s2.size()));
        const double d = (1.0 - 1.0 / q) * (1.0 + 1.0 / m);
        const double lhs = 1.0 - NormalizedEditDistance(s1, s2);
        const double rhs =
            static_cast<double>(shared.size()) / (m * q) + d;
        EXPECT_LE(lhs, rhs + 1e-9) << s1 << " vs " << s2 << " q=" << q;
      }
    }
  }
}

}  // namespace
}  // namespace fuzzymatch

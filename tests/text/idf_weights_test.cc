#include "text/idf_weights.h"

#include <gtest/gtest.h>

#include <cmath>

#include "text/tokenizer.h"

namespace fuzzymatch {
namespace {

TokenizedTuple Tuple(std::vector<std::vector<std::string>> cols) {
  return cols;
}

TEST(IdfWeightsTest, FrequentTokensWeighLess) {
  IdfWeights::Builder builder;
  // 'corporation' appears in 3 of 4 tuples, 'united' in 1 of 4.
  builder.AddTuple(Tuple({{"united", "corporation"}}));
  builder.AddTuple(Tuple({{"acme", "corporation"}}));
  builder.AddTuple(Tuple({{"zenith", "corporation"}}));
  builder.AddTuple(Tuple({{"solo"}}));
  const IdfWeights w = builder.Finish();
  EXPECT_EQ(w.num_tuples(), 4u);
  EXPECT_NEAR(w.Weight("corporation", 0), std::log(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(w.Weight("united", 0), std::log(4.0), 1e-12);
  EXPECT_LT(w.Weight("corporation", 0), w.Weight("united", 0));
}

TEST(IdfWeightsTest, UnseenTokenGetsColumnAverage) {
  IdfWeights::Builder builder;
  builder.AddTuple(Tuple({{"a"}, {"x"}}));
  builder.AddTuple(Tuple({{"b"}, {"x"}}));
  const IdfWeights w = builder.Finish();
  // Column 0: two tokens with idf log(2) each -> average log(2).
  EXPECT_NEAR(w.Weight("zzz", 0), std::log(2.0), 1e-12);
  // Column 1: single token with idf log(1)=0 -> average 0.
  EXPECT_NEAR(w.Weight("zzz", 1), 0.0, 1e-12);
  EXPECT_NEAR(w.AverageWeight(0), std::log(2.0), 1e-12);
}

TEST(IdfWeightsTest, ColumnPropertySeparatesSameString) {
  IdfWeights::Builder builder;
  // 'madison' frequent in the city column, rare in the name column.
  builder.AddTuple(Tuple({{"madison"}, {"madison"}}));
  builder.AddTuple(Tuple({{"smith"}, {"madison"}}));
  builder.AddTuple(Tuple({{"jones"}, {"madison"}}));
  const IdfWeights w = builder.Finish();
  EXPECT_GT(w.Weight("madison", 0), w.Weight("madison", 1));
  EXPECT_EQ(w.Frequency("madison", 0), 1u);
  EXPECT_EQ(w.Frequency("madison", 1), 3u);
}

TEST(IdfWeightsTest, DuplicateTokensInOneTupleCountOnce) {
  IdfWeights::Builder builder;
  builder.AddTuple(Tuple({{"new", "york", "new", "york"}}));
  builder.AddTuple(Tuple({{"boston"}}));
  const IdfWeights w = builder.Finish();
  EXPECT_EQ(w.Frequency("new", 0), 1u) << "freq counts tuples, not tokens";
}

TEST(IdfWeightsTest, TupleWeightSumsMultisetTokens) {
  IdfWeights::Builder builder;
  builder.AddTuple(Tuple({{"a", "b"}}));
  builder.AddTuple(Tuple({{"a"}}));
  const IdfWeights w = builder.Finish();
  const double wa = w.Weight("a", 0);
  const double wb = w.Weight("b", 0);
  // A query tuple with 'a' twice counts it twice.
  EXPECT_NEAR(w.TupleWeight(Tuple({{"a", "a", "b"}})), 2 * wa + wb, 1e-12);
}

TEST(IdfWeightsTest, UnseenColumnFallsBackToGlobalAverage) {
  IdfWeights::Builder builder;
  builder.AddTuple(Tuple({{"a"}}));
  builder.AddTuple(Tuple({{"b"}}));
  const IdfWeights w = builder.Finish();
  EXPECT_GT(w.Weight("anything", 7), 0.0);
  EXPECT_NEAR(w.Weight("anything", 7), std::log(2.0), 1e-12);
}

TEST(IdfWeightsTest, EmptyBuilderIsUsable) {
  IdfWeights::Builder builder;
  const IdfWeights w = builder.Finish();
  EXPECT_EQ(w.num_tuples(), 0u);
  EXPECT_GE(w.Weight("x", 0), 0.0);
  EXPECT_EQ(w.TupleWeight({}), 0.0);
}

TEST(IdfWeightsTest, WeightsNeverNegative) {
  // A token in every tuple gets idf log(1) = 0, never below.
  IdfWeights::Builder builder;
  for (int i = 0; i < 5; ++i) {
    builder.AddTuple(Tuple({{"everywhere"}}));
  }
  const IdfWeights w = builder.Finish();
  EXPECT_EQ(w.Weight("everywhere", 0), 0.0);
}

TEST(IdfWeightsTest, Md5CacheGivesSameWeights) {
  IdfWeights::Builder exact_builder(
      MakeFrequencyCache(FrequencyCacheKind::kExact));
  IdfWeights::Builder md5_builder(
      MakeFrequencyCache(FrequencyCacheKind::kMd5));
  const std::vector<TokenizedTuple> tuples = {
      Tuple({{"boeing", "company"}, {"seattle"}}),
      Tuple({{"bon", "corporation"}, {"seattle"}}),
      Tuple({{"companions"}, {"seattle"}}),
  };
  for (const auto& t : tuples) {
    exact_builder.AddTuple(t);
    md5_builder.AddTuple(t);
  }
  const IdfWeights exact = exact_builder.Finish();
  const IdfWeights md5 = md5_builder.Finish();
  for (const char* tok :
       {"boeing", "company", "corporation", "seattle", "unseen"}) {
    EXPECT_NEAR(exact.Weight(tok, 0), md5.Weight(tok, 0), 1e-12) << tok;
  }
}

}  // namespace
}  // namespace fuzzymatch

#include "text/token_frequency.h"

#include <gtest/gtest.h>

#include <string>

#include "common/string_util.h"

namespace fuzzymatch {
namespace {

class FrequencyCacheTest
    : public ::testing::TestWithParam<FrequencyCacheKind> {
 protected:
  std::unique_ptr<TokenFrequencyCache> MakeCache() {
    return MakeFrequencyCache(GetParam(), /*bounded_buckets=*/1u << 16);
  }
};

TEST_P(FrequencyCacheTest, CountsPerColumn) {
  auto cache = MakeCache();
  cache->Add("seattle", 1);
  cache->Add("seattle", 1);
  cache->Add("seattle", 1);
  cache->Add("seattle", 0);  // same string, different column
  EXPECT_EQ(cache->Frequency("seattle", 1), 3u);
  EXPECT_EQ(cache->Frequency("seattle", 0), 1u);
  EXPECT_EQ(cache->Frequency("seattle", 2), 0u);
  EXPECT_EQ(cache->Frequency("portland", 1), 0u);
}

TEST_P(FrequencyCacheTest, ManyTokensExact) {
  auto cache = MakeCache();
  for (int i = 0; i < 2000; ++i) {
    const std::string token = StringPrintf("token%04d", i);
    for (int rep = 0; rep <= i % 7; ++rep) {
      cache->Add(token, 0);
    }
  }
  for (int i = 0; i < 2000; ++i) {
    const uint32_t freq = cache->Frequency(StringPrintf("token%04d", i), 0);
    const uint32_t expected = static_cast<uint32_t>(i % 7 + 1);
    if (GetParam() == FrequencyCacheKind::kBounded) {
      // Bucket collisions can only inflate counts, never lose them.
      EXPECT_GE(freq, expected);
    } else {
      EXPECT_EQ(freq, expected);
    }
  }
}

TEST_P(FrequencyCacheTest, ApproxBytesGrowsWithContent) {
  auto cache = MakeCache();
  cache->Add("alpha", 0);
  const size_t small = cache->ApproxBytes();
  for (int i = 0; i < 1000; ++i) {
    cache->Add(StringPrintf("tok%d", i), 0);
  }
  EXPECT_GE(cache->ApproxBytes(), small);
  EXPECT_GT(cache->ApproxBytes(), 0u);
}

TEST_P(FrequencyCacheTest, ForEachEntryCoversAllColumns) {
  auto cache = MakeCache();
  cache->Add("a", 0);
  cache->Add("b", 0);
  cache->Add("c", 2);
  uint64_t total_freq = 0;
  bool saw_col2 = false;
  cache->ForEachEntry([&](uint32_t col, uint32_t freq) {
    total_freq += freq;
    saw_col2 |= (col == 2);
  });
  EXPECT_EQ(total_freq, 3u);
  EXPECT_TRUE(saw_col2);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FrequencyCacheTest,
                         ::testing::Values(FrequencyCacheKind::kExact,
                                           FrequencyCacheKind::kMd5,
                                           FrequencyCacheKind::kBounded),
                         [](const auto& info) {
                           switch (info.param) {
                             case FrequencyCacheKind::kExact:
                               return "Exact";
                             case FrequencyCacheKind::kMd5:
                               return "Md5";
                             case FrequencyCacheKind::kBounded:
                               return "Bounded";
                           }
                           return "Unknown";
                         });

TEST(ExactCacheTest, EntryCount) {
  auto cache = MakeFrequencyCache(FrequencyCacheKind::kExact);
  cache->Add("a", 0);
  cache->Add("a", 0);
  cache->Add("b", 1);
  EXPECT_EQ(cache->EntryCount(), 2u);
}

TEST(Md5CacheTest, SmallerFootprintThanExactForLongTokens) {
  auto exact = MakeFrequencyCache(FrequencyCacheKind::kExact);
  auto md5 = MakeFrequencyCache(FrequencyCacheKind::kMd5);
  for (int i = 0; i < 1000; ++i) {
    const std::string token =
        StringPrintf("a-rather-long-token-name-%06d-padding-padding", i);
    exact->Add(token, 0);
    md5->Add(token, 0);
  }
  EXPECT_LT(md5->ApproxBytes(), exact->ApproxBytes())
      << "the 24-byte digest entries should beat long strings";
}

TEST(BoundedCacheTest, TinyBucketCountCollides) {
  auto cache = MakeFrequencyCache(FrequencyCacheKind::kBounded,
                                  /*bounded_buckets=*/2);
  for (int i = 0; i < 100; ++i) {
    cache->Add(StringPrintf("tok%d", i), 0);
  }
  // With 2 buckets the total is preserved but individual counts inflate.
  uint64_t total = 0;
  cache->ForEachEntry([&](uint32_t, uint32_t freq) { total += freq; });
  EXPECT_EQ(total, 100u);
  EXPECT_LE(cache->EntryCount(), 2u);
  EXPECT_GT(cache->Frequency("tok0", 0), 1u) << "collisions must inflate";
}

TEST(BoundedCacheTest, LargeBucketCountApproximatesExact) {
  auto cache = MakeFrequencyCache(FrequencyCacheKind::kBounded,
                                  /*bounded_buckets=*/1u << 20);
  for (int i = 0; i < 100; ++i) {
    cache->Add(StringPrintf("tok%d", i), 0);
  }
  int exact_count = 0;
  for (int i = 0; i < 100; ++i) {
    exact_count += (cache->Frequency(StringPrintf("tok%d", i), 0) == 1);
  }
  EXPECT_GE(exact_count, 98) << "1M buckets over 100 tokens rarely collide";
}

}  // namespace
}  // namespace fuzzymatch

#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace fuzzymatch {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("boeing", "beoing"), 2u);  // transpose = 2
}

TEST(LevenshteinTest, PaperExampleCompanyCorporation) {
  // Section 3: ed('company', 'corporation') = 7/11.
  EXPECT_EQ(LevenshteinDistance("company", "corporation"), 7u);
  EXPECT_NEAR(NormalizedEditDistance("company", "corporation"), 7.0 / 11.0,
              1e-12);
}

TEST(LevenshteinTest, PaperExampleBeoingBoeing) {
  // Section 3.1: 'beoing' -> 'boeing' at normalized distance 0.33.
  EXPECT_NEAR(NormalizedEditDistance("beoing", "boeing"), 2.0 / 6.0, 1e-12);
}

TEST(LevenshteinTest, Symmetry) {
  const char* words[] = {"boeing", "bon", "company", "corporation", "", "a"};
  for (const char* a : words) {
    for (const char* b : words) {
      EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
    }
  }
}

TEST(LevenshteinTest, TriangleInequalityProperty) {
  Rng rng(31);
  auto random_word = [&rng]() {
    std::string w(1 + rng.Uniform(10), 'x');
    for (auto& c : w) {
      c = static_cast<char>('a' + rng.Uniform(4));  // small alphabet
    }
    return w;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = random_word(), b = random_word(),
                      c = random_word();
    EXPECT_LE(LevenshteinDistance(a, c),
              LevenshteinDistance(a, b) + LevenshteinDistance(b, c))
        << a << " " << b << " " << c;
  }
}

TEST(NormalizedEditDistanceTest, RangeAndIdentity) {
  EXPECT_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_EQ(NormalizedEditDistance("same", "same"), 0.0);
  EXPECT_EQ(NormalizedEditDistance("abc", "xyz"), 1.0);
  EXPECT_EQ(NormalizedEditDistance("abc", ""), 1.0);
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a(rng.Uniform(12), 'a'), b(rng.Uniform(12), 'b');
    for (auto& ch : a) ch = static_cast<char>('a' + rng.Uniform(26));
    for (auto& ch : b) ch = static_cast<char>('a' + rng.Uniform(26));
    const double d = NormalizedEditDistance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(BoundedLevenshteinTest, AgreesWithExactWithinBound) {
  Rng rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    std::string a(rng.Uniform(15), 'x'), b(rng.Uniform(15), 'x');
    for (auto& c : a) c = static_cast<char>('a' + rng.Uniform(5));
    for (auto& c : b) c = static_cast<char>('a' + rng.Uniform(5));
    const size_t exact = LevenshteinDistance(a, b);
    for (size_t bound = 0; bound <= 15; ++bound) {
      const size_t got = BoundedLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(got, exact) << a << "/" << b << " bound " << bound;
      } else {
        EXPECT_GT(got, bound) << a << "/" << b << " bound " << bound;
      }
    }
  }
}

TEST(BoundedLevenshteinTest, LengthGapShortCircuits) {
  EXPECT_GT(BoundedLevenshtein("ab", "abcdefgh", 3), 3u);
  EXPECT_EQ(BoundedLevenshtein("ab", "abcd", 2), 2u);
}

TEST(LevenshteinTest, LongStringsStressRollingRows) {
  const std::string a(300, 'a');
  std::string b = a;
  b[10] = 'x';
  b[200] = 'y';
  EXPECT_EQ(LevenshteinDistance(a, b), 2u);
  EXPECT_EQ(LevenshteinDistance(a, a + "tail"), 4u);
}

}  // namespace
}  // namespace fuzzymatch

#include "text/minhash.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "text/qgram.h"

namespace fuzzymatch {
namespace {

TEST(MinHashTest, SignatureSizeAndMembership) {
  const MinHasher hasher(3, 4, /*seed=*/1);
  const auto sig = hasher.Signature("boeing");
  ASSERT_EQ(sig.size(), 4u);
  const auto grams = QGramSet("boeing", 3);
  for (const auto& g : sig) {
    EXPECT_TRUE(std::binary_search(grams.begin(), grams.end(), g))
        << g << " is not a 3-gram of boeing";
  }
}

TEST(MinHashTest, ShortTokenSignatureIsToken) {
  const MinHasher hasher(3, 4, 1);
  EXPECT_EQ(hasher.Signature("wa"), std::vector<std::string>{"wa"});
  EXPECT_EQ(hasher.Signature("abc"), std::vector<std::string>{"abc"});
  EXPECT_TRUE(hasher.Signature("").empty());
}

TEST(MinHashTest, DeterministicPerSeed) {
  const MinHasher a(4, 3, 99), b(4, 3, 99), c(4, 3, 100);
  EXPECT_EQ(a.Signature("corporation"), b.Signature("corporation"));
  // Different seed families should (almost surely) differ somewhere.
  bool any_diff = false;
  for (const char* w : {"corporation", "mississippi", "companions",
                        "enterprises", "technologies"}) {
    any_diff |= (a.Signature(w) != c.Signature(w));
  }
  EXPECT_TRUE(any_diff);
}

TEST(MinHashTest, IdenticalTokensMatchAllCoordinates) {
  const MinHasher hasher(3, 5, 7);
  const auto s1 = hasher.Signature("corporation");
  const auto s2 = hasher.Signature("corporation");
  EXPECT_EQ(MinHasher::SignatureSimilarity(s1, s2), 1.0);
}

TEST(MinHashTest, DisjointTokensShareNothing) {
  const MinHasher hasher(3, 5, 7);
  const auto s1 = hasher.Signature("aaaaaa");
  const auto s2 = hasher.Signature("zzzzzz");
  EXPECT_EQ(MinHasher::SignatureSimilarity(s1, s2), 0.0);
}

TEST(MinHashTest, SimilarityHandlesLengthMismatch) {
  // Long-token signature (H grams) vs short-token signature ([token]).
  const MinHasher hasher(3, 4, 7);
  const auto long_sig = hasher.Signature("boeing");
  const auto short_sig = hasher.Signature("wa");
  const double sim = MinHasher::SignatureSimilarity(long_sig, short_sig);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  EXPECT_EQ(MinHasher::SignatureSimilarity({}, {}), 0.0);
}

TEST(MinHashTest, EstimatesJaccardUnbiasedly) {
  // Property from [4, 6]: E[fraction of matching coordinates] equals the
  // Jaccard coefficient of the q-gram sets. With H=200 independent
  // coordinates the estimate should be within a few percentage points.
  const int q = 3;
  const MinHasher hasher(q, 200, 1234);
  const std::pair<std::string, std::string> pairs[] = {
      {"boeing", "beoing"},
      {"corporation", "corporal"},
      {"companions", "company"},
      {"seattle", "seattel"},
  };
  for (const auto& [t1, t2] : pairs) {
    const double jaccard = QGramJaccard(t1, t2, q);
    const double est = MinHasher::SignatureSimilarity(hasher.Signature(t1),
                                                      hasher.Signature(t2));
    EXPECT_NEAR(est, jaccard, 0.12) << t1 << " vs " << t2;
  }
}

TEST(MinHashTest, HashCountZeroGivesEmptySignatureForLongTokens) {
  const MinHasher hasher(3, 0, 1);
  EXPECT_TRUE(hasher.Signature("boeing").empty());
  // Short tokens still collapse to themselves.
  EXPECT_EQ(hasher.Signature("wa"), std::vector<std::string>{"wa"});
}

TEST(MinHashTest, TieBreakIsDeterministic) {
  // Repeated calls over a token whose grams collide in hash order must be
  // stable (lexicographic tie-break).
  const MinHasher hasher(2, 8, 3);
  const auto s1 = hasher.Signature("aaaaaaa");  // single distinct gram
  const auto s2 = hasher.Signature("aaaaaaa");
  EXPECT_EQ(s1, s2);
  for (const auto& g : s1) {
    EXPECT_EQ(g, "aa");
  }
}

}  // namespace
}  // namespace fuzzymatch

#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

namespace fuzzymatch {
namespace {

TEST(TokenizerTest, SplitsOnWhitespaceAndLowercases) {
  const Tokenizer tok;
  EXPECT_EQ(tok.TokenizeField("Boeing Company"),
            (std::vector<std::string>{"boeing", "company"}));
  EXPECT_EQ(tok.TokenizeField("  multiple   spaces\tand\ttabs "),
            (std::vector<std::string>{"multiple", "spaces", "and", "tabs"}));
  EXPECT_EQ(tok.TokenizeField(""), std::vector<std::string>{});
  EXPECT_EQ(tok.TokenizeField("   "), std::vector<std::string>{});
}

TEST(TokenizerTest, PreservesOrderAndDuplicates) {
  const Tokenizer tok;
  // tok(v) is a multiset: repeated tokens stay.
  EXPECT_EQ(tok.TokenizeField("new york new york"),
            (std::vector<std::string>{"new", "york", "new", "york"}));
}

TEST(TokenizerTest, CustomDelimiters) {
  const Tokenizer tok(" ,-");
  EXPECT_EQ(tok.TokenizeField("a,b-c d"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(TokenizerTest, PunctuationStaysInTokensByDefault) {
  // The paper tokenizes on white space only: 'co.' keeps its dot.
  const Tokenizer tok;
  EXPECT_EQ(tok.TokenizeField("Beoing Co."),
            (std::vector<std::string>{"beoing", "co."}));
}

TEST(TokenizerTest, TupleTokenizationIsColumnAligned) {
  const Tokenizer tok;
  const Row row{std::string("Boeing Company"), std::string("Seattle"),
                std::nullopt, std::string("98004")};
  const TokenizedTuple t = tok.TokenizeTuple(row);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], (std::vector<std::string>{"boeing", "company"}));
  EXPECT_EQ(t[1], (std::vector<std::string>{"seattle"}));
  EXPECT_TRUE(t[2].empty()) << "NULL column yields no tokens";
  EXPECT_EQ(t[3], (std::vector<std::string>{"98004"}));
}

TEST(TokenizerTest, ColumnPropertyKeepsSameStringsApart) {
  // 'madison' in name vs city: distinguished by position, not content.
  const Tokenizer tok;
  const TokenizedTuple t = tok.TokenizeTuple(
      Row{std::string("madison"), std::string("madison")});
  EXPECT_EQ(t[0], t[1]);
  EXPECT_EQ(t.size(), 2u);  // distinct columns carry the property
}

TEST(TokenizerTest, CountsAndLengths) {
  const Tokenizer tok;
  const TokenizedTuple t = tok.TokenizeTuple(
      Row{std::string("boeing company"), std::string("seattle")});
  EXPECT_EQ(TokenCount(t), 3u);
  EXPECT_EQ(TokenCharLength(t), 6u + 7u + 7u);
  EXPECT_EQ(TokenCount(TokenizedTuple{}), 0u);
  EXPECT_EQ(TokenCharLength(TokenizedTuple{}), 0u);
}

}  // namespace
}  // namespace fuzzymatch

#include "sim/ed_tuple.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

#include "text/tokenizer.h"

namespace fuzzymatch {
namespace {

TokenizedTuple Tok(const Row& row) { return Tokenizer().TokenizeTuple(row); }

TokenizedTuple R1() {
  return Tok(Row{std::string("Boeing Company"), std::string("Seattle"),
                 std::string("WA"), std::string("98004")});
}
TokenizedTuple R2() {
  return Tok(Row{std::string("Bon Corporation"), std::string("Seattle"),
                 std::string("WA"), std::string("98014")});
}
TokenizedTuple R3() {
  return Tok(Row{std::string("Companions"), std::string("Seattle"),
                 std::string("WA"), std::string("98024")});
}

TEST(EdTupleTest, IdenticalTuples) {
  EXPECT_DOUBLE_EQ(EdTupleSimilarity(R1(), R1()), 1.0);
  EXPECT_DOUBLE_EQ(EdTupleDistance(R1(), R1()), 0.0);
}

TEST(EdTupleTest, EmptyTuples) {
  EXPECT_DOUBLE_EQ(EdTupleDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(EdTupleSimilarity({}, {}), 1.0);
  // One-sided emptiness is maximal distance.
  EXPECT_DOUBLE_EQ(EdTupleDistance({}, R1()), 1.0);
}

TEST(EdTupleTest, PaperI3MisleadsEditDistanceTowardR2) {
  // Section 1: ed considers I3 = [Boeing Corporation, ...] closest to R2,
  // because 'corporation'->'company' costs more edits than
  // 'boeing'->'bon' plus the zip digit.
  const auto i3 = Tok(Row{std::string("Boeing Corporation"),
                          std::string("Seattle"), std::string("WA"),
                          std::string("98004")});
  EXPECT_GT(EdTupleSimilarity(i3, R2()), EdTupleSimilarity(i3, R1()));
}

TEST(EdTupleTest, PaperI4MisleadsEditDistanceTowardR3) {
  // Section 1: ed considers I4 = [Company Beoing, ..., NULL, 98014] closer
  // to R3 than to its target R1 (no token or transposition awareness).
  const auto i4 = Tok(Row{std::string("Company Beoing"),
                          std::string("Seattle"), std::nullopt,
                          std::string("98014")});
  EXPECT_GT(EdTupleSimilarity(i4, R3()), EdTupleSimilarity(i4, R1()));
}

TEST(EdTupleTest, BoundedInUnitInterval) {
  const auto a = Tok(Row{std::string("x"), std::nullopt});
  const auto b = Tok(Row{std::string("completely unrelated text"),
                         std::string("more text")});
  const double d = EdTupleDistance(a, b);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
  EXPECT_DOUBLE_EQ(EdTupleSimilarity(a, b), 1.0 - d);
}

TEST(EdTupleTest, PerColumnAlignment) {
  // Differences are summed per aligned column, not across columns.
  const auto u = Tok(Row{std::string("abc"), std::string("def")});
  const auto v = Tok(Row{std::string("abc"), std::string("dxf")});
  // 1 edit over max length 6.
  EXPECT_NEAR(EdTupleDistance(u, v), 1.0 / 6.0, 1e-12);
}

TEST(EdTupleTest, ArityMismatchTreatsMissingColumnsAsEmpty) {
  const TokenizedTuple u = {{"abc"}};
  const TokenizedTuple v = {{"abc"}, {"extra"}};
  EXPECT_NEAR(EdTupleDistance(u, v), 5.0 / 8.0, 1e-12);
}

TEST(EdTupleTest, LengthWeightingFavorsLongTokens) {
  // The implicit weight assignment of Section 3.2: fixing a long token
  // counts more than fixing a short one.
  const auto u = Tok(Row{std::string("abcdefghij xy")});
  const auto long_fixed = Tok(Row{std::string("abcdefghij ZZ")});
  const auto short_fixed = Tok(Row{std::string("AAAAAfghij xy")});
  // Corrupting the short token (2 chars) changes similarity less than
  // corrupting the long token by 5 chars.
  EXPECT_GT(EdTupleSimilarity(u, long_fixed),
            EdTupleSimilarity(u, short_fixed));
}

}  // namespace
}  // namespace fuzzymatch

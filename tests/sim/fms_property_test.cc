// Parameterized property sweeps over the similarity layer: invariants of
// fms that must hold for every q-gram size, insertion factor, and weight
// scaling, checked against randomized tuples.

#include <gtest/gtest.h>

#include "common/random.h"
#include "gen/customer_gen.h"
#include "gen/error_model.h"
#include "sim/fms.h"
#include "storage/schema.h"
#include "text/minhash.h"
#include "text/qgram.h"
#include "text/tokenizer.h"

namespace fuzzymatch {
namespace {

class FmsSweepTest : public ::testing::TestWithParam<double /*cins*/> {};

TEST_P(FmsSweepTest, CoreInvariantsOnRandomTuples) {
  const double cins = GetParam();
  // Weights from a small synthetic relation.
  CustomerGenOptions gen_options;
  gen_options.num_tuples = 300;
  CustomerGenerator gen(gen_options);
  const Tokenizer tok;
  IdfWeights::Builder builder;
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(gen.NextRow());
    builder.AddTuple(tok.TokenizeTuple(rows.back()));
  }
  const IdfWeights weights = builder.Finish();
  FmsOptions options;
  options.cins = cins;
  const FmsSimilarity fms(&weights, options);

  ErrorModelOptions model;
  model.column_error_prob = {0.7, 0.5, 0.5, 0.5};
  const ErrorInjector injector(model);
  Rng rng(515);

  for (int trial = 0; trial < 60; ++trial) {
    const Row& clean = rows[rng.Uniform(rows.size())];
    const Row dirty = injector.Inject(clean, rng);
    const auto u = tok.TokenizeTuple(dirty);
    const auto v = tok.TokenizeTuple(clean);
    const double sim = fms.Similarity(u, v);
    // Range.
    ASSERT_GE(sim, 0.0);
    ASSERT_LE(sim, 1.0);
    // Identity.
    EXPECT_DOUBLE_EQ(fms.Similarity(u, u), 1.0);
    // tc upper bound: deleting every input token costs exactly w(u), so
    // the minimum transformation never exceeds w(u) + cins * w(v).
    const double tc = fms.TransformationCost(u, v);
    EXPECT_LE(tc,
              fms.TupleWeight(u) + cins * fms.TupleWeight(v) + 1e-9);
    // The dirty tuple should resemble its source more than a random
    // stranger on average; spot-check it is at least not negative.
    EXPECT_GE(sim, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(CinsSweep, FmsSweepTest,
                         ::testing::Values(0.0, 0.25, 0.5, 1.0),
                         [](const auto& info) {
                           return "cins" + std::to_string(static_cast<int>(
                                               info.param * 100));
                         });

TEST(FmsScaleInvarianceTest, UniformColumnWeightScalingIsANoop) {
  // Multiplying every column weight by the same constant scales tc(u,v)
  // and w(u) identically, so fms is unchanged.
  IdfWeights::Builder builder;
  builder.AddTuple({{"boeing", "company"}, {"seattle"}});
  builder.AddTuple({{"bon", "corporation"}, {"seattle"}});
  builder.AddTuple({{"companions"}, {"tacoma"}});
  const IdfWeights weights = builder.Finish();

  FmsOptions unit;
  FmsOptions scaled;
  scaled.column_weights = {3.0, 3.0};
  const FmsSimilarity fms_unit(&weights, unit);
  const FmsSimilarity fms_scaled(&weights, scaled);

  const Tokenizer tok;
  const auto u = tok.TokenizeTuple(
      Row{std::string("beoing company"), std::string("seattle")});
  const auto v = tok.TokenizeTuple(
      Row{std::string("boeing company"), std::string("seattle")});
  EXPECT_NEAR(fms_unit.Similarity(u, v), fms_scaled.Similarity(u, v),
              1e-12);
  EXPECT_NEAR(fms_scaled.TransformationCost(u, v),
              3.0 * fms_unit.TransformationCost(u, v), 1e-12);
}

class QGramSweepTest : public ::testing::TestWithParam<int /*q*/> {};

TEST_P(QGramSweepTest, SignatureCoordinatesAreValidGrams) {
  const int q = GetParam();
  const MinHasher hasher(q, 4, 99);
  Rng rng(7 + q);
  for (int trial = 0; trial < 100; ++trial) {
    std::string token(1 + rng.Uniform(15), 'a');
    for (auto& c : token) {
      c = static_cast<char>('a' + rng.Uniform(8));
    }
    const auto sig = hasher.Signature(token);
    const auto grams = QGramSet(token, q);
    if (token.size() <= static_cast<size_t>(q)) {
      ASSERT_EQ(sig.size(), 1u);
      EXPECT_EQ(sig[0], token);
      continue;
    }
    ASSERT_EQ(sig.size(), 4u);
    for (const auto& g : sig) {
      EXPECT_EQ(g.size(), static_cast<size_t>(q));
      EXPECT_TRUE(std::binary_search(grams.begin(), grams.end(), g))
          << g << " not a " << q << "-gram of " << token;
    }
    // Identical tokens always produce identical signatures.
    EXPECT_EQ(hasher.Signature(token), sig);
  }
}

INSTANTIATE_TEST_SUITE_P(QSweep, QGramSweepTest,
                         ::testing::Values(2, 3, 4, 5),
                         [](const auto& info) {
                           std::string name = "q";
                           name += std::to_string(info.param);
                           return name;
                         });

}  // namespace
}  // namespace fuzzymatch

#include "sim/fms_apx.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

#include "common/random.h"
#include "gen/error_model.h"
#include "sim/fms.h"
#include "text/tokenizer.h"

namespace fuzzymatch {
namespace {

IdfWeights UnitWeights() { return IdfWeights::Builder().Finish(); }

TokenizedTuple Tok(const Row& row) { return Tokenizer().TokenizeTuple(row); }

TEST(FmsApxTest, IdenticalTuplesScoreOne) {
  const IdfWeights w = UnitWeights();
  const MinHasher hasher(4, 3, 11);
  const FmsApx apx(&w, &hasher);
  const auto t = Tok(Row{std::string("boeing company"),
                         std::string("seattle"), std::string("wa"),
                         std::string("98004")});
  EXPECT_DOUBLE_EQ(apx.Apx(t, t), 1.0);
  EXPECT_DOUBLE_EQ(apx.TApx(t, t), 1.0);
}

TEST(FmsApxTest, IgnoresTokenOrder) {
  // fms_apx treats [boeing company] and [company boeing] as identical.
  const IdfWeights w = UnitWeights();
  const MinHasher hasher(4, 3, 11);
  const FmsApx apx(&w, &hasher);
  const auto a = Tok(Row{std::string("boeing company")});
  const auto b = Tok(Row{std::string("company boeing")});
  EXPECT_DOUBLE_EQ(apx.Apx(a, b), 1.0);
  const FmsSimilarity fms(&w);
  EXPECT_LT(fms.Similarity(a, b), 1.0) << "fms does penalize reordering";
}

TEST(FmsApxTest, TokenFactorBounds) {
  const IdfWeights w = UnitWeights();
  const MinHasher hasher(4, 3, 11);
  const FmsApx apx(&w, &hasher);
  // Factor is capped at 1 and floored at the adjustment term d_q.
  const double dq = 1.0 - 1.0 / 4.0;
  for (const auto& [t, r] : std::vector<std::pair<std::string, std::string>>{
           {"boeing", "boeing"},
           {"boeing", "beoing"},
           {"boeing", "zzzzzzz"},
           {"corporation", "corp"}}) {
    const double f = apx.TokenFactor(t, r);
    EXPECT_LE(f, 1.0) << t << "/" << r;
    EXPECT_GE(f, dq) << t << "/" << r;
  }
  EXPECT_DOUBLE_EQ(apx.TokenFactor("boeing", "boeing"), 1.0);
}

TEST(FmsApxTest, TokenFactorWithTokenHalvesSignatureShare) {
  const IdfWeights w = UnitWeights();
  const MinHasher hasher(4, 3, 11);
  const FmsApx apx(&w, &hasher);
  // For an exact match both formulations cap at 1.
  EXPECT_DOUBLE_EQ(apx.TokenFactorWithToken("boeing", "boeing"), 1.0);
  // For a non-equal pair the token-mixed similarity cannot exceed the
  // plain one (the I[t=r] term is zero).
  for (const auto& [t, r] : std::vector<std::pair<std::string, std::string>>{
           {"boeing", "beoing"}, {"corporation", "corporal"}}) {
    EXPECT_LE(apx.TokenFactorWithToken(t, r), apx.TokenFactor(t, r) + 1e-12);
  }
}

TEST(FmsApxTest, UpperBoundsFmsOnErroredTuples) {
  // Lemma 4.1: E[fms_apx] >= fms. With H = 48 coordinates the estimate is
  // tight enough that violations beyond a small epsilon should be rare.
  const IdfWeights w = UnitWeights();
  const MinHasher hasher(4, 48, 77);
  const FmsApx apx(&w, &hasher);
  const FmsSimilarity fms(&w);
  const Tokenizer tok;
  Rng rng(123);

  const std::vector<Row> references = {
      Row{std::string("boeing company"), std::string("seattle"),
          std::string("wa"), std::string("98004")},
      Row{std::string("grandview consulting group"),
          std::string("spokane valley"), std::string("wa"),
          std::string("99206")},
      Row{std::string("bon corporation"), std::string("seattle"),
          std::string("wa"), std::string("98014")},
  };
  ErrorModelOptions model;
  model.column_error_prob = {0.8, 0.5, 0.5, 0.5};
  const ErrorInjector injector(model);

  int violations = 0;
  int trials = 0;
  for (const Row& ref : references) {
    for (int i = 0; i < 60; ++i) {
      const Row dirty = injector.Inject(ref, rng);
      const auto u = tok.TokenizeTuple(dirty);
      const auto v = tok.TokenizeTuple(ref);
      const double exact = fms.Similarity(u, v);
      const double upper = apx.Apx(u, v);
      ++trials;
      if (upper < exact - 0.05) {
        ++violations;
      }
    }
  }
  EXPECT_LE(violations, trials / 20)
      << violations << "/" << trials << " upper-bound violations";
}

TEST(FmsApxTest, HigherForCloserTuples) {
  const IdfWeights w = UnitWeights();
  const MinHasher hasher(4, 16, 5);
  const FmsApx apx(&w, &hasher);
  const auto u = Tok(Row{std::string("boeing company"),
                         std::string("seattle")});
  const auto close = Tok(Row{std::string("beoing company"),
                             std::string("seattle")});
  const auto far = Tok(Row{std::string("zephyr unrelated"),
                           std::string("tucson")});
  EXPECT_GT(apx.Apx(u, close), apx.Apx(u, far));
  EXPECT_GT(apx.TApx(u, close), apx.TApx(u, far));
}

TEST(FmsApxTest, EmptyInputScoresZero) {
  const IdfWeights w = UnitWeights();
  const MinHasher hasher(4, 3, 11);
  const FmsApx apx(&w, &hasher);
  const auto v = Tok(Row{std::string("boeing")});
  EXPECT_DOUBLE_EQ(apx.Apx({}, v), 0.0);
}

}  // namespace
}  // namespace fuzzymatch

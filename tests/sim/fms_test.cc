#include "sim/fms.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

#include <cmath>

#include "text/idf_weights.h"
#include "text/tokenizer.h"

namespace fuzzymatch {
namespace {

// An IdfWeights built from nothing assigns weight 1.0 to every token —
// the "unit weights" of the paper's worked examples.
IdfWeights UnitWeights() { return IdfWeights::Builder().Finish(); }

// Weights learned from the paper's Table 1 reference relation.
IdfWeights Table1Weights() {
  const Tokenizer tok;
  IdfWeights::Builder builder;
  builder.AddTuple(tok.TokenizeTuple(Row{
      std::string("Boeing Company"), std::string("Seattle"),
      std::string("WA"), std::string("98004")}));
  builder.AddTuple(tok.TokenizeTuple(Row{
      std::string("Bon Corporation"), std::string("Seattle"),
      std::string("WA"), std::string("98014")}));
  builder.AddTuple(tok.TokenizeTuple(Row{
      std::string("Companions"), std::string("Seattle"), std::string("WA"),
      std::string("98024")}));
  return builder.Finish();
}

TokenizedTuple Tok(const Row& row) { return Tokenizer().TokenizeTuple(row); }

TEST(FmsTest, IdenticalTuplesHaveSimilarityOne) {
  const IdfWeights w = Table1Weights();
  const FmsSimilarity fms(&w);
  const auto t = Tok(Row{std::string("Boeing Company"),
                         std::string("Seattle"), std::string("WA"),
                         std::string("98004")});
  EXPECT_DOUBLE_EQ(fms.Similarity(t, t), 1.0);
  EXPECT_DOUBLE_EQ(fms.TransformationCost(t, t), 0.0);
}

TEST(FmsTest, PaperWorkedExampleSection31) {
  // u = [Beoing Corporation, Seattle, WA, 98004],
  // v = [Boeing Company, Seattle, WA, 98004], unit weights:
  // tc = ed(beoing,boeing) + ed(corporation,company) = 1/3 + 7/11 ≈ 0.97,
  // w(u) = 5, fms = 1 − 0.97/5 ≈ 0.806.
  const IdfWeights w = UnitWeights();
  const FmsSimilarity fms(&w);
  const auto u = Tok(Row{std::string("Beoing Corporation"),
                         std::string("Seattle"), std::string("WA"),
                         std::string("98004")});
  const auto v = Tok(Row{std::string("Boeing Company"),
                         std::string("Seattle"), std::string("WA"),
                         std::string("98004")});
  const double expected_tc = 2.0 / 6.0 + 7.0 / 11.0;
  EXPECT_NEAR(fms.TransformationCost(u, v), expected_tc, 1e-12);
  EXPECT_NEAR(fms.Similarity(u, v), 1.0 - expected_tc / 5.0, 1e-12);
  EXPECT_NEAR(fms.Similarity(u, v), 0.806, 0.001);
}

TEST(FmsTest, PrefersCorrectTargetWhereEditDistanceFails) {
  // The paper's motivating case: I3 = [Boeing Corporation, ...] must match
  // R1 = Boeing Company, not R2 = Bon Corporation, because 'boeing' and
  // '98004' outweigh 'corporation'.
  const IdfWeights w = Table1Weights();
  const FmsSimilarity fms(&w);
  const auto i3 = Tok(Row{std::string("Boeing Corporation"),
                          std::string("Seattle"), std::string("WA"),
                          std::string("98004")});
  const auto r1 = Tok(Row{std::string("Boeing Company"),
                          std::string("Seattle"), std::string("WA"),
                          std::string("98004")});
  const auto r2 = Tok(Row{std::string("Bon Corporation"),
                          std::string("Seattle"), std::string("WA"),
                          std::string("98014")});
  EXPECT_GT(fms.Similarity(i3, r1), fms.Similarity(i3, r2));
}

TEST(FmsTest, DeletionCostsFullWeightInsertionCostsCins) {
  const IdfWeights w = UnitWeights();
  FmsOptions options;
  options.cins = 0.5;
  const FmsSimilarity fms(&w, options);
  // u has an extra token: delete it (cost 1).
  EXPECT_NEAR(fms.ColumnTransformationCost({"boeing", "spurious"},
                                           {"boeing"}, 0),
              1.0, 1e-12);
  // v has an extra token: insert it (cost c_ins = 0.5).
  EXPECT_NEAR(fms.ColumnTransformationCost({"boeing"},
                                           {"boeing", "company"}, 0),
              0.5, 1e-12);
}

TEST(FmsTest, AsymmetryMissingTokensArePenalizedLess) {
  const IdfWeights w = UnitWeights();
  const FmsSimilarity fms(&w);
  const auto with_extra = Tok(Row{std::string("boeing company")});
  const auto without = Tok(Row{std::string("boeing")});
  // Dirty-input-missing-a-token (insert at c_ins) is cheaper to transform
  // than dirty-input-with-spurious-token (delete at full weight).
  EXPECT_LT(fms.TransformationCost(without, with_extra),
            fms.TransformationCost(with_extra, without));
  // And fms itself is asymmetric.
  const auto a = Tok(Row{std::string("boeing company corporation")});
  EXPECT_NE(fms.Similarity(a, without), fms.Similarity(without, a));
}

TEST(FmsTest, ReplacementCostScalesWithSourceTokenWeight) {
  // It is cheaper to replace a frequent (low-weight) token than a rare
  // (high-weight) one at the same edit distance.
  IdfWeights::Builder builder;
  builder.AddTuple({{ "common", "rareone" }});
  builder.AddTuple({{ "common" }});
  builder.AddTuple({{ "common" }});
  const IdfWeights w = builder.Finish();
  const FmsSimilarity fms(&w);
  const double cost_common =
      fms.ColumnTransformationCost({"common"}, {"cxmmxn"}, 0);
  const double cost_rare =
      fms.ColumnTransformationCost({"rareone"}, {"rxrexne"}, 0);
  EXPECT_LT(cost_common, cost_rare);
}

TEST(FmsTest, NullAndEmptyColumns) {
  const IdfWeights w = UnitWeights();
  const FmsSimilarity fms(&w);
  const auto u = Tok(Row{std::string("boeing"), std::nullopt});
  const auto v = Tok(Row{std::string("boeing"), std::string("seattle")});
  // Missing input column: one insertion at c_ins * w.
  EXPECT_NEAR(fms.TransformationCost(u, v), 0.5, 1e-12);
  // Both empty: free.
  const auto e1 = Tok(Row{std::nullopt});
  const auto e2 = Tok(Row{std::nullopt});
  EXPECT_DOUBLE_EQ(fms.TransformationCost(e1, e2), 0.0);
  // Input with no tokens at all has similarity 0 by definition.
  EXPECT_DOUBLE_EQ(fms.Similarity(e1, v), 0.0);
}

TEST(FmsTest, SimilarityClampsAtZero) {
  const IdfWeights w = UnitWeights();
  const FmsSimilarity fms(&w);
  // Totally disjoint tuples: tc > w(u), clamped.
  const auto u = Tok(Row{std::string("a")});
  const auto v = Tok(Row{std::string("completely different things here")});
  const double sim = fms.Similarity(u, v);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
}

TEST(FmsTest, TranspositionOperationLowersCost) {
  const IdfWeights w = UnitWeights();
  FmsOptions plain;
  const FmsSimilarity fms_plain(&w, plain);
  FmsOptions with_t;
  with_t.enable_transposition = true;
  const FmsSimilarity fms_t(&w, with_t);

  const auto u = Tok(Row{std::string("company boeing")});
  const auto v = Tok(Row{std::string("boeing company")});
  const double cost_plain = fms_plain.TransformationCost(u, v);
  const double cost_t = fms_t.TransformationCost(u, v);
  // One transposition at avg weight = 1.0 beats delete+insert (1.5) or
  // two replacements.
  EXPECT_NEAR(cost_t, 1.0, 1e-12);
  EXPECT_LT(cost_t, cost_plain);
}

TEST(FmsTest, PaperI4PrefersR1OnlyWithTransposition) {
  // I4 = [Company Beoing, Seattle, NULL, 98014]: with the transposition
  // operation (Section 5.3) the swapped-and-misspelled name still reaches
  // R1 cheaply.
  const IdfWeights w = Table1Weights();
  FmsOptions with_t;
  with_t.enable_transposition = true;
  const FmsSimilarity fms_t(&w, with_t);
  const auto i4 = Tok(Row{std::string("Company Beoing"),
                          std::string("Seattle"), std::nullopt,
                          std::string("98014")});
  const auto r1 = Tok(Row{std::string("Boeing Company"),
                          std::string("Seattle"), std::string("WA"),
                          std::string("98004")});
  const auto r3 = Tok(Row{std::string("Companions"), std::string("Seattle"),
                          std::string("WA"), std::string("98024")});
  EXPECT_GT(fms_t.Similarity(i4, r1), fms_t.Similarity(i4, r3));
}

TEST(FmsTest, TranspositionCostVariants) {
  // heavy: freq 1/5 -> w = log 5; light: freq 2/5 -> w = log 2.5. The DP
  // always has the alternative of deleting + reinserting 'light' at cost
  // 1.5·w(light), so each variant's expected cost is the min of the two.
  IdfWeights::Builder builder;
  builder.AddTuple({{"heavy", "light"}});
  builder.AddTuple({{"light"}});
  builder.AddTuple({{"fill1"}});
  builder.AddTuple({{"fill2"}});
  builder.AddTuple({{"fill3"}});
  const IdfWeights w = builder.Finish();
  const double wh = w.Weight("heavy", 0);
  const double wl = w.Weight("light", 0);
  ASSERT_GT(wh, wl);
  const double reinsert = 1.5 * wl;  // delete light + insert light

  auto cost_with = [&](TranspositionCost kind, double constant = 0.25) {
    FmsOptions options;
    options.enable_transposition = true;
    options.transposition_cost = kind;
    options.transposition_constant = constant;
    const FmsSimilarity fms(&w, options);
    return fms.ColumnTransformationCost({"light", "heavy"},
                                        {"heavy", "light"}, 0);
  };
  EXPECT_NEAR(cost_with(TranspositionCost::kAverage),
              std::min((wh + wl) / 2, reinsert), 1e-12);
  EXPECT_NEAR(cost_with(TranspositionCost::kMin),
              std::min(wl, reinsert), 1e-12);
  EXPECT_NEAR(cost_with(TranspositionCost::kMax),
              std::min(wh, reinsert), 1e-12);
  EXPECT_NEAR(cost_with(TranspositionCost::kConstant, 0.01), 0.01, 1e-12);
  // Ordering property: min <= average <= max.
  EXPECT_LE(cost_with(TranspositionCost::kMin),
            cost_with(TranspositionCost::kAverage) + 1e-12);
  EXPECT_LE(cost_with(TranspositionCost::kAverage),
            cost_with(TranspositionCost::kMax) + 1e-12);
}

TEST(FmsTest, ColumnWeightsScaleContribution) {
  const IdfWeights w = UnitWeights();
  FmsOptions options;
  options.column_weights = {2.0, 1.0};
  const FmsSimilarity fms(&w, options);
  // Token in column 0 weighs twice a column-1 token.
  EXPECT_NEAR(fms.TokenWeight("x", 0), 2.0, 1e-12);
  EXPECT_NEAR(fms.TokenWeight("x", 1), 1.0, 1e-12);
  const auto u = Tok(Row{std::string("a"), std::string("b")});
  EXPECT_NEAR(fms.TupleWeight(u), 3.0, 1e-12);
  // An error in the up-weighted column hurts more.
  const auto v_err0 = Tok(Row{std::string("x"), std::string("b")});
  const auto v_err1 = Tok(Row{std::string("a"), std::string("x")});
  EXPECT_LT(fms.Similarity(u, v_err0), fms.Similarity(u, v_err1));
}

TEST(FmsTest, MonotoneInErrorSeverity) {
  const IdfWeights w = Table1Weights();
  const FmsSimilarity fms(&w);
  const auto clean = Tok(Row{std::string("boeing company"),
                             std::string("seattle"), std::string("wa"),
                             std::string("98004")});
  const auto small_err = Tok(Row{std::string("beoing company"),
                                 std::string("seattle"), std::string("wa"),
                                 std::string("98004")});
  const auto big_err = Tok(Row{std::string("bxoxng cmpxny"),
                               std::string("sxattxe"), std::string("wa"),
                               std::string("98004")});
  EXPECT_GT(fms.Similarity(clean, clean), fms.Similarity(small_err, clean));
  EXPECT_GT(fms.Similarity(small_err, clean),
            fms.Similarity(big_err, clean));
}

}  // namespace
}  // namespace fuzzymatch

// Dirty-page eviction under pool pressure while a B+-tree is splitting:
// a pool far smaller than the working set forces dirty writebacks in the
// middle of multi-page split operations, and everything written must
// still be readable — through the live handle, after FlushAll, and after
// a file-backed reopen. A failpoint variant injects a writeback error
// mid-split and requires the tree to stay intact and the retry to land.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "fault/failpoint.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace fuzzymatch {
namespace {

using fault::Action;
using fault::FailpointSpec;
using fault::Failpoints;

constexpr size_t kPoolFrames = 8;
constexpr int kKeys = 300;

// ~600-byte keys pack only ~a dozen entries per node, so 300 inserts
// force both leaf and internal splits while 8 frames thrash.
std::string WideKey(int i) {
  char head[16];
  std::snprintf(head, sizeof(head), "k%06d", i);
  return std::string(head) + std::string(592, 'p');
}

std::string ValueOf(int i) { return "value-" + std::to_string(i); }

TEST(BufferPoolPressureTest, SplitsSurviveDirtyEvictionAndReopen) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("fm_pool_pressure_" + std::to_string(::getpid()) + ".db"))
          .string();
  std::filesystem::remove(path);
  PageId root;
  {
    auto pager_or = Pager::OpenFile(path);
    ASSERT_TRUE(pager_or.ok());
    auto pager = std::move(*pager_or);
    BufferPool pool(pager.get(), kPoolFrames);
    auto tree_or = BPlusTree::Create(&pool);
    ASSERT_TRUE(tree_or.ok());
    BPlusTree tree = *tree_or;
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(tree.Put(WideKey(i), ValueOf(i)).ok()) << "key " << i;
    }
    // The whole point of the test: the working set did not fit.
    EXPECT_GT(pool.evictions(), 0u);

    // Every key readable through the live handle (faulting pages back in
    // past more evictions).
    for (int i = 0; i < kKeys; ++i) {
      auto value = tree.Get(WideKey(i));
      ASSERT_TRUE(value.ok()) << "key " << i << ": " << value.status();
      EXPECT_EQ(*value, ValueOf(i));
    }
    auto count = tree.Count();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, static_cast<uint64_t>(kKeys));
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(pager->Sync().ok());
    root = tree.root();
  }
  // Cold reopen from the file: the persisted image must be complete.
  {
    auto pager_or = Pager::OpenFile(path);
    ASSERT_TRUE(pager_or.ok());
    auto pager = std::move(*pager_or);
    BufferPool pool(pager.get(), kPoolFrames);
    BPlusTree tree = BPlusTree::Open(&pool, root);
    for (int i = 0; i < kKeys; ++i) {
      auto value = tree.Get(WideKey(i));
      ASSERT_TRUE(value.ok()) << "key " << i << ": " << value.status();
      EXPECT_EQ(*value, ValueOf(i));
    }
  }
  std::filesystem::remove(path);
}

TEST(BufferPoolPressureTest, EvictionErrorMidSplitLeavesTreeIntact) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "failpoints compiled out (-DFM_FAILPOINTS=OFF)";
  }
  Failpoints::Global().Reset();
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), kPoolFrames);
  auto tree_or = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree_or.ok());
  BPlusTree tree = *tree_or;

  // Grow the tree until evictions are happening, then make the next
  // dirty writeback fail and keep inserting until something trips.
  int inserted = 0;
  for (; inserted < kKeys / 2; ++inserted) {
    ASSERT_TRUE(tree.Put(WideKey(inserted), ValueOf(inserted)).ok());
  }
  ASSERT_GT(pool.evictions(), 0u);

  FailpointSpec spec;
  spec.action = Action::kError;
  Failpoints::Global().Arm("bufferpool.evict_dirty", spec);
  int failed_key = -1;
  for (int i = inserted; i < kKeys; ++i) {
    const Status s = tree.Put(WideKey(i), ValueOf(i));
    if (!s.ok()) {
      EXPECT_TRUE(s.IsIOError()) << s;
      failed_key = i;
      break;
    }
    ++inserted;
  }
  ASSERT_GE(failed_key, 0) << "armed eviction failpoint never fired";
  Failpoints::Global().DisarmAll();

  // The failed Put must not have corrupted the tree: every successful
  // key still reads back, and the retry of the failed key succeeds.
  for (int i = 0; i < inserted; ++i) {
    auto value = tree.Get(WideKey(i));
    ASSERT_TRUE(value.ok()) << "key " << i << ": " << value.status();
    EXPECT_EQ(*value, ValueOf(i));
  }
  ASSERT_TRUE(tree.Put(WideKey(failed_key), ValueOf(failed_key)).ok());
  auto retried = tree.Get(WideKey(failed_key));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, ValueOf(failed_key));
  Failpoints::Global().Reset();
}

}  // namespace
}  // namespace fuzzymatch

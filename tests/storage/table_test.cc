#include "storage/table.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable("t", Schema({"name", "city"}));
    ASSERT_TRUE(table.ok());
    table_ = *table;
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(TableTest, InsertAssignsDenseTids) {
  for (int i = 0; i < 10; ++i) {
    auto tid = table_->Insert(Row{std::string("n"), std::string("c")});
    ASSERT_TRUE(tid.ok());
    EXPECT_EQ(*tid, static_cast<Tid>(i));
  }
  EXPECT_EQ(table_->row_count(), 10u);
}

TEST_F(TableTest, GetReturnsInsertedRow) {
  const Row row{std::string("boeing company"), std::string("seattle")};
  auto tid = table_->Insert(row);
  ASSERT_TRUE(tid.ok());
  auto got = table_->Get(*tid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, row);
}

TEST_F(TableTest, GetMissingTidFails) {
  EXPECT_TRUE(table_->Get(42).status().IsNotFound());
}

TEST_F(TableTest, NullFieldsRoundTrip) {
  const Row row{std::nullopt, std::string("seattle")};
  auto tid = table_->Insert(row);
  ASSERT_TRUE(tid.ok());
  EXPECT_EQ(*table_->Get(*tid), row);
}

TEST_F(TableTest, ArityMismatchRejected) {
  EXPECT_TRUE(table_->Insert(Row{std::string("only one")})
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(table_->row_count(), 0u);
}

TEST_F(TableTest, InsertWithLocationAndGetByRid) {
  auto info = table_->InsertWithLocation(
      Row{std::string("a"), std::string("b")});
  ASSERT_TRUE(info.ok());
  auto row = table_->GetByRid(info->rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (Row{std::string("a"), std::string("b")}));
}

TEST_F(TableTest, ScanYieldsAllRowsWithTids) {
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(table_
                    ->Insert(Row{StringPrintf("name%d", i),
                                 StringPrintf("city%d", i)})
                    .ok());
  }
  auto scanner = table_->Scan();
  Tid tid;
  Row row;
  int count = 0;
  for (;;) {
    auto more = scanner.Next(&tid, &row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(*row[0], StringPrintf("name%u", tid));
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST_F(TableTest, UpdateReplacesRow) {
  auto tid = table_->Insert(Row{std::string("old"), std::string("c")});
  ASSERT_TRUE(tid.ok());
  auto rid = table_->Update(*tid, Row{std::string("new"), std::string("c")});
  ASSERT_TRUE(rid.ok());
  auto row = table_->Get(*tid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*(*row)[0], "new");
  // Updating a missing tid fails.
  EXPECT_TRUE(table_->Update(999, Row{std::string("x"), std::string("y")})
                  .status()
                  .IsNotFound());
  // Arity is validated.
  EXPECT_TRUE(table_->Update(*tid, Row{std::string("only one")})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(TableTest, UpdateByRidKeepsTid) {
  auto info = table_->InsertWithLocation(
      Row{std::string("first"), std::string("c")});
  ASSERT_TRUE(info.ok());
  auto new_rid = table_->UpdateByRid(
      info->rid, Row{std::string("second"), std::string("c")});
  ASSERT_TRUE(new_rid.ok());
  // Same tid resolves to the new content through the tid index.
  auto row = table_->Get(info->tid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*(*row)[0], "second");
  EXPECT_EQ(*table_->GetByRid(*new_rid), *row);
}

TEST_F(TableTest, UpdateGrowingRowRelocates) {
  auto info = table_->InsertWithLocation(
      Row{std::string("tiny"), std::string("c")});
  ASSERT_TRUE(info.ok());
  // Fill the page so the grown record cannot stay in place.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        table_->Insert(Row{std::string(120, 'f'), std::string("c")}).ok());
  }
  const std::string big(3000, 'B');
  auto new_rid = table_->UpdateByRid(info->rid, Row{big, std::string("c")});
  ASSERT_TRUE(new_rid.ok());
  auto row = table_->Get(info->tid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*(*row)[0], big);
}

TEST_F(TableTest, DeleteRemovesRow) {
  auto t0 = table_->Insert(Row{std::string("a"), std::string("c")});
  auto t1 = table_->Insert(Row{std::string("b"), std::string("c")});
  ASSERT_TRUE(t0.ok() && t1.ok());
  ASSERT_TRUE(table_->Delete(*t0).ok());
  EXPECT_TRUE(table_->Get(*t0).status().IsNotFound());
  EXPECT_TRUE(table_->Get(*t1).ok());
  EXPECT_EQ(table_->row_count(), 1u);
  EXPECT_TRUE(table_->Delete(*t0).IsNotFound());
  // Scans skip the deleted row.
  auto scanner = table_->Scan();
  Tid tid;
  Row row;
  int seen = 0;
  for (;;) {
    auto more = scanner.Next(&tid, &row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++seen;
    EXPECT_EQ(tid, *t1);
  }
  EXPECT_EQ(seen, 1);
}

TEST_F(TableTest, ManyRowsSpanPages) {
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        table_->Insert(Row{std::string(100, 'x'), std::string("c")}).ok());
  }
  // Random access across page boundaries.
  for (int i = 0; i < n; i += 333) {
    EXPECT_TRUE(table_->Get(static_cast<Tid>(i)).ok());
  }
  EXPECT_EQ(table_->row_count(), static_cast<uint64_t>(n));
}

}  // namespace
}  // namespace fuzzymatch

#include "storage/schema.h"

#include <gtest/gtest.h>

namespace fuzzymatch {
namespace {

TEST(SchemaTest, ColumnsAndIndexes) {
  const Schema s({"name", "city", "state", "zipcode"});
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.column_name(0), "name");
  EXPECT_EQ(s.column_name(3), "zipcode");
  EXPECT_EQ(s.ColumnIndex("city"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  const Schema s({"a", "long column name", ""});
  std::string buf;
  s.EncodeTo(&buf);
  std::string_view in = buf;
  auto decoded = Schema::Decode(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, s);
  EXPECT_TRUE(in.empty());
}

TEST(RowCodecTest, RoundTripsValuesAndNulls) {
  const Row row = {std::string("boeing company"), std::nullopt,
                   std::string(""), std::string("98004")};
  const std::string payload = RowCodec::Encode(row);
  auto decoded = RowCodec::Decode(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(RowCodecTest, EmptyRow) {
  const Row row;
  auto decoded = RowCodec::Decode(RowCodec::Encode(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(RowCodecTest, DistinguishesNullFromEmpty) {
  const Row with_null = {std::nullopt};
  const Row with_empty = {std::string("")};
  EXPECT_NE(RowCodec::Encode(with_null), RowCodec::Encode(with_empty));
  EXPECT_EQ(*RowCodec::Decode(RowCodec::Encode(with_null)), with_null);
  EXPECT_EQ(*RowCodec::Decode(RowCodec::Encode(with_empty)), with_empty);
}

TEST(RowCodecTest, BinaryFieldContent) {
  const Row row = {std::string("\0\x01\xff bin", 7)};
  auto decoded = RowCodec::Decode(RowCodec::Encode(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(RowCodecTest, RejectsCorruptPayloads) {
  const Row row = {std::string("abcdef")};
  std::string payload = RowCodec::Encode(row);
  // Truncated.
  EXPECT_FALSE(RowCodec::Decode(payload.substr(0, 3)).ok());
  // Trailing garbage.
  EXPECT_FALSE(RowCodec::Decode(payload + "x").ok());
  // Empty payload is not even a count.
  EXPECT_FALSE(RowCodec::Decode("").ok());
}

TEST(RowCodecTest, LargeRow) {
  Row row;
  for (int i = 0; i < 100; ++i) {
    row.push_back(std::string(1000, static_cast<char>('a' + i % 26)));
  }
  auto decoded = RowCodec::Decode(RowCodec::Encode(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

}  // namespace
}  // namespace fuzzymatch

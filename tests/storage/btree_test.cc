#include "storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace fuzzymatch {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pager_(Pager::OpenInMemory()), pool_(pager_.get(), 1024) {}

  BPlusTree MakeTree() {
    auto tree = BPlusTree::Create(&pool_);
    EXPECT_TRUE(tree.ok());
    return std::move(*tree);
  }

  std::unique_ptr<Pager> pager_;
  BufferPool pool_;
};

TEST_F(BTreeTest, EmptyTreeBehaviour) {
  BPlusTree tree = MakeTree();
  EXPECT_TRUE(tree.Get("missing").status().IsNotFound());
  EXPECT_TRUE(tree.Delete("missing").IsNotFound());
  EXPECT_EQ(*tree.Count(), 0u);
  EXPECT_EQ(*tree.Height(), 1);
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, InsertGetSmall) {
  BPlusTree tree = MakeTree();
  ASSERT_TRUE(tree.Insert("boeing", "r1").ok());
  ASSERT_TRUE(tree.Insert("bon", "r2").ok());
  ASSERT_TRUE(tree.Insert("companions", "r3").ok());
  EXPECT_EQ(*tree.Get("boeing"), "r1");
  EXPECT_EQ(*tree.Get("bon"), "r2");
  EXPECT_EQ(*tree.Get("companions"), "r3");
  EXPECT_TRUE(tree.Get("boein").status().IsNotFound());
  EXPECT_EQ(*tree.Count(), 3u);
}

TEST_F(BTreeTest, DuplicateInsertRejectedPutOverwrites) {
  BPlusTree tree = MakeTree();
  ASSERT_TRUE(tree.Insert("k", "v1").ok());
  EXPECT_TRUE(tree.Insert("k", "v2").IsAlreadyExists());
  EXPECT_EQ(*tree.Get("k"), "v1");
  ASSERT_TRUE(tree.Put("k", "v2").ok());
  EXPECT_EQ(*tree.Get("k"), "v2");
  EXPECT_EQ(*tree.Count(), 1u);
}

TEST_F(BTreeTest, RejectsInvalidEntries) {
  BPlusTree tree = MakeTree();
  EXPECT_TRUE(tree.Insert("", "v").IsInvalidArgument());
  const std::string huge(BPlusTree::kMaxEntrySize + 1, 'x');
  EXPECT_TRUE(tree.Insert(huge, "").IsInvalidArgument());
}

TEST_F(BTreeTest, ManyKeysForceSplitsAndStaySorted) {
  BPlusTree tree = MakeTree();
  std::map<std::string, std::string> expected;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    const std::string key = StringPrintf("key%08llu",
        static_cast<unsigned long long>(rng.Uniform(1000000)));
    const std::string value = StringPrintf("v%d", i);
    const bool fresh = expected.emplace(key, value).second;
    const Status s = tree.Insert(key, value);
    EXPECT_EQ(s.ok(), fresh) << key;
  }
  EXPECT_GT(*tree.Height(), 1);
  EXPECT_EQ(*tree.Count(), expected.size());

  // Point lookups.
  for (const auto& [k, v] : expected) {
    auto got = tree.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }

  // Full scan matches std::map order exactly.
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  for (const auto& [k, v] : expected) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, SequentialInsertionOrder) {
  // Ascending insertion is the worst case for naive split logic.
  BPlusTree tree = MakeTree();
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(StringPrintf("%08d", i), "v").ok());
  }
  EXPECT_EQ(*tree.Count(), static_cast<uint64_t>(n));
  for (int i = 0; i < n; i += 97) {
    EXPECT_TRUE(tree.Get(StringPrintf("%08d", i)).ok());
  }
}

TEST_F(BTreeTest, DescendingInsertionOrder) {
  BPlusTree tree = MakeTree();
  const int n = 5000;
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_TRUE(tree.Insert(StringPrintf("%08d", i), "v").ok());
  }
  EXPECT_EQ(*tree.Count(), static_cast<uint64_t>(n));
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_EQ(it.key(), "00000000");
}

TEST_F(BTreeTest, SeekPositionsAtLowerBound) {
  BPlusTree tree = MakeTree();
  for (int i = 0; i < 1000; i += 10) {
    ASSERT_TRUE(tree.Insert(StringPrintf("%04d", i), "v").ok());
  }
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.Seek("0015").ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "0020");  // first key >= 0015
  ASSERT_TRUE(it.Seek("0020").ok());
  EXPECT_EQ(it.key(), "0020");  // exact
  ASSERT_TRUE(it.Seek("0991").ok());
  EXPECT_FALSE(it.Valid()) << "seek past the last key";
  ASSERT_TRUE(it.Seek("").ok());
  EXPECT_EQ(it.key(), "0000");
}

TEST_F(BTreeTest, RangeScanSlice) {
  BPlusTree tree = MakeTree();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(StringPrintf("%06d", i), "v").ok());
  }
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.Seek("000500").ok());
  int count = 0;
  while (it.Valid() && it.key() < "000600") {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 100);
}

TEST_F(BTreeTest, DeleteRemovesKeysScanSkipsThem) {
  BPlusTree tree = MakeTree();
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(StringPrintf("%06d", i), "v").ok());
  }
  for (int i = 0; i < n; i += 2) {
    ASSERT_TRUE(tree.Delete(StringPrintf("%06d", i)).ok());
  }
  EXPECT_EQ(*tree.Count(), static_cast<uint64_t>(n / 2));
  for (int i = 0; i < n; ++i) {
    const auto got = tree.Get(StringPrintf("%06d", i));
    EXPECT_EQ(got.ok(), i % 2 == 1);
  }
  // Scan sees only odd keys, in order.
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  int expect = 1;
  while (it.Valid()) {
    EXPECT_EQ(it.key(), StringPrintf("%06d", expect));
    expect += 2;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(expect, n + 1);
}

TEST_F(BTreeTest, DeleteEverythingThenReuse) {
  BPlusTree tree = MakeTree();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(StringPrintf("%04d", i), "v").ok());
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Delete(StringPrintf("%04d", i)).ok());
  }
  EXPECT_EQ(*tree.Count(), 0u);
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
  // Reinsertion works.
  ASSERT_TRUE(tree.Insert("new", "value").ok());
  EXPECT_EQ(*tree.Get("new"), "value");
}

TEST_F(BTreeTest, VariableLengthKeysAndValues) {
  BPlusTree tree = MakeTree();
  Rng rng(13);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    std::string key(1 + rng.Uniform(40), 'k');
    for (auto& ch : key) {
      ch = static_cast<char>('a' + rng.Uniform(26));
    }
    std::string value(rng.Uniform(200), 'v');
    if (expected.emplace(key, value).second) {
      ASSERT_TRUE(tree.Insert(key, value).ok());
    }
  }
  for (const auto& [k, v] : expected) {
    EXPECT_EQ(*tree.Get(k), v);
  }
}

TEST_F(BTreeTest, BinaryKeysWithEmbeddedZeros) {
  BPlusTree tree = MakeTree();
  const std::string k1("a\0b", 3);
  const std::string k2("a\0c", 3);
  ASSERT_TRUE(tree.Insert(k1, "1").ok());
  ASSERT_TRUE(tree.Insert(k2, "2").ok());
  EXPECT_EQ(*tree.Get(k1), "1");
  EXPECT_EQ(*tree.Get(k2), "2");
}

TEST_F(BTreeTest, OpenByRootSeesSameData) {
  BPlusTree tree = MakeTree();
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(tree.Insert(StringPrintf("%05d", i), "val").ok());
  }
  BPlusTree reopened = BPlusTree::Open(&pool_, tree.root());
  EXPECT_EQ(*reopened.Count(), 4000u);
  EXPECT_EQ(*reopened.Get("03999"), "val");
}

TEST_F(BTreeTest, LargeEntriesNearTheLimit) {
  BPlusTree tree = MakeTree();
  const std::string big_value(BPlusTree::kMaxEntrySize - 10, 'V');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(StringPrintf("%04d", i), big_value).ok());
  }
  EXPECT_GT(*tree.Height(), 1) << "large entries must force splits";
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(tree.Get(StringPrintf("%04d", i))->size(), big_value.size());
  }
}

}  // namespace
}  // namespace fuzzymatch

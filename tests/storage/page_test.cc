#include "storage/page.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fuzzymatch {
namespace {

class PageTest : public ::testing::Test {
 protected:
  PageTest() : buf_(kPageSize), page_(buf_.data()) {
    page_.Init(PageType::kHeap);
  }
  std::vector<char> buf_;
  Page page_;
};

TEST_F(PageTest, InitSetsHeader) {
  EXPECT_EQ(page_.type(), PageType::kHeap);
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.next_page(), kInvalidPageId);
  EXPECT_EQ(page_.FreeSpace(), kPageSize - Page::kHeaderSize);
}

TEST_F(PageTest, InsertAndGetRoundTrip) {
  const auto s0 = page_.Insert("hello");
  const auto s1 = page_.Insert("world!");
  ASSERT_TRUE(s0 && s1);
  EXPECT_EQ(*s0, 0);
  EXPECT_EQ(*s1, 1);
  EXPECT_EQ(*page_.Get(*s0), "hello");
  EXPECT_EQ(*page_.Get(*s1), "world!");
}

TEST_F(PageTest, EmptyRecordIsStorable) {
  const auto slot = page_.Insert("");
  ASSERT_TRUE(slot.has_value());
  ASSERT_TRUE(page_.Get(*slot).has_value());
  EXPECT_EQ(*page_.Get(*slot), "");
}

TEST_F(PageTest, GetOutOfRangeReturnsNullopt) {
  EXPECT_FALSE(page_.Get(0).has_value());
  page_.Insert("x");
  EXPECT_FALSE(page_.Get(1).has_value());
}

TEST_F(PageTest, FillsUpAndRejects) {
  const std::string rec(100, 'a');
  size_t inserted = 0;
  while (page_.Insert(rec)) {
    ++inserted;
  }
  // 100 bytes data + 4 bytes slot per record.
  EXPECT_EQ(inserted, (kPageSize - Page::kHeaderSize) / 104);
  EXPECT_FALSE(page_.Fits(rec.size()));
  // A smaller record may still fit.
  EXPECT_EQ(page_.slot_count(), inserted);
}

TEST_F(PageTest, DeleteTombstonesAndPreservesOtherSlots) {
  const auto s0 = page_.Insert("aaa");
  const auto s1 = page_.Insert("bbb");
  const auto s2 = page_.Insert("ccc");
  ASSERT_TRUE(s0 && s1 && s2);
  EXPECT_TRUE(page_.Delete(*s1));
  EXPECT_FALSE(page_.Get(*s1).has_value());
  EXPECT_EQ(*page_.Get(*s0), "aaa");
  EXPECT_EQ(*page_.Get(*s2), "ccc");
  EXPECT_FALSE(page_.Delete(*s1)) << "double delete";
  EXPECT_FALSE(page_.Delete(99)) << "out of range";
}

TEST_F(PageTest, CompactReclaimsDeletedSpace) {
  const std::string rec(1000, 'x');
  std::vector<SlotId> slots;
  while (auto s = page_.Insert(rec)) {
    slots.push_back(*s);
  }
  ASSERT_GE(slots.size(), 4u);
  // Delete every other record, then compact.
  for (size_t i = 0; i < slots.size(); i += 2) {
    page_.Delete(slots[i]);
  }
  const size_t before = page_.FreeSpace();
  page_.Compact();
  EXPECT_GT(page_.FreeSpace(), before);
  // Slot ids of survivors unchanged, contents intact.
  for (size_t i = 1; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Get(slots[i]).has_value());
    EXPECT_EQ(*page_.Get(slots[i]), rec);
  }
  for (size_t i = 0; i < slots.size(); i += 2) {
    EXPECT_FALSE(page_.Get(slots[i]).has_value());
  }
  // And the space is genuinely reusable.
  EXPECT_TRUE(page_.Insert(rec).has_value());
}

TEST_F(PageTest, UpdateInPlaceShrinksButNeverGrows) {
  const auto s = page_.Insert("0123456789");
  ASSERT_TRUE(s);
  EXPECT_TRUE(page_.UpdateInPlace(*s, "abcde"));
  EXPECT_EQ(*page_.Get(*s), "abcde");
  EXPECT_FALSE(page_.UpdateInPlace(*s, "this is far too long"));
  EXPECT_EQ(*page_.Get(*s), "abcde");
}

TEST_F(PageTest, InsertAtKeepsDirectoryOrder) {
  page_.Init(PageType::kBTreeLeaf);
  ASSERT_TRUE(page_.InsertAt(0, "m"));
  ASSERT_TRUE(page_.InsertAt(0, "a"));  // prepend
  ASSERT_TRUE(page_.InsertAt(2, "z"));  // append
  ASSERT_TRUE(page_.InsertAt(1, "g"));  // middle
  ASSERT_EQ(page_.slot_count(), 4);
  EXPECT_EQ(*page_.Get(0), "a");
  EXPECT_EQ(*page_.Get(1), "g");
  EXPECT_EQ(*page_.Get(2), "m");
  EXPECT_EQ(*page_.Get(3), "z");
}

TEST_F(PageTest, RemoveAtShiftsDirectoryDown) {
  page_.Init(PageType::kBTreeLeaf);
  page_.InsertAt(0, "a");
  page_.InsertAt(1, "b");
  page_.InsertAt(2, "c");
  EXPECT_TRUE(page_.RemoveAt(1));
  ASSERT_EQ(page_.slot_count(), 2);
  EXPECT_EQ(*page_.Get(0), "a");
  EXPECT_EQ(*page_.Get(1), "c");
  EXPECT_FALSE(page_.RemoveAt(5));
}

TEST_F(PageTest, CompactAfterRemoveAtRecoversSpace) {
  page_.Init(PageType::kBTreeLeaf);
  const std::string rec(1500, 'q');
  while (page_.InsertAt(page_.slot_count(), rec)) {
  }
  const uint16_t count = page_.slot_count();
  ASSERT_GE(count, 4);
  page_.RemoveAt(0);
  page_.RemoveAt(0);
  EXPECT_FALSE(page_.Fits(rec.size()));
  page_.Compact();
  EXPECT_TRUE(page_.Fits(rec.size()));
  EXPECT_EQ(page_.slot_count(), count - 2);
  for (SlotId s = 0; s < page_.slot_count(); ++s) {
    EXPECT_EQ(*page_.Get(s), rec);
  }
}

TEST_F(PageTest, NextPageLink) {
  page_.set_next_page(42);
  EXPECT_EQ(page_.next_page(), 42u);
}

TEST_F(PageTest, MaxRecordFitsExactly) {
  const std::string rec(Page::kMaxRecordSize, 'z');
  const auto slot = page_.Insert(rec);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(page_.Get(*slot)->size(), Page::kMaxRecordSize);
  EXPECT_EQ(page_.FreeSpace(), 0u);
}

}  // namespace
}  // namespace fuzzymatch

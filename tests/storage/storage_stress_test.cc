// Randomized cross-module stress tests of the storage engine: the
// B+-tree against std::map under a mixed workload, heap files under a
// tiny buffer pool (constant eviction), and a file-backed end-to-end
// fuzzy-match pipeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "common/random.h"
#include "common/string_util.h"
#include "core/fuzzy_match.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "storage/btree.h"
#include "storage/heap_file.h"

namespace fuzzymatch {
namespace {

TEST(BTreeStressTest, MixedWorkloadMatchesStdMap) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 512);
  auto tree_or = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree_or.ok());
  BPlusTree tree = std::move(*tree_or);
  std::map<std::string, std::string> model;
  Rng rng(20260706);

  auto random_key = [&rng]() {
    return StringPrintf("k%06llu",
                        static_cast<unsigned long long>(rng.Uniform(5000)));
  };

  for (int op = 0; op < 30000; ++op) {
    const std::string key = random_key();
    switch (rng.Uniform(5)) {
      case 0:
      case 1: {  // put
        const std::string value = StringPrintf("v%d", op);
        ASSERT_TRUE(tree.Put(key, value).ok());
        model[key] = value;
        break;
      }
      case 2: {  // insert (must fail iff present)
        const Status s = tree.Insert(key, "fresh");
        EXPECT_EQ(s.ok(), model.count(key) == 0) << key;
        if (s.ok()) {
          model[key] = "fresh";
        }
        break;
      }
      case 3: {  // delete
        const Status s = tree.Delete(key);
        EXPECT_EQ(s.ok(), model.erase(key) > 0) << key;
        break;
      }
      default: {  // get
        const auto got = tree.Get(key);
        const auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_TRUE(got.status().IsNotFound()) << key;
        } else {
          ASSERT_TRUE(got.ok()) << key;
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
  }

  // Final full comparison via iteration.
  ASSERT_EQ(*tree.Count(), model.size());
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), key);
    EXPECT_EQ(it.value(), value);
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_FALSE(it.Valid());
}

TEST(HeapFileStressTest, TinyBufferPoolWithOverflowRecords) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 6);  // brutal: constant eviction
  auto heap_or = HeapFile::Create(&pool);
  ASSERT_TRUE(heap_or.ok());
  HeapFile heap = std::move(*heap_or);
  Rng rng(99);

  std::vector<std::pair<Rid, std::string>> live;
  for (int op = 0; op < 800; ++op) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      // Insert: mix of tiny, page-sized and multi-page records.
      const size_t len = rng.Bernoulli(0.15)
                             ? 2 * kPageSize + rng.Uniform(kPageSize)
                             : rng.Uniform(600);
      std::string rec(len, 'x');
      for (auto& c : rec) {
        c = static_cast<char>('a' + rng.Uniform(26));
      }
      auto rid = heap.Insert(rec);
      ASSERT_TRUE(rid.ok()) << rid.status();
      live.emplace_back(*rid, std::move(rec));
    } else if (rng.Bernoulli(0.3)) {
      // Delete a random record.
      const size_t i = rng.Uniform(live.size());
      ASSERT_TRUE(heap.Delete(live[i].first).ok());
      live.erase(live.begin() + static_cast<long>(i));
    } else {
      // Read a random record back.
      const size_t i = rng.Uniform(live.size());
      auto rec = heap.Get(live[i].first);
      ASSERT_TRUE(rec.ok()) << rec.status();
      EXPECT_EQ(*rec, live[i].second);
    }
  }
  // Everything still alive reads back correctly, and the scan agrees.
  size_t scanned = 0;
  auto scanner = heap.Scan();
  Rid rid;
  std::string rec;
  for (;;) {
    auto more = scanner.Next(&rid, &rec);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++scanned;
  }
  EXPECT_EQ(scanned, live.size());
}

TEST(FileBackedPipelineTest, SmallPoolEndToEnd) {
  // The whole pipeline — populate, build ETI, match — against a
  // file-backed database whose buffer pool is much smaller than the
  // working set, so every stage runs through real page I/O.
  const std::string path = std::string(::testing::TempDir()) +
                           "/fm_stress_" + std::to_string(::getpid()) +
                           ".db";
  std::remove(path.c_str());
  {
    DatabaseOptions options;
    options.path = path;
    options.pool_pages = 64;  // 512 KiB of cache for a multi-MB database
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto table = (*db)->CreateTable("customers",
                                    CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    CustomerGenOptions gen_options;
    gen_options.num_tuples = 3000;
    CustomerGenerator gen(gen_options);
    ASSERT_TRUE(gen.Populate(*table).ok());

    FuzzyMatchConfig config;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    auto matcher = FuzzyMatcher::Build(db->get(), "customers", config);
    ASSERT_TRUE(matcher.ok()) << matcher.status();

    DatasetSpec spec = DatasetD2();
    spec.num_inputs = 40;
    auto inputs = GenerateInputs(*table, spec, nullptr);
    ASSERT_TRUE(inputs.ok());
    int correct = 0;
    for (const auto& input : *inputs) {
      auto matches = (*matcher)->FindMatches(input.dirty);
      ASSERT_TRUE(matches.ok());
      correct += (!matches->empty() && (*matches)[0].tid == input.seed_tid);
    }
    EXPECT_GT(correct, 20) << correct << "/40";
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_GT((*db)->buffer_pool()->evictions(), 200u)
        << "the tiny pool must actually thrash";
  }
  // Reopen and re-attach to the persisted index.
  {
    DatabaseOptions options;
    options.path = path;
    options.pool_pages = 64;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    FuzzyMatchConfig reopen_config;
    auto matcher =
        FuzzyMatcher::Open(db->get(), "customers", "Q+T_2", reopen_config);
    ASSERT_TRUE(matcher.ok()) << matcher.status();
    auto row = (*matcher)->reference().Get(1234);
    ASSERT_TRUE(row.ok());
    auto matches = (*matcher)->FindMatches(*row);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fuzzymatch

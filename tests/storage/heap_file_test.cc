#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fuzzymatch {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : pager_(Pager::OpenInMemory()), pool_(pager_.get(), 256) {}

  std::unique_ptr<Pager> pager_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, InsertGetRoundTrip) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert("hello heap");
  ASSERT_TRUE(rid.ok());
  auto rec = heap->Get(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello heap");
}

TEST_F(HeapFileTest, RidEncodingRoundTrips) {
  const Rid rid{12345, 67};
  const auto decoded = Rid::Decode(rid.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rid);
  EXPECT_FALSE(Rid::Decode("short").ok());
}

TEST_F(HeapFileTest, SpillsAcrossPages) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  const std::string rec(500, 'r');
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {  // ~50 KiB >> one page
    auto rid = heap->Insert(rec + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  // Multiple distinct pages used.
  bool multi_page = false;
  for (const auto& r : rids) {
    multi_page |= (r.page_id != rids[0].page_id);
  }
  EXPECT_TRUE(multi_page);
  for (int i = 0; i < 100; ++i) {
    auto rec_i = heap->Get(rids[i]);
    ASSERT_TRUE(rec_i.ok());
    EXPECT_EQ(*rec_i, rec + std::to_string(i));
  }
}

TEST_F(HeapFileTest, LargeRecordUsesOverflowChain) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  // Way past one page: exercises the multi-page overflow path.
  std::string big(3 * kPageSize + 123, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + i % 26);
  }
  auto rid = heap->Insert(big);
  ASSERT_TRUE(rid.ok());
  auto rec = heap->Get(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, big);
  // Small records still work around it.
  auto rid2 = heap->Insert("small");
  ASSERT_TRUE(rid2.ok());
  EXPECT_EQ(*heap->Get(*rid2), "small");
}

TEST_F(HeapFileTest, DeleteThenGetFails) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert("doomed");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(heap->Delete(*rid).ok());
  EXPECT_TRUE(heap->Get(*rid).status().IsNotFound());
  EXPECT_TRUE(heap->Delete(*rid).IsNotFound());
}

TEST_F(HeapFileTest, ScannerVisitsAllLiveRecords) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    auto rid = heap->Insert("rec" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_TRUE(heap->Delete(rids[10]).ok());
  ASSERT_TRUE(heap->Delete(rids[20]).ok());

  auto scanner = heap->Scan();
  Rid rid;
  std::string rec;
  std::vector<std::string> seen;
  for (;;) {
    auto more = scanner.Next(&rid, &rec);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    seen.push_back(rec);
  }
  EXPECT_EQ(seen.size(), 48u);
  // Order is storage order; deleted ones skipped.
  EXPECT_EQ(seen[0], "rec0");
  for (const auto& s : seen) {
    EXPECT_NE(s, "rec10");
    EXPECT_NE(s, "rec20");
  }
}

TEST_F(HeapFileTest, ScanIncludesOverflowRecords) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  const std::string big(2 * kPageSize, 'B');
  ASSERT_TRUE(heap->Insert("first").ok());
  ASSERT_TRUE(heap->Insert(big).ok());
  ASSERT_TRUE(heap->Insert("last").ok());

  auto scanner = heap->Scan();
  Rid rid;
  std::string rec;
  std::vector<size_t> sizes;
  for (;;) {
    auto more = scanner.Next(&rid, &rec);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    sizes.push_back(rec.size());
  }
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 5u);
  EXPECT_EQ(sizes[1], big.size());
  EXPECT_EQ(sizes[2], 4u);
}

TEST_F(HeapFileTest, OpenFindsAppendTarget) {
  PageId first;
  std::vector<Rid> rids;
  {
    auto heap = HeapFile::Create(&pool_);
    ASSERT_TRUE(heap.ok());
    first = heap->first_page();
    const std::string rec(1000, 'k');
    for (int i = 0; i < 30; ++i) {
      auto rid = heap->Insert(rec);
      ASSERT_TRUE(rid.ok());
      rids.push_back(*rid);
    }
  }
  auto reopened = HeapFile::Open(&pool_, first);
  ASSERT_TRUE(reopened.ok());
  // Old records readable; new inserts do not clobber them.
  auto rid = reopened->Insert("appended");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*reopened->Get(rids[0]), std::string(1000, 'k'));
  EXPECT_EQ(*reopened->Get(*rid), "appended");
}

TEST_F(HeapFileTest, GetBogusRidFails) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap->Get(Rid{9999, 0}).ok());
  EXPECT_TRUE(heap->Get(Rid{heap->first_page(), 42}).status().IsNotFound());
}

}  // namespace
}  // namespace fuzzymatch

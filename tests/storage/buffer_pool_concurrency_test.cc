// Concurrent-reader tests for the BufferPool's shared-read latch: many
// threads fetching overlapping page sets through a pool small enough to
// force constant eviction churn. Under -DFM_SANITIZE=thread this is the
// storage layer's primary race probe.

#include "storage/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fuzzymatch {
namespace {

/// Seeds `pages` pages, each tagged with its own id, through `pool`.
void SeedPages(BufferPool* pool, uint32_t pages) {
  for (uint32_t i = 0; i < pages; ++i) {
    auto guard = pool->New();
    ASSERT_TRUE(guard.ok());
    std::memcpy(guard->data(), &i, sizeof(i));
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool->FlushAll().ok());
}

TEST(BufferPoolConcurrencyTest, ConcurrentReadersUnderEvictionChurn) {
  auto pager = Pager::OpenInMemory();
  constexpr uint32_t kPages = 64;
  // 8 frames for 64 pages: most fetches miss and evict.
  BufferPool pool(pager.get(), 8);
  SeedPages(&pool, kPages);

  constexpr size_t kThreads = 8;
  constexpr size_t kFetchesPerThread = 500;
  std::atomic<uint64_t> corrupt{0};
  std::atomic<uint64_t> failed{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kFetchesPerThread; ++i) {
        const uint32_t page =
            static_cast<uint32_t>((t * 131 + i * 17) % kPages);
        auto guard = pool.Fetch(page);
        if (!guard.ok()) {
          // All frames transiently pinned is legal; a lost page is not.
          if (!guard.status().IsResourceExhausted()) {
            failed.fetch_add(1);
          }
          continue;
        }
        uint32_t tag;
        std::memcpy(&tag, guard->data(), sizeof(tag));
        if (tag != page) {
          corrupt.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(corrupt.load(), 0u) << "a reader saw another page's bytes";
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(pool.evictions(), 0u) << "the test must actually churn";
}

TEST(BufferPoolConcurrencyTest, PinnedPageStaysStableWhileOthersEvict) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 4);
  SeedPages(&pool, 32);

  // One thread holds page 0 pinned and re-reads it; others churn the
  // remaining frames. The pinned frame's buffer must never move or be
  // reused under the reader.
  auto pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  const char* stable_data = pinned->data();

  std::vector<std::thread> churners;
  for (size_t t = 0; t < 4; ++t) {
    churners.emplace_back([&, t] {
      for (size_t i = 0; i < 400; ++i) {
        (void)pool.Fetch(static_cast<uint32_t>(1 + (t * 7 + i) % 31));
      }
    });
  }
  std::atomic<uint64_t> corrupt{0};
  std::thread reader([&] {
    for (size_t i = 0; i < 1000; ++i) {
      uint32_t tag;
      std::memcpy(&tag, pinned->data(), sizeof(tag));
      if (tag != 0 || pinned->data() != stable_data) {
        corrupt.fetch_add(1);
      }
    }
  });
  for (std::thread& t : churners) {
    t.join();
  }
  reader.join();
  EXPECT_EQ(corrupt.load(), 0u);
}

TEST(BufferPoolConcurrencyTest, StatisticsAreConsistentUnderThreads) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 16);
  SeedPages(&pool, 16);  // everything fits: all fetches hit

  constexpr size_t kThreads = 4;
  constexpr size_t kFetches = 250;
  const uint64_t hits_before = pool.hits();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kFetches; ++i) {
        auto guard = pool.Fetch(static_cast<uint32_t>(i % 16));
        ASSERT_TRUE(guard.ok());
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(pool.hits() - hits_before, kThreads * kFetches)
      << "hit counter dropped increments under concurrency";
}

}  // namespace
}  // namespace fuzzymatch

// Unit tests for the write-ahead log: on-disk framing, torn-tail
// discard, identity guard, undo/redo precedence, group commit under
// concurrency, and the fsync-mode knob. Crash-schedule coverage (kill at
// every failpoint, recover, compare against the acknowledged prefix)
// lives in tests/fault/wal_recovery_test.cc.

#include "storage/wal.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace fuzzymatch {
namespace {

constexpr uint64_t kDbId = 0x00c0ffee12345678ull;

// Frame sizes implied by the record layout (crc + len + payload).
constexpr size_t kImageFrame = 8 + 1 + 8 + 4 + kPageSize;
constexpr size_t kCommitFrame = 8 + 1 + 8 + 4;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/fm_wal_" + name + "_" +
         std::to_string(::getpid()) + ".wal";
}

std::vector<char> MakeImage(char fill) {
  std::vector<char> image(kPageSize, fill);
  Page(image.data()).Init(PageType::kHeap);
  // Distinguishable payload beyond the header.
  for (size_t i = Page::kHeaderSize; i < kPageSize; ++i) {
    image[i] = static_cast<char>(fill + (i % 7));
  }
  return image;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::unique_ptr<Wal> OpenWal(uint64_t start_lsn = 1,
                               WalOptions options = WalOptions{}) {
    auto wal = Wal::Open(path_, kDbId, start_lsn, options);
    EXPECT_TRUE(wal.ok()) << wal.status();
    return std::move(*wal);
  }

  std::string path_;
};

TEST(WalFsyncModeTest, ParseAndNameRoundTrip) {
  for (const auto mode : {WalFsyncMode::kAlways, WalFsyncMode::kGroup,
                          WalFsyncMode::kNever}) {
    auto parsed = ParseWalFsyncMode(WalFsyncModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_TRUE(ParseWalFsyncMode("sometimes").status().IsInvalidArgument());
  EXPECT_TRUE(ParseWalFsyncMode("").status().IsInvalidArgument());
}

TEST_F(WalTest, OpenWritesHeaderOnly) {
  auto wal = OpenWal(/*start_lsn=*/5);
  EXPECT_EQ(std::filesystem::file_size(path_), Wal::kHeaderSize);
  EXPECT_EQ(wal->next_lsn(), 5u);
  const std::string header = ReadFileBytes(path_);
  uint32_t magic, version;
  uint64_t db_id, start_lsn;
  std::memcpy(&magic, header.data(), 4);
  std::memcpy(&version, header.data() + 4, 4);
  std::memcpy(&db_id, header.data() + 8, 8);
  std::memcpy(&start_lsn, header.data() + 16, 8);
  EXPECT_EQ(magic, Wal::kMagic);
  EXPECT_EQ(version, Wal::kVersion);
  EXPECT_EQ(db_id, kDbId);
  EXPECT_EQ(start_lsn, 5u);
}

TEST_F(WalTest, CommitReplayRoundTrip) {
  auto img0 = MakeImage('a');
  auto img1 = MakeImage('b');
  {
    auto wal = OpenWal();
    auto lsn = wal->CommitPages({{0, img0.data()}, {1, img1.data()}});
    ASSERT_TRUE(lsn.ok()) << lsn.status();
    EXPECT_EQ(*lsn, 3u);  // two image LSNs, then the commit record
    EXPECT_EQ(wal->flushed_lsn(), 3u);
    // The commit stamped each image's header LSN.
    EXPECT_EQ(Page(img0.data()).lsn(), 1u);
    EXPECT_EQ(Page(img1.data()).lsn(), 2u);
  }

  auto pager = Pager::OpenInMemory();
  auto stats = Wal::Replay(path_, kDbId, /*checkpoint_lsn=*/1, pager.get());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->log_present);
  EXPECT_TRUE(stats->identity_match);
  EXPECT_EQ(stats->records_scanned, 3u);
  EXPECT_EQ(stats->commits_applied, 1u);
  EXPECT_EQ(stats->pages_applied, 2u);
  EXPECT_EQ(stats->undo_applied, 0u);
  EXPECT_EQ(stats->torn_bytes, 0u);
  EXPECT_EQ(stats->next_lsn, 4u);

  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager->ReadPage(0, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img0.data(), kPageSize), 0);
  ASSERT_TRUE(pager->ReadPage(1, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img1.data(), kPageSize), 0);
}

TEST_F(WalTest, MissingLogIsEmptyStats) {
  auto pager = Pager::OpenInMemory();
  auto stats = Wal::Replay(path_, kDbId, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->log_present);
  EXPECT_EQ(stats->next_lsn, 0u);
}

TEST_F(WalTest, StaleIdentityIsIgnored) {
  auto img = MakeImage('s');
  {
    auto wal = OpenWal();
    ASSERT_TRUE(wal->CommitPages({{0, img.data()}}).ok());
  }
  auto pager = Pager::OpenInMemory();
  // Wrong database id: the log belongs to another history.
  auto stats = Wal::Replay(path_, kDbId + 1, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->log_present);
  EXPECT_FALSE(stats->identity_match);
  EXPECT_EQ(stats->pages_applied, 0u);
  EXPECT_EQ(pager->page_count(), 0u);
  // Right id, wrong checkpoint LSN: the main file moved on without us.
  stats = Wal::Replay(path_, kDbId, /*checkpoint_lsn=*/9, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->log_present);
  EXPECT_FALSE(stats->identity_match);
  EXPECT_EQ(pager->page_count(), 0u);
}

TEST_F(WalTest, TornCommitRecordDropsTheTransaction) {
  auto img0 = MakeImage('a');
  auto img1 = MakeImage('b');
  {
    auto wal = OpenWal();
    ASSERT_TRUE(wal->CommitPages({{0, img0.data()}}).ok());
    ASSERT_TRUE(wal->CommitPages({{0, img1.data()}}).ok());
  }
  // Cut txn2's commit record in half: its image is intact on disk but
  // the transaction never became durable.
  const size_t txn1_end = Wal::kHeaderSize + kImageFrame + kCommitFrame;
  const size_t cut = txn1_end + kImageFrame + kCommitFrame / 2;
  std::filesystem::resize_file(path_, cut);

  auto pager = Pager::OpenInMemory();
  auto stats = Wal::Replay(path_, kDbId, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->commits_applied, 1u);
  EXPECT_EQ(stats->pages_applied, 1u);
  EXPECT_GT(stats->torn_bytes, 0u);
  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager->ReadPage(0, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img0.data(), kPageSize), 0)
      << "uncommitted after-image must not be applied";
}

TEST_F(WalTest, TornImageDropsTheTail) {
  auto img0 = MakeImage('a');
  auto img1 = MakeImage('b');
  {
    auto wal = OpenWal();
    ASSERT_TRUE(wal->CommitPages({{0, img0.data()}}).ok());
    ASSERT_TRUE(wal->CommitPages({{0, img1.data()}}).ok());
  }
  const size_t txn1_end = Wal::kHeaderSize + kImageFrame + kCommitFrame;
  std::filesystem::resize_file(path_, txn1_end + kImageFrame / 3);

  auto pager = Pager::OpenInMemory();
  auto stats = Wal::Replay(path_, kDbId, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->commits_applied, 1u);
  EXPECT_EQ(stats->torn_bytes, kImageFrame / 3);
  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager->ReadPage(0, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img0.data(), kPageSize), 0);
}

TEST_F(WalTest, CorruptRecordDiscardsEverythingAfterIt) {
  auto img0 = MakeImage('a');
  auto img1 = MakeImage('b');
  auto img2 = MakeImage('c');
  {
    auto wal = OpenWal();
    ASSERT_TRUE(wal->CommitPages({{0, img0.data()}}).ok());
    ASSERT_TRUE(wal->CommitPages({{0, img1.data()}}).ok());
    ASSERT_TRUE(wal->CommitPages({{0, img2.data()}}).ok());
  }
  // Flip one byte inside txn2's page image: its CRC no longer matches,
  // so txn2 AND the (physically intact) txn3 behind it are discarded —
  // the log's committed prefix ends at the corruption.
  const size_t txn1_end = Wal::kHeaderSize + kImageFrame + kCommitFrame;
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(txn1_end + 100));
    const char x = '\xee';
    f.write(&x, 1);
  }
  auto pager = Pager::OpenInMemory();
  auto stats = Wal::Replay(path_, kDbId, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->commits_applied, 1u);
  EXPECT_GT(stats->torn_bytes, 0u);
  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager->ReadPage(0, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img0.data(), kPageSize), 0);
}

TEST_F(WalTest, CommittedImageSupersedesEarlierUndo) {
  auto before = MakeImage('u');
  auto after = MakeImage('v');
  {
    auto wal = OpenWal();
    // The steal order: undo image durable first, then the transaction
    // commits the page's after-image.
    ASSERT_TRUE(wal->AppendUndo(0, before.data()).ok());
    ASSERT_TRUE(wal->CommitPages({{0, after.data()}}).ok());
  }
  auto pager = Pager::OpenInMemory();
  auto stats = Wal::Replay(path_, kDbId, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pages_applied, 1u);
  EXPECT_EQ(stats->undo_applied, 0u);
  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager->ReadPage(0, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), after.data(), kPageSize), 0);
}

TEST_F(WalTest, UncommittedStealIsRolledBack) {
  auto committed = MakeImage('v');
  auto before = MakeImage('u');
  {
    auto wal = OpenWal();
    ASSERT_TRUE(wal->CommitPages({{0, committed.data()}}).ok());
    // A later transaction dirties page 0 and gets stolen (before-image
    // logged, page written to the main file), then the crash comes
    // before its commit: replay must restore the before-image.
    ASSERT_TRUE(wal->AppendUndo(0, before.data()).ok());
  }
  auto pager = Pager::OpenInMemory();
  // Simulate the steal having reached the main file.
  ASSERT_TRUE(pager->EnsureCapacity(0).ok());
  auto dirty = MakeImage('x');
  ASSERT_TRUE(pager->WritePage(0, dirty.data()).ok());

  auto stats = Wal::Replay(path_, kDbId, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pages_applied, 1u);
  EXPECT_EQ(stats->undo_applied, 1u);
  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager->ReadPage(0, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), before.data(), kPageSize), 0)
      << "uncommitted steal must be rolled back to its before-image";
}

TEST_F(WalTest, ReplayLeavesTheLogUntouchedAndIsIdempotent) {
  auto img = MakeImage('r');
  {
    auto wal = OpenWal();
    ASSERT_TRUE(wal->CommitPages({{1, img.data()}}).ok());
  }
  const std::string log_before = ReadFileBytes(path_);
  auto pager = Pager::OpenInMemory();
  ASSERT_TRUE(Wal::Replay(path_, kDbId, 1, pager.get()).ok());
  ASSERT_TRUE(Wal::Replay(path_, kDbId, 1, pager.get()).ok());
  EXPECT_EQ(ReadFileBytes(path_), log_before);
  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager->ReadPage(1, got.data()).ok());
  EXPECT_EQ(std::memcmp(got.data(), img.data(), kPageSize), 0);
}

TEST_F(WalTest, TruncateResetsToEmptyLog) {
  auto img = MakeImage('t');
  auto wal = OpenWal();
  ASSERT_TRUE(wal->CommitPages({{0, img.data()}}).ok());
  EXPECT_GT(std::filesystem::file_size(path_), Wal::kHeaderSize);
  ASSERT_TRUE(wal->Truncate(/*start_lsn=*/17).ok());
  EXPECT_EQ(std::filesystem::file_size(path_), Wal::kHeaderSize);
  EXPECT_EQ(wal->next_lsn(), 17u);
  // The truncated log replays as empty at the new checkpoint LSN.
  auto pager = Pager::OpenInMemory();
  auto stats = Wal::Replay(path_, kDbId, 17, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->identity_match);
  EXPECT_EQ(stats->records_scanned, 0u);
  // And a pre-truncation checkpoint LSN no longer matches.
  stats = Wal::Replay(path_, kDbId, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->identity_match);
}

TEST_F(WalTest, FsyncModeControlsSyncsPerCommit) {
  auto& fsyncs = *obs::MetricsRegistry::Global().GetCounter("wal.fsyncs");
  auto img = MakeImage('f');
  {
    auto wal = OpenWal(1, WalOptions{WalFsyncMode::kAlways, 0});
    const uint64_t before = fsyncs.value();
    ASSERT_TRUE(wal->CommitPages({{0, img.data()}}).ok());
    EXPECT_GT(fsyncs.value(), before);
  }
  std::filesystem::remove(path_);
  {
    auto wal = OpenWal(1, WalOptions{WalFsyncMode::kNever, 0});
    const uint64_t before = fsyncs.value();
    ASSERT_TRUE(wal->CommitPages({{0, img.data()}}).ok());
    EXPECT_EQ(fsyncs.value(), before);
    // The shutdown drain fsyncs even in kNever mode.
    ASSERT_TRUE(wal->Sync().ok());
    EXPECT_GT(fsyncs.value(), before);
  }
}

TEST_F(WalTest, GroupCommitUnderConcurrency) {
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 4;
  auto wal = OpenWal(1, WalOptions{WalFsyncMode::kGroup, 200});

  std::vector<std::vector<char>> images;
  for (int i = 0; i < kThreads; ++i) {
    images.push_back(MakeImage(static_cast<char>('A' + i)));
  }
  std::vector<std::vector<uint64_t>> lsns(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        auto lsn = wal->CommitPages(
            {{static_cast<PageId>(t), images[t].data()}});
        ASSERT_TRUE(lsn.ok()) << lsn.status();
        lsns[t].push_back(*lsn);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every commit got a distinct LSN, all durable by the time it returned.
  std::set<uint64_t> all;
  uint64_t max_lsn = 0;
  for (const auto& per_thread : lsns) {
    ASSERT_EQ(per_thread.size(), static_cast<size_t>(kCommitsPerThread));
    EXPECT_TRUE(std::is_sorted(per_thread.begin(), per_thread.end()));
    for (const uint64_t lsn : per_thread) {
      EXPECT_TRUE(all.insert(lsn).second) << "duplicate commit LSN " << lsn;
      max_lsn = std::max(max_lsn, lsn);
    }
  }
  EXPECT_GE(wal->flushed_lsn(), max_lsn);

  // The log replays cleanly: every commit record landed whole.
  auto pager = Pager::OpenInMemory();
  auto stats = Wal::Replay(path_, kDbId, 1, pager.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->commits_applied,
            static_cast<uint64_t>(kThreads * kCommitsPerThread));
  EXPECT_EQ(stats->torn_bytes, 0u);
  EXPECT_EQ(stats->pages_applied, static_cast<uint64_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    std::vector<char> got(kPageSize);
    ASSERT_TRUE(pager->ReadPage(static_cast<PageId>(t), got.data()).ok());
    // Header LSNs differ between replays of the same page; compare the
    // payload beyond the header.
    EXPECT_EQ(std::memcmp(got.data() + Page::kHeaderSize,
                          images[t].data() + Page::kHeaderSize,
                          kPageSize - Page::kHeaderSize),
              0);
  }
}

}  // namespace
}  // namespace fuzzymatch

#include "storage/database.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/string_util.h"

namespace fuzzymatch {
namespace {

std::string TempDbPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name + "_" +
         std::to_string(::getpid()) + ".db";
}

TEST(DatabaseTest, InMemoryCreateAndGetTable) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto t = (*db)->CreateTable("customers", Schema({"name", "city"}));
  ASSERT_TRUE(t.ok());
  auto again = (*db)->GetTable("customers");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*t, *again);
  EXPECT_TRUE((*db)->GetTable("nope").status().IsNotFound());
  EXPECT_TRUE((*db)
                  ->CreateTable("customers", Schema({"x"}))
                  .status()
                  .IsAlreadyExists());
}

TEST(DatabaseTest, IndexLifecycle) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto idx = (*db)->CreateIndex("by_qgram");
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE((*idx)->Insert("key", "value").ok());
  auto again = (*db)->GetIndex("by_qgram");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*(*again)->Get("key"), "value");
  EXPECT_TRUE((*db)->CreateIndex("by_qgram").status().IsAlreadyExists());
  ASSERT_TRUE((*db)->DropIndex("by_qgram").ok());
  EXPECT_TRUE((*db)->GetIndex("by_qgram").status().IsNotFound());
}

TEST(DatabaseTest, DropTable) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable("tmp", Schema({"a"})).ok());
  ASSERT_TRUE((*db)->DropTable("tmp").ok());
  EXPECT_TRUE((*db)->GetTable("tmp").status().IsNotFound());
  EXPECT_TRUE((*db)->DropTable("tmp").IsNotFound());
  // Name is reusable.
  EXPECT_TRUE((*db)->CreateTable("tmp", Schema({"b"})).ok());
}

TEST(DatabaseTest, FileBackedPersistsTablesAndIndexes) {
  const std::string path = TempDbPath("persist");
  std::remove(path.c_str());
  Tid saved_tid = 0;
  {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto t = (*db)->CreateTable("customers", Schema({"name", "city"}));
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 500; ++i) {
      auto tid = (*t)->Insert(
          Row{StringPrintf("name%d", i), std::string("seattle")});
      ASSERT_TRUE(tid.ok());
      saved_tid = *tid;
    }
    auto idx = (*db)->CreateIndex("aux");
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE((*idx)->Insert("hello", "world").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto t = (*db)->GetTable("customers");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)->row_count(), 500u);
    auto row = (*t)->Get(saved_tid);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(*(*row)[0], "name499");
    // Inserts continue at the right tid.
    auto tid = (*t)->Insert(Row{std::string("next"), std::string("c")});
    ASSERT_TRUE(tid.ok());
    EXPECT_EQ(*tid, 500u);
    auto idx = (*db)->GetIndex("aux");
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(*(*idx)->Get("hello"), "world");
  }
  std::remove(path.c_str());
}

TEST(DatabaseTest, CloseCheckpointsAutomatically) {
  const std::string path = TempDbPath("autockpt");
  std::remove(path.c_str());
  {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto t = (*db)->CreateTable("t", Schema({"v"}));
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(Row{std::string("kept")}).ok());
    // No explicit Checkpoint(); the destructor must do it.
  }
  {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto t = (*db)->GetTable("t");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)->row_count(), 1u);
  }
  std::remove(path.c_str());
}

TEST(DatabaseTest, SmallBufferPoolStillWorks) {
  // Working set far larger than the pool forces constant eviction.
  DatabaseOptions options;
  options.pool_pages = 8;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto t = (*db)->CreateTable("big", Schema({"payload"}));
  ASSERT_TRUE(t.ok());
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE((*t)->Insert(Row{StringPrintf("%0100d", i)}).ok());
  }
  for (int i = 0; i < n; i += 101) {
    auto row = (*t)->Get(static_cast<Tid>(i));
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(*(*row)[0], StringPrintf("%0100d", i));
  }
}

}  // namespace
}  // namespace fuzzymatch

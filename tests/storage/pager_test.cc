#include "storage/pager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace fuzzymatch {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name +
         std::to_string(::getpid());
}

void FillPage(char* buf, char fill) { std::memset(buf, fill, kPageSize); }

TEST(PagerTest, InMemoryAllocateReadWrite) {
  auto pager = Pager::OpenInMemory();
  EXPECT_EQ(pager->page_count(), 0u);
  auto p0 = pager->AllocatePage();
  auto p1 = pager->AllocatePage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);

  std::vector<char> buf(kPageSize);
  FillPage(buf.data(), 'x');
  ASSERT_TRUE(pager->WritePage(*p1, buf.data()).ok());
  std::vector<char> read(kPageSize);
  ASSERT_TRUE(pager->ReadPage(*p1, read.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), read.data(), kPageSize), 0);

  // Fresh pages start zeroed.
  ASSERT_TRUE(pager->ReadPage(*p0, read.data()).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(read[i], 0) << i;
  }
}

TEST(PagerTest, OutOfRangeAccessFails) {
  auto pager = Pager::OpenInMemory();
  std::vector<char> buf(kPageSize);
  EXPECT_TRUE(pager->ReadPage(0, buf.data()).IsOutOfRange());
  EXPECT_TRUE(pager->WritePage(5, buf.data()).IsOutOfRange());
}

TEST(PagerTest, FileBackedPersistsAcrossReopen) {
  const std::string path = TempPath("pager_persist");
  std::remove(path.c_str());
  {
    auto pager = Pager::OpenFile(path);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    std::vector<char> buf(kPageSize);
    FillPage(buf.data(), 'q');
    ASSERT_TRUE((*pager)->WritePage(1, buf.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  {
    auto pager = Pager::OpenFile(path);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_count(), 2u);
    std::vector<char> read(kPageSize);
    ASSERT_TRUE((*pager)->ReadPage(1, read.data()).ok());
    for (size_t i = 0; i < kPageSize; ++i) {
      ASSERT_EQ(read[i], 'q');
    }
  }
  std::remove(path.c_str());
}

TEST(PagerTest, RejectsCorruptFileSize) {
  const std::string path = TempPath("pager_badsize");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a multiple of page size", f);
  std::fclose(f);
  auto pager = Pager::OpenFile(path);
  EXPECT_FALSE(pager.ok());
  EXPECT_TRUE(pager.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(PagerTest, OpenFileFailsOnBadPath) {
  auto pager = Pager::OpenFile("/nonexistent-dir-xyz/file.db");
  EXPECT_FALSE(pager.ok());
  EXPECT_TRUE(pager.status().IsIOError());
}

TEST(PagerTest, ManyPagesInMemory) {
  auto pager = Pager::OpenInMemory();
  for (int i = 0; i < 1000; ++i) {
    auto id = pager->AllocatePage();
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<PageId>(i));
  }
  EXPECT_EQ(pager->page_count(), 1000u);
}

}  // namespace
}  // namespace fuzzymatch

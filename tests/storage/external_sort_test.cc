#include "storage/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace fuzzymatch {
namespace {

std::vector<std::string> Drain(SortedStream* stream) {
  std::vector<std::string> out;
  std::string rec;
  for (;;) {
    auto more = stream->Next(&rec);
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !*more) break;
    out.push_back(rec);
  }
  return out;
}

ExternalSorter::Options SmallBudget(size_t bytes) {
  ExternalSorter::Options opt;
  opt.memory_budget_bytes = bytes;
  opt.temp_dir = ::testing::TempDir();
  return opt;
}

TEST(ExternalSortTest, EmptyInput) {
  ExternalSorter sorter(SmallBudget(1 << 20));
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(Drain(stream->get()).empty());
}

TEST(ExternalSortTest, InMemorySort) {
  ExternalSorter sorter(SmallBudget(1 << 20));
  for (const char* s : {"pear", "apple", "orange", "banana"}) {
    ASSERT_TRUE(sorter.Add(s).ok());
  }
  EXPECT_EQ(sorter.spilled_runs(), 0u);
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()),
            (std::vector<std::string>{"apple", "banana", "orange", "pear"}));
}

TEST(ExternalSortTest, SpillingSortMatchesStdSort) {
  // A tiny budget forces many runs and a real k-way merge.
  ExternalSorter sorter(SmallBudget(4096));
  Rng rng(5);
  std::vector<std::string> expected;
  for (int i = 0; i < 5000; ++i) {
    const std::string rec = StringPrintf(
        "%08llu", static_cast<unsigned long long>(rng.Uniform(1000000)));
    expected.push_back(rec);
    ASSERT_TRUE(sorter.Add(rec).ok());
  }
  EXPECT_GT(sorter.spilled_runs(), 1u);
  EXPECT_EQ(sorter.record_count(), 5000u);
  std::sort(expected.begin(), expected.end());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()), expected);
}

TEST(ExternalSortTest, DuplicatesPreserved) {
  ExternalSorter sorter(SmallBudget(256));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sorter.Add("same-record").ok());
  }
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  const auto out = Drain(stream->get());
  EXPECT_EQ(out.size(), 100u);
  for (const auto& r : out) {
    EXPECT_EQ(r, "same-record");
  }
}

TEST(ExternalSortTest, BinaryRecordsWithEmbeddedZeros) {
  ExternalSorter sorter(SmallBudget(128));
  const std::string a("a\0x", 3);
  const std::string b("a\0y", 3);
  const std::string empty;
  ASSERT_TRUE(sorter.Add(b).ok());
  ASSERT_TRUE(sorter.Add(empty).ok());
  ASSERT_TRUE(sorter.Add(a).ok());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()),
            (std::vector<std::string>{empty, a, b}));
}

TEST(ExternalSortTest, AddAfterFinishFails) {
  ExternalSorter sorter(SmallBudget(1024));
  ASSERT_TRUE(sorter.Add("x").ok());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(sorter.Add("y").IsInvalidArgument());
}

TEST(ExternalSortTest, LongRecordsSpill) {
  ExternalSorter sorter(SmallBudget(8192));
  Rng rng(9);
  std::vector<std::string> expected;
  for (int i = 0; i < 200; ++i) {
    std::string rec(500 + rng.Uniform(500), 'a');
    for (auto& c : rec) {
      c = static_cast<char>('a' + rng.Uniform(26));
    }
    expected.push_back(rec);
    ASSERT_TRUE(sorter.Add(rec).ok());
  }
  std::sort(expected.begin(), expected.end());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()), expected);
}

TEST(ExternalSortTest, SortedInputStaysSorted) {
  ExternalSorter sorter(SmallBudget(1024));
  std::vector<std::string> expected;
  for (int i = 0; i < 1000; ++i) {
    const std::string rec = StringPrintf("%06d", i);
    expected.push_back(rec);
    ASSERT_TRUE(sorter.Add(rec).ok());
  }
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()), expected);
}

}  // namespace
}  // namespace fuzzymatch

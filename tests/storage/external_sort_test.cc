#include "storage/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace fuzzymatch {
namespace {

std::vector<std::string> Drain(SortedStream* stream) {
  std::vector<std::string> out;
  std::string rec;
  for (;;) {
    auto more = stream->Next(&rec);
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !*more) break;
    out.push_back(rec);
  }
  return out;
}

ExternalSorter::Options SmallBudget(size_t bytes) {
  ExternalSorter::Options opt;
  opt.memory_budget_bytes = bytes;
  opt.temp_dir = ::testing::TempDir();
  return opt;
}

TEST(ExternalSortTest, EmptyInput) {
  ExternalSorter sorter(SmallBudget(1 << 20));
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(Drain(stream->get()).empty());
}

TEST(ExternalSortTest, InMemorySort) {
  ExternalSorter sorter(SmallBudget(1 << 20));
  for (const char* s : {"pear", "apple", "orange", "banana"}) {
    ASSERT_TRUE(sorter.Add(s).ok());
  }
  EXPECT_EQ(sorter.spilled_runs(), 0u);
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()),
            (std::vector<std::string>{"apple", "banana", "orange", "pear"}));
}

TEST(ExternalSortTest, SpillingSortMatchesStdSort) {
  // A tiny budget forces many runs and a real k-way merge.
  ExternalSorter sorter(SmallBudget(4096));
  Rng rng(5);
  std::vector<std::string> expected;
  for (int i = 0; i < 5000; ++i) {
    const std::string rec = StringPrintf(
        "%08llu", static_cast<unsigned long long>(rng.Uniform(1000000)));
    expected.push_back(rec);
    ASSERT_TRUE(sorter.Add(rec).ok());
  }
  EXPECT_GT(sorter.spilled_runs(), 1u);
  EXPECT_EQ(sorter.record_count(), 5000u);
  std::sort(expected.begin(), expected.end());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()), expected);
}

TEST(ExternalSortTest, DuplicatesPreserved) {
  ExternalSorter sorter(SmallBudget(256));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sorter.Add("same-record").ok());
  }
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  const auto out = Drain(stream->get());
  EXPECT_EQ(out.size(), 100u);
  for (const auto& r : out) {
    EXPECT_EQ(r, "same-record");
  }
}

TEST(ExternalSortTest, BinaryRecordsWithEmbeddedZeros) {
  ExternalSorter sorter(SmallBudget(128));
  const std::string a("a\0x", 3);
  const std::string b("a\0y", 3);
  const std::string empty;
  ASSERT_TRUE(sorter.Add(b).ok());
  ASSERT_TRUE(sorter.Add(empty).ok());
  ASSERT_TRUE(sorter.Add(a).ok());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()),
            (std::vector<std::string>{empty, a, b}));
}

TEST(ExternalSortTest, AddAfterFinishFails) {
  ExternalSorter sorter(SmallBudget(1024));
  ASSERT_TRUE(sorter.Add("x").ok());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(sorter.Add("y").IsInvalidArgument());
}

TEST(ExternalSortTest, LongRecordsSpill) {
  ExternalSorter sorter(SmallBudget(8192));
  Rng rng(9);
  std::vector<std::string> expected;
  for (int i = 0; i < 200; ++i) {
    std::string rec(500 + rng.Uniform(500), 'a');
    for (auto& c : rec) {
      c = static_cast<char>('a' + rng.Uniform(26));
    }
    expected.push_back(rec);
    ASSERT_TRUE(sorter.Add(rec).ok());
  }
  std::sort(expected.begin(), expected.end());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()), expected);
}

TEST(ExternalSortTest, SortedInputStaysSorted) {
  ExternalSorter sorter(SmallBudget(1024));
  std::vector<std::string> expected;
  for (int i = 0; i < 1000; ++i) {
    const std::string rec = StringPrintf("%06d", i);
    expected.push_back(rec);
    ASSERT_TRUE(sorter.Add(rec).ok());
  }
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()), expected);
}

/// A fresh empty directory under the gtest temp root, for tests that
/// count spill files.
std::string FreshTempDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

size_t FileCount(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

ExternalSorter::Options BudgetInDir(size_t bytes, const std::string& dir) {
  ExternalSorter::Options opt;
  opt.memory_budget_bytes = bytes;
  opt.temp_dir = dir;
  return opt;
}

// Regression: spill names once keyed on pid + run number only, so two
// spilling sorters alive in one process overwrote each other's run files.
// The per-process sorter id makes them disjoint.
TEST(ExternalSortTest, ConcurrentSortersShareTempDirWithoutCollision) {
  const std::string dir = FreshTempDir("extsort_collision");
  constexpr int kSorters = 2;
  constexpr int kRecords = 2000;
  std::vector<std::unique_ptr<ExternalSorter>> sorters;
  for (int s = 0; s < kSorters; ++s) {
    sorters.push_back(
        std::make_unique<ExternalSorter>(BudgetInDir(4096, dir)));
  }
  // Interleave from concurrent threads so runs of both sorters land in
  // the directory at the same time.
  std::vector<std::thread> threads;
  for (int s = 0; s < kSorters; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(100 + s);
      for (int i = 0; i < kRecords; ++i) {
        ASSERT_TRUE(
            sorters[s]
                ->Add(StringPrintf(
                    "s%d-%08llu", s,
                    static_cast<unsigned long long>(rng.Uniform(1000000))))
                .ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int s = 0; s < kSorters; ++s) {
    ASSERT_GT(sorters[s]->spilled_runs(), 1u);
    // Rebuild this sorter's oracle.
    Rng rng(100 + s);
    std::vector<std::string> expected;
    for (int i = 0; i < kRecords; ++i) {
      expected.push_back(StringPrintf(
          "s%d-%08llu", s,
          static_cast<unsigned long long>(rng.Uniform(1000000))));
    }
    std::sort(expected.begin(), expected.end());
    auto stream = sorters[s]->Finish();
    ASSERT_TRUE(stream.ok());
    EXPECT_EQ(Drain(stream->get()), expected) << "sorter " << s;
  }
  sorters.clear();
  EXPECT_EQ(FileCount(dir), 0u);
}

TEST(ExternalSortTest, SingleRecordLargerThanBudget) {
  ExternalSorter sorter(SmallBudget(64));
  const std::string big(10000, 'z');
  ASSERT_TRUE(sorter.Add("small").ok());
  ASSERT_TRUE(sorter.Add(big).ok());
  ASSERT_TRUE(sorter.Add("a").ok());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()),
            (std::vector<std::string>{"a", "small", big}));
}

TEST(ExternalSortTest, EmbeddedNulsSpanningSpillBoundary) {
  // Records full of NUL bytes sized so every spill boundary falls inside
  // one: length-prefixed run framing must not treat them as terminators.
  ExternalSorter sorter(SmallBudget(300));
  Rng rng(17);
  std::vector<std::string> expected;
  for (int i = 0; i < 300; ++i) {
    std::string rec(120, '\0');
    rec[0] = static_cast<char>(rng.Uniform(256));
    rec[60] = '\0';
    rec[119] = static_cast<char>(rng.Uniform(256));
    expected.push_back(rec);
    ASSERT_TRUE(sorter.Add(rec).ok());
  }
  EXPECT_GT(sorter.spilled_runs(), 1u);
  std::stable_sort(expected.begin(), expected.end());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()), expected);
}

TEST(ExternalSortTest, DuplicateKeysAcrossRuns) {
  // The same handful of keys recurs in every spilled run; the k-way merge
  // must emit every copy, matching the stable-sort oracle.
  ExternalSorter sorter(SmallBudget(256));
  std::vector<std::string> expected;
  for (int i = 0; i < 1000; ++i) {
    const std::string rec = StringPrintf("key-%02d", i % 7);
    expected.push_back(rec);
    ASSERT_TRUE(sorter.Add(rec).ok());
  }
  EXPECT_GT(sorter.spilled_runs(), 1u);
  std::stable_sort(expected.begin(), expected.end());
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(stream->get()), expected);
}

TEST(ExternalSortTest, SpillFilesRemovedAfterDrain) {
  const std::string dir = FreshTempDir("extsort_drain");
  {
    ExternalSorter sorter(BudgetInDir(512, dir));
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(sorter.Add(StringPrintf("%05d", 499 - i)).ok());
    }
    ASSERT_GT(sorter.spilled_runs(), 1u);
    EXPECT_GT(FileCount(dir), 1u);
    auto stream = sorter.Finish();
    ASSERT_TRUE(stream.ok());
    EXPECT_EQ(Drain(stream->get()).size(), 500u);
  }
  EXPECT_EQ(FileCount(dir), 0u);
}

// Regression: abandoning a spilling sorter without calling Finish() (the
// builder's error paths do this) must not leave run files behind.
TEST(ExternalSortTest, SpillFilesRemovedWhenAbandonedWithoutFinish) {
  const std::string dir = FreshTempDir("extsort_abandon");
  {
    ExternalSorter sorter(BudgetInDir(512, dir));
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(sorter.Add(StringPrintf("%05d", i)).ok());
    }
    ASSERT_GT(sorter.spilled_runs(), 1u);
    EXPECT_GT(FileCount(dir), 1u);
  }
  EXPECT_EQ(FileCount(dir), 0u);
}

// Abandoning the merge stream mid-drain must also clean up.
TEST(ExternalSortTest, SpillFilesRemovedWhenStreamAbandonedMidDrain) {
  const std::string dir = FreshTempDir("extsort_middrain");
  {
    ExternalSorter sorter(BudgetInDir(512, dir));
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(sorter.Add(StringPrintf("%05d", i)).ok());
    }
    auto stream = sorter.Finish();
    ASSERT_TRUE(stream.ok());
    std::string rec;
    ASSERT_TRUE((*stream)->Next(&rec).ok());  // read one record, then drop
  }
  EXPECT_EQ(FileCount(dir), 0u);
}

}  // namespace
}  // namespace fuzzymatch

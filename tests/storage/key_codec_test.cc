#include "storage/key_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

namespace fuzzymatch {
namespace {

TEST(KeyCodecTest, StringRoundTrip) {
  for (const std::string& s :
       {std::string(""), std::string("abc"), std::string("with space"),
        std::string("emb\0edded", 9), std::string("\0\0", 2),
        std::string("trailing\0", 9)}) {
    KeyEncoder enc;
    enc.AppendString(s);
    KeyDecoder dec(enc.key());
    auto out = dec.ReadString();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, s);
    EXPECT_TRUE(dec.Done());
  }
}

TEST(KeyCodecTest, IntRoundTrip) {
  KeyEncoder enc;
  enc.AppendU32(0).AppendU32(0xFFFFFFFFu).AppendU64(1ull << 40).AppendU8(7);
  KeyDecoder dec(enc.key());
  EXPECT_EQ(*dec.ReadU32(), 0u);
  EXPECT_EQ(*dec.ReadU32(), 0xFFFFFFFFu);
  EXPECT_EQ(*dec.ReadU64(), 1ull << 40);
  EXPECT_EQ(*dec.ReadU8(), 7);
  EXPECT_TRUE(dec.Done());
}

TEST(KeyCodecTest, CompositeRoundTrip) {
  KeyEncoder enc;
  enc.AppendString("boei").AppendU32(2).AppendU32(0).AppendU32(12345);
  KeyDecoder dec(enc.key());
  EXPECT_EQ(*dec.ReadString(), "boei");
  EXPECT_EQ(*dec.ReadU32(), 2u);
  EXPECT_EQ(*dec.ReadU32(), 0u);
  EXPECT_EQ(*dec.ReadU32(), 12345u);
}

std::string EncodePair(const std::string& s, uint32_t v) {
  KeyEncoder enc;
  enc.AppendString(s).AppendU32(v);
  return enc.Take();
}

TEST(KeyCodecTest, ByteOrderMatchesComponentOrder) {
  // Property check: encoded comparison == lexicographic component
  // comparison, across tricky string pairs.
  const std::vector<std::pair<std::string, uint32_t>> keys = {
      {"", 0},          {"", 5},         {"a", 0},
      {"a", 100},       {"a\x01", 0},    {std::string("a\0b", 3), 0},
      {"aa", 0},        {"ab", 0},       {"b", 0},
      {"b", 4294967295u}, {"ba", 1},
  };
  for (const auto& x : keys) {
    for (const auto& y : keys) {
      const bool logical = std::tie(x.first, x.second) <
                           std::tie(y.first, y.second);
      const bool encoded = EncodePair(x.first, x.second) <
                           EncodePair(y.first, y.second);
      EXPECT_EQ(logical, encoded)
          << "(" << x.first << "," << x.second << ") vs (" << y.first << ","
          << y.second << ")";
    }
  }
}

TEST(KeyCodecTest, PrefixStringsSortBeforeExtensions) {
  // ("a","b") must sort before ("ab",""): the terminator guarantees it.
  KeyEncoder e1, e2;
  e1.AppendString("a").AppendString("b");
  e2.AppendString("ab").AppendString("");
  EXPECT_LT(e1.key(), e2.key());
}

TEST(KeyCodecTest, U32BigEndianOrder) {
  std::vector<uint32_t> values = {0, 1, 255, 256, 65535, 1u << 20,
                                  0xFFFFFFFFu};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    KeyEncoder a, b;
    a.AppendU32(values[i]);
    b.AppendU32(values[i + 1]);
    EXPECT_LT(a.key(), b.key()) << values[i];
  }
}

TEST(KeyCodecTest, DecoderRejectsCorruptInput) {
  // Unterminated string.
  KeyDecoder d1("abc");
  EXPECT_TRUE(d1.ReadString().status().IsCorruption());
  // Bad escape.
  const std::string bad{'\x00', '\x07'};
  KeyDecoder d2(bad);
  EXPECT_TRUE(d2.ReadString().status().IsCorruption());
  // Truncated ints.
  KeyDecoder d3("ab");
  EXPECT_TRUE(d3.ReadU32().status().IsCorruption());
  KeyDecoder d4("abcd");
  EXPECT_TRUE(d4.ReadU64().status().IsCorruption());
  KeyDecoder d5("");
  EXPECT_TRUE(d5.ReadU8().status().IsCorruption());
}

TEST(KeyCodecTest, TakeMovesKeyOut) {
  KeyEncoder enc;
  enc.AppendU8(1);
  const std::string k = enc.Take();
  EXPECT_EQ(k.size(), 1u);
}

}  // namespace
}  // namespace fuzzymatch

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

namespace fuzzymatch {
namespace {

TEST(BufferPoolTest, NewPageIsZeroedAndPinned) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 4);
  auto guard = pool.New();
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->page_id(), 0u);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(guard->data()[i], 0);
  }
}

TEST(BufferPoolTest, FetchHitsCache) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 4);
  {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = 'a';
    guard->MarkDirty();
  }
  auto g1 = pool.Fetch(0);
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(g1->data()[0], 'a');
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 2);
  // Create 3 pages through a 2-frame pool; page 0 must be evicted.
  for (int i = 0; i < 3; ++i) {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = static_cast<char>('a' + i);
    guard->MarkDirty();
  }
  EXPECT_GE(pool.evictions(), 1u);
  // Re-fetch page 0: contents must have survived via the pager.
  auto g = pool.Fetch(0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->data()[0], 'a');
}

TEST(BufferPoolTest, AllFramesPinnedFailsGracefully) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 2);
  auto g0 = pool.New();
  auto g1 = pool.New();
  ASSERT_TRUE(g0.ok() && g1.ok());
  auto g2 = pool.New();
  EXPECT_FALSE(g2.ok());
  EXPECT_TRUE(g2.status().IsResourceExhausted());
  // Releasing a pin frees a frame.
  g0->Release();
  auto g3 = pool.New();
  EXPECT_TRUE(g3.ok());
}

TEST(BufferPoolTest, PinCountsAllowMultipleGuards) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 2);
  auto g0 = pool.New();
  ASSERT_TRUE(g0.ok());
  auto g0b = pool.Fetch(0);
  ASSERT_TRUE(g0b.ok());
  g0->Release();
  // Still pinned by g0b: filling the pool with one more page then asking
  // for another must fail rather than evict page 0.
  auto g1 = pool.New();
  ASSERT_TRUE(g1.ok());
  auto g2 = pool.New();
  EXPECT_FALSE(g2.ok());
}

TEST(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 4);
  {
    auto guard = pool.New();
    ASSERT_TRUE(guard.ok());
    guard->data()[7] = 'z';
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  // Read through the pager directly, bypassing the pool.
  std::vector<char> buf(kPageSize);
  ASSERT_TRUE(pager->ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf[7], 'z');
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 2);
  for (int i = 0; i < 3; ++i) {
    auto g = pool.New();
    ASSERT_TRUE(g.ok());
  }
  // Pages 0 and 1: 0 was evicted for page 2 (LRU). Frames now hold {1, 2}.
  const uint64_t misses_before = pool.misses();
  auto g1 = pool.Fetch(1);
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(pool.misses(), misses_before) << "page 1 should still be cached";
  auto g0 = pool.Fetch(0);
  ASSERT_TRUE(g0.ok());
  EXPECT_EQ(pool.misses(), misses_before + 1) << "page 0 was evicted";
}

TEST(BufferPoolTest, MoveSemanticsOfGuard) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 2);
  auto g = pool.New();
  ASSERT_TRUE(g.ok());
  PageGuard moved = std::move(*g);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(g->valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
  // Frame is free again.
  auto g2 = pool.New();
  auto g3 = pool.New();
  EXPECT_TRUE(g2.ok());
  EXPECT_TRUE(g3.ok());
}

TEST(BufferPoolTest, PageViewThroughGuard) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 2);
  auto g = pool.New();
  ASSERT_TRUE(g.ok());
  g->page().Init(PageType::kHeap);
  g->page().Insert("record");
  g->MarkDirty();
  EXPECT_EQ(*g->page().Get(0), "record");
}

}  // namespace
}  // namespace fuzzymatch

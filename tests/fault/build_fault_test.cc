// Fault injection for the ETI build path: every spill/merge/write
// failpoint must surface as a clean error Status from EtiBuilder::Build —
// serial and parallel alike — and must never leak spill-run files into
// the temp directory, even when the failure strikes mid-pipeline with
// workers blocked on queues.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "eti/eti_builder.h"
#include "fault/failpoint.h"
#include "gen/customer_gen.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

using fault::FailpointSpec;
using fault::Failpoints;

class BuildFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out (-DFM_FAILPOINTS=OFF)";
    }
    Failpoints::Global().Reset();
  }

  void TearDown() override {
    if (fault::kEnabled) {
      Failpoints::Global().Reset();
    }
  }

  /// A fresh empty spill directory so emptiness-after-failure is exact.
  std::string FreshTempDir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("build_fault_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
  }

  size_t FileCount(const std::string& dir) {
    size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      (void)entry;
      ++n;
    }
    return n;
  }

  /// Builds a spilling ETI over a fresh in-memory relation with `name`
  /// armed to fail; returns the build status.
  Status BuildWithFault(const std::string& name, int threads,
                        const std::string& temp_dir) {
    auto db = Database::Open(DatabaseOptions{});
    EXPECT_TRUE(db.ok());
    auto table = (*db)->CreateTable("customers",
                                    CustomerGenerator::CustomerSchema());
    EXPECT_TRUE(table.ok());
    CustomerGenOptions gen_options;
    gen_options.num_tuples = 500;
    CustomerGenerator generator(gen_options);
    EXPECT_TRUE(generator.Populate(*table).ok());

    if (!name.empty()) {
      Failpoints::Global().Arm(name, FailpointSpec{});
    }
    EtiBuilder::Options options;
    options.params.q = 4;
    options.params.signature_size = 2;
    options.sort_memory_bytes = 16 * 1024;  // force spills
    options.temp_dir = temp_dir;
    options.build_threads = threads;
    const Status status =
        EtiBuilder::Build(db->get(), *table, options).status();
    Failpoints::Global().DisarmAll();
    return status;
  }
};

TEST_F(BuildFaultTest, SpillFailureAbortsCleanlyWithoutLeakingRuns) {
  for (const int threads : {1, 4}) {
    const std::string dir =
        FreshTempDir("spill_t" + std::to_string(threads));
    const Status status = BuildWithFault("extsort.spill", threads, dir);
    EXPECT_TRUE(status.IsIOError()) << status;
    EXPECT_NE(status.ToString().find("extsort.spill"), std::string::npos)
        << status;
    EXPECT_EQ(FileCount(dir), 0u) << "threads=" << threads;
  }
}

TEST_F(BuildFaultTest, FinishFailureAbortsCleanlyWithoutLeakingRuns) {
  for (const int threads : {1, 4}) {
    const std::string dir =
        FreshTempDir("finish_t" + std::to_string(threads));
    const Status status = BuildWithFault("extsort.finish", threads, dir);
    EXPECT_TRUE(status.IsIOError()) << status;
    EXPECT_EQ(FileCount(dir), 0u) << "threads=" << threads;
  }
}

TEST_F(BuildFaultTest, RunReopenFailureAbortsCleanlyWithoutLeakingRuns) {
  for (const int threads : {1, 4}) {
    const std::string dir =
        FreshTempDir("reopen_t" + std::to_string(threads));
    const Status status =
        BuildWithFault("extsort.run_reopen", threads, dir);
    EXPECT_TRUE(status.IsIOError()) << status;
    EXPECT_EQ(FileCount(dir), 0u) << "threads=" << threads;
  }
}

TEST_F(BuildFaultTest, EtiRowWriteFailureAbortsCleanlyWithoutLeakingRuns) {
  for (const int threads : {1, 4}) {
    const std::string dir =
        FreshTempDir("write_t" + std::to_string(threads));
    const Status status =
        BuildWithFault("eti_build.write_row", threads, dir);
    EXPECT_TRUE(status.IsIOError()) << status;
    EXPECT_NE(status.ToString().find("eti_build.write_row"),
              std::string::npos)
        << status;
    EXPECT_EQ(FileCount(dir), 0u) << "threads=" << threads;
  }
}

TEST_F(BuildFaultTest, MidSortWriteFailureInParallelBuild) {
  // Fire deep into the run-write sequence so several partitions already
  // hold spilled runs when the abort fans out.
  const std::string dir = FreshTempDir("midspill");
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
  ASSERT_TRUE(table.ok());
  CustomerGenOptions gen_options;
  gen_options.num_tuples = 800;
  CustomerGenerator generator(gen_options);
  ASSERT_TRUE(generator.Populate(*table).ok());

  FailpointSpec spec;
  spec.fire_on_hit = 9;
  Failpoints::Global().Arm("extsort.spill", spec);
  EtiBuilder::Options options;
  options.params.q = 4;
  options.params.signature_size = 2;
  options.sort_memory_bytes = 16 * 1024;
  options.temp_dir = dir;
  options.build_threads = 4;
  const Status status =
      EtiBuilder::Build(db->get(), *table, options).status();
  Failpoints::Global().DisarmAll();
  EXPECT_TRUE(status.IsIOError()) << status;
  EXPECT_EQ(FileCount(dir), 0u);
}

TEST_F(BuildFaultTest, CleanBuildAfterFaultedOne) {
  // A faulted build must not poison process-wide state: a clean rebuild
  // (fresh database, nothing armed) succeeds in the same process.
  const std::string dir = FreshTempDir("recover");
  EXPECT_FALSE(BuildWithFault("extsort.spill", 4, dir).ok());
  EXPECT_TRUE(BuildWithFault("", 4, dir).ok());
  EXPECT_EQ(FileCount(dir), 0u);
}

}  // namespace
}  // namespace fuzzymatch

// WAL recovery suite: the durability half of DESIGN.md 5j.
//
// The crash-consistency suite (crash_consistency_test.cc) asserts the
// recovered database is *consistent*. With a WAL the contract is
// stronger: zero acknowledged-op loss. This suite kills the process (the
// FileFaults write gate) at every WAL/pager/checkpoint failpoint during
// a maintenance workload, records exactly which operations were
// acknowledged (returned OK) before the lights went out, reopens, and
// asserts the recovered state is EXACTLY the acknowledged prefix:
//
//   - every acknowledged insert is present, fully indexed, and matched;
//   - every acknowledged remove stays removed;
//   - no unacknowledged operation became durable.
//
// Plus the satellite properties: checkpoint write-ordering (data pages
// fsynced before the catalog rewrite), recovery idempotence (a crash
// during replay re-runs it to a byte-identical state), and the orphan
// temp-file / shadow-index sweep at Open().

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/fuzzy_match.h"
#include "fault/failpoint.h"
#include "fault/faulty_env.h"
#include "gen/customer_gen.h"
#include "match/naive_matcher.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

using fault::Action;
using fault::FailpointSpec;
using fault::Failpoints;
using fault::FileFaults;

constexpr size_t kSeedTuples = 120;
constexpr char kStrategy[] = "Q+T_2";

FuzzyMatchConfig TestConfig() {
  FuzzyMatchConfig config;
  config.eti.signature_size = 2;
  config.eti.index_tokens = true;
  return config;
}

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/fm_walrec_" + name + "_" +
         std::to_string(::getpid()) + ".db";
}

void RemoveWithWal(const std::string& path) {
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".wal");
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// One attempted maintenance operation and whether it was acknowledged.
struct OracleOp {
  bool add = false;
  bool acked = false;
  Tid tid = 0;   // acked inserts: assigned tid; removes: target tid
  Row row;       // inserts: the row
};

/// The failpoints whose kill must not lose an acknowledged op. Subset of
/// fault::kWritePathFailpoints: the log itself, the txn commit, the
/// checkpoint pipeline, and the pager writes under both.
const char* const kDurabilityFailpoints[] = {
    "wal.append",            //
    "wal.fsync",             //
    "wal.commit",            //
    "wal.truncate",          //
    "db.checkpoint",         //
    "db.checkpoint_barrier", //
    "pager.write_page",      //
    "pager.sync",            //
    "bufferpool.flush_all",  //
    "bufferpool.evict_dirty" // needs a small pool to fire
};

bool NeedsSmallPool(const std::string& name) {
  return name == "bufferpool.evict_dirty";
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out (-DFM_FAILPOINTS=OFF)";
    }
    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
  }

  void TearDown() override {
    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
  }

  /// Durable pre-crash state: reference relation + built ETI,
  /// checkpointed. Copied (without its .wal, which a checkpoint leaves
  /// empty anyway) by every kill run.
  static const std::string& SeedDbPath() {
    static const std::string path = [] {
      const std::string p = TempPath("seed");
      RemoveWithWal(p);
      DatabaseOptions options;
      options.path = p;
      auto db = Database::Open(options);
      FM_CHECK(db.ok());
      auto table = (*db)->CreateTable("customers",
                                      CustomerGenerator::CustomerSchema());
      FM_CHECK(table.ok());
      CustomerGenOptions gen_options;
      gen_options.num_tuples = kSeedTuples;
      CustomerGenerator gen(gen_options);
      FM_CHECK(gen.Populate(*table).ok());
      auto matcher =
          FuzzyMatcher::Build(db->get(), "customers", TestConfig());
      FM_CHECK(matcher.ok());
      FM_CHECK((*db)->Checkpoint().ok());
      return p;
    }();
    return path;
  }

  /// Copies the seed into a fresh work pair (no stale .wal).
  static std::string FreshWorkCopy(const std::string& tag) {
    const std::string work = TempPath(tag);
    RemoveWithWal(work);
    std::filesystem::copy_file(SeedDbPath(), work);
    return work;
  }

  /// The maintenance workload: inserts and removes with unique,
  /// recognizable names, a checkpoint in the middle so the checkpoint
  /// and log-truncation failpoints get a chance to fire, then more ops.
  /// Every attempt is recorded with its acknowledgement.
  static std::vector<OracleOp> RunWorkload(Database* db,
                                           FuzzyMatcher* matcher) {
    std::vector<OracleOp> oracle;
    const auto crashed = [] { return FileFaults::Global().crashed(); };

    const auto try_insert = [&](int i) {
      Row row{"walins" + std::to_string(i) + " corporation",
              std::string("seattle"), std::string("wa"),
              std::string("98" + std::to_string(100 + i))};
      OracleOp op;
      op.add = true;
      op.row = row;
      auto tid = matcher->InsertReferenceTuple(row);
      op.acked = tid.ok();
      if (tid.ok()) op.tid = *tid;
      oracle.push_back(std::move(op));
    };
    const auto try_remove = [&](Tid tid) {
      OracleOp op;
      op.tid = tid;
      op.acked = matcher->RemoveReferenceTuple(tid).ok();
      oracle.push_back(std::move(op));
    };

    for (int i = 0; i < 4 && !crashed(); ++i) try_insert(i);
    for (Tid tid = 0; tid < 2 && !crashed(); ++tid) try_remove(tid);
    if (!crashed()) (void)db->Checkpoint();
    for (int i = 4; i < 8 && !crashed(); ++i) try_insert(i);
    if (!crashed()) try_remove(2);
    if (!crashed()) (void)db->Checkpoint();
    return oracle;
  }

  /// Reopens `path` and asserts the recovered state is exactly the
  /// acknowledged prefix of `oracle`. With `strict_unacked` false the
  /// audit only demands atomicity of unacknowledged ops — a torn log
  /// write can physically persist the complete frames of a commit whose
  /// acknowledgement never reached the client (the classic ambiguous
  /// commit), so "absent" is too strong there; "all or nothing" is not.
  void AuditExactPrefix(const std::string& path,
                        const std::vector<OracleOp>& oracle,
                        bool strict_unacked = true) {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    auto ref_or = (*db)->GetTable("customers");
    ASSERT_TRUE(ref_or.ok()) << ref_or.status();
    auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
    ASSERT_TRUE(matcher.ok()) << matcher.status();

    // The independent oracle: a NaiveMatcher over the recovered relation
    // (full scan, no index) must agree with the ETI on every acked
    // insert — catching a recovery that repaired the index but not the
    // relation, or vice versa.
    NaiveMatcher naive(*ref_or, &(*matcher)->weights(),
                       NaiveMatcher::SimilarityKind::kFms, MatcherOptions{});
    ASSERT_TRUE(naive.Prepare().ok());

    // Surviving tuples, by tid and by name (workload names are unique).
    std::map<Tid, Row> live;
    std::set<std::string> live_names;
    {
      Table::Scanner scanner = (*ref_or)->Scan();
      Tid tid;
      Row row;
      for (;;) {
        auto more = scanner.Next(&tid, &row);
        ASSERT_TRUE(more.ok()) << more.status();
        if (!*more) break;
        if (row[0].has_value()) live_names.insert(*row[0]);
        live[tid] = std::move(row);
      }
    }

    for (size_t i = 0; i < oracle.size(); ++i) {
      const OracleOp& op = oracle[i];
      SCOPED_TRACE("op " + std::to_string(i) + (op.add ? " insert" : " remove")
                   + (op.acked ? " acked" : " unacked"));
      if (op.add && op.acked) {
        // Acknowledged insert: present, identical, and matchable.
        auto it = live.find(op.tid);
        ASSERT_NE(it, live.end()) << "acked insert lost";
        EXPECT_EQ(it->second, op.row);
        auto matches = (*matcher)->FindMatches(op.row);
        ASSERT_TRUE(matches.ok()) << matches.status();
        ASSERT_FALSE(matches->empty()) << "acked insert not matchable";
        bool found = false;
        for (const Match& m : *matches) found |= m.tid == op.tid;
        EXPECT_TRUE(found) << "acked insert missing from its own matches";
        EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
        auto oracle_matches = naive.FindMatches(op.row);
        ASSERT_TRUE(oracle_matches.ok()) << oracle_matches.status();
        ASSERT_FALSE(oracle_matches->empty());
        EXPECT_EQ((*oracle_matches)[0].tid, op.tid)
            << "NaiveMatcher oracle disagrees with the recovered index";
        EXPECT_DOUBLE_EQ((*oracle_matches)[0].similarity, 1.0);
      } else if (op.add && !op.acked) {
        ASSERT_TRUE(op.row[0].has_value());
        if (strict_unacked) {
          // Unacknowledged insert: must not have become durable.
          EXPECT_EQ(live_names.count(*op.row[0]), 0u)
              << "unacked insert survived the crash";
        } else if (live_names.count(*op.row[0]) != 0) {
          // The torn write persisted this commit anyway. That is legal,
          // but only atomically: the row must be intact and matchable.
          Tid tid = 0;
          bool found_row = false;
          for (const auto& [t, row] : live) {
            if (row[0] == op.row[0]) {
              EXPECT_EQ(row, op.row) << "unacked insert persisted torn";
              tid = t;
              found_row = true;
            }
          }
          ASSERT_TRUE(found_row);
          auto matches = (*matcher)->FindMatches(op.row);
          ASSERT_TRUE(matches.ok()) << matches.status();
          bool indexed = false;
          for (const Match& m : *matches) indexed |= m.tid == tid;
          EXPECT_TRUE(indexed)
              << "unacked insert persisted but is not indexed";
        }
      } else if (!op.add && op.acked) {
        EXPECT_EQ(live.count(op.tid), 0u) << "acked remove resurrected";
      } else if (strict_unacked) {
        // Unacknowledged remove: the seed tuple must still be there.
        EXPECT_EQ(live.count(op.tid), 1u)
            << "unacked remove became durable";
      }
    }
  }

  /// One kill run: arm `name`, run the workload until the gate closes,
  /// tear down like a dying process, reopen, audit.
  void KillAndAudit(const std::string& name, Action action,
                    bool strict_unacked = true) {
    SCOPED_TRACE("failpoint=" + name);
    const std::string work = FreshWorkCopy("work");
    std::vector<OracleOp> oracle;

    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
    {
      DatabaseOptions options;
      options.path = work;
      if (NeedsSmallPool(name)) {
        options.pool_pages = 16;
      }
      auto db = Database::Open(options);
      ASSERT_TRUE(db.ok()) << db.status();
      auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
      ASSERT_TRUE(matcher.ok()) << matcher.status();

      FailpointSpec spec;
      spec.action = action;
      Failpoints::Global().Arm(name, spec);
      oracle = RunWorkload(db->get(), matcher->get());
      EXPECT_TRUE(FileFaults::Global().crashed())
          << "workload never reached failpoint " << name;
    }
    FileFaults::Global().Reset();
    Failpoints::Global().DisarmAll();
    AuditExactPrefix(work, oracle, strict_unacked);
    RemoveWithWal(work);
  }
};

TEST_F(WalRecoveryTest, AckedOpsSurviveEveryDurabilityFailpointKill) {
  for (const char* name : kDurabilityFailpoints) {
    KillAndAudit(name, Action::kCrash);
  }
}

TEST_F(WalRecoveryTest, AckedOpsSurviveTornLogWrite) {
  // kCrashTorn tears the next physical write in half before closing the
  // gate: the log grows a torn tail that replay must discard, without
  // losing the acknowledged prefix before it. The first half of the
  // torn flush can contain complete frames — including the commit of
  // the op that got an error back — so unacked ops are audited for
  // atomicity rather than strict absence.
  KillAndAudit("wal.append", Action::kCrashTorn, /*strict_unacked=*/false);
}

TEST_F(WalRecoveryTest, CheckpointBarrierOrdering) {
  // The write-ordering regression test: the barrier failpoint sits
  // between the data-page flush (+fsync) and the catalog rewrite. A kill
  // there leaves the OLD catalog over fully flushed data pages — the
  // window that silently corrupted the store when the catalog was
  // rewritten first. Acked maintenance must survive via the log.
  KillAndAudit("db.checkpoint_barrier", Action::kCrash);
}

TEST_F(WalRecoveryTest, RecoveryIsIdempotentAndByteIdentical) {
  // Build a crashed pair (main file at the last checkpoint, log holding
  // acked commits): kill at the checkpoint entry, so nothing after the
  // seed state reached the main file.
  const std::string crashed = FreshWorkCopy("idem");
  std::vector<OracleOp> oracle;
  {
    DatabaseOptions options;
    options.path = crashed;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
    ASSERT_TRUE(matcher.ok());
    FailpointSpec spec;
    spec.action = Action::kCrash;
    Failpoints::Global().Arm("db.checkpoint", spec);
    oracle = RunWorkload(db->get(), matcher->get());
    ASSERT_TRUE(FileFaults::Global().crashed());
  }
  FileFaults::Global().Reset();
  Failpoints::Global().DisarmAll();
  size_t acked = 0;
  for (const OracleOp& op : oracle) acked += op.acked ? 1 : 0;
  ASSERT_GT(acked, 0u) << "workload acked nothing before the kill";

  // Two identical copies of the crashed pair.
  const std::string a = TempPath("idem_a");
  const std::string b = TempPath("idem_b");
  RemoveWithWal(a);
  RemoveWithWal(b);
  std::filesystem::copy_file(crashed, a);
  std::filesystem::copy_file(crashed + ".wal", a + ".wal");
  std::filesystem::copy_file(crashed, b);
  std::filesystem::copy_file(crashed + ".wal", b + ".wal");

  // Copy A: recover in one clean pass.
  {
    DatabaseOptions options;
    options.path = a;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_GT((*db)->replay_stats().commits_applied, 0u);
  }

  // Copy B: crash in the middle of replay, then recover again. Replay
  // never mutates the log, so the second pass starts from scratch.
  {
    FailpointSpec spec;
    spec.action = Action::kCrash;
    spec.fire_on_hit = 2;  // let one page land, then die
    Failpoints::Global().Arm("wal.replay", spec);
    DatabaseOptions options;
    options.path = b;
    auto db = Database::Open(options);
    EXPECT_FALSE(db.ok()) << "open should die mid-replay";
  }
  FileFaults::Global().Reset();
  Failpoints::Global().DisarmAll();
  {
    DatabaseOptions options;
    options.path = b;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_GT((*db)->replay_stats().commits_applied, 0u);
  }

  // Same bytes, both files: replaying the same log once or one-and-a-half
  // times lands in the identical durable state.
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(b));
  EXPECT_EQ(ReadFileBytes(a + ".wal"), ReadFileBytes(b + ".wal"));

  // And the state is the acknowledged prefix, as always.
  AuditExactPrefix(a, oracle);
  AuditExactPrefix(b, oracle);
  RemoveWithWal(crashed);
  RemoveWithWal(a);
  RemoveWithWal(b);
}

TEST_F(WalRecoveryTest, OpenSweepsOrphanSpillFilesAndShadowIndexes) {
  const std::string work = FreshWorkCopy("sweep");
  const std::string dir =
      std::filesystem::path(work).parent_path().string();
  // An orphan spill run owned by a pid that cannot exist, and a live one
  // owned by this process (parallel builds must not be swept).
  const std::string dead_spill = dir + "/fm_sort_run_99999999_7_0.tmp";
  const std::string live_spill = dir + "/fm_sort_run_" +
                                 std::to_string(::getpid()) + "_7_0.tmp";
  std::ofstream(dead_spill) << "orphan";
  std::ofstream(live_spill) << "mine";

  // A shadow table + index pair, as left by a rebuild that crashed
  // before its atomic swap.
  const std::string shadow =
      std::string("customers_eti_") + kStrategy + "~rebuild";
  {
    DatabaseOptions options;
    options.path = work;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        (*db)->CreateTable(shadow, CustomerGenerator::CustomerSchema()).ok());
    ASSERT_TRUE((*db)->CreateIndex(shadow + "_idx").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }

  {
    DatabaseOptions options;
    options.path = work;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_TRUE((*db)->GetTable(shadow).status().IsNotFound())
        << "orphan shadow table survived reopen";
    EXPECT_TRUE((*db)->GetIndex(shadow + "_idx").status().IsNotFound())
        << "orphan shadow index survived reopen";
    // The live store still opens as a matcher.
    auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
    EXPECT_TRUE(matcher.ok()) << matcher.status();
  }
  EXPECT_FALSE(std::filesystem::exists(dead_spill))
      << "dead-pid spill file survived reopen";
  EXPECT_TRUE(std::filesystem::exists(live_spill))
      << "live-pid spill file was swept";
  std::filesystem::remove(live_spill);
  RemoveWithWal(work);
}

}  // namespace
}  // namespace fuzzymatch

// Randomized differential harness for incremental maintenance under
// fault injection: replay seeded insert/delete/query interleavings
// against the ETI-backed matcher, injecting one-shot write faults into
// randomly chosen failpoints, retrying failed operations, and requiring
// the surviving state to answer exactly like the exhaustive NaiveMatcher
// oracle. Divergence — a ghost match, a missing tuple, a similarity that
// drifts — means a fault left the index inconsistent.
//
// The harness also runs with failpoints compiled out (Release): arming is
// then a no-op and the same schedules verify fault-free maintenance.
//
// Flake guard: every seeded scope carries a SCOPED_TRACE with the seed
// and the FM_TEST_SEED rerun recipe; FM_TEST_SEED=<n> narrows the run.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fuzzy_match.h"
#include "fault/failpoint.h"
#include "gen/customer_gen.h"
#include "match/naive_matcher.h"
#include "support/seed.h"

namespace fuzzymatch {
namespace {

using fault::Action;
using fault::FailpointSpec;
using fault::Failpoints;

constexpr size_t kBaseTuples = 120;
constexpr size_t kOpsPerSeed = 36;

// Write-path failpoints a maintenance operation can cross; the harness
// arms a random one (error action, one-shot) before a random subset of
// the mutations.
const char* const kFaultMenu[] = {
    "heap.insert",    "heap.delete",      "btree.put",
    "btree.delete",   "table.insert",     "table.update",
    "eti.mutate_entry", "eti.index_tuple", "eti.unindex_tuple",
};

class DifferentialMaintenanceTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Global().Reset(); }

  void BuildFixture(uint64_t seed) {
    Failpoints::Global().Reset();
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table =
        db_->CreateTable("customers", CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions gen_options;
    gen_options.seed = seed;
    gen_options.num_tuples = kBaseTuples;
    CustomerGenerator gen(gen_options);
    ASSERT_TRUE(gen.Populate(ref_).ok());

    FuzzyMatchConfig config;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    config.matcher.k = 5;
    auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
    ASSERT_TRUE(matcher.ok());
    matcher_ = std::move(*matcher);

    shadow_.clear();
    for (Tid tid = 0; tid < kBaseTuples; ++tid) {
      auto row = ref_->Get(tid);
      ASSERT_TRUE(row.ok());
      shadow_[tid] = *row;
    }
  }

  Tid RandomLiveTid(Rng& rng) const {
    auto it = shadow_.begin();
    std::advance(it, rng.Uniform(shadow_.size()));
    return it->first;
  }

  /// Arms a random failpoint from the menu (error action, one-shot) with
  /// probability 1/2. Returns true if something was armed.
  bool MaybeArmFault(Rng& rng) {
    if (!rng.Bernoulli(0.5)) {
      return false;
    }
    const size_t n = sizeof(kFaultMenu) / sizeof(kFaultMenu[0]);
    FailpointSpec spec;
    spec.action = Action::kError;
    // Vary the trigger depth so faults land at different points inside a
    // multi-coordinate maintenance operation.
    spec.fire_on_hit = 1 + rng.Uniform(4);
    Failpoints::Global().Arm(kFaultMenu[rng.Uniform(n)], spec);
    return true;
  }

  /// Full differential sweep: every ETI answer must be reproducible by
  /// the exhaustive oracle over the same live relation.
  void DifferentialSweep(Rng& rng) {
    MatcherOptions oracle_options = matcher_->config().matcher;
    oracle_options.k = shadow_.size();  // rank everything
    NaiveMatcher naive(ref_, &matcher_->weights(),
                       NaiveMatcher::SimilarityKind::kFms, oracle_options);
    ASSERT_TRUE(naive.Prepare().ok());

    std::vector<Tid> sample;
    for (const auto& [tid, row] : shadow_) {
      sample.push_back(tid);
    }
    if (sample.size() > 24) {
      rng.Shuffle(sample);
      sample.resize(24);
    }
    for (const Tid probe_tid : sample) {
      const Row& probe = shadow_.at(probe_tid);
      auto eti_matches = matcher_->FindMatches(probe);
      auto oracle = naive.FindMatches(probe);
      ASSERT_TRUE(eti_matches.ok()) << eti_matches.status();
      ASSERT_TRUE(oracle.ok()) << oracle.status();
      ASSERT_FALSE(eti_matches->empty()) << "probe tid " << probe_tid;
      ASSERT_FALSE(oracle->empty());

      // Top-1 must agree exactly: similarity 1.0 on an exact probe of a
      // live tuple, and the same tuple content on both sides.
      EXPECT_DOUBLE_EQ((*eti_matches)[0].similarity, 1.0);
      EXPECT_DOUBLE_EQ((*oracle)[0].similarity, 1.0);
      auto eti_row = matcher_->GetReferenceTuple((*eti_matches)[0].tid);
      auto oracle_row = matcher_->GetReferenceTuple((*oracle)[0].tid);
      ASSERT_TRUE(eti_row.ok()) << eti_row.status();
      ASSERT_TRUE(oracle_row.ok());
      EXPECT_EQ(*eti_row, *oracle_row);

      // Every ETI match must exist in the oracle's full ranking with the
      // identical similarity — no ghost tuples, no drifted scores.
      for (const Match& m : *eti_matches) {
        const auto in_oracle =
            std::find_if(oracle->begin(), oracle->end(),
                         [&](const Match& o) { return o.tid == m.tid; });
        ASSERT_NE(in_oracle, oracle->end())
            << "ETI matched tid " << m.tid
            << " which the oracle does not rank";
        EXPECT_DOUBLE_EQ(in_oracle->similarity, m.similarity)
            << "similarity drift for tid " << m.tid;
      }
    }
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
  std::unique_ptr<FuzzyMatcher> matcher_;
  std::map<Tid, Row> shadow_;
};

TEST_F(DifferentialMaintenanceTest, SeededInterleavingsWithFaultsAndRetry) {
  uint64_t faults_injected_total = 0;
  for (const uint64_t seed :
       test_support::TestSeeds({101, 102, 103, 104, 105})) {
    SCOPED_TRACE(test_support::SeedTrace(seed));
    BuildFixture(seed);
    Rng rng(seed);
    CustomerGenOptions fresh_options;
    fresh_options.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    CustomerGenerator fresh_gen(fresh_options);

    for (size_t op = 0; op < kOpsPerSeed; ++op) {
      const uint64_t dice = rng.Uniform(100);
      if (dice < 55 || shadow_.size() < 40) {
        // Insert: a generated row plus a unique marker token, so exact
        // probes identify it unambiguously.
        Row fresh = fresh_gen.NextRow();
        fresh[0] = "diff" + std::to_string(seed) + "x" +
                   std::to_string(op) + " " + *fresh[0];
        const bool armed = MaybeArmFault(rng);
        auto tid = matcher_->InsertReferenceTuple(fresh);
        if (!tid.ok()) {
          ASSERT_TRUE(armed) << tid.status();  // only injected faults fail
          Failpoints::Global().DisarmAll();
          ++faults_injected_total;
          tid = matcher_->InsertReferenceTuple(fresh);
          ASSERT_TRUE(tid.ok())
              << "retry after injected fault failed: " << tid.status();
        }
        Failpoints::Global().DisarmAll();
        shadow_[*tid] = fresh;
      } else if (dice < 80) {
        // Remove a random live tuple.
        const Tid victim = RandomLiveTid(rng);
        const bool armed = MaybeArmFault(rng);
        Status removed = matcher_->RemoveReferenceTuple(victim);
        if (!removed.ok()) {
          ASSERT_TRUE(armed) << removed;
          Failpoints::Global().DisarmAll();
          ++faults_injected_total;
          removed = matcher_->RemoveReferenceTuple(victim);
          ASSERT_TRUE(removed.ok())
              << "retry after injected fault failed: " << removed;
        }
        Failpoints::Global().DisarmAll();
        shadow_.erase(victim);
      } else {
        // Spot query between mutations: a random live tuple still
        // matches itself exactly.
        const Tid probe_tid = RandomLiveTid(rng);
        auto matches = matcher_->FindMatches(shadow_.at(probe_tid));
        ASSERT_TRUE(matches.ok()) << matches.status();
        ASSERT_FALSE(matches->empty());
        EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
      }
      if ((op + 1) % 12 == 0) {
        DifferentialSweep(rng);
      }
    }
    DifferentialSweep(rng);
  }
  if (fault::kEnabled) {
    // The schedules above must actually have exercised the fault paths;
    // a menu of never-hit failpoints would make this suite vacuous.
    EXPECT_GT(faults_injected_total, 0u);
  }
}

}  // namespace
}  // namespace fuzzymatch

// Crash-consistency suite: simulate power loss at every canonical
// write-path failpoint during incremental maintenance (Insert/Unindex/
// Checkpoint plus raw B-tree churn), reopen the database file, and assert
// the recovery invariant of DESIGN.md 5e:
//
//   - the file reopens (kDropWrites keeps it a page multiple);
//   - the ETI is structurally sound (rows decode, frequencies match,
//     rows <-> clustered index 1:1, no dangling tids);
//   - every present reference tuple is FULLY indexed (each of its
//     signature coordinates lists the tid, checked through the
//     accelerator-first lookup path, which also exercises accel parity);
//   - exact probes answer identically to the NaiveMatcher oracle.
//
// The corrupting crash modes (torn write, truncation) get their own
// tests: those may instead fail the reopen with a clean non-OK Status.

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/fuzzy_match.h"
#include "eti/signature.h"
#include "fault/failpoint.h"
#include "fault/faulty_env.h"
#include "gen/customer_gen.h"
#include "match/naive_matcher.h"
#include "storage/key_codec.h"

namespace fuzzymatch {
namespace {

using fault::Action;
using fault::FailpointSpec;
using fault::Failpoints;
using fault::FileFaults;

constexpr size_t kSeedTuples = 200;
constexpr char kStrategy[] = "Q+T_2";

FuzzyMatchConfig TestConfig() {
  FuzzyMatchConfig config;
  config.eti.signature_size = 2;
  config.eti.index_tokens = true;
  return config;
}

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/fm_crash_" + name + "_" +
         std::to_string(::getpid()) + ".db";
}

// Failpoint names whose crash run can only fire under buffer-pool
// pressure (a dirty eviction needs a pool smaller than the working set).
bool NeedsSmallPool(const std::string& name) {
  return name == "bufferpool.evict_dirty";
}

// Across the whole suite: which canonical failpoints actually crashed.
std::set<std::string>& CrashedPoints() {
  static std::set<std::string> s;
  return s;
}

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out (-DFM_FAILPOINTS=OFF)";
    }
    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
  }

  void TearDown() override {
    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
  }

  /// Builds the durable pre-crash state S0 once: 200 reference tuples,
  /// a built Q+T ETI, checkpointed to a file every test copies from.
  static const std::string& SeedDbPath() {
    static const std::string path = [] {
      const std::string p = TempPath("seed");
      std::filesystem::remove(p);
      DatabaseOptions options;
      options.path = p;
      auto db = Database::Open(options);
      FM_CHECK(db.ok());
      auto table = (*db)->CreateTable("customers",
                                      CustomerGenerator::CustomerSchema());
      FM_CHECK(table.ok());
      CustomerGenOptions gen_options;
      gen_options.num_tuples = kSeedTuples;
      CustomerGenerator gen(gen_options);
      FM_CHECK(gen.Populate(*table).ok());
      auto matcher = FuzzyMatcher::Build(db->get(), "customers",
                                         TestConfig());
      FM_CHECK(matcher.ok());
      FM_CHECK((*db)->Checkpoint().ok());
      return p;
    }();
    return path;
  }

  /// The maintenance workload run with one failpoint armed to crash. Every
  /// step tolerates errors (a crash mid-step surfaces as an injected
  /// IOError) and the workload stops at the first sign of the simulated
  /// power loss, like the real process would.
  void RunWorkload(Database* db, FuzzyMatcher* matcher) {
    const auto crashed = [] { return FileFaults::Global().crashed(); };

    // Step 1: an oversized tuple (overflow-chain heap record).
    Row big{std::string(3000, 'z') + " corporation", std::string("tacoma"),
            std::string("wa"), std::string("98765")};
    (void)matcher->InsertReferenceTuple(big);
    if (crashed()) return;

    // Step 2: small inserts sharing city/state/zip tokens with existing
    // tuples, so ETI maintenance takes the row-relocation update path.
    for (int i = 0; i < 5 && !crashed(); ++i) {
      auto base = matcher->GetReferenceTuple(static_cast<Tid>(3 + i));
      if (!base.ok()) break;
      Row fresh = *base;
      fresh[0] = "crashuniq" + std::to_string(i) + " holdings";
      (void)matcher->InsertReferenceTuple(fresh);
    }
    if (crashed()) return;

    // Step 3: removals (unindex + heap/btree deletes).
    for (Tid tid = 0; tid < 3 && !crashed(); ++tid) {
      (void)matcher->RemoveReferenceTuple(tid);
    }
    if (crashed()) return;

    // Step 4: raw B-tree churn with long keys — guarantees leaf AND
    // internal splits (~600-byte keys, ~12 entries per node) plus
    // deletions, which the small reference relation alone cannot.
    auto scratch = db->CreateIndex("crash_scratch");
    if (scratch.ok()) {
      for (int i = 0; i < 400 && !crashed(); ++i) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "k%06d", i);
        const std::string key = std::string(buf) + std::string(592, 'p');
        (void)(*scratch)->Put(key, "v");
      }
      for (int i = 0; i < 10 && !crashed(); ++i) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "k%06d", i * 7);
        (void)(*scratch)->Delete(std::string(buf) + std::string(592, 'p'));
      }
    }
    if (crashed()) return;

    // Step 5: checkpoint (catalog save, full flush, fsync).
    (void)db->Checkpoint();
  }

  /// Reopens `path` after the simulated reboot and audits the recovery
  /// invariant. `max_tid` bounds the tids that may legitimately exist.
  void AuditRecoveredDb(const std::string& path, Tid max_tid) {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    auto ref_or = (*db)->GetTable("customers");
    ASSERT_TRUE(ref_or.ok()) << ref_or.status();
    Table* ref = *ref_or;
    auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
    ASSERT_TRUE(matcher.ok()) << matcher.status();
    const Eti& eti = (*matcher)->eti();

    // Collect the surviving reference tuples once; both invariant halves
    // are checked against this set.
    std::vector<std::pair<Tid, Row>> live;
    std::set<Tid> live_tids;
    {
      Table::Scanner ref_scan = ref->Scan();
      Tid tid;
      Row ref_row;
      for (;;) {
        auto more = ref_scan.Next(&tid, &ref_row);
        ASSERT_TRUE(more.ok()) << more.status();
        if (!*more) break;
        live.emplace_back(tid, ref_row);
        live_tids.insert(tid);
      }
    }
    EXPECT_GE(live.size(), kSeedTuples - 3);  // at most the removed three

    // -- Structural audit of the recovered ETI ------------------------
    auto rows_or = (*db)->GetTable(std::string("customers_eti_") +
                                   kStrategy);
    auto index_or = (*db)->GetIndex(std::string("customers_eti_") +
                                    kStrategy + "_idx");
    ASSERT_TRUE(rows_or.ok());
    ASSERT_TRUE(index_or.ok());
    std::set<std::string> row_keys;
    Table::Scanner scanner = (*rows_or)->Scan();
    Tid row_tid;
    Row row;
    for (;;) {
      auto more = scanner.Next(&row_tid, &row);
      ASSERT_TRUE(more.ok()) << more.status();
      if (!*more) break;
      ASSERT_EQ(row.size(), 5u);
      ASSERT_TRUE(row[0].has_value());
      ASSERT_TRUE(row[1].has_value() && row[1]->size() == 4);
      ASSERT_TRUE(row[2].has_value() && row[2]->size() == 4);
      uint32_t coordinate, column;
      std::memcpy(&coordinate, row[1]->data(), 4);
      std::memcpy(&column, row[2]->data(), 4);
      auto entry = Eti::DecodeEntry(row);
      ASSERT_TRUE(entry.ok()) << entry.status();
      if (!entry->is_stop) {
        EXPECT_EQ(entry->frequency, entry->tids.size());
        EXPECT_TRUE(
            std::is_sorted(entry->tids.begin(), entry->tids.end()));
        for (const Tid t : entry->tids) {
          ASSERT_LT(t, max_tid);
          // "Fully absent" half of the invariant: no ETI row may
          // reference a reference tuple that did not survive the crash.
          ASSERT_GT(live_tids.count(t), 0u)
              << "dangling tid " << t << " in ETI row";
        }
      }
      const std::string key = Eti::IndexKey(*row[0], coordinate, column);
      EXPECT_TRUE(row_keys.insert(key).second) << "duplicate ETI row";
      auto rid_bytes = (*index_or)->Get(key);
      ASSERT_TRUE(rid_bytes.ok()) << "ETI row missing from index";
      auto rid = Rid::Decode(*rid_bytes);
      ASSERT_TRUE(rid.ok());
      auto via_index = (*rows_or)->GetByRid(*rid);
      ASSERT_TRUE(via_index.ok());
      EXPECT_EQ(*via_index, row) << "index points at a different row";
    }
    auto it = (*index_or)->NewIterator();
    ASSERT_TRUE(it.SeekToFirst().ok());
    size_t index_keys = 0;
    while (it.Valid()) {
      EXPECT_GT(row_keys.count(it.key()), 0u) << "dangling index entry";
      ++index_keys;
      ASSERT_TRUE(it.Next().ok());
    }
    EXPECT_EQ(index_keys, row_keys.size());

    // -- "Fully indexed" half: every surviving tuple's coordinates all
    // list its tid. Lookups go accelerator-first, so a stale accel
    // segment would also be caught here (parity with the B-tree).
    const Tokenizer tokenizer = eti.MakeTokenizer();
    const MinHasher hasher = eti.MakeHasher();
    for (const auto& [tid, ref_row] : live) {
      const TokenizedTuple tokens = tokenizer.TokenizeTuple(ref_row);
      for (uint32_t col = 0; col < tokens.size(); ++col) {
        for (const auto& token : tokens[col]) {
          for (const auto& tc :
               MakeTokenCoordinates(hasher, eti.params(), token, 0.0)) {
            auto entry = eti.Lookup(tc.gram, tc.coordinate, col);
            ASSERT_TRUE(entry.ok()) << entry.status();
            ASSERT_TRUE(entry->has_value())
                << "tuple " << tid << " missing coordinate ("
                << tc.gram << "," << tc.coordinate << "," << col << ")";
            EXPECT_TRUE((*entry)->is_stop ||
                        std::binary_search((*entry)->tids.begin(),
                                           (*entry)->tids.end(), tid))
                << "tuple " << tid << " absent from its ETI row";
          }
        }
      }
    }

    // -- Behavioral parity with the exhaustive oracle on a sample.
    NaiveMatcher naive(ref, &(*matcher)->weights(),
                       NaiveMatcher::SimilarityKind::kFms,
                       (*matcher)->config().matcher);
    ASSERT_TRUE(naive.Prepare().ok());
    for (size_t i = 0; i < live.size(); i += 16) {
      const Row& probe = live[i].second;
      auto eti_top = (*matcher)->FindMatches(probe);
      auto naive_top = naive.FindMatches(probe);
      ASSERT_TRUE(eti_top.ok()) << eti_top.status();
      ASSERT_TRUE(naive_top.ok()) << naive_top.status();
      ASSERT_FALSE(eti_top->empty());
      ASSERT_FALSE(naive_top->empty());
      EXPECT_DOUBLE_EQ((*eti_top)[0].similarity, 1.0);
      EXPECT_DOUBLE_EQ((*naive_top)[0].similarity, 1.0);
      auto eti_row = (*matcher)->GetReferenceTuple((*eti_top)[0].tid);
      auto naive_row = (*matcher)->GetReferenceTuple((*naive_top)[0].tid);
      ASSERT_TRUE(eti_row.ok());
      ASSERT_TRUE(naive_row.ok());
      EXPECT_EQ(*eti_row, *naive_row);
    }

    // The scratch index is all-or-nothing at checkpoint granularity:
    // absent (crash before the catalog landed) or complete.
    auto scratch = (*db)->GetIndex("crash_scratch");
    if (scratch.ok()) {
      auto count = (*scratch)->Count();
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count, 390u);  // 400 puts - 10 deletes
    }
  }
};

TEST_F(CrashConsistencyTest, EveryFailpointCrashRecoversConsistently) {
  for (const char* raw_name : fault::kWritePathFailpoints) {
    const std::string name = raw_name;
    SCOPED_TRACE("failpoint=" + name);
    const std::string work = TempPath("work");
    std::filesystem::remove(work);
    std::filesystem::remove(work + ".wal");
    std::filesystem::copy_file(SeedDbPath(), work);

    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
    {
      DatabaseOptions options;
      options.path = work;
      if (NeedsSmallPool(name)) {
        options.pool_pages = 16;
      }
      auto db = Database::Open(options);
      ASSERT_TRUE(db.ok()) << db.status();
      auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
      ASSERT_TRUE(matcher.ok()) << matcher.status();

      FailpointSpec spec;
      spec.action = Action::kCrash;
      Failpoints::Global().Arm(name, spec);
      RunWorkload(db->get(), matcher->get());
      EXPECT_TRUE(FileFaults::Global().crashed())
          << "workload never reached failpoint " << name;
      if (FileFaults::Global().crashed()) {
        CrashedPoints().insert(name);
      }
      // Teardown runs the destructors' best-effort checkpoint; with the
      // gate closed none of it reaches the file, like a dying process.
    }
    FileFaults::Global().Reset();
    Failpoints::Global().DisarmAll();
    AuditRecoveredDb(work, /*max_tid=*/kSeedTuples + 8);
    std::filesystem::remove(work);
    std::filesystem::remove(work + ".wal");
  }
  // Coverage gate: the canonical list is only meaningful if every name
  // actually crashed a run above (checked here, in-process, because each
  // TEST runs in its own ctest process).
  for (const char* name : fault::kWritePathFailpoints) {
    EXPECT_GT(CrashedPoints().count(name), 0u)
        << "no crash run ever fired " << name;
  }
}

TEST_F(CrashConsistencyTest, TornCheckpointWriteFailsCleanOrConsistent) {
  const std::string work = TempPath("torn");
  std::filesystem::remove(work);
  std::filesystem::remove(work + ".wal");
  std::filesystem::copy_file(SeedDbPath(), work);
  {
    DatabaseOptions options;
    options.path = work;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
    ASSERT_TRUE(matcher.ok());
    FailpointSpec spec;
    spec.action = Action::kCrashTorn;
    spec.fire_on_hit = 2;  // let one checkpoint page land, tear the next
    Failpoints::Global().Arm("pager.write_page", spec);
    RunWorkload(db->get(), matcher->get());
    EXPECT_TRUE(FileFaults::Global().crashed());
  }
  FileFaults::Global().Reset();
  Failpoints::Global().DisarmAll();

  // A torn page may corrupt the catalog or any relation. The engine has
  // no WAL, so a crash INSIDE a checkpoint flush is a documented
  // unrecoverable gap (DESIGN.md 5e); the contract here is that every
  // decode failure surfaces as a clean Status — reopening and reading
  // must never crash or trip the sanitizers.
  DatabaseOptions options;
  options.path = work;
  auto db = Database::Open(options);
  if (db.ok()) {
    auto ref_or = (*db)->GetTable("customers");
    if (ref_or.ok()) {
      Table::Scanner scanner = (*ref_or)->Scan();
      Tid tid;
      Row row;
      for (;;) {
        auto more = scanner.Next(&tid, &row);
        if (!more.ok() || !*more) break;  // clean error or end: both fine
      }
    }
    auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
    if (matcher.ok()) {
      auto probe = (*matcher)->GetReferenceTuple(10);
      if (probe.ok()) {
        (void)(*matcher)->FindMatches(*probe);  // Status or results, no UB
      }
    }
  }
  std::filesystem::remove(work);
  std::filesystem::remove(work + ".wal");
}

TEST_F(CrashConsistencyTest, TruncatingCrashFailsReopenCleanly) {
  const std::string work = TempPath("trunc");
  std::filesystem::remove(work);
  std::filesystem::remove(work + ".wal");
  std::filesystem::copy_file(SeedDbPath(), work);
  {
    DatabaseOptions options;
    options.path = work;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
    ASSERT_TRUE(matcher.ok());
    FailpointSpec spec;
    spec.action = Action::kCrashTruncate;
    Failpoints::Global().Arm("pager.allocate_page", spec);
    RunWorkload(db->get(), matcher->get());
    EXPECT_TRUE(FileFaults::Global().crashed());
  }
  FileFaults::Global().Reset();
  Failpoints::Global().DisarmAll();

  // The file is no longer a page multiple: reopen must refuse with a
  // clean Corruption status, never crash.
  DatabaseOptions options;
  options.path = work;
  auto db = Database::Open(options);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption()) << db.status();
  std::filesystem::remove(work);
  std::filesystem::remove(work + ".wal");
}

}  // namespace
}  // namespace fuzzymatch

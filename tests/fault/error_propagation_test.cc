// Error-path propagation: an injected write failure must surface as a
// clean Status at every layer boundary — FuzzyMatcher maintenance rolls
// the tuple back (all-or-nothing), Database::Checkpoint reports the
// failure, and the serving layer renders a typed error response while
// counting it — and a retry after the transient fault must succeed.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/fuzzy_match.h"
#include "fault/failpoint.h"
#include "gen/customer_gen.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/json.h"
#include "server/server.h"

namespace fuzzymatch {
namespace {

using fault::Action;
using fault::FailpointSpec;
using fault::Failpoints;

// GTEST_SKIP only works from a void function, so the guard is a macro.
#define REQUIRE_FAILPOINTS()                                            \
  if (!fault::kEnabled)                                                 \
  GTEST_SKIP() << "failpoints compiled out (-DFM_FAILPOINTS=OFF)"

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

class ErrorPropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Global().Reset();
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table =
        db_->CreateTable("customers", CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions options;
    options.num_tuples = 150;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
    FuzzyMatchConfig config;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
    ASSERT_TRUE(matcher.ok());
    matcher_ = std::move(*matcher);
  }

  void TearDown() override { Failpoints::Global().Reset(); }

  /// An exact probe of `row` must come back as a similarity-1.0 match of
  /// tid `expect` — the quick post-mutation consistency check.
  void ExpectExactMatch(const Row& row, Tid expect) {
    auto matches = matcher_->FindMatches(row);
    ASSERT_TRUE(matches.ok()) << matches.status();
    ASSERT_FALSE(matches->empty());
    EXPECT_EQ((*matches)[0].tid, expect);
    EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
  std::unique_ptr<FuzzyMatcher> matcher_;
};

TEST_F(ErrorPropagationTest, FailedInsertRollsBackThenRetrySucceeds) {
  REQUIRE_FAILPOINTS();
  const uint64_t errors_before = CounterValue("fault.injected_errors");
  const uint64_t rollbacks_before = CounterValue("maintenance.rollbacks");

  Row fresh = {"erroruniq corporation", "rochester", "ny", "14623"};
  FailpointSpec spec;
  spec.action = Action::kError;
  spec.fire_on_hit = 3;  // partway through the per-coordinate writes
  Failpoints::Global().Arm("eti.mutate_entry", spec);

  auto tid = matcher_->InsertReferenceTuple(fresh);
  ASSERT_FALSE(tid.ok());
  EXPECT_TRUE(tid.status().IsIOError()) << tid.status();
  EXPECT_GT(CounterValue("fault.injected_errors"), errors_before);
  EXPECT_GT(CounterValue("maintenance.rollbacks"), rollbacks_before);

  // All-or-nothing: after rollback the tuple must be fully absent — an
  // exact probe of it must not find a similarity-1.0 ghost.
  Failpoints::Global().DisarmAll();
  auto ghost = matcher_->FindMatches(fresh);
  ASSERT_TRUE(ghost.ok()) << ghost.status();
  for (const Match& m : *ghost) {
    EXPECT_LT(m.similarity, 1.0) << "ghost of rolled-back tid " << m.tid;
  }

  // The fault was transient: the retry lands the tuple completely.
  auto retried = matcher_->InsertReferenceTuple(fresh);
  ASSERT_TRUE(retried.ok()) << retried.status();
  ExpectExactMatch(fresh, *retried);
}

TEST_F(ErrorPropagationTest, FailedRemoveSurfacesStatusThenRetrySucceeds) {
  REQUIRE_FAILPOINTS();
  auto victim_row = ref_->Get(7);
  ASSERT_TRUE(victim_row.ok());

  FailpointSpec spec;
  spec.action = Action::kError;
  spec.fire_on_hit = 2;
  Failpoints::Global().Arm("eti.mutate_entry", spec);
  const Status failed = matcher_->RemoveReferenceTuple(7);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.IsIOError()) << failed;

  Failpoints::Global().DisarmAll();
  ASSERT_TRUE(matcher_->RemoveReferenceTuple(7).ok());
  auto gone = matcher_->FindMatches(*victim_row);
  ASSERT_TRUE(gone.ok());
  for (const Match& m : *gone) {
    EXPECT_NE(m.tid, 7u) << "removed tuple still matched";
  }
}

TEST_F(ErrorPropagationTest, CheckpointFailureSurfacesStatus) {
  REQUIRE_FAILPOINTS();
  FailpointSpec spec;
  spec.action = Action::kError;
  Failpoints::Global().Arm("db.checkpoint", spec);
  const Status s = db_->Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s;
  Failpoints::Global().DisarmAll();
  EXPECT_TRUE(db_->Checkpoint().ok());
}

// Serving-layer propagation. This test does not need compiled-in
// failpoints: deleting a reference row out from under the matcher (as a
// crashed maintenance operation would) leaves a dangling ETI posting, and
// the query path must turn the resulting backend NotFound into a typed
// error response instead of dropping the connection.
TEST_F(ErrorPropagationTest, ServerRendersTypedErrorAndCountsIt) {
  server::ServerOptions options;
  options.port = 0;  // ephemeral
  server::MatchServer srv(matcher_.get(), BatchCleaner::Options{},
                          options);
  ASSERT_TRUE(srv.Start().ok());

  auto doomed = ref_->Get(5);
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(ref_->Delete(5).ok());  // bypass the matcher: dangling posting

  std::string row_json = "[";
  for (size_t i = 0; i < doomed->size(); ++i) {
    if (i > 0) row_json.push_back(',');
    server::AppendJsonString((*doomed)[i].value_or(""), &row_json);
  }
  row_json.push_back(']');

  const uint64_t errors_before = CounterValue("server.query_errors");
  server::LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  auto response =
      client.Roundtrip("{\"op\":\"match\",\"id\":1,\"row\":" + row_json + "}");
  ASSERT_TRUE(response.ok());
  auto doc = server::ParseJson(*response);
  ASSERT_TRUE(doc.ok()) << *response;
  ASSERT_NE(doc->Find("ok"), nullptr);
  EXPECT_FALSE(doc->Find("ok")->bool_value()) << *response;
  ASSERT_NE(doc->Find("code"), nullptr) << *response;
  EXPECT_EQ(doc->Find("code")->string_value(), "not_found") << *response;
  EXPECT_EQ(CounterValue("server.query_errors"), errors_before + 1);

  // The connection survives the error: a follow-up ping still answers.
  auto pong = client.Roundtrip("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "{\"ok\":true,\"op\":\"ping\"}");
}

}  // namespace
}  // namespace fuzzymatch

// Unit tests for the failpoint registry and the FaultyEnv write gate:
// arming semantics (Nth hit, probability, one-shot), error injection
// through a real Status-returning path, crash simulation dropping pager
// writes, and the canonical-name cross-check that keeps
// fault::kWritePathFailpoints in sync with the FM_FAIL_POINT sites.

#include "fault/failpoint.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "fault/faulty_env.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/pager.h"

namespace fuzzymatch {
namespace {

using fault::Action;
using fault::FailpointSpec;
using fault::Failpoints;
using fault::FileFaults;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out (-DFM_FAILPOINTS=OFF)";
    }
    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
  }

  void TearDown() override {
    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
  }

  std::string TempPath(const std::string& name) {
    return (std::filesystem::temp_directory_path() /
            ("fm_failpoint_test_" + name +
             std::to_string(::getpid()) + ".db"))
        .string();
  }
};

TEST_F(FailpointTest, UnarmedPointOnlyCounts) {
  auto pager = Pager::OpenInMemory();
  ASSERT_TRUE(pager->AllocatePage().ok());
  EXPECT_GE(Failpoints::Global().HitCount("pager.allocate_page"), 1u);
  EXPECT_EQ(Failpoints::Global().fired_count(), 0u);
}

TEST_F(FailpointTest, ErrorActionInjectsStatusWithConfiguredCode) {
  FailpointSpec spec;
  spec.action = Action::kError;
  spec.error_code = StatusCode::kIOError;
  Failpoints::Global().Arm("pager.write_page", spec);

  auto pager = Pager::OpenInMemory();
  ASSERT_TRUE(pager->AllocatePage().ok());
  std::vector<char> buf(kPageSize, 'x');
  const Status s = pager->WritePage(0, buf.data());
  ASSERT_TRUE(s.IsIOError()) << s;
  EXPECT_NE(s.message().find("pager.write_page"), std::string::npos) << s;
  EXPECT_EQ(Failpoints::Global().fired_count(), 1u);

  // One-shot by default: the retry goes through clean.
  EXPECT_TRUE(pager->WritePage(0, buf.data()).ok());
}

TEST_F(FailpointTest, NthHitFiresDeterministically) {
  FailpointSpec spec;
  spec.fire_on_hit = 3;
  Failpoints::Global().Arm("pager.write_page", spec);

  auto pager = Pager::OpenInMemory();
  ASSERT_TRUE(pager->AllocatePage().ok());
  std::vector<char> buf(kPageSize, 'x');
  EXPECT_TRUE(pager->WritePage(0, buf.data()).ok());
  EXPECT_TRUE(pager->WritePage(0, buf.data()).ok());
  EXPECT_FALSE(pager->WritePage(0, buf.data()).ok());
  EXPECT_TRUE(pager->WritePage(0, buf.data()).ok());
}

TEST_F(FailpointTest, ProbabilityModeIsSeedDeterministic) {
  // The firing schedule under probability mode must be a pure function of
  // the seed: two runs with the same seed fire on the same hits.
  std::vector<int> first_run;
  for (int run = 0; run < 2; ++run) {
    FailpointSpec spec;
    spec.probability = 0.3;
    spec.seed = 42;
    spec.one_shot = false;
    Failpoints::Global().Arm("pager.write_page", spec);
    auto pager = Pager::OpenInMemory();
    ASSERT_TRUE(pager->AllocatePage().ok());
    std::vector<char> buf(kPageSize, 'x');
    std::vector<int> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(pager->WritePage(0, buf.data()).ok() ? 0 : 1);
    }
    Failpoints::Global().Disarm("pager.write_page");
    const int total =
        static_cast<int>(std::count(fired.begin(), fired.end(), 1));
    EXPECT_GT(total, 0);
    EXPECT_LT(total, 64);
    if (run == 0) {
      first_run = fired;
    } else {
      EXPECT_EQ(first_run, fired);
    }
  }
}

TEST_F(FailpointTest, CrashActionDropsSubsequentFileWrites) {
  const std::string path = TempPath("crash");
  std::filesystem::remove(path);
  {
    auto pager_or = Pager::OpenFile(path);
    ASSERT_TRUE(pager_or.ok());
    auto pager = std::move(*pager_or);
    ASSERT_TRUE(pager->AllocatePage().ok());
    std::vector<char> before(kPageSize, 'a');
    ASSERT_TRUE(pager->WritePage(0, before.data()).ok());
    ASSERT_TRUE(pager->Sync().ok());

    FailpointSpec spec;
    spec.action = Action::kCrash;
    Failpoints::Global().Arm("pager.write_page", spec);
    std::vector<char> after(kPageSize, 'b');
    const Status s = pager->WritePage(0, after.data());
    EXPECT_TRUE(s.IsIOError()) << s;
    EXPECT_TRUE(FileFaults::Global().crashed());

    // Post-crash writes report success to the caller but never land.
    EXPECT_TRUE(pager->WritePage(0, after.data()).ok());
    EXPECT_TRUE(pager->Sync().ok());
    EXPECT_GE(FileFaults::Global().writes_dropped(), 1u);
  }
  // "Reboot": the gate reopens, and the file still holds pre-crash bytes.
  FileFaults::Global().Reset();
  auto reopened_or = Pager::OpenFile(path);
  ASSERT_TRUE(reopened_or.ok());
  std::vector<char> buf(kPageSize, 0);
  ASSERT_TRUE((*reopened_or)->ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(buf[kPageSize - 1], 'a');
  std::filesystem::remove(path);
}

TEST_F(FailpointTest, TornWriteLandsHalfAPage) {
  const std::string path = TempPath("torn");
  std::filesystem::remove(path);
  {
    auto pager_or = Pager::OpenFile(path);
    ASSERT_TRUE(pager_or.ok());
    auto pager = std::move(*pager_or);
    ASSERT_TRUE(pager->AllocatePage().ok());
    std::vector<char> before(kPageSize, 'a');
    ASSERT_TRUE(pager->WritePage(0, before.data()).ok());
    ASSERT_TRUE(pager->Sync().ok());

    FileFaults::Global().Crash(fault::CrashMode::kTornWrite);
    std::vector<char> after(kPageSize, 'b');
    EXPECT_TRUE(pager->WritePage(0, after.data()).ok());
  }
  FileFaults::Global().Reset();
  auto reopened_or = Pager::OpenFile(path);
  ASSERT_TRUE(reopened_or.ok());
  std::vector<char> buf(kPageSize, 0);
  ASSERT_TRUE((*reopened_or)->ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 'b');                // first half of the torn write
  EXPECT_EQ(buf[kPageSize - 1], 'a');    // suffix never made it
  std::filesystem::remove(path);
}

TEST_F(FailpointTest, TruncateCrashMakesReopenFailCleanly) {
  const std::string path = TempPath("trunc");
  std::filesystem::remove(path);
  {
    auto pager_or = Pager::OpenFile(path);
    ASSERT_TRUE(pager_or.ok());
    auto pager = std::move(*pager_or);
    ASSERT_TRUE(pager->AllocatePage().ok());
    ASSERT_TRUE(pager->Sync().ok());
    FileFaults::Global().Crash(fault::CrashMode::kTruncate);
  }
  FileFaults::Global().Reset();
  const auto reopened = Pager::OpenFile(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status();
  std::filesystem::remove(path);
}

TEST_F(FailpointTest, VoidSitesHonorCrashButSwallowErrors) {
  FailpointSpec spec;
  spec.action = Action::kError;
  Failpoints::Global().Arm("some.void_site", spec);
  Failpoints::Global().HitVoid("some.void_site");  // must not crash/throw
  EXPECT_EQ(Failpoints::Global().fired_count(), 1u);

  spec.action = Action::kCrash;
  Failpoints::Global().Arm("some.void_site", spec);
  Failpoints::Global().HitVoid("some.void_site");
  EXPECT_TRUE(FileFaults::Global().crashed());
}

TEST_F(FailpointTest, DisarmAllLeavesNothingArmed) {
  FailpointSpec spec;
  Failpoints::Global().Arm("pager.write_page", spec);
  Failpoints::Global().Arm("pager.sync", spec);
  Failpoints::Global().DisarmAll();
  auto pager = Pager::OpenInMemory();
  ASSERT_TRUE(pager->AllocatePage().ok());
  std::vector<char> buf(kPageSize, 'x');
  EXPECT_TRUE(pager->WritePage(0, buf.data()).ok());
  EXPECT_TRUE(pager->Sync().ok());
  EXPECT_EQ(Failpoints::Global().fired_count(), 0u);
}

// A storage workload broad enough to cross every storage-layer failpoint;
// the ETI-layer names are covered by the crash-consistency suite, which
// asserts the same property across the whole canonical list.
TEST_F(FailpointTest, StorageWorkloadCrossesStorageFailpoints) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 8);
  auto heap_or = HeapFile::Create(&pool);
  ASSERT_TRUE(heap_or.ok());
  HeapFile heap = *heap_or;
  // Enough records (some oversized -> overflow chains) to force dirty
  // evictions through the 8-frame pool.
  std::vector<Rid> rids;
  for (int i = 0; i < 64; ++i) {
    const std::string rec(i % 7 == 0 ? kPageSize / 2 : 64, 'r');
    auto rid = heap.Insert(rec);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_TRUE(heap.Delete(rids[0]).ok());
  ASSERT_TRUE(pool.FlushAll().ok());

  const std::vector<std::string> expect_hit = {
      "pager.write_page",  "pager.allocate_page",   "pager.sync",
      "heap.insert",       "heap.write_overflow",   "heap.delete",
      "bufferpool.evict_dirty", "bufferpool.flush_all",
  };
  for (const auto& name : expect_hit) {
    EXPECT_GT(Failpoints::Global().HitCount(name), 0u)
        << name << " never hit by the storage workload";
  }
}

}  // namespace
}  // namespace fuzzymatch

// Torn-postings regression (DESIGN.md 5i hardening): tid-list decode —
// scalar and SIMD alike — must turn any torn or truncated posting bytes
// into Status::Corruption, never UB. The first suite feeds real torn
// pages produced by the FileFaults power-loss gate through every decode
// kernel; the second tears valid posting blobs deterministically at every
// byte so the contract is pinned even in builds without failpoints. Both
// run in the ASan slice.

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd_varint.h"
#include "common/varint.h"
#include "core/fuzzy_match.h"
#include "eti/tid_list.h"
#include "fault/failpoint.h"
#include "fault/faulty_env.h"
#include "gen/customer_gen.h"

namespace fuzzymatch {
namespace {

using fault::Action;
using fault::FailpointSpec;
using fault::Failpoints;
using fault::FileFaults;

std::vector<SimdLevel> RunnableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel best = DetectSimdLevel();
  if (best >= SimdLevel::kSse4) levels.push_back(SimdLevel::kSse4);
  if (best >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

/// Decodes `blob` with every runnable kernel and checks they agree: all
/// succeed with the same tids, or all fail with Corruption. Either way,
/// no kernel may crash or read out of bounds (ASan enforces).
void ExpectKernelsAgree(std::string_view blob) {
  std::vector<Tid> scalar_tids;
  const Status scalar =
      DecodeTidListInto(SimdLevel::kScalar, blob, &scalar_tids);
  for (const SimdLevel level : RunnableLevels()) {
    std::vector<Tid> tids;
    const Status s = DecodeTidListInto(level, blob, &tids);
    ASSERT_EQ(s.ok(), scalar.ok())
        << SimdLevelName(level) << " disagrees with scalar: " << s;
    if (s.ok()) {
      EXPECT_EQ(tids, scalar_tids) << SimdLevelName(level);
    } else {
      EXPECT_TRUE(s.IsCorruption()) << s;
    }
  }
}

TEST(TornPostingsTest, EveryTruncationOfValidPostingsFailsCleanly) {
  // Dense and sparse lists, including multi-byte deltas: every proper
  // prefix (the shape a torn 4 KiB page boundary leaves behind) must be
  // rejected by every kernel.
  std::vector<std::vector<Tid>> lists;
  std::vector<Tid> dense;
  for (Tid t = 100; t < 400; ++t) dense.push_back(t);
  lists.push_back(dense);
  lists.push_back({5, 1000, 70000, 9000000, 4000000000u});
  lists.push_back({0});
  for (const auto& tids : lists) {
    const std::string blob = EncodeTidList(tids);
    ExpectKernelsAgree(blob);  // the intact blob decodes identically
    for (size_t cut = 0; cut < blob.size(); ++cut) {
      const std::string torn = blob.substr(0, cut);
      std::vector<Tid> out;
      for (const SimdLevel level : RunnableLevels()) {
        EXPECT_FALSE(DecodeTidListInto(level, torn, &out).ok())
            << "prefix of " << cut << " bytes accepted by "
            << SimdLevelName(level);
      }
      ExpectKernelsAgree(torn);
    }
  }
}

TEST(TornPostingsTest, CorruptCountHeaderCannotAllocationBomb) {
  // A torn first page can leave a huge count header in front of nothing:
  // decode must reject it from the payload size, not resize first.
  std::string blob;
  PutVarint64(&blob, 1u << 30);  // claims a billion tids
  blob.push_back(0x01);
  std::vector<Tid> out;
  for (const SimdLevel level : RunnableLevels()) {
    const Status s = DecodeTidListInto(level, blob, &out);
    ASSERT_TRUE(s.IsCorruption()) << SimdLevelName(level) << ": " << s;
  }
}

class TornPostingsFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "failpoints compiled out (-DFM_FAILPOINTS=OFF)";
    }
    Failpoints::Global().Reset();
    FileFaults::Global().Reset();
  }

  void TearDown() override {
    if (fault::kEnabled) {
      Failpoints::Global().Reset();
      FileFaults::Global().Reset();
    }
  }
};

TEST_F(TornPostingsFaultTest, TornPagesFeedEveryKernelWithoutUB) {
  const std::string work = std::string(::testing::TempDir()) +
                           "/fm_torn_postings_" +
                           std::to_string(::getpid()) + ".db";
  std::filesystem::remove(work);

  // Seed: a file-backed reference relation + ETI, checkpointed.
  constexpr char kStrategy[] = "Q+T_2";
  {
    DatabaseOptions options;
    options.path = work;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    auto table = (*db)->CreateTable("customers",
                                    CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    CustomerGenOptions gen_options;
    gen_options.num_tuples = 150;
    CustomerGenerator gen(gen_options);
    ASSERT_TRUE(gen.Populate(*table).ok());
    FuzzyMatchConfig config;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    auto matcher = FuzzyMatcher::Build(db->get(), "customers", config);
    ASSERT_TRUE(matcher.ok()) << matcher.status();
    ASSERT_TRUE((*db)->Checkpoint().ok());

    // Tear a page mid-maintenance: postings grow on every insert, so the
    // half-written page lands inside the ETI heap with high probability.
    FailpointSpec spec;
    spec.action = Action::kCrashTorn;
    spec.fire_on_hit = 2;
    Failpoints::Global().Arm("pager.write_page", spec);
    for (int i = 0; i < 30 && !FileFaults::Global().crashed(); ++i) {
      auto base = (*matcher)->GetReferenceTuple(static_cast<Tid>(i));
      if (!base.ok()) break;
      Row fresh = *base;
      fresh[0] = "tornuniq" + std::to_string(i) + " industries";
      (void)(*matcher)->InsertReferenceTuple(fresh);
      (void)(*db)->Checkpoint();
    }
    EXPECT_TRUE(FileFaults::Global().crashed());
  }
  FileFaults::Global().Reset();
  Failpoints::Global().DisarmAll();

  // Reboot: scan whatever ETI rows survived and push every posting blob
  // through every kernel. Corrupt blobs must fail identically across
  // kernels; nothing may crash (the ASan slice runs this test).
  DatabaseOptions options;
  options.path = work;
  auto db = Database::Open(options);
  if (db.ok()) {
    auto rows = (*db)->GetTable(std::string("customers_eti_") + kStrategy);
    if (rows.ok()) {
      Table::Scanner scanner = (*rows)->Scan();
      Tid tid;
      Row row;
      size_t blobs = 0;
      for (;;) {
        auto more = scanner.Next(&tid, &row);
        if (!more.ok() || !*more) break;  // clean error or end: both fine
        if (row.size() == 5 && row[4].has_value()) {
          ExpectKernelsAgree(*row[4]);
          ++blobs;
        }
      }
      EXPECT_GT(blobs, 0u) << "torn database kept no posting blobs at all";
    }
  }
  std::filesystem::remove(work);
}

}  // namespace
}  // namespace fuzzymatch

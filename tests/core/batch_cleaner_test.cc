#include "core/batch_cleaner.h"

#include <gtest/gtest.h>

#include "gen/customer_gen.h"
#include "gen/dataset.h"

namespace fuzzymatch {
namespace {

class BatchCleanerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions options;
    options.num_tuples = 1500;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
    FuzzyMatchConfig config;
    config.eti.signature_size = 3;
    config.eti.index_tokens = true;
    auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
    ASSERT_TRUE(matcher.ok());
    matcher_ = std::move(*matcher);
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
  std::unique_ptr<FuzzyMatcher> matcher_;
};

TEST_F(BatchCleanerTest, ExactInputIsValidated) {
  const BatchCleaner cleaner(matcher_.get(), {});
  auto clean = ref_->Get(7);
  ASSERT_TRUE(clean.ok());
  auto result = cleaner.Clean(*clean);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, CleanOutcome::kValidated);
  EXPECT_EQ(result->output, *clean);
  ASSERT_TRUE(result->best_match.has_value());
  EXPECT_DOUBLE_EQ(result->best_match->similarity, 1.0);
}

TEST_F(BatchCleanerTest, DirtyInputAboveThresholdIsCorrected) {
  const BatchCleaner cleaner(matcher_.get(), {});
  auto clean = ref_->Get(100);
  ASSERT_TRUE(clean.ok());
  Row dirty = *clean;
  (*dirty[0])[0] = 'x';  // misspell the name's first character
  auto result = cleaner.Clean(dirty);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, CleanOutcome::kCorrected);
  EXPECT_EQ(result->output, *clean) << "loads the clean reference tuple";
  EXPECT_LT(result->best_match->similarity, 1.0);
  EXPECT_GE(result->best_match->similarity, 0.8);
}

TEST_F(BatchCleanerTest, GarbageIsRouted) {
  const BatchCleaner cleaner(matcher_.get(), {});
  const Row garbage{std::string("zzzz qqqq"), std::string("xxxx"),
                    std::string("yy"), std::string("00000")};
  auto result = cleaner.Clean(garbage);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, CleanOutcome::kRouted);
  EXPECT_EQ(result->output, garbage) << "routed tuples pass through";
}

TEST_F(BatchCleanerTest, ThresholdControlsRouting) {
  auto clean = ref_->Get(42);
  ASSERT_TRUE(clean.ok());
  Row dirty = *clean;
  (*dirty[0])[1] = '#';

  BatchCleaner::Options lenient;
  lenient.load_threshold = 0.5;
  BatchCleaner::Options strict;
  strict.load_threshold = 0.999;
  auto lenient_result = BatchCleaner(matcher_.get(), lenient).Clean(dirty);
  auto strict_result = BatchCleaner(matcher_.get(), strict).Clean(dirty);
  ASSERT_TRUE(lenient_result.ok() && strict_result.ok());
  EXPECT_EQ(lenient_result->outcome, CleanOutcome::kCorrected);
  EXPECT_EQ(strict_result->outcome, CleanOutcome::kRouted);
}

TEST_F(BatchCleanerTest, BatchCountsAndSinkOrder) {
  const BatchCleaner cleaner(matcher_.get(), {});
  DatasetSpec spec = DatasetD3();  // light corruption: mostly correctable
  spec.num_inputs = 60;
  auto inputs = GenerateInputs(ref_, spec, nullptr);
  ASSERT_TRUE(inputs.ok());
  std::vector<Row> batch;
  for (const auto& in : *inputs) {
    batch.push_back(in.dirty);
  }

  std::vector<size_t> seen;
  auto stats = cleaner.CleanBatch(
      batch, [&](size_t i, const CleanResult&) -> Status {
        seen.push_back(i);
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->processed, 60u);
  EXPECT_EQ(stats->validated + stats->corrected + stats->routed, 60u);
  EXPECT_GT(stats->validated + stats->corrected, 30u);
  ASSERT_EQ(seen.size(), 60u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i) << "sink sees inputs in order";
  }
}

TEST_F(BatchCleanerTest, SinkErrorAbortsBatch) {
  const BatchCleaner cleaner(matcher_.get(), {});
  auto clean = ref_->Get(0);
  ASSERT_TRUE(clean.ok());
  const std::vector<Row> batch(5, *clean);
  auto stats = cleaner.CleanBatch(
      batch, [&](size_t i, const CleanResult&) -> Status {
        if (i == 2) {
          return Status::Internal("sink exploded");
        }
        return Status::OK();
      });
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInternal());
}

TEST_F(BatchCleanerTest, EmptyBatch) {
  const BatchCleaner cleaner(matcher_.get(), {});
  auto stats = cleaner.CleanBatch({});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->processed, 0u);
}

}  // namespace
}  // namespace fuzzymatch

// End-to-end tests of the public FuzzyMatcher facade: the Figure 1
// template — build an index over a clean reference relation, push dirty
// tuples through, load the match or route for cleaning.

#include "core/fuzzy_match.h"

#include <gtest/gtest.h>

#include "gen/customer_gen.h"
#include "gen/dataset.h"

namespace fuzzymatch {
namespace {

class FuzzyMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    CustomerGenOptions options;
    options.num_tuples = 3000;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(*table).ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(FuzzyMatcherTest, BuildFailsOnMissingTable) {
  EXPECT_TRUE(FuzzyMatcher::Build(db_.get(), "nope")
                  .status()
                  .IsNotFound());
}

TEST_F(FuzzyMatcherTest, BuildAndMatchEndToEnd) {
  FuzzyMatchConfig config;
  config.eti.signature_size = 3;
  config.eti.index_tokens = true;
  auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
  ASSERT_TRUE(matcher.ok()) << matcher.status();
  EXPECT_EQ((*matcher)->build_stats().reference_tuples, 3000u);
  EXPECT_GT((*matcher)->eti().entry_count(), 0u);
  EXPECT_EQ((*matcher)->weights().num_tuples(), 3000u);

  // Clean input validates against itself.
  auto clean = (*matcher)->reference().Get(100);
  ASSERT_TRUE(clean.ok());
  auto matches = (*matcher)->FindMatches(*clean);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
  auto fetched = (*matcher)->GetReferenceTuple((*matches)[0].tid);
  ASSERT_TRUE(fetched.ok());
}

TEST_F(FuzzyMatcherTest, RecoversDirtyInputsAccurately) {
  FuzzyMatchConfig config;
  config.eti.signature_size = 3;
  config.eti.index_tokens = true;
  auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
  ASSERT_TRUE(matcher.ok());

  auto ref = db_->GetTable("customers");
  ASSERT_TRUE(ref.ok());
  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 150;
  auto inputs = GenerateInputs(*ref, spec, &(*matcher)->weights());
  ASSERT_TRUE(inputs.ok());

  int correct = 0;
  for (const auto& input : *inputs) {
    auto matches = (*matcher)->FindMatches(input.dirty);
    ASSERT_TRUE(matches.ok());
    correct += (!matches->empty() && (*matches)[0].tid == input.seed_tid);
  }
  // D2-grade corruption on a 3000-row relation: the matcher should
  // recover a solid majority (the paper reports ~85-95% on real data).
  EXPECT_GT(correct, 150 * 6 / 10) << correct << "/150";
  EXPECT_EQ((*matcher)->aggregate_stats().queries, 150u);
}

TEST_F(FuzzyMatcherTest, ThresholdRoutesGarbageToCleaning) {
  FuzzyMatchConfig config;
  config.matcher.min_similarity = 0.8;
  auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
  ASSERT_TRUE(matcher.ok());
  auto garbage = (*matcher)->FindMatches(
      Row{std::string("xqzkwv pltrn"), std::string("mmnop"),
          std::string("zz"), std::string("00000")});
  ASSERT_TRUE(garbage.ok());
  EXPECT_TRUE(garbage->empty()) << "below c: route to further cleaning";
}

TEST_F(FuzzyMatcherTest, MultipleStrategiesCoexistInOneDatabase) {
  FuzzyMatchConfig q3;
  q3.eti.signature_size = 3;
  FuzzyMatchConfig qt2;
  qt2.eti.signature_size = 2;
  qt2.eti.index_tokens = true;
  auto m1 = FuzzyMatcher::Build(db_.get(), "customers", q3);
  auto m2 = FuzzyMatcher::Build(db_.get(), "customers", qt2);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  auto row = (*m1)->reference().Get(7);
  ASSERT_TRUE(row.ok());
  auto r1 = (*m1)->FindMatches(*row);
  auto r2 = (*m2)->FindMatches(*row);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ((*r1)[0].similarity, 1.0);
  EXPECT_DOUBLE_EQ((*r2)[0].similarity, 1.0);
}

TEST_F(FuzzyMatcherTest, ResetAggregateStats) {
  auto matcher = FuzzyMatcher::Build(db_.get(), "customers");
  ASSERT_TRUE(matcher.ok());
  auto row = (*matcher)->reference().Get(0);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE((*matcher)->FindMatches(*row).ok());
  EXPECT_EQ((*matcher)->aggregate_stats().queries, 1u);
  (*matcher)->ResetAggregateStats();
  EXPECT_EQ((*matcher)->aggregate_stats().queries, 0u);
}

}  // namespace
}  // namespace fuzzymatch

// Tests of ETI persistence and re-attachment (FuzzyMatcher::Open) and of
// incremental reference-relation maintenance — the capabilities the paper
// mentions in Sections 6.2.2.1 and 7 but does not detail.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/fuzzy_match.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"

namespace fuzzymatch {
namespace {

std::string TempDbPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name + "_" +
         std::to_string(::getpid()) + ".db";
}

Status PopulateCustomers(Database* db, size_t n) {
  FM_ASSIGN_OR_RETURN(
      Table * table,
      db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
  CustomerGenOptions options;
  options.num_tuples = n;
  CustomerGenerator gen(options);
  return gen.Populate(table);
}

TEST(EtiPersistenceTest, OpenReattachesInSameSession) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(PopulateCustomers(db->get(), 2000).ok());

  FuzzyMatchConfig config;
  config.eti.signature_size = 2;
  config.eti.index_tokens = true;
  config.eti.minhash_seed = 777;
  auto built = FuzzyMatcher::Build(db->get(), "customers", config);
  ASSERT_TRUE(built.ok());

  auto opened = FuzzyMatcher::Open(db->get(), "customers", "Q+T_2");
  ASSERT_TRUE(opened.ok()) << opened.status();
  // The persisted parameters win, including the custom seed.
  EXPECT_EQ((*opened)->eti().params().minhash_seed, 777u);
  EXPECT_EQ((*opened)->eti().params().signature_size, 2);
  EXPECT_TRUE((*opened)->eti().params().index_tokens);
  // Attach skips the sort: no pre-ETI rows.
  EXPECT_EQ((*opened)->build_stats().pre_eti_rows, 0u);
  EXPECT_EQ((*opened)->build_stats().reference_tuples, 2000u);

  // Identical answers from both handles.
  auto row = (*built)->reference().Get(1234);
  ASSERT_TRUE(row.ok());
  auto a = (*built)->FindMatches(*row);
  auto b = (*opened)->FindMatches(*row);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_FALSE(a->empty());
  ASSERT_FALSE(b->empty());
  EXPECT_EQ((*a)[0].tid, (*b)[0].tid);
  EXPECT_DOUBLE_EQ((*a)[0].similarity, (*b)[0].similarity);
}

TEST(EtiPersistenceTest, OpenFailsForUnknownStrategy) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(PopulateCustomers(db->get(), 100).ok());
  EXPECT_TRUE(FuzzyMatcher::Open(db->get(), "customers", "Q_3")
                  .status()
                  .IsNotFound());
}

TEST(EtiPersistenceTest, SurvivesDatabaseReopen) {
  const std::string path = TempDbPath("eti_persist");
  std::remove(path.c_str());
  Row probe;
  Tid expected_tid = 0;
  {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(PopulateCustomers(db->get(), 1500).ok());
    FuzzyMatchConfig config;
    config.eti.signature_size = 3;
    auto built = FuzzyMatcher::Build(db->get(), "customers", config);
    ASSERT_TRUE(built.ok());
    auto row = (*built)->reference().Get(42);
    ASSERT_TRUE(row.ok());
    probe = *row;
    auto matches = (*built)->FindMatches(probe);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    expected_tid = (*matches)[0].tid;
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto opened = FuzzyMatcher::Open(db->get(), "customers", "Q_3");
    ASSERT_TRUE(opened.ok()) << opened.status();
    auto matches = (*opened)->FindMatches(probe);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    EXPECT_EQ((*matches)[0].tid, expected_tid);
    EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
  }
  std::remove(path.c_str());
}

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(PopulateCustomers(db_.get(), 1000).ok());
    FuzzyMatchConfig config;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
    ASSERT_TRUE(matcher.ok());
    matcher_ = std::move(*matcher);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<FuzzyMatcher> matcher_;
};

TEST_F(MaintenanceTest, InsertedTupleIsImmediatelyMatchable) {
  const Row fresh{std::string("zyxwv corporation"), std::string("tacoma"),
                  std::string("wa"), std::string("98765")};
  auto tid = matcher_->InsertReferenceTuple(fresh);
  ASSERT_TRUE(tid.ok()) << tid.status();
  EXPECT_EQ(*tid, 1000u);

  // Exact probe.
  auto exact = matcher_->FindMatches(fresh);
  ASSERT_TRUE(exact.ok());
  ASSERT_FALSE(exact->empty());
  EXPECT_EQ((*exact)[0].tid, *tid);
  EXPECT_DOUBLE_EQ((*exact)[0].similarity, 1.0);

  // Dirty probe.
  const Row dirty{std::string("zyxwv corp"), std::string("tacoma"),
                  std::nullopt, std::string("98765")};
  auto fuzzy = matcher_->FindMatches(dirty);
  ASSERT_TRUE(fuzzy.ok());
  ASSERT_FALSE(fuzzy->empty());
  EXPECT_EQ((*fuzzy)[0].tid, *tid);
}

TEST_F(MaintenanceTest, ManyIncrementalInsertsStayConsistent) {
  CustomerGenOptions options;
  options.seed = 999;
  options.num_tuples = 50;
  CustomerGenerator gen(options);
  std::vector<std::pair<Tid, Row>> added;
  for (int i = 0; i < 50; ++i) {
    const Row row = gen.NextRow();
    auto tid = matcher_->InsertReferenceTuple(row);
    ASSERT_TRUE(tid.ok());
    added.emplace_back(*tid, row);
  }
  for (const auto& [tid, row] : added) {
    auto matches = matcher_->FindMatches(row);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
    // The inserted tuple itself must be the match (or an exact duplicate).
    auto match_row = matcher_->GetReferenceTuple((*matches)[0].tid);
    ASSERT_TRUE(match_row.ok());
    EXPECT_EQ(*match_row, row);
  }
}

TEST_F(MaintenanceTest, RemovedTupleStopsMatching) {
  const Row fresh{std::string("qqyyzz holdings"), std::string("yakima"),
                  std::string("wa"), std::string("98901")};
  auto tid = matcher_->InsertReferenceTuple(fresh);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(matcher_->RemoveReferenceTuple(*tid).ok());

  auto matches = matcher_->FindMatches(fresh);
  ASSERT_TRUE(matches.ok());
  for (const Match& m : *matches) {
    EXPECT_NE(m.tid, *tid);
    EXPECT_LT(m.similarity, 1.0);
  }
  EXPECT_TRUE(matcher_->GetReferenceTuple(*tid).status().IsNotFound());
  // Removing again fails cleanly.
  EXPECT_FALSE(matcher_->RemoveReferenceTuple(*tid).ok());
}

TEST_F(MaintenanceTest, InsertRemoveRoundTripPreservesOthers) {
  auto before = matcher_->FindMatches(*matcher_->GetReferenceTuple(123));
  ASSERT_TRUE(before.ok());
  const Row fresh{std::string("ephemeral llc"), std::string("kent"),
                  std::string("wa"), std::string("98030")};
  auto tid = matcher_->InsertReferenceTuple(fresh);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(matcher_->RemoveReferenceTuple(*tid).ok());
  auto after = matcher_->FindMatches(*matcher_->GetReferenceTuple(123));
  ASSERT_TRUE(after.ok());
  ASSERT_FALSE(after->empty());
  EXPECT_EQ((*before)[0].tid, (*after)[0].tid);
  EXPECT_DOUBLE_EQ((*before)[0].similarity, (*after)[0].similarity);
}

TEST_F(MaintenanceTest, StopQGramRowsHandleInserts) {
  // Insert a tuple whose city is shared by many reference tuples; if the
  // coordinate is (or becomes) a stop q-gram the insert must not corrupt
  // anything, and matching must still work via the other columns.
  auto sample = matcher_->GetReferenceTuple(0);
  ASSERT_TRUE(sample.ok());
  Row fresh = *sample;
  fresh[0] = std::string("uniquetokenxyz enterprises");
  auto tid = matcher_->InsertReferenceTuple(fresh);
  ASSERT_TRUE(tid.ok());
  auto matches = matcher_->FindMatches(fresh);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].tid, *tid);
}

}  // namespace
}  // namespace fuzzymatch

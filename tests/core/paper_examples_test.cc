// End-to-end reproduction of the paper's worked examples (Tables 1-3,
// Figure 2's input I1) through the full public stack — the same flows the
// quickstart example prints, pinned as assertions.

#include <gtest/gtest.h>

#include "core/fuzzy_match.h"
#include "match/naive_matcher.h"
#include "sim/ed_tuple.h"
#include "text/tokenizer.h"

namespace fuzzymatch {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable(
        "orgs", Schema({"name", "city", "state", "zipcode"}));
    ASSERT_TRUE(table.ok());
    for (const auto& [name, zip] :
         std::vector<std::pair<std::string, std::string>>{
             {"Boeing Company", "98004"},
             {"Bon Corporation", "98014"},
             {"Companions", "98024"}}) {
      ASSERT_TRUE((*table)
                      ->Insert(Row{name, std::string("Seattle"),
                                   std::string("WA"), zip})
                      .ok());
    }
    FuzzyMatchConfig config;
    config.eti.q = 3;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    config.matcher.fms.enable_transposition = true;
    config.matcher.fms.transposition_cost = TranspositionCost::kConstant;
    config.matcher.fms.transposition_constant = 0.25;
    auto matcher = FuzzyMatcher::Build(db_.get(), "orgs", config);
    ASSERT_TRUE(matcher.ok());
    matcher_ = std::move(*matcher);
  }

  Tid BestTid(const Row& input) {
    auto matches = matcher_->FindMatches(input);
    EXPECT_TRUE(matches.ok());
    EXPECT_FALSE(matches->empty());
    return matches->empty() ? 999 : (*matches)[0].tid;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<FuzzyMatcher> matcher_;
};

TEST_F(PaperExamplesTest, Table2InputsResolveToR1) {
  // R1 = tid 0. All four Table 2 inputs target Boeing Company.
  EXPECT_EQ(BestTid(Row{std::string("Beoing Company"),
                        std::string("Seattle"), std::string("WA"),
                        std::string("98004")}),
            0u)
      << "I1";
  EXPECT_EQ(BestTid(Row{std::string("Beoing Co."), std::string("Seattle"),
                        std::string("WA"), std::string("98004")}),
            0u)
      << "I2";
  EXPECT_EQ(BestTid(Row{std::string("Boeing Corporation"),
                        std::string("Seattle"), std::string("WA"),
                        std::string("98004")}),
            0u)
      << "I3 — where edit distance picks R2";
  EXPECT_EQ(BestTid(Row{std::string("Company Beoing"),
                        std::string("Seattle"), std::nullopt,
                        std::string("98014")}),
            0u)
      << "I4 — needs the transposition operation";
}

TEST_F(PaperExamplesTest, EditDistanceFailsOnI3AndI4AsClaimed) {
  const Tokenizer tok;
  const auto r1 = tok.TokenizeTuple(Row{std::string("Boeing Company"),
                                        std::string("Seattle"),
                                        std::string("WA"),
                                        std::string("98004")});
  const auto r2 = tok.TokenizeTuple(Row{std::string("Bon Corporation"),
                                        std::string("Seattle"),
                                        std::string("WA"),
                                        std::string("98014")});
  const auto r3 = tok.TokenizeTuple(Row{std::string("Companions"),
                                        std::string("Seattle"),
                                        std::string("WA"),
                                        std::string("98024")});
  const auto i3 = tok.TokenizeTuple(Row{std::string("Boeing Corporation"),
                                        std::string("Seattle"),
                                        std::string("WA"),
                                        std::string("98004")});
  const auto i4 = tok.TokenizeTuple(Row{std::string("Company Beoing"),
                                        std::string("Seattle"),
                                        std::nullopt,
                                        std::string("98014")});
  EXPECT_GT(EdTupleSimilarity(i3, r2), EdTupleSimilarity(i3, r1));
  EXPECT_GT(EdTupleSimilarity(i4, r3), EdTupleSimilarity(i4, r1));
}

TEST_F(PaperExamplesTest, EtiShapeMatchesTable3) {
  // The ETI relation exists as a standard relation with the Table 3
  // schema, and shared tokens accumulate all three tids.
  auto eti_table = db_->GetTable("orgs_eti_Q+T_2");
  ASSERT_TRUE(eti_table.ok());
  EXPECT_EQ((*eti_table)->schema(),
            Schema({"qgram", "coordinate", "column", "frequency",
                    "tidlist"}));
  EXPECT_GT((*eti_table)->row_count(), 10u);

  auto wa = matcher_->eti().Lookup("wa", 1, 2);
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wa->has_value());
  EXPECT_EQ((*wa)->frequency, 3u);
  EXPECT_EQ((*wa)->tids, (std::vector<Tid>{0, 1, 2}));
}

TEST_F(PaperExamplesTest, CandidateGenerationCoversFigure2) {
  // Figure 2: every token of I1 contributes sets of tids; their union
  // must contain the target R1 (tid 0). Verified through the stats: the
  // query must process tids and fetch the correct answer.
  QueryStats stats;
  auto matches = matcher_->FindMatches(Row{std::string("Beoing Company"),
                                           std::string("Seattle"),
                                           std::string("WA"),
                                           std::string("98004")},
                                       &stats);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].tid, 0u);
  EXPECT_GT(stats.tids_processed, 0u);
  EXPECT_GE(stats.eti_lookups, 3u);  // OSC short-circuits after the heavy probes
}

}  // namespace
}  // namespace fuzzymatch

// Startup-failure behavior of the fuzzymatch_server binary: a bad
// invocation must exit non-zero in bounded time with a one-line
// diagnostic on stderr — never hang, never crash, never start serving.
// Spawns the real binary (path injected by CMake as FM_SERVER_BINARY).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace fuzzymatch {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

/// Runs the server binary with `flags`, capturing combined output. The
/// caller's flags must make it exit on its own (startup failures do).
RunResult RunServer(const std::string& flags) {
  RunResult result;
  const std::string cmd =
      std::string(FM_SERVER_BINARY) + " " + flags + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return result;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    result.output += buf;
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// A minimal valid reference CSV, enough to get past loading so later
/// startup stages (socket bind) can be exercised.
std::string WriteTinyCsv() {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("fm_server_startup_" + std::to_string(::getpid()) + ".csv"))
          .string();
  std::ofstream out(path);
  out << "name,city,state,zipcode\n"
      << "acme corporation,rochester,ny,14623\n"
      << "globex incorporated,syracuse,ny,13201\n"
      << "initech limited,albany,ny,12203\n";
  return path;
}

/// The diagnostic contract: some single line carries the error.
void ExpectOneLineDiagnostic(const RunResult& run, const char* needle) {
  EXPECT_NE(run.output.find(needle), std::string::npos)
      << "diagnostic missing '" << needle << "' in:\n"
      << run.output;
  EXPECT_NE(run.output.find('\n'), std::string::npos);
}

TEST(ServerStartupTest, MissingRefFlagFailsWithUsage) {
  const RunResult run = RunServer("--port 0");
  EXPECT_EQ(run.exit_code, 1);
  ExpectOneLineDiagnostic(run, "requires --ref");
}

TEST(ServerStartupTest, NoArgsPrintsUsage) {
  const RunResult run = RunServer("");
  EXPECT_EQ(run.exit_code, 2);
  ExpectOneLineDiagnostic(run, "usage:");
}

TEST(ServerStartupTest, NonexistentReferenceFileFails) {
  const RunResult run =
      RunServer("--ref /nonexistent/fm_no_such_file.csv --port 0");
  EXPECT_EQ(run.exit_code, 1);
  ExpectOneLineDiagnostic(run, "cannot open");
}

TEST(ServerStartupTest, MalformedAccelBudgetFails) {
  const std::string csv = WriteTinyCsv();
  const RunResult run =
      RunServer("--ref " + csv + " --accel-budget-mb banana --port 0");
  EXPECT_EQ(run.exit_code, 1);
  ExpectOneLineDiagnostic(run, "accel-budget-mb");
  std::filesystem::remove(csv);
}

TEST(ServerStartupTest, OutOfRangeAccelBudgetFails) {
  const std::string csv = WriteTinyCsv();
  const RunResult run =
      RunServer("--ref " + csv + " --accel-budget-mb -3 --port 0");
  EXPECT_EQ(run.exit_code, 1);
  ExpectOneLineDiagnostic(run, "accel-budget-mb");
  std::filesystem::remove(csv);
}

TEST(ServerStartupTest, AlreadyBoundPortFails) {
  // Hold the port ourselves so the server's bind must fail.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::inet_addr("127.0.0.1");
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const int port = ntohs(addr.sin_port);

  const std::string csv = WriteTinyCsv();
  const RunResult run =
      RunServer("--ref " + csv + " --port " + std::to_string(port));
  EXPECT_EQ(run.exit_code, 1);
  ExpectOneLineDiagnostic(run, "error:");
  ::close(listener);
  std::filesystem::remove(csv);
}

}  // namespace
}  // namespace fuzzymatch

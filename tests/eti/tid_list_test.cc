#include "eti/tid_list.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fuzzymatch {
namespace {

TEST(TidListTest, RoundTripsBasicLists) {
  for (const std::vector<Tid>& tids :
       std::vector<std::vector<Tid>>{{},
                                     {0},
                                     {42},
                                     {1, 2, 3},
                                     {0, 1000000, 4000000000u}}) {
    const auto decoded = DecodeTidList(EncodeTidList(tids));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, tids);
  }
}

TEST(TidListTest, DeltaCompressionIsCompact) {
  // 10000 consecutive tids: ~1 byte each after the first.
  std::vector<Tid> tids(10000);
  for (Tid i = 0; i < 10000; ++i) {
    tids[i] = 500000 + i;
  }
  const std::string blob = EncodeTidList(tids);
  EXPECT_LT(blob.size(), 10100u);
  const auto decoded = DecodeTidList(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, tids);
}

TEST(TidListTest, RandomSortedLists) {
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Tid> tids;
    Tid cur = 0;
    const size_t n = rng.Uniform(500);
    for (size_t i = 0; i < n; ++i) {
      cur += 1 + static_cast<Tid>(rng.Uniform(1000));
      tids.push_back(cur);
    }
    const auto decoded = DecodeTidList(EncodeTidList(tids));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, tids);
  }
}

TEST(TidListTest, RejectsCorruptBlobs) {
  const std::vector<Tid> tids = {10, 20, 30};
  const std::string blob = EncodeTidList(tids);
  EXPECT_FALSE(DecodeTidList(blob.substr(0, blob.size() - 1)).ok());
  EXPECT_FALSE(DecodeTidList(blob + "\x01").ok());
  EXPECT_FALSE(DecodeTidList("").ok());
}

TEST(TidListTest, RejectsDuplicateTids) {
  // A zero delta after the first element means a duplicate.
  std::string blob;
  blob.push_back(2);  // count
  blob.push_back(5);  // first tid
  blob.push_back(0);  // delta 0 -> duplicate
  EXPECT_TRUE(DecodeTidList(blob).status().IsCorruption());
}

}  // namespace
}  // namespace fuzzymatch

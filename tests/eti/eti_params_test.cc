// EtiParams naming and meta-relation persistence round trips.

#include <gtest/gtest.h>

#include "eti/eti.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

TEST(EtiParamsTest, StrategyNames) {
  EtiParams p;
  p.signature_size = 3;
  EXPECT_EQ(p.StrategyName(), "Q_3");
  p.index_tokens = true;
  EXPECT_EQ(p.StrategyName(), "Q+T_3");
  p.signature_size = 0;
  EXPECT_EQ(p.StrategyName(), "Q+T_0");
  p.full_qgram_index = true;
  EXPECT_EQ(p.StrategyName(), "FULLQG+T");
  p.index_tokens = false;
  EXPECT_EQ(p.StrategyName(), "FULLQG");
}

TEST(EtiParamsTest, MetaRelationRoundTripsEveryField) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  EtiParams params;
  params.q = 5;
  params.signature_size = 7;
  params.index_tokens = true;
  params.full_qgram_index = true;
  params.stop_qgram_threshold = 1234;
  params.minhash_seed = 0xDEADBEEFCAFEULL;
  params.delimiters = " -_";
  ASSERT_TRUE(SaveEtiParams(db->get(), "x_eti_T", params).ok());

  auto loaded = LoadEtiParams(db->get(), "x_eti_T");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->q, 5);
  EXPECT_EQ(loaded->signature_size, 7);
  EXPECT_TRUE(loaded->index_tokens);
  EXPECT_TRUE(loaded->full_qgram_index);
  EXPECT_EQ(loaded->stop_qgram_threshold, 1234u);
  EXPECT_EQ(loaded->minhash_seed, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(loaded->delimiters, " -_");
}

TEST(EtiParamsTest, LoadFailsWithoutMeta) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(LoadEtiParams(db->get(), "never_built").status().IsNotFound());
}

TEST(EtiParamsTest, SaveTwiceFails) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(SaveEtiParams(db->get(), "y", EtiParams{}).ok());
  EXPECT_TRUE(SaveEtiParams(db->get(), "y", EtiParams{})
                  .IsAlreadyExists());
}

TEST(EtiIndexKeyTest, DistinctCombinationsDistinctKeys) {
  const std::string a = Eti::IndexKey("boe", 1, 0);
  EXPECT_NE(a, Eti::IndexKey("boe", 2, 0));
  EXPECT_NE(a, Eti::IndexKey("boe", 1, 1));
  EXPECT_NE(a, Eti::IndexKey("oei", 1, 0));
  EXPECT_EQ(a, Eti::IndexKey("boe", 1, 0));
}

TEST(EtiRowCodecTest, RoundTripsEntries) {
  EtiEntry entry;
  entry.frequency = 3;
  entry.tids = {1, 5, 9};
  const Row row = Eti::EncodeRow("ing", 2, 1, entry);
  auto decoded = Eti::DecodeEntry(row);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->frequency, 3u);
  EXPECT_FALSE(decoded->is_stop);
  EXPECT_EQ(decoded->tids, entry.tids);

  EtiEntry stop;
  stop.frequency = 99999;
  stop.is_stop = true;
  const Row stop_row = Eti::EncodeRow("sea", 1, 1, stop);
  EXPECT_FALSE(stop_row[4].has_value()) << "stop rows store NULL tid-list";
  auto stop_decoded = Eti::DecodeEntry(stop_row);
  ASSERT_TRUE(stop_decoded.ok());
  EXPECT_TRUE(stop_decoded->is_stop);
  EXPECT_EQ(stop_decoded->frequency, 99999u);

  // Wrong arity is rejected.
  EXPECT_TRUE(Eti::DecodeEntry(Row{std::string("x")})
                  .status()
                  .IsCorruption());
}

}  // namespace
}  // namespace fuzzymatch

#include "eti/signature.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace fuzzymatch {
namespace {

double TotalShare(const std::vector<TokenCoordinate>& coords) {
  return std::accumulate(coords.begin(), coords.end(), 0.0,
                         [](double acc, const TokenCoordinate& tc) {
                           return acc + tc.weight_share;
                         });
}

TEST(SignatureTest, QOnlyCoordinatesAndShares) {
  const MinHasher hasher(4, 3, 9);
  const auto coords =
      MakeTokenCoordinates(hasher, /*index_tokens=*/false, "corporation", 1.5);
  ASSERT_EQ(coords.size(), 3u);
  for (uint32_t j = 0; j < coords.size(); ++j) {
    EXPECT_EQ(coords[j].coordinate, j + 1) << "q-grams start at coord 1";
    EXPECT_NEAR(coords[j].weight_share, 0.5, 1e-12);
  }
  EXPECT_NEAR(TotalShare(coords), 1.5, 1e-12);
}

TEST(SignatureTest, QPlusTSplitsWeightEqually) {
  const MinHasher hasher(4, 2, 9);
  const auto coords =
      MakeTokenCoordinates(hasher, /*index_tokens=*/true, "corporation", 2.0);
  ASSERT_EQ(coords.size(), 3u);
  EXPECT_EQ(coords[0].coordinate, 0u);
  EXPECT_EQ(coords[0].gram, "corporation");
  EXPECT_NEAR(coords[0].weight_share, 1.0, 1e-12) << "token gets half";
  EXPECT_NEAR(coords[1].weight_share, 0.5, 1e-12);
  EXPECT_NEAR(coords[2].weight_share, 0.5, 1e-12);
  EXPECT_NEAR(TotalShare(coords), 2.0, 1e-12);
}

TEST(SignatureTest, ShortTokenSignatureIsTokenItself) {
  const MinHasher hasher(4, 3, 9);
  // |wa| <= q: the min-hash signature is [wa], one coordinate.
  const auto q_coords =
      MakeTokenCoordinates(hasher, /*index_tokens=*/false, "wa", 1.0);
  ASSERT_EQ(q_coords.size(), 1u);
  EXPECT_EQ(q_coords[0].gram, "wa");
  EXPECT_EQ(q_coords[0].coordinate, 1u);
  EXPECT_NEAR(q_coords[0].weight_share, 1.0, 1e-12);

  // Under Q+T it appears both as the token (coord 0) and its signature.
  const auto t_coords =
      MakeTokenCoordinates(hasher, /*index_tokens=*/true, "wa", 1.0);
  ASSERT_EQ(t_coords.size(), 2u);
  EXPECT_EQ(t_coords[0].coordinate, 0u);
  EXPECT_EQ(t_coords[1].coordinate, 1u);
  EXPECT_NEAR(TotalShare(t_coords), 1.0, 1e-12);
}

TEST(SignatureTest, TokenOnlyStrategyH0) {
  const MinHasher hasher(4, 0, 9);
  // Q+T_0: long tokens index only as themselves, at full weight.
  const auto coords =
      MakeTokenCoordinates(hasher, /*index_tokens=*/true, "corporation", 1.0);
  ASSERT_EQ(coords.size(), 1u);
  EXPECT_EQ(coords[0].coordinate, 0u);
  EXPECT_NEAR(coords[0].weight_share, 1.0, 1e-12);
  // Q_0 would produce nothing (rejected at build time).
  EXPECT_TRUE(MakeTokenCoordinates(hasher, false, "corporation", 1.0)
                  .empty());
}

TEST(SignatureTest, SharesAlwaysSumToTokenWeight) {
  for (const int h : {0, 1, 2, 3, 5}) {
    const MinHasher hasher(4, h, 3);
    for (const bool tokens : {false, true}) {
      for (const char* word : {"x", "wa", "boeing", "corporation"}) {
        const auto coords =
            MakeTokenCoordinates(hasher, tokens, word, 2.5);
        if (coords.empty()) {
          continue;
        }
        EXPECT_NEAR(TotalShare(coords), 2.5, 1e-12)
            << word << " h=" << h << " tokens=" << tokens;
      }
    }
  }
}

}  // namespace
}  // namespace fuzzymatch

// Tests of the learned-offset lookup structure (DESIGN.md 5i): parity
// with the B-tree route, the exactness of the per-segment error bound,
// maintenance coherence (tombstones, incompleteness), and the metrics
// that split model hits from corrections and fallbacks.

#include "eti/learned_offsets.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fuzzy_match.h"
#include "eti/eti.h"
#include "eti/eti_builder.h"
#include "eti/lookup_path.h"
#include "eti/signature.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "obs/metrics.h"

namespace fuzzymatch {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

class LearnedOffsetsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  /// The paper's Table 1 organization relation.
  Table* MakeTable1() {
    auto table = db_->CreateTable(
        "orgs", Schema({"name", "city", "state", "zipcode"}));
    EXPECT_TRUE(table.ok());
    for (const char* name : {"Boeing Company", "Bon Corporation",
                             "Companions"}) {
      const char* zip = name[2] == 'e' ? "98004"
                        : name[2] == 'n' ? "98014"
                                         : "98024";
      EXPECT_TRUE((*table)
                      ->Insert(Row{std::string(name), std::string("Seattle"),
                                   std::string("WA"), std::string(zip)})
                      .ok());
    }
    return *table;
  }

  Table* MakeCustomers(size_t n) {
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    EXPECT_TRUE(table.ok());
    CustomerGenOptions options;
    options.num_tuples = n;
    CustomerGenerator gen(options);
    EXPECT_TRUE(gen.Populate(*table).ok());
    return *table;
  }

  struct ProbeKey {
    std::string gram;
    uint32_t coordinate;
    uint32_t column;
  };
  std::vector<ProbeKey> AllProbeKeys(Table* ref, const Eti& eti,
                                     size_t max_tuples = SIZE_MAX) {
    std::vector<ProbeKey> keys;
    const Tokenizer tokenizer = eti.MakeTokenizer();
    const MinHasher hasher = eti.MakeHasher();
    Table::Scanner scanner = ref->Scan();
    Tid tid;
    Row row;
    size_t seen = 0;
    for (;;) {
      auto more = scanner.Next(&tid, &row);
      EXPECT_TRUE(more.ok());
      if (!*more || seen++ >= max_tuples) break;
      const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
      for (uint32_t col = 0; col < tokens.size(); ++col) {
        for (const auto& token : tokens[col]) {
          for (const auto& tc :
               MakeTokenCoordinates(hasher, eti.params(), token, 1.0)) {
            keys.push_back({tc.gram, tc.coordinate, col});
          }
        }
      }
    }
    return keys;
  }

  void ExpectLookupParity(const Eti& learned_handle,
                          const Eti& plain_handle,
                          const std::vector<ProbeKey>& keys) {
    for (const ProbeKey& key : keys) {
      auto a = learned_handle.Lookup(key.gram, key.coordinate, key.column);
      auto b = plain_handle.Lookup(key.gram, key.coordinate, key.column);
      ASSERT_TRUE(a.ok()) << key.gram;
      ASSERT_TRUE(b.ok()) << key.gram;
      ASSERT_EQ(a->has_value(), b->has_value())
          << key.gram << "/" << key.coordinate << "/" << key.column;
      if (!a->has_value()) continue;
      EXPECT_EQ((*a)->frequency, (*b)->frequency) << key.gram;
      EXPECT_EQ((*a)->is_stop, (*b)->is_stop) << key.gram;
      EXPECT_EQ((*a)->tids, (*b)->tids) << key.gram;
    }
  }

  Result<BuiltEti> BuildOrgsEti(Table* orgs) {
    EtiBuilder::Options options;
    options.params.q = 3;
    options.params.signature_size = 2;
    options.params.index_tokens = true;
    return EtiBuilder::Build(db_.get(), orgs, options);
  }

  std::unique_ptr<Database> db_;
  /// Databases backing per-variant matchers (kept alive for the test).
  std::vector<std::unique_ptr<Database>> extra_dbs_;
};

TEST_F(LearnedOffsetsTest, LookupPathNamesRoundTrip) {
  for (const LookupPath path :
       {LookupPath::kScalar, LookupPath::kSimd, LookupPath::kLearned}) {
    const auto parsed = ParseLookupPath(LookupPathName(path));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, path);
  }
  EXPECT_TRUE(ParseLookupPath("btree").status().IsInvalidArgument());
  EXPECT_TRUE(ParseLookupPath("").status().IsInvalidArgument());
}

TEST_F(LearnedOffsetsTest, LearnedPathMirrorsTheBTree) {
  Table* orgs = MakeTable1();
  auto built = BuildOrgsEti(orgs);
  ASSERT_TRUE(built.ok());

  const Eti plain = built->eti;  // stays on the default path
  ASSERT_TRUE(built->eti.SetLookupPath(LookupPath::kLearned).ok());
  const LearnedOffsets* learned = built->eti.learned();
  ASSERT_NE(learned, nullptr);
  EXPECT_TRUE(learned->complete());
  EXPECT_EQ(learned->entry_count(), built->eti.entry_count());
  EXPECT_GT(learned->segment_count(), 0u);
  EXPECT_GT(learned->memory_bytes(), 0u);

  std::vector<ProbeKey> keys = AllProbeKeys(orgs, built->eti);
  ASSERT_FALSE(keys.empty());
  // Misses must agree too (authoritative negatives while complete).
  keys.push_back({"zzz", 1, 0});
  keys.push_back({"sea", 1, 3});
  keys.push_back({"seattle", 0, 3});

  const uint64_t hits_before = CounterValue("lookup.model_hits");
  const uint64_t negatives_before = CounterValue("lookup.model_negatives");
  ExpectLookupParity(built->eti, plain, keys);
  EXPECT_GT(CounterValue("lookup.model_hits"), hits_before);
  EXPECT_GT(CounterValue("lookup.model_negatives"), negatives_before);
}

TEST_F(LearnedOffsetsTest, DirectProbeOutcomes) {
  Table* orgs = MakeTable1();
  auto built = BuildOrgsEti(orgs);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->eti.SetLookupPath(LookupPath::kLearned).ok());
  const LearnedOffsets* learned = built->eti.learned();
  ASSERT_NE(learned, nullptr);

  std::vector<Tid> scratch;
  EtiLookupView view;
  ASSERT_EQ(learned->Probe(Eti::IndexKey("seattle", 0, 1),
                           SimdLevel::kScalar, &scratch, &view),
            LearnedOffsets::Outcome::kHit);
  EXPECT_TRUE(view.found);
  EXPECT_FALSE(view.is_stop);
  EXPECT_EQ(view.frequency, 3u);
  ASSERT_EQ(view.num_tids, 3u);
  EXPECT_EQ((std::vector<Tid>(view.tids, view.tids + view.num_tids)),
            (std::vector<Tid>{0, 1, 2}));

  // Absent key on a complete structure: authoritative negative.
  EXPECT_EQ(learned->Probe(Eti::IndexKey("zzz", 1, 0), SimdLevel::kScalar,
                           &scratch, &view),
            LearnedOffsets::Outcome::kNegative);
  EXPECT_FALSE(view.found);
}

TEST_F(LearnedOffsetsTest, ErrorBoundHoldsForEveryResidentKey) {
  // Volume build with tiny segments: every indexed key must resolve as a
  // model hit or correction, never silently miss — the "exact bound"
  // claim, tested key by key through the public probe.
  Table* customers = MakeCustomers(300);
  EtiBuilder::Options options;
  options.params.q = 4;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  auto built = EtiBuilder::Build(db_.get(), customers, options);
  ASSERT_TRUE(built.ok());
  const Eti plain = built->eti;
  ASSERT_TRUE(built->eti.SetLookupPath(LookupPath::kLearned).ok());
  const LearnedOffsets* learned = built->eti.learned();
  ASSERT_NE(learned, nullptr);
  ASSERT_GT(learned->segment_count(), 1u)
      << "volume build should span multiple segments";

  const uint64_t fallbacks_before = CounterValue("lookup.model_fallbacks");
  ExpectLookupParity(built->eti, plain,
                     AllProbeKeys(customers, built->eti, 60));
  // Every key is resident and untouched: the model never punts to the
  // B-tree on this workload.
  EXPECT_EQ(CounterValue("lookup.model_fallbacks"), fallbacks_before);
}

TEST_F(LearnedOffsetsTest, MaintenanceTombstonesAndIncompleteness) {
  Table* orgs = MakeTable1();
  auto built = BuildOrgsEti(orgs);
  ASSERT_TRUE(built.ok());
  const Eti plain = built->eti;
  ASSERT_TRUE(built->eti.SetLookupPath(LookupPath::kLearned).ok());
  const LearnedOffsets* learned = built->eti.learned();
  ASSERT_NE(learned, nullptr);
  const size_t resident_before = learned->entry_count();

  // Insert a tuple sharing 'seattle' and bringing brand-new tokens: the
  // known keys tombstone, the unknown keys flip the structure to
  // incomplete.
  const Row fresh{std::string("Rainier Works"), std::string("Seattle"),
                  std::string("WA"), std::string("98044")};
  auto tid = orgs->Insert(fresh);
  ASSERT_TRUE(tid.ok());
  const TokenizedTuple tokens =
      built->eti.MakeTokenizer().TokenizeTuple(fresh);
  ASSERT_TRUE(built->eti.IndexTuple(*tid, tokens).ok());
  EXPECT_LT(learned->entry_count(), resident_before);
  EXPECT_FALSE(learned->complete());

  // Tombstoned key: the probe defers to the B-tree (kFallback) and the
  // full lookup sees the appended tid.
  std::vector<Tid> scratch;
  EtiLookupView view;
  const uint64_t fallbacks_before = CounterValue("lookup.model_fallbacks");
  EXPECT_EQ(learned->Probe(Eti::IndexKey("seattle", 0, 1),
                           SimdLevel::kScalar, &scratch, &view),
            LearnedOffsets::Outcome::kFallback);
  EXPECT_GT(CounterValue("lookup.model_fallbacks"), fallbacks_before);
  auto seattle = built->eti.Lookup("seattle", 0, 1);
  ASSERT_TRUE(seattle.ok());
  ASSERT_TRUE(seattle->has_value());
  EXPECT_EQ((*seattle)->frequency, 4u);
  EXPECT_EQ((*seattle)->tids, (std::vector<Tid>{0, 1, 2, 3}));

  // Brand-new key: a complete structure would answer a wrong negative;
  // incompleteness forces the B-tree consult that finds it.
  EXPECT_EQ(learned->Probe(Eti::IndexKey("works", 0, 0),
                           SimdLevel::kScalar, &scratch, &view),
            LearnedOffsets::Outcome::kFallback);
  auto works = built->eti.Lookup("works", 0, 0);
  ASSERT_TRUE(works.ok());
  ASSERT_TRUE(works->has_value());
  EXPECT_EQ((*works)->tids, (std::vector<Tid>{3}));

  // Full parity against the plain handle, including the new tuple's keys
  // and after removal.
  ExpectLookupParity(built->eti, plain, AllProbeKeys(orgs, built->eti));
  ASSERT_TRUE(built->eti.UnindexTuple(*tid, tokens).ok());
  ExpectLookupParity(built->eti, plain, AllProbeKeys(orgs, built->eti));
}

TEST_F(LearnedOffsetsTest, StopQGramsServeNullTidLists) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  options.params.stop_qgram_threshold = 2;  // freq 3 > 2: 'seattle' is stop
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->eti.SetLookupPath(LookupPath::kLearned).ok());

  std::vector<Tid> scratch;
  EtiLookupView view;
  ASSERT_EQ(built->eti.learned()->Probe(Eti::IndexKey("seattle", 0, 1),
                                        SimdLevel::kScalar, &scratch, &view),
            LearnedOffsets::Outcome::kHit);
  EXPECT_TRUE(view.is_stop);
  EXPECT_EQ(view.frequency, 3u);
  EXPECT_EQ(view.num_tids, 0u);
}

TEST_F(LearnedOffsetsTest, MatcherResultsIdenticalAcrossLookupPaths) {
  // Three matchers over the same deterministic relation, one per lookup
  // path; results must be exactly identical (the standing byte-identical
  // contract the CI lookupcheck stage enforces end-to-end).
  constexpr size_t kRefSize = 500;
  Table* customers = MakeCustomers(kRefSize);

  auto build_variant =
      [&](LookupPath path) -> Result<std::unique_ptr<FuzzyMatcher>> {
    auto db = Database::Open(DatabaseOptions{});
    if (!db.ok()) return db.status();
    auto table = (*db)->CreateTable("customers",
                                    CustomerGenerator::CustomerSchema());
    if (!table.ok()) return table.status();
    CustomerGenOptions gen_options;
    gen_options.num_tuples = kRefSize;
    CustomerGenerator gen(gen_options);
    FM_RETURN_IF_ERROR(gen.Populate(*table));
    FuzzyMatchConfig config;
    config.eti.signature_size = 3;
    config.eti.index_tokens = true;
    config.lookup_path = path;
    FM_ASSIGN_OR_RETURN(auto matcher,
                        FuzzyMatcher::Build(db->get(), "customers", config));
    extra_dbs_.push_back(std::move(*db));
    return matcher;
  };

  auto scalar = build_variant(LookupPath::kScalar);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  auto simd = build_variant(LookupPath::kSimd);
  ASSERT_TRUE(simd.ok()) << simd.status();
  auto learned = build_variant(LookupPath::kLearned);
  ASSERT_TRUE(learned.ok()) << learned.status();
  EXPECT_EQ((*scalar)->eti().lookup_path(), LookupPath::kScalar);
  EXPECT_EQ((*simd)->eti().lookup_path(), LookupPath::kSimd);
  ASSERT_NE((*learned)->eti().learned(), nullptr);

  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 60;
  auto inputs = GenerateInputs(customers, spec, &(*scalar)->weights());
  ASSERT_TRUE(inputs.ok());
  for (const auto& input : *inputs) {
    auto a = (*scalar)->FindMatches(input.dirty);
    auto b = (*simd)->FindMatches(input.dirty);
    auto c = (*learned)->FindMatches(input.dirty);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    ASSERT_EQ(a->size(), b->size());
    ASSERT_EQ(a->size(), c->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].tid, (*b)[i].tid);
      EXPECT_EQ((*a)[i].tid, (*c)[i].tid);
      // Exact equality, not near-equality: all variants must run the
      // same arithmetic in the same order.
      EXPECT_EQ((*a)[i].similarity, (*b)[i].similarity);
      EXPECT_EQ((*a)[i].similarity, (*c)[i].similarity);
    }
  }
}

}  // namespace
}  // namespace fuzzymatch

#include "eti/eti_builder.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "eti/signature.h"
#include "gen/customer_gen.h"

namespace fuzzymatch {
namespace {

class EtiBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  /// Loads the paper's Table 1 organization relation.
  Table* MakeTable1() {
    auto table = db_->CreateTable(
        "orgs", Schema({"name", "city", "state", "zipcode"}));
    EXPECT_TRUE(table.ok());
    for (const char* name : {"Boeing Company", "Bon Corporation",
                             "Companions"}) {
      const char* zip = name[2] == 'e' ? "98004"
                        : name[2] == 'n' ? "98014"
                                         : "98024";
      EXPECT_TRUE((*table)
                      ->Insert(Row{std::string(name), std::string("Seattle"),
                                   std::string("WA"), std::string(zip)})
                      .ok());
    }
    return *table;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(EtiBuilderTest, RejectsDegenerateParams) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.signature_size = 0;
  options.params.index_tokens = false;
  EXPECT_TRUE(EtiBuilder::Build(db_.get(), orgs, options)
                  .status()
                  .IsInvalidArgument());
  options.params.q = 0;
  EXPECT_TRUE(EtiBuilder::Build(db_.get(), orgs, options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EtiBuilderTest, BuildsTable1Index) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());

  EXPECT_EQ(built->stats.reference_tuples, 3u);
  EXPECT_GT(built->stats.eti_rows, 0u);
  EXPECT_GE(built->stats.pre_eti_rows, built->stats.eti_rows);
  EXPECT_EQ(built->stats.stop_qgrams, 0u);

  // Every token of every reference tuple must be findable through its own
  // signature coordinates with its tid in the tid-list.
  const Tokenizer tokenizer = built->eti.MakeTokenizer();
  const MinHasher hasher = built->eti.MakeHasher();
  Table::Scanner scanner = orgs->Scan();
  Tid tid;
  Row row;
  for (;;) {
    auto more = scanner.Next(&tid, &row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
    for (uint32_t col = 0; col < tokens.size(); ++col) {
      for (const auto& token : tokens[col]) {
        for (const auto& tc : MakeTokenCoordinates(
                 hasher, options.params.index_tokens, token, 1.0)) {
          auto entry = built->eti.Lookup(tc.gram, tc.coordinate, col);
          ASSERT_TRUE(entry.ok());
          ASSERT_TRUE(entry->has_value())
              << tc.gram << "/" << tc.coordinate << "/" << col;
          EXPECT_FALSE((*entry)->is_stop);
          EXPECT_NE(std::find((*entry)->tids.begin(), (*entry)->tids.end(),
                              tid),
                    (*entry)->tids.end());
        }
      }
    }
  }
}

TEST_F(EtiBuilderTest, SharedTokensAccumulateTidLists) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  // 'seattle' (city, column 1) appears in all three tuples; under Q+T its
  // token row carries all three tids.
  auto entry = built->eti.Lookup("seattle", 0, 1);
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry->has_value());
  EXPECT_EQ((*entry)->frequency, 3u);
  EXPECT_EQ((*entry)->tids, (std::vector<Tid>{0, 1, 2}));
}

TEST_F(EtiBuilderTest, MissingCombinationsReturnNullopt) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  auto entry = built->eti.Lookup("zzz", 1, 0);
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(entry->has_value());
  // Right gram, wrong column.
  auto wrong_col = built->eti.Lookup("sea", 1, 3);
  ASSERT_TRUE(wrong_col.ok());
  EXPECT_FALSE(wrong_col->has_value());
}

TEST_F(EtiBuilderTest, StopQGramThreshold) {
  // With threshold 2, any coordinate shared by all 3 tuples (e.g. the
  // 'seattle' city token under Q+T) becomes a stop q-gram with a NULL
  // tid-list but a true frequency.
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  options.params.stop_qgram_threshold = 2;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->stats.stop_qgrams, 0u);
  auto entry = built->eti.Lookup("seattle", 0, 1);
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry->has_value());
  EXPECT_TRUE((*entry)->is_stop);
  EXPECT_EQ((*entry)->frequency, 3u);
  EXPECT_TRUE((*entry)->tids.empty());
}

TEST_F(EtiBuilderTest, DuplicateStrategyRejected) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  ASSERT_TRUE(EtiBuilder::Build(db_.get(), orgs, options).ok());
  EXPECT_TRUE(EtiBuilder::Build(db_.get(), orgs, options)
                  .status()
                  .IsAlreadyExists());
  // A different strategy coexists.
  options.params.signature_size = 3;
  EXPECT_TRUE(EtiBuilder::Build(db_.get(), orgs, options).ok());
}

TEST_F(EtiBuilderTest, WeightsComeFromTheSameScan) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->weights.num_tuples(), 3u);
  EXPECT_EQ(built->weights.Frequency("seattle", 1), 3u);
  EXPECT_EQ(built->weights.Frequency("boeing", 0), 1u);
  EXPECT_GT(built->weights.Weight("boeing", 0),
            built->weights.Weight("seattle", 1));
}

TEST_F(EtiBuilderTest, GiantTokensDoNotBreakTheTokenIndex) {
  // A token longer than the B+-tree entry limit must not abort the build
  // under Q+T: it falls back to q-gram-only indexing.
  auto table = db_->CreateTable("weird", Schema({"name"}));
  ASSERT_TRUE(table.ok());
  const std::string giant(2000, 'g');
  ASSERT_TRUE((*table)->Insert(Row{giant + " normaltoken"}).ok());
  ASSERT_TRUE((*table)->Insert(Row{std::string("another row")}).ok());

  EtiBuilder::Options options;
  options.params.q = 4;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  auto built = EtiBuilder::Build(db_.get(), *table, options);
  ASSERT_TRUE(built.ok()) << built.status();
  // The normal token is still token-indexed; the giant one is not, but
  // its q-gram coordinates are present.
  auto token_row = built->eti.Lookup("normaltoken", 0, 0);
  ASSERT_TRUE(token_row.ok());
  EXPECT_TRUE(token_row->has_value());
  auto giant_token_row = built->eti.Lookup(giant, 0, 0);
  ASSERT_TRUE(giant_token_row.ok());
  EXPECT_FALSE(giant_token_row->has_value());
  const MinHasher hasher = built->eti.MakeHasher();
  const auto sig = hasher.Signature(giant);
  ASSERT_FALSE(sig.empty());
  auto gram_row = built->eti.Lookup(sig[0], 1, 0);
  ASSERT_TRUE(gram_row.ok());
  EXPECT_TRUE(gram_row->has_value());
}

TEST_F(EtiBuilderTest, FullQGramBaselineIndexesEveryGram) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.full_qgram_index = true;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->eti.params().StrategyName(), "FULLQG");

  // Every q-gram of 'boeing' must be findable on coordinate 1.
  for (const char* gram : {"boe", "oei", "ein", "ing"}) {
    auto entry = built->eti.Lookup(gram, 1, 0);
    ASSERT_TRUE(entry.ok());
    ASSERT_TRUE(entry->has_value()) << gram;
    EXPECT_EQ((*entry)->tids, std::vector<Tid>{0}) << gram;
  }

  // The full index has strictly more rows than a min-hash one.
  EtiBuilder::Options sampled;
  sampled.params.q = 3;
  sampled.params.signature_size = 2;
  auto sampled_built = EtiBuilder::Build(db_.get(), orgs, sampled);
  ASSERT_TRUE(sampled_built.ok());
  EXPECT_GT(built->stats.eti_rows, sampled_built->stats.eti_rows);
  EXPECT_GT(built->stats.pre_eti_rows, sampled_built->stats.pre_eti_rows);
}

TEST_F(EtiBuilderTest, ScalesWithSpillingSort) {
  // A synthetic relation with a tiny sort budget exercises run spilling.
  auto table = db_->CreateTable("customers",
                                CustomerGenerator::CustomerSchema());
  ASSERT_TRUE(table.ok());
  CustomerGenOptions gen_options;
  gen_options.num_tuples = 2000;
  CustomerGenerator generator(gen_options);
  ASSERT_TRUE(generator.Populate(*table).ok());

  EtiBuilder::Options options;
  options.params.q = 4;
  options.params.signature_size = 2;
  options.sort_memory_bytes = 64 * 1024;  // force spills
  options.temp_dir = ::testing::TempDir();
  auto built = EtiBuilder::Build(db_.get(), *table, options);
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->stats.spilled_runs, 0u);
  EXPECT_EQ(built->stats.reference_tuples, 2000u);
  EXPECT_EQ(built->eti.entry_count(), built->stats.eti_rows);
  // Spot-check: a random reference token resolves to its tid.
  auto row = (*table)->Get(1234);
  ASSERT_TRUE(row.ok());
  const Tokenizer tokenizer = built->eti.MakeTokenizer();
  const MinHasher hasher = built->eti.MakeHasher();
  const TokenizedTuple tokens = tokenizer.TokenizeTuple(*row);
  ASSERT_FALSE(tokens[0].empty());
  const auto coords =
      MakeTokenCoordinates(hasher, false, tokens[0][0], 1.0);
  ASSERT_FALSE(coords.empty());
  auto entry = built->eti.Lookup(coords[0].gram, coords[0].coordinate, 0);
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry->has_value());
  if (!(*entry)->is_stop) {
    EXPECT_NE(std::find((*entry)->tids.begin(), (*entry)->tids.end(), 1234u),
              (*entry)->tids.end());
  }
}

/// Populates `db` with a deterministic synthetic Customer relation.
Table* MakeCustomers(Database* db, size_t rows) {
  auto table =
      db->CreateTable("customers", CustomerGenerator::CustomerSchema());
  EXPECT_TRUE(table.ok());
  CustomerGenOptions gen_options;
  gen_options.num_tuples = rows;
  CustomerGenerator generator(gen_options);
  EXPECT_TRUE(generator.Populate(*table).ok());
  return *table;
}

/// All rows of a table in tid order, key-encoded for comparison.
std::vector<Row> DumpRows(Table* table) {
  std::vector<Row> rows;
  Table::Scanner scanner = table->Scan();
  Tid tid;
  Row row;
  for (;;) {
    auto more = scanner.Next(&tid, &row);
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !*more) break;
    rows.push_back(row);
  }
  return rows;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(EtiBuilderTest, ParallelBuildMatchesSerial) {
  // Same relation in two databases; build serial vs 3 workers with a
  // budget small enough to spill. Every persisted ETI row must match,
  // and the merged frequency cache must agree with the serial scan's.
  auto serial_db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(serial_db.ok());
  Table* serial_ref = MakeCustomers(serial_db->get(), 1500);
  Table* parallel_ref = MakeCustomers(db_.get(), 1500);

  EtiBuilder::Options options;
  options.params.q = 4;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  options.sort_memory_bytes = 32 * 1024;
  options.temp_dir = ::testing::TempDir();
  auto serial = EtiBuilder::Build(serial_db->get(), serial_ref, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->stats.build_threads, 1u);

  options.build_threads = 3;
  auto parallel = EtiBuilder::Build(db_.get(), parallel_ref, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(parallel->stats.build_threads, 3u);

  EXPECT_GT(parallel->stats.spilled_runs, 0u);
  EXPECT_EQ(parallel->stats.reference_tuples,
            serial->stats.reference_tuples);
  EXPECT_EQ(parallel->stats.pre_eti_rows, serial->stats.pre_eti_rows);
  EXPECT_EQ(parallel->stats.eti_rows, serial->stats.eti_rows);
  EXPECT_EQ(parallel->stats.stop_qgrams, serial->stats.stop_qgrams);

  auto serial_table = (*serial_db)->GetTable("customers_eti_Q+T_2");
  auto parallel_table = db_->GetTable("customers_eti_Q+T_2");
  ASSERT_TRUE(serial_table.ok());
  ASSERT_TRUE(parallel_table.ok());
  EXPECT_EQ(DumpRows(*parallel_table), DumpRows(*serial_table));

  // The frequency-merge barrier must reproduce the serial cache.
  EXPECT_EQ(parallel->weights.num_tuples(), serial->weights.num_tuples());
  Table::Scanner scanner = parallel_ref->Scan();
  const Tokenizer tokenizer = parallel->eti.MakeTokenizer();
  Tid tid;
  Row row;
  for (int sampled = 0; sampled < 50;) {
    auto more = scanner.Next(&tid, &row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    if (tid % 31 != 0) continue;
    ++sampled;
    const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
    for (uint32_t col = 0; col < tokens.size(); ++col) {
      for (const auto& token : tokens[col]) {
        EXPECT_EQ(parallel->weights.Frequency(token, col),
                  serial->weights.Frequency(token, col))
            << token << "/" << col;
      }
    }
  }
}

TEST_F(EtiBuilderTest, ParallelBuildIsByteIdenticalOnDisk) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "eti_parallel_ident";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  for (const int threads : {1, 3}) {
    const std::string path =
        (dir / StringPrintf("t%d.fmdb", threads)).string();
    auto db = Database::Open(DatabaseOptions{.path = path});
    ASSERT_TRUE(db.ok());
    Table* ref = MakeCustomers(db->get(), 1200);
    EtiBuilder::Options options;
    options.params.q = 4;
    options.params.signature_size = 2;
    options.sort_memory_bytes = 32 * 1024;  // force spills in both builds
    options.build_threads = threads;
    auto built = EtiBuilder::Build(db->get(), ref, options);
    ASSERT_TRUE(built.ok()) << built.status();
    // The spill directory defaults to the database's own directory.
    EXPECT_EQ(built->stats.temp_dir, dir.string());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }

  // Byte-identical modulo the database identity: the catalog on page 0
  // stores the random db_id minted at create time (the WAL replay
  // guard) at bytes [24, 32) — after the 16-byte page header, catalog
  // magic, and blob length — and it legitimately differs between two
  // independently created stores.
  std::string serial_bytes = ReadFile((dir / "t1.fmdb").string());
  std::string parallel_bytes = ReadFile((dir / "t3.fmdb").string());
  ASSERT_GE(serial_bytes.size(), 32u);
  ASSERT_GE(parallel_bytes.size(), 32u);
  std::fill(serial_bytes.begin() + 24, serial_bytes.begin() + 32, '\0');
  std::fill(parallel_bytes.begin() + 24, parallel_bytes.begin() + 32, '\0');
  EXPECT_EQ(serial_bytes, parallel_bytes);
  // No spill runs (or probe files) left behind: just the two stores and
  // their (truncated) write-ahead logs.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 4u);
  EXPECT_TRUE(std::filesystem::exists(dir / "t1.fmdb.wal"));
  EXPECT_TRUE(std::filesystem::exists(dir / "t3.fmdb.wal"));
}

TEST_F(EtiBuilderTest, TempDirFallsBackForInMemoryDatabases) {
  // In-memory database, no configured dir: $TMPDIR (or /tmp) is used and
  // the choice is surfaced in the stats.
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string expected =
      (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  EXPECT_EQ(built->stats.temp_dir, expected);
}

TEST_F(EtiBuilderTest, UnwritableTempDirFailsUpFrontWithClearStatus) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.temp_dir = "/nonexistent_fm_spill_dir/sub";
  const Status status =
      EtiBuilder::Build(db_.get(), orgs, options).status();
  EXPECT_TRUE(status.IsIOError()) << status;
  EXPECT_NE(status.ToString().find("/nonexistent_fm_spill_dir/sub"),
            std::string::npos)
      << status;
  // The failure happened before any catalog mutation: the same strategy
  // builds cleanly afterwards.
  options.temp_dir.clear();
  EXPECT_TRUE(EtiBuilder::Build(db_.get(), orgs, options).ok());
}

TEST_F(EtiBuilderTest, BuildThreadsZeroAutoDetects) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.build_threads = 0;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_GE(built->stats.build_threads, 1u);
  EXPECT_GT(built->stats.eti_rows, 0u);
}

TEST_F(EtiBuilderTest, NegativeBuildThreadsRejected) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.build_threads = -1;
  EXPECT_TRUE(EtiBuilder::Build(db_.get(), orgs, options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EtiBuilderTest, ParallelBuildOfTinyRelation) {
  // More workers than tuples: some scan workers and partitions see no
  // data at all; the build must still match the serial result.
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  options.build_threads = 8;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->stats.reference_tuples, 3u);
  auto entry = built->eti.Lookup("seattle", 0, 1);
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(entry->has_value());
  EXPECT_EQ((*entry)->tids, (std::vector<Tid>{0, 1, 2}));
  EXPECT_EQ(built->weights.Frequency("seattle", 1), 3u);
}

}  // namespace
}  // namespace fuzzymatch

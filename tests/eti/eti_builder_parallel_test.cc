// Concurrency tests for the parallel ETI build pipeline (DESIGN.md 5f).
// These run in the TSan CI slice: they exercise the scan-worker /
// sorter-feeder handoff, the frequency-merge barrier, the group-encoder
// fan-out and the ordered writer under real thread interleavings, and
// the process-wide spill-file naming with several sorters alive at once.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "eti/eti_builder.h"
#include "gen/customer_gen.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

Result<std::unique_ptr<Database>> MakeDbWithCustomers(size_t rows) {
  FM_ASSIGN_OR_RETURN(auto db, Database::Open(DatabaseOptions{}));
  FM_ASSIGN_OR_RETURN(
      Table * table,
      db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
  CustomerGenOptions gen_options;
  gen_options.num_tuples = rows;
  CustomerGenerator generator(gen_options);
  FM_RETURN_IF_ERROR(generator.Populate(table));
  return db;
}

EtiBuilder::Options SpillingOptions(int threads) {
  EtiBuilder::Options options;
  options.params.q = 4;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  options.sort_memory_bytes = 16 * 1024;  // spill in every partition
  options.temp_dir = ::testing::TempDir();
  options.build_threads = threads;
  return options;
}

TEST(EtiBuilderParallelTest, PipelineMatchesSerialUnderContention) {
  constexpr size_t kRows = 600;
  auto serial_db = MakeDbWithCustomers(kRows);
  ASSERT_TRUE(serial_db.ok());
  auto serial_ref = (*serial_db)->GetTable("customers");
  ASSERT_TRUE(serial_ref.ok());
  auto serial = EtiBuilder::Build(serial_db->get(), *serial_ref,
                                  SpillingOptions(1));
  ASSERT_TRUE(serial.ok()) << serial.status();

  auto parallel_db = MakeDbWithCustomers(kRows);
  ASSERT_TRUE(parallel_db.ok());
  auto parallel_ref = (*parallel_db)->GetTable("customers");
  ASSERT_TRUE(parallel_ref.ok());
  auto parallel = EtiBuilder::Build(parallel_db->get(), *parallel_ref,
                                    SpillingOptions(4));
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  EXPECT_GT(parallel->stats.spilled_runs, 0u);
  EXPECT_EQ(parallel->stats.pre_eti_rows, serial->stats.pre_eti_rows);
  EXPECT_EQ(parallel->stats.eti_rows, serial->stats.eti_rows);
  EXPECT_EQ(parallel->stats.stop_qgrams, serial->stats.stop_qgrams);
  EXPECT_EQ(parallel->weights.num_tuples(), serial->weights.num_tuples());
  EXPECT_EQ(parallel->eti.entry_count(), serial->eti.entry_count());
}

TEST(EtiBuilderParallelTest, ConcurrentBuildsShareSpillDirectory) {
  // Two parallel builds in different databases run at the same time,
  // with all of their partition sorters spilling into one directory —
  // the per-process sorter id keeps every run file distinct.
  constexpr size_t kRows = 400;
  constexpr int kBuilders = 2;
  std::vector<std::unique_ptr<Database>> dbs;
  for (int i = 0; i < kBuilders; ++i) {
    auto db = MakeDbWithCustomers(kRows);
    ASSERT_TRUE(db.ok());
    dbs.push_back(std::move(*db));
  }

  std::vector<uint64_t> eti_rows(kBuilders, 0);
  std::vector<Status> statuses(kBuilders);
  std::vector<std::thread> threads;
  for (int i = 0; i < kBuilders; ++i) {
    threads.emplace_back([&, i] {
      auto ref = dbs[i]->GetTable("customers");
      if (!ref.ok()) {
        statuses[i] = ref.status();
        return;
      }
      auto built =
          EtiBuilder::Build(dbs[i].get(), *ref, SpillingOptions(3));
      statuses[i] = built.status();
      if (built.ok()) {
        eti_rows[i] = built->stats.eti_rows;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int i = 0; i < kBuilders; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i];
  }
  // Identical inputs: a cross-build spill collision would corrupt one
  // side's sorted order or record set and break this equality.
  EXPECT_EQ(eti_rows[0], eti_rows[1]);
  EXPECT_GT(eti_rows[0], 0u);
}

}  // namespace
}  // namespace fuzzymatch

// Tests of the in-memory ETI read accelerator (DESIGN.md 5d): parity with
// the B-tree route, budget-bounded residency, maintenance coherence, and
// end-to-end matcher equivalence with the accelerator on vs off.

#include "eti/eti_accel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/fuzzy_match.h"
#include "eti/eti_builder.h"
#include "eti/signature.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"

namespace fuzzymatch {
namespace {

class EtiAccelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  /// The paper's Table 1 organization relation.
  Table* MakeTable1() {
    auto table = db_->CreateTable(
        "orgs", Schema({"name", "city", "state", "zipcode"}));
    EXPECT_TRUE(table.ok());
    for (const char* name : {"Boeing Company", "Bon Corporation",
                             "Companions"}) {
      const char* zip = name[2] == 'e' ? "98004"
                        : name[2] == 'n' ? "98014"
                                         : "98024";
      EXPECT_TRUE((*table)
                      ->Insert(Row{std::string(name), std::string("Seattle"),
                                   std::string("WA"), std::string(zip)})
                      .ok());
    }
    return *table;
  }

  /// A synthetic customer relation for volume tests.
  Table* MakeCustomers(size_t n) {
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    EXPECT_TRUE(table.ok());
    CustomerGenOptions options;
    options.num_tuples = n;
    CustomerGenerator gen(options);
    EXPECT_TRUE(gen.Populate(*table).ok());
    return *table;
  }

  /// Every (gram, coordinate, column) key the reference relation indexes.
  struct ProbeKey {
    std::string gram;
    uint32_t coordinate;
    uint32_t column;
  };
  std::vector<ProbeKey> AllProbeKeys(Table* ref, const Eti& eti,
                                     size_t max_tuples = SIZE_MAX) {
    std::vector<ProbeKey> keys;
    const Tokenizer tokenizer = eti.MakeTokenizer();
    const MinHasher hasher = eti.MakeHasher();
    Table::Scanner scanner = ref->Scan();
    Tid tid;
    Row row;
    size_t seen = 0;
    for (;;) {
      auto more = scanner.Next(&tid, &row);
      EXPECT_TRUE(more.ok());
      if (!*more || seen++ >= max_tuples) break;
      const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
      for (uint32_t col = 0; col < tokens.size(); ++col) {
        for (const auto& token : tokens[col]) {
          for (const auto& tc :
               MakeTokenCoordinates(hasher, eti.params(), token, 1.0)) {
            keys.push_back({tc.gram, tc.coordinate, col});
          }
        }
      }
    }
    return keys;
  }

  /// Asserts that `accel_handle` and `plain_handle` answer identically
  /// for every key in `keys`.
  void ExpectLookupParity(const Eti& accel_handle, const Eti& plain_handle,
                          const std::vector<ProbeKey>& keys) {
    for (const ProbeKey& key : keys) {
      auto a = accel_handle.Lookup(key.gram, key.coordinate, key.column);
      auto b = plain_handle.Lookup(key.gram, key.coordinate, key.column);
      ASSERT_TRUE(a.ok()) << key.gram;
      ASSERT_TRUE(b.ok()) << key.gram;
      ASSERT_EQ(a->has_value(), b->has_value())
          << key.gram << "/" << key.coordinate << "/" << key.column;
      if (!a->has_value()) continue;
      EXPECT_EQ((*a)->frequency, (*b)->frequency) << key.gram;
      EXPECT_EQ((*a)->is_stop, (*b)->is_stop) << key.gram;
      EXPECT_EQ((*a)->tids, (*b)->tids) << key.gram;
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(EtiAccelTest, CompleteSegmentMirrorsTheBTree) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());

  const Eti plain = built->eti;  // copy WITHOUT the accelerator
  ASSERT_TRUE(built->eti.AttachAccelerator(EtiAccelOptions{}).ok());
  const EtiAccel* accel = built->eti.accelerator();
  ASSERT_NE(accel, nullptr);
  EXPECT_TRUE(accel->complete());
  EXPECT_EQ(accel->entry_count(), built->eti.entry_count());
  EXPECT_EQ(accel->rows_scanned(), accel->rows_admitted());
  EXPECT_GT(accel->memory_bytes(), 0u);

  std::vector<ProbeKey> keys = AllProbeKeys(orgs, built->eti);
  ASSERT_FALSE(keys.empty());
  // Misses must agree too (authoritative negatives on a complete segment).
  keys.push_back({"zzz", 1, 0});
  keys.push_back({"sea", 1, 3});
  keys.push_back({"seattle", 0, 3});
  ExpectLookupParity(built->eti, plain, keys);
}

TEST_F(EtiAccelTest, LookupIntoDecodesIntoCallerScratch) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->eti.AttachAccelerator(EtiAccelOptions{}).ok());

  EtiScratch scratch;
  auto view = built->eti.LookupInto("seattle", 0, 1, &scratch);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->found);
  EXPECT_FALSE(view->is_stop);
  EXPECT_EQ(view->frequency, 3u);
  ASSERT_EQ(view->num_tids, 3u);
  EXPECT_EQ(view->tids, scratch.tids.data())
      << "tids must alias the caller-owned scratch buffer";
  EXPECT_EQ((std::vector<Tid>(view->tids, view->tids + view->num_tids)),
            (std::vector<Tid>{0, 1, 2}));

  // A miss on a complete segment is an authoritative negative.
  auto miss = built->eti.LookupInto("zzz", 1, 0, &scratch);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->found);
}

TEST_F(EtiAccelTest, ZeroBudgetAdmitsNothingButStaysCorrect) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());

  const Eti plain = built->eti;
  ASSERT_TRUE(
      built->eti.AttachAccelerator(EtiAccelOptions{.memory_budget_bytes = 0})
          .ok());
  const EtiAccel* accel = built->eti.accelerator();
  ASSERT_NE(accel, nullptr);
  EXPECT_FALSE(accel->complete());
  EXPECT_EQ(accel->entry_count(), 0u);
  EXPECT_EQ(accel->rows_admitted(), 0u);
  EXPECT_GT(accel->rows_scanned(), 0u);

  ExpectLookupParity(built->eti, plain, AllProbeKeys(orgs, built->eti));
}

TEST_F(EtiAccelTest, PartialBudgetSpillsToTheBTree) {
  Table* customers = MakeCustomers(400);
  EtiBuilder::Options options;
  options.params.q = 4;
  options.params.signature_size = 2;
  auto built = EtiBuilder::Build(db_.get(), customers, options);
  ASSERT_TRUE(built.ok());

  const Eti plain = built->eti;
  // A budget far below the full segment: only the most frequent entries
  // become resident, the rest spill.
  ASSERT_TRUE(built->eti
                  .AttachAccelerator(
                      EtiAccelOptions{.memory_budget_bytes = 16u << 10})
                  .ok());
  const EtiAccel* accel = built->eti.accelerator();
  ASSERT_NE(accel, nullptr);
  EXPECT_FALSE(accel->complete());
  EXPECT_GT(accel->entry_count(), 0u);
  EXPECT_LT(accel->entry_count(), built->eti.entry_count());
  EXPECT_LT(accel->rows_admitted(), accel->rows_scanned());
  EXPECT_LE(accel->memory_bytes(), 16u << 10);

  ExpectLookupParity(built->eti, plain,
                     AllProbeKeys(customers, built->eti, 40));
}

TEST_F(EtiAccelTest, MaintenanceInsertAndRemoveStayCoherent) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  const Eti plain = built->eti;
  ASSERT_TRUE(built->eti.AttachAccelerator(EtiAccelOptions{}).ok());
  ASSERT_TRUE(built->eti.accelerator()->complete());

  // Insert a 4th tuple sharing 'seattle' and bringing brand-new tokens.
  const Row fresh{std::string("Rainier Works"), std::string("Seattle"),
                  std::string("WA"), std::string("98044")};
  auto tid = orgs->Insert(fresh);
  ASSERT_TRUE(tid.ok());
  EXPECT_EQ(*tid, 3u);
  const Tokenizer tokenizer = built->eti.MakeTokenizer();
  const TokenizedTuple tokens = tokenizer.TokenizeTuple(fresh);
  ASSERT_TRUE(built->eti.IndexTuple(*tid, tokens).ok());

  // Existing key: the resident entry was invalidated, the accelerated
  // handle must see the appended tid via the B-tree.
  auto seattle = built->eti.Lookup("seattle", 0, 1);
  ASSERT_TRUE(seattle.ok());
  ASSERT_TRUE(seattle->has_value());
  EXPECT_EQ((*seattle)->frequency, 4u);
  EXPECT_EQ((*seattle)->tids, (std::vector<Tid>{0, 1, 2, 3}));

  // Brand-new key: the segment was complete, so without the fresh spill
  // marker this lookup would be a wrong authoritative negative.
  auto works = built->eti.Lookup("works", 0, 0);
  ASSERT_TRUE(works.ok());
  ASSERT_TRUE(works->has_value())
      << "new key inserted after the accelerator was built must be found";
  EXPECT_EQ((*works)->tids, (std::vector<Tid>{3}));

  // Full parity against the plain handle, including the new tuple's keys.
  ExpectLookupParity(built->eti, plain, AllProbeKeys(orgs, built->eti));

  // Remove the tuple again: both routes converge back.
  ASSERT_TRUE(built->eti.UnindexTuple(*tid, tokens).ok());
  auto after = built->eti.Lookup("seattle", 0, 1);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->has_value());
  EXPECT_EQ((*after)->frequency, 3u);
  EXPECT_EQ((*after)->tids, (std::vector<Tid>{0, 1, 2}));
  ExpectLookupParity(built->eti, plain, AllProbeKeys(orgs, built->eti));
}

TEST_F(EtiAccelTest, StopQGramCrossingThroughMaintenance) {
  Table* orgs = MakeTable1();
  EtiBuilder::Options options;
  options.params.q = 3;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  // 'seattle' has frequency 3 at build time (not a stop q-gram yet); the
  // 4th insert pushes it over the threshold.
  options.params.stop_qgram_threshold = 3;
  auto built = EtiBuilder::Build(db_.get(), orgs, options);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->eti.AttachAccelerator(EtiAccelOptions{}).ok());

  auto before = built->eti.Lookup("seattle", 0, 1);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->has_value());
  EXPECT_FALSE((*before)->is_stop);

  const Row fresh{std::string("Emerald Cafe"), std::string("Seattle"),
                  std::string("WA"), std::string("98054")};
  auto tid = orgs->Insert(fresh);
  ASSERT_TRUE(tid.ok());
  const TokenizedTuple tokens =
      built->eti.MakeTokenizer().TokenizeTuple(fresh);
  ASSERT_TRUE(built->eti.IndexTuple(*tid, tokens).ok());

  // The row crossed into stop territory; the accelerated handle must see
  // the NULL tid-list, not the stale resident postings.
  auto after = built->eti.Lookup("seattle", 0, 1);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->has_value());
  EXPECT_TRUE((*after)->is_stop);
  EXPECT_EQ((*after)->frequency, 4u);
  EXPECT_TRUE((*after)->tids.empty());
}

TEST_F(EtiAccelTest, MatcherResultsIdenticalWithAcceleratorOnAndOff) {
  // Two databases with the same deterministic reference relation; one
  // matcher runs fully accelerated, the other takes the B-tree route with
  // the tuple cache disabled. Results must be identical.
  Table* customers = MakeCustomers(800);

  auto db2 = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db2.ok());
  auto table2 = (*db2)->CreateTable("customers",
                                    CustomerGenerator::CustomerSchema());
  ASSERT_TRUE(table2.ok());
  CustomerGenOptions gen_options;
  gen_options.num_tuples = 800;
  CustomerGenerator gen(gen_options);
  ASSERT_TRUE(gen.Populate(*table2).ok());

  FuzzyMatchConfig accel_config;
  accel_config.eti.signature_size = 3;
  accel_config.eti.index_tokens = true;
  FuzzyMatchConfig plain_config = accel_config;
  plain_config.accel_memory_bytes = 0;
  plain_config.matcher.tuple_cache_bytes = 0;

  auto accelerated = FuzzyMatcher::Build(db_.get(), "customers",
                                         accel_config);
  ASSERT_TRUE(accelerated.ok()) << accelerated.status();
  ASSERT_NE((*accelerated)->eti().accelerator(), nullptr);
  EXPECT_TRUE((*accelerated)->eti().accelerator()->complete());
  auto plain = FuzzyMatcher::Build(db2->get(), "customers", plain_config);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ((*plain)->eti().accelerator(), nullptr);

  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 80;
  auto inputs = GenerateInputs(customers, spec, &(*accelerated)->weights());
  ASSERT_TRUE(inputs.ok());

  for (const auto& input : *inputs) {
    auto a = (*accelerated)->FindMatches(input.dirty);
    auto b = (*plain)->FindMatches(input.dirty);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].tid, (*b)[i].tid);
      EXPECT_DOUBLE_EQ((*a)[i].similarity, (*b)[i].similarity);
    }
  }
}

TEST_F(EtiAccelTest, TupleCacheHitsShowUpInQueryStats) {
  MakeCustomers(300);
  FuzzyMatchConfig config;
  config.eti.signature_size = 3;
  config.eti.index_tokens = true;
  auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
  ASSERT_TRUE(matcher.ok());

  auto row = (*matcher)->reference().Get(42);
  ASSERT_TRUE(row.ok());
  // First query warms the cache; repeats verify the same reference tuples
  // from memory.
  QueryStats cold;
  ASSERT_TRUE((*matcher)->FindMatches(*row, &cold).ok());
  ASSERT_GT(cold.ref_tuples_fetched, 0u);
  QueryStats warm;
  ASSERT_TRUE((*matcher)->FindMatches(*row, &warm).ok());
  EXPECT_GT(warm.tuple_cache_hits, 0u);
  EXPECT_LT(warm.ref_tuples_fetched, cold.ref_tuples_fetched);
  EXPECT_GT((*matcher)->aggregate_stats().tuple_cache_hits, 0u);

  // Maintenance removes a tuple: its cached tokenization must go with it.
  auto victim = (*matcher)->FindMatches(*row);
  ASSERT_TRUE(victim.ok());
  ASSERT_FALSE(victim->empty());
  ASSERT_TRUE((*matcher)->RemoveReferenceTuple((*victim)[0].tid).ok());
  auto gone = (*matcher)->FindMatches(*row);
  ASSERT_TRUE(gone.ok());
  for (const Match& m : *gone) {
    EXPECT_NE(m.tid, (*victim)[0].tid) << "removed tuple still matched";
  }
}

}  // namespace
}  // namespace fuzzymatch

// Concurrency tests of the accelerated read path: many threads probing
// the same EtiAccel segment (each with its own scratch) and many threads
// running full accelerated queries through the shared matcher + tuple
// cache. Results must be identical to the serial run; the suite is part
// of the ThreadSanitizer slice in tools/ci.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/fuzzy_match.h"
#include "eti/eti_builder.h"
#include "eti/signature.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"

namespace fuzzymatch {
namespace {

class EtiAccelConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    customers_ = *table;
    CustomerGenOptions options;
    options.num_tuples = 400;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(customers_).ok());
  }

  std::unique_ptr<Database> db_;
  Table* customers_ = nullptr;
};

TEST_F(EtiAccelConcurrencyTest, ConcurrentProbesMatchSerialResults) {
  EtiBuilder::Options options;
  options.params.q = 4;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  auto built = EtiBuilder::Build(db_.get(), customers_, options);
  ASSERT_TRUE(built.ok());
  // Partial budget on purpose: concurrent readers exercise both the
  // resident-hit path and the B-tree spill path.
  ASSERT_TRUE(built->eti
                  .AttachAccelerator(
                      EtiAccelOptions{.memory_budget_bytes = 32u << 10})
                  .ok());
  const Eti& eti = built->eti;

  // Probe list + serial ground truth.
  struct Probe {
    std::string gram;
    uint32_t coordinate;
    uint32_t column;
  };
  std::vector<Probe> probes;
  std::vector<EtiEntry> expected;
  std::vector<bool> expected_found;
  const Tokenizer tokenizer = eti.MakeTokenizer();
  const MinHasher hasher = eti.MakeHasher();
  Table::Scanner scanner = customers_->Scan();
  Tid tid;
  Row row;
  size_t seen = 0;
  for (;;) {
    auto more = scanner.Next(&tid, &row);
    ASSERT_TRUE(more.ok());
    if (!*more || seen++ >= 60) break;
    const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
    for (uint32_t col = 0; col < tokens.size(); ++col) {
      for (const auto& token : tokens[col]) {
        for (const auto& tc :
             MakeTokenCoordinates(hasher, eti.params(), token, 1.0)) {
          probes.push_back({tc.gram, tc.coordinate, col});
        }
      }
    }
  }
  probes.push_back({"zzzz", 1, 0});  // a guaranteed miss
  for (const Probe& p : probes) {
    auto entry = eti.Lookup(p.gram, p.coordinate, p.column);
    ASSERT_TRUE(entry.ok());
    expected_found.push_back(entry->has_value());
    expected.push_back(entry->has_value() ? **entry : EtiEntry{});
  }

  constexpr size_t kThreads = 8;
  std::vector<uint64_t> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EtiScratch scratch;  // one per thread, per the contract
      for (size_t i = 0; i < probes.size(); ++i) {
        const Probe& p = probes[i];
        auto view = eti.LookupInto(p.gram, p.coordinate, p.column, &scratch);
        if (!view.ok() || view->found != expected_found[i]) {
          ++mismatches[t];
          continue;
        }
        if (!view->found) continue;
        const EtiEntry& want = expected[i];
        const bool same =
            view->is_stop == want.is_stop &&
            view->frequency == want.frequency &&
            view->num_tids == want.tids.size() &&
            std::equal(want.tids.begin(), want.tids.end(), view->tids);
        mismatches[t] += same ? 0 : 1;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "thread " << t;
  }
}

TEST_F(EtiAccelConcurrencyTest, ConcurrentAcceleratedQueriesMatchSerial) {
  FuzzyMatchConfig config;
  config.eti.signature_size = 2;
  config.eti.index_tokens = true;
  // Small budgets keep eviction and spill active under contention.
  config.accel_memory_bytes = 1u << 20;
  config.matcher.tuple_cache_bytes = 64u << 10;
  config.matcher.tuple_cache_shards = 4;
  auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
  ASSERT_TRUE(matcher.ok()) << matcher.status();

  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 40;
  auto inputs = GenerateInputs(customers_, spec, &(*matcher)->weights());
  ASSERT_TRUE(inputs.ok());

  // Serial ground truth (also warms the tuple cache, so the threaded runs
  // hit it immediately).
  std::vector<std::vector<Match>> expected;
  for (const auto& input : *inputs) {
    auto matches = (*matcher)->FindMatches(input.dirty);
    ASSERT_TRUE(matches.ok());
    expected.push_back(std::move(*matches));
  }

  constexpr size_t kThreads = 6;
  std::vector<uint64_t> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < inputs->size(); ++i) {
        auto matches = (*matcher)->FindMatches((*inputs)[i].dirty);
        if (!matches.ok() || matches->size() != expected[i].size()) {
          ++mismatches[t];
          continue;
        }
        for (size_t m = 0; m < matches->size(); ++m) {
          if ((*matches)[m].tid != expected[i][m].tid ||
              (*matches)[m].similarity != expected[i][m].similarity) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "thread " << t;
  }
  EXPECT_GT((*matcher)->aggregate_stats().tuple_cache_hits, 0u);
}

}  // namespace
}  // namespace fuzzymatch

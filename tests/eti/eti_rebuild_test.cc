// Tests of the online ETI rebuild/compaction path (DESIGN.md 5j):
// building a fresh index beside the live one while queries are served,
// capturing concurrent maintenance in a side log, and atomically
// swapping the new storage in without a drain.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/fuzzy_match.h"
#include "fault/failpoint.h"
#include "gen/customer_gen.h"

namespace fuzzymatch {
namespace {

using fault::Action;
using fault::FailpointSpec;
using fault::Failpoints;

constexpr char kStrategy[] = "Q+T_2";

std::string TempDbPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name + "_" +
         std::to_string(::getpid()) + ".db";
}

Status PopulateCustomers(Database* db, size_t n) {
  FM_ASSIGN_OR_RETURN(
      Table * table,
      db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
  CustomerGenOptions options;
  options.num_tuples = n;
  CustomerGenerator gen(options);
  return gen.Populate(table);
}

FuzzyMatchConfig TestConfig() {
  FuzzyMatchConfig config;
  config.eti.signature_size = 2;
  config.eti.index_tokens = true;
  return config;
}

/// A fixed probe set of reference rows, for comparing served output
/// across a rebuild.
std::vector<Row> ProbeRows(const FuzzyMatcher& matcher, size_t n) {
  std::vector<Row> probes;
  for (Tid tid = 0; probes.size() < n; tid += 7) {
    auto row = matcher.reference().Get(tid);
    if (row.ok()) probes.push_back(*row);
  }
  return probes;
}

std::vector<std::vector<Match>> Answers(const FuzzyMatcher& matcher,
                                        const std::vector<Row>& probes) {
  std::vector<std::vector<Match>> out;
  for (const Row& probe : probes) {
    auto matches = matcher.FindMatches(probe);
    EXPECT_TRUE(matches.ok()) << matches.status();
    out.push_back(matches.ok() ? *matches : std::vector<Match>{});
  }
  return out;
}

TEST(EtiRebuildTest, RebuildServesIdenticalOutputAndCompacts) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(PopulateCustomers(db->get(), 800).ok());
  auto matcher = FuzzyMatcher::Build(db->get(), "customers", TestConfig());
  ASSERT_TRUE(matcher.ok()) << matcher.status();

  // Some maintenance before the rebuild, so the rebuilt index covers a
  // relation that drifted from the original build.
  for (int i = 0; i < 5; ++i) {
    Row row{"rebuildco " + std::to_string(i), std::string("tacoma"),
            std::string("wa"), std::string("98001")};
    ASSERT_TRUE((*matcher)->InsertReferenceTuple(row).ok());
  }
  ASSERT_TRUE((*matcher)->RemoveReferenceTuple(3).ok());
  ASSERT_TRUE((*matcher)->RemoveReferenceTuple(9).ok());

  const std::vector<Row> probes = ProbeRows(**matcher, 25);
  ASSERT_FALSE(probes.empty());
  const auto before = Answers(**matcher, probes);

  auto stats = (*matcher)->RebuildEti();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->build.reference_tuples, 800u + 5u - 2u);
  EXPECT_GT(stats->build.eti_rows, 0u);
  EXPECT_EQ(stats->side_ops_replayed, 0u);
  EXPECT_GT(stats->total_seconds, 0.0);

  // The swap must be invisible to readers: same matches, same scores.
  EXPECT_EQ(Answers(**matcher, probes), before);

  // And a second rebuild over the already-compacted index also works.
  auto again = (*matcher)->RebuildEti();
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(Answers(**matcher, probes), before);
}

TEST(EtiRebuildTest, RebuildIsDurableAcrossReopen) {
  const std::string path = TempDbPath("eti_rebuild");
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  Row inserted{"rebuild durable corp", std::string("olympia"),
               std::string("wa"), std::string("98501")};
  Tid inserted_tid = 0;
  {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(PopulateCustomers(db->get(), 300).ok());
    auto matcher = FuzzyMatcher::Build(db->get(), "customers", TestConfig());
    ASSERT_TRUE(matcher.ok()) << matcher.status();
    auto tid = (*matcher)->InsertReferenceTuple(inserted);
    ASSERT_TRUE(tid.ok());
    inserted_tid = *tid;
    auto stats = (*matcher)->RebuildEti();
    ASSERT_TRUE(stats.ok()) << stats.status();
    // The shadow names were renamed over the live ones.
    const std::string shadow =
        std::string("customers_eti_") + kStrategy + "~rebuild";
    EXPECT_TRUE((*db)->GetTable(shadow).status().IsNotFound());
  }
  {
    DatabaseOptions options;
    options.path = path;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    auto matcher = FuzzyMatcher::Open(db->get(), "customers", kStrategy);
    ASSERT_TRUE(matcher.ok()) << matcher.status();
    EXPECT_EQ((*matcher)->build_stats().reference_tuples, 301u);
    auto matches = (*matcher)->FindMatches(inserted);
    ASSERT_TRUE(matches.ok()) << matches.status();
    ASSERT_FALSE(matches->empty());
    EXPECT_EQ((*matches)[0].tid, inserted_tid);
    EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(EtiRebuildTest, QueriesAreServedThroughoutTheRebuild) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(PopulateCustomers(db->get(), 1500).ok());
  auto matcher = FuzzyMatcher::Build(db->get(), "customers", TestConfig());
  ASSERT_TRUE(matcher.ok()) << matcher.status();

  const std::vector<Row> probes = ProbeRows(**matcher, 8);
  const auto expected = Answers(**matcher, probes);

  // No maintenance runs in this test, so every query — before, during,
  // and after the swap — must see byte-identical output.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t p = i++ % probes.size();
        auto matches = (*matcher)->FindMatches(probes[p]);
        if (!matches.ok() || *matches != expected[p]) {
          mismatches.fetch_add(1);
        }
        queries.fetch_add(1);
      }
    });
  }
  auto stats = (*matcher)->RebuildEti();
  stop.store(true);
  for (auto& t : readers) t.join();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(Answers(**matcher, probes), expected);
}

TEST(EtiRebuildTest, ConcurrentMaintenanceIsCapturedAndReplayed) {
#if !FM_FAILPOINTS_ENABLED
  GTEST_SKIP() << "failpoints compiled out";
#else
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(PopulateCustomers(db->get(), 1000).ok());
  auto matcher = FuzzyMatcher::Build(db->get(), "customers", TestConfig());
  ASSERT_TRUE(matcher.ok()) << matcher.status();

  // Stall the builder at its first output-row write. By then the
  // reference scan is complete, so maintenance is unblocked and lands in
  // the side log — a deterministic capture window.
  FailpointSpec spec;
  spec.action = Action::kSleep;
  spec.sleep_ms = 400;
  Failpoints::Global().Arm("eti_build.write_row", spec);

  Result<EtiRebuildStats> stats = Status::OK();
  std::thread rebuild([&] { stats = (*matcher)->RebuildEti(); });

  // Give the rebuild time to reach the stalled write, then mutate.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Only one rebuild at a time.
  EXPECT_TRUE((*matcher)->RebuildEti().status().IsAlreadyExists());
  std::vector<std::pair<Tid, Row>> added;
  for (int i = 0; i < 4; ++i) {
    Row row{"sidelogged " + std::to_string(i) + " llc",
            std::string("spokane"), std::string("wa"), std::string("99201")};
    auto tid = (*matcher)->InsertReferenceTuple(row);
    ASSERT_TRUE(tid.ok()) << tid.status();
    added.emplace_back(*tid, row);
  }
  ASSERT_TRUE((*matcher)->RemoveReferenceTuple(42).ok());

  rebuild.join();
  Failpoints::Global().DisarmAll();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->side_ops_replayed, 1u);

  // Every mid-rebuild insert is matchable on the swapped index, and the
  // mid-rebuild remove stayed removed.
  for (const auto& [tid, row] : added) {
    auto matches = (*matcher)->FindMatches(row);
    ASSERT_TRUE(matches.ok()) << matches.status();
    ASSERT_FALSE(matches->empty());
    EXPECT_EQ((*matches)[0].tid, tid);
    EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
  }
  EXPECT_TRUE((*matcher)->reference().Get(42).status().IsNotFound());
#endif
}

}  // namespace
}  // namespace fuzzymatch

// Structural invariants of a built ETI, checked by full scans of the
// rows relation and the clustered key index:
//   - every row's tid-list is sorted, duplicate-free and within range;
//   - frequency equals the tid-list length for non-stop rows and exceeds
//     the stop threshold for stop rows;
//   - the key index and the rows relation agree 1:1 in both directions;
//   - the index iterates in key order.
// Also re-checked after incremental maintenance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "eti/eti_builder.h"
#include "gen/customer_gen.h"
#include "storage/key_codec.h"

namespace fuzzymatch {
namespace {

struct DecodedEtiRow {
  std::string gram;
  uint32_t coordinate;
  uint32_t column;
  EtiEntry entry;
};

Result<DecodedEtiRow> DecodeRow(const Row& row) {
  DecodedEtiRow out;
  if (!row[0] || !row[1] || !row[2]) {
    return Status::Corruption("NULL key attribute");
  }
  out.gram = *row[0];
  std::memcpy(&out.coordinate, row[1]->data(), 4);
  std::memcpy(&out.column, row[2]->data(), 4);
  FM_ASSIGN_OR_RETURN(out.entry, Eti::DecodeEntry(row));
  return out;
}

class EtiInvariantsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions options;
    options.num_tuples = 1500;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
  }

  /// Runs the full invariant audit over one built ETI.
  void Audit(const EtiParams& params, uint64_t max_tid,
             bool strict_stop = true) {
    const std::string eti_name =
        ref_->name() + "_eti_" + params.StrategyName();
    auto rows_or = db_->GetTable(eti_name);
    auto index_or = db_->GetIndex(eti_name + "_idx");
    ASSERT_TRUE(rows_or.ok());
    ASSERT_TRUE(index_or.ok());
    Table* rows = *rows_or;
    BPlusTree* index = *index_or;

    // Scan every row; check local invariants and index membership.
    std::set<std::string> row_keys;
    Table::Scanner scanner = rows->Scan();
    Tid row_tid;
    Row row;
    for (;;) {
      auto more = scanner.Next(&row_tid, &row);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      auto decoded = DecodeRow(row);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      const EtiEntry& entry = decoded->entry;
      if (entry.is_stop) {
        if (strict_stop) {
          EXPECT_GT(entry.frequency, params.stop_qgram_threshold);
        }
        // After removals a stop row's frequency may drop below the
        // threshold; the dropped tid-list is never reconstructed.
        EXPECT_TRUE(entry.tids.empty());
      } else {
        EXPECT_EQ(entry.frequency, entry.tids.size());
        EXPECT_TRUE(std::is_sorted(entry.tids.begin(), entry.tids.end()));
        EXPECT_EQ(std::adjacent_find(entry.tids.begin(), entry.tids.end()),
                  entry.tids.end());
        for (const Tid t : entry.tids) {
          EXPECT_LT(t, max_tid);
        }
      }
      const std::string key =
          Eti::IndexKey(decoded->gram, decoded->coordinate,
                        decoded->column);
      EXPECT_TRUE(row_keys.insert(key).second)
          << "duplicate [QGram, Coordinate, Column] row";
      auto rid_bytes = index->Get(key);
      ASSERT_TRUE(rid_bytes.ok()) << "row missing from index";
      auto rid = Rid::Decode(*rid_bytes);
      ASSERT_TRUE(rid.ok());
      auto via_index = rows->GetByRid(*rid);
      ASSERT_TRUE(via_index.ok());
      EXPECT_EQ(*via_index, row) << "index points at a different row";
    }

    // The index has exactly the same key set, in sorted order.
    auto it = index->NewIterator();
    ASSERT_TRUE(it.SeekToFirst().ok());
    std::string prev;
    size_t index_keys = 0;
    while (it.Valid()) {
      EXPECT_TRUE(row_keys.count(it.key()) > 0) << "dangling index entry";
      if (index_keys > 0) {
        EXPECT_LT(prev, it.key()) << "index out of order";
      }
      prev = it.key();
      ++index_keys;
      ASSERT_TRUE(it.Next().ok());
    }
    EXPECT_EQ(index_keys, row_keys.size());
    EXPECT_EQ(index_keys, rows->row_count());
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
};

TEST_F(EtiInvariantsTest, FreshBuildIsStructurallySound) {
  EtiBuilder::Options options;
  options.params.signature_size = 2;
  options.params.index_tokens = true;
  options.params.stop_qgram_threshold = 150;  // force some stop rows
  auto built = EtiBuilder::Build(db_.get(), ref_, options);
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->stats.stop_qgrams, 0u);
  Audit(options.params, ref_->row_count());
}

TEST_F(EtiInvariantsTest, SoundAfterIncrementalMaintenance) {
  EtiBuilder::Options options;
  options.params.signature_size = 2;
  options.params.stop_qgram_threshold = 150;
  auto built = EtiBuilder::Build(db_.get(), ref_, options);
  ASSERT_TRUE(built.ok());

  const Tokenizer tokenizer = built->eti.MakeTokenizer();
  CustomerGenOptions gen_options;
  gen_options.seed = 31337;
  gen_options.num_tuples = 40;
  CustomerGenerator gen(gen_options);
  // Insert 40 fresh tuples, then remove half of them again.
  std::vector<Tid> added;
  for (int i = 0; i < 40; ++i) {
    const Row row = gen.NextRow();
    auto tid = ref_->Insert(row);
    ASSERT_TRUE(tid.ok());
    ASSERT_TRUE(built->eti.IndexTuple(*tid, tokenizer.TokenizeTuple(row))
                    .ok());
    added.push_back(*tid);
  }
  for (size_t i = 0; i < added.size(); i += 2) {
    auto row = ref_->Get(added[i]);
    ASSERT_TRUE(row.ok());
    ASSERT_TRUE(
        built->eti.UnindexTuple(added[i], tokenizer.TokenizeTuple(*row))
            .ok());
  }
  Audit(options.params, ref_->row_count(), /*strict_stop=*/false);
}

// Regression: unindexing a tuple the ETI never saw (or already dropped)
// must report NotFound without mutating any entry — the evidence pre-pass
// rejects the operation before the apply pass starts.
TEST_F(EtiInvariantsTest, UnindexAbsentTidReturnsNotFound) {
  EtiBuilder::Options options;
  options.params.signature_size = 2;
  options.params.stop_qgram_threshold = 150;
  auto built = EtiBuilder::Build(db_.get(), ref_, options);
  ASSERT_TRUE(built.ok());
  const Tokenizer tokenizer = built->eti.MakeTokenizer();

  // A tid far past everything ever indexed, with real token evidence.
  auto donor = ref_->Get(3);
  ASSERT_TRUE(donor.ok());
  const Tid ghost = static_cast<Tid>(ref_->row_count()) + 100;
  const Status absent =
      built->eti.UnindexTuple(ghost, tokenizer.TokenizeTuple(*donor));
  ASSERT_FALSE(absent.ok());
  EXPECT_TRUE(absent.IsNotFound()) << absent;

  // Double-unindex: the first succeeds, the second is NotFound.
  const Row fresh = {"absentuniq incorporated", "utica", "ny", "13501"};
  auto tid = ref_->Insert(fresh);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(
      built->eti.IndexTuple(*tid, tokenizer.TokenizeTuple(fresh)).ok());
  ASSERT_TRUE(
      built->eti.UnindexTuple(*tid, tokenizer.TokenizeTuple(fresh)).ok());
  const Status again =
      built->eti.UnindexTuple(*tid, tokenizer.TokenizeTuple(fresh));
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.IsNotFound()) << again;

  // Neither rejected operation may have disturbed the index.
  Audit(options.params, ref_->row_count(), /*strict_stop=*/false);
}

}  // namespace
}  // namespace fuzzymatch

#include "gen/error_model.h"

#include <gtest/gtest.h>

#include <map>

#include "text/edit_distance.h"
#include "text/tokenizer.h"

namespace fuzzymatch {
namespace {

Row CleanRow() {
  return Row{std::string("boeing company"), std::string("seattle"),
             std::string("wa"), std::string("98004")};
}

ErrorModelOptions AllColumnsErr() {
  ErrorModelOptions options;
  options.column_error_prob = {1.0, 1.0, 1.0, 1.0};
  return options;
}

TEST(ErrorInjectorTest, ZeroProbabilityLeavesRowAlone) {
  ErrorModelOptions options;
  options.column_error_prob = {0.0, 0.0, 0.0, 0.0};
  const ErrorInjector injector(options);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(injector.Inject(CleanRow(), rng), CleanRow());
  }
}

TEST(ErrorInjectorTest, ProbabilityOneAlwaysChangesEveryColumn) {
  const ErrorInjector injector(AllColumnsErr());
  Rng rng(2);
  int unchanged_columns = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const Row dirty = injector.Inject(CleanRow(), rng);
    const Row clean = CleanRow();
    for (size_t c = 0; c < clean.size(); ++c) {
      unchanged_columns += (dirty[c] == clean[c]);
    }
  }
  // Character transpositions on 2-char tokens can occasionally produce the
  // original string; allow a small residue but nothing systematic.
  EXPECT_LT(unchanged_columns, trials / 5);
}

TEST(ErrorInjectorTest, MisspellTokenStaysClose) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::string out =
        ErrorInjector::MisspellToken("corporation", rng);
    EXPECT_LE(LevenshteinDistance("corporation", out), 4u);  // 1-2 edits, transposition counts double
    EXPECT_FALSE(out.empty());
  }
}

TEST(ErrorInjectorTest, NameColumnNeverGoesMissing) {
  ErrorModelOptions options = AllColumnsErr();
  const ErrorInjector injector(options);
  Rng rng(4);
  int null_names = 0;
  int null_others = 0;
  for (int i = 0; i < 500; ++i) {
    const Row dirty = injector.Inject(CleanRow(), rng);
    null_names += !dirty[0].has_value();
    for (size_t c = 1; c < dirty.size(); ++c) {
      null_others += !dirty[c].has_value();
    }
  }
  EXPECT_EQ(null_names, 0) << "Table 4: P(missing | name errs) = 0";
  EXPECT_GT(null_others, 0) << "other columns do go missing sometimes";
}

TEST(ErrorInjectorTest, ErrorTypeMixMatchesTable4Roughly) {
  const ErrorInjector injector(AllColumnsErr());
  Rng rng(5);
  const Tokenizer tok;
  int merges = 0, transposes = 0, abbreviations = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const Row dirty = injector.Inject(CleanRow(), rng);
    if (!dirty[0].has_value()) continue;
    const auto tokens = tok.TokenizeField(*dirty[0]);
    if (tokens.size() == 1 && *dirty[0] == "boeingcompany") {
      ++merges;
    }
    if (tokens.size() == 2 && tokens[0] == "company" &&
        tokens[1] == "boeing") {
      ++transposes;
    }
    if (std::find(tokens.begin(), tokens.end(), "co.") != tokens.end()) {
      ++abbreviations;
    }
  }
  // Expected ~10% merges, ~10% transpositions, ~24% abbreviation (Table 4
  // row 2, 'company' -> 'co.'); loose bands to stay robust.
  EXPECT_NEAR(merges / static_cast<double>(trials), 0.10, 0.05);
  EXPECT_NEAR(transposes / static_cast<double>(trials), 0.10, 0.05);
  EXPECT_NEAR(abbreviations / static_cast<double>(trials), 0.24, 0.08);
}

TEST(ErrorInjectorTest, TruncationShortensNonNameColumns) {
  ErrorModelOptions options;
  options.column_error_prob = {0.0, 1.0, 0.0, 0.0};
  // Force truncation to be the only possible error in the city column.
  options.type_probs_other = {0.0, 0.0, 0.0, 1.0, 0.0, 0.0};
  const ErrorInjector injector(options);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const Row dirty = injector.Inject(CleanRow(), rng);
    ASSERT_TRUE(dirty[1].has_value());
    EXPECT_LT(dirty[1]->size(), 7u) << "'seattle' truncated by 1-5 chars";
    EXPECT_GE(dirty[1]->size(), 2u);
    EXPECT_TRUE(std::string("seattle").starts_with(*dirty[1]));
  }
}

TEST(ErrorInjectorTest, SingleTokenColumnsDegradeGracefully) {
  // Token merge / transposition are impossible on 'wa'; the injector must
  // still corrupt the column (degrading to a spelling error).
  ErrorModelOptions options;
  options.column_error_prob = {0.0, 0.0, 1.0, 0.0};
  options.type_probs_other = {0.0, 0.0, 0.0, 0.0, 0.5, 0.5};
  const ErrorInjector injector(options);
  Rng rng(7);
  int changed = 0;
  for (int i = 0; i < 200; ++i) {
    const Row dirty = injector.Inject(CleanRow(), rng);
    changed += (dirty[2] != CleanRow()[2]);
  }
  EXPECT_GT(changed, 150);
}

TEST(ErrorInjectorTest, TypeIIPrefersFrequentTokens) {
  // Build weights where 'company' is very frequent and 'boeing' rare; the
  // Type II injector must misspell 'company' far more often.
  IdfWeights::Builder builder;
  builder.AddTuple({{"boeing", "company"}});
  for (int i = 0; i < 99; ++i) {
    builder.AddTuple({{"filler" + std::to_string(i), "company"}});
  }
  const IdfWeights weights = builder.Finish();

  ErrorModelOptions options;
  options.column_error_prob = {1.0, 0.0, 0.0, 0.0};
  options.selection = TokenSelection::kTypeII;
  options.type_probs_name = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0};  // spelling only
  const ErrorInjector injector(options, &weights);

  Rng rng(8);
  const Tokenizer tok;
  int company_touched = 0, boeing_touched = 0;
  for (int i = 0; i < 500; ++i) {
    const Row dirty = injector.Inject(CleanRow(), rng);
    const auto tokens = tok.TokenizeField(*dirty[0]);
    ASSERT_EQ(tokens.size(), 2u);
    boeing_touched += (tokens[0] != "boeing");
    company_touched += (tokens[1] != "company");
  }
  EXPECT_GT(company_touched, boeing_touched * 10)
      << "company freq 100 vs boeing freq 1";
}

TEST(ErrorInjectorTest, AbbreviationTableMapsKnownTokens) {
  ErrorModelOptions options;
  options.column_error_prob = {1.0, 0.0, 0.0, 0.0};
  options.type_probs_name = {0.0, 1.0, 0.0, 0.0, 0.0, 0.0};  // abbr only
  const ErrorInjector injector(options);
  Rng rng(9);
  const Row clean{std::string("zenith corporation"), std::string("x"),
                  std::string("y"), std::string("z")};
  ErrorModelOptions options4 = options;
  options4.column_error_prob = {1.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < 20; ++i) {
    const Row dirty = injector.Inject(clean, rng);
    EXPECT_EQ(*dirty[0], "zenith corp") << "dictionary hit is deterministic";
  }
}

TEST(ErrorInjectorTest, NullColumnsPassThrough) {
  const ErrorInjector injector(AllColumnsErr());
  Rng rng(10);
  const Row with_null{std::string("boeing"), std::nullopt, std::nullopt,
                      std::nullopt};
  const Row dirty = injector.Inject(with_null, rng);
  EXPECT_FALSE(dirty[1].has_value());
  EXPECT_FALSE(dirty[2].has_value());
}

}  // namespace
}  // namespace fuzzymatch

#include "gen/dataset.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/customer_gen.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions options;
    options.num_tuples = 3000;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
};

TEST_F(DatasetTest, SpecsMatchTable5) {
  EXPECT_EQ(DatasetD1().column_error_prob,
            (std::vector<double>{0.90, 0.90, 0.90, 0.90}));
  EXPECT_EQ(DatasetD2().column_error_prob,
            (std::vector<double>{0.80, 0.50, 0.50, 0.60}));
  EXPECT_EQ(DatasetD3().column_error_prob,
            (std::vector<double>{0.70, 0.50, 0.50, 0.25}));
  EXPECT_EQ(DatasetD1().num_inputs, 1655u);
  EXPECT_EQ(DatasetEdVsFmsTypeI().num_inputs, 100u);
  EXPECT_EQ(DatasetEdVsFmsTypeII().selection, TokenSelection::kTypeII);
}

TEST_F(DatasetTest, GeneratesRequestedCountWithDistinctSeeds) {
  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 200;
  auto inputs = GenerateInputs(ref_, spec, nullptr);
  ASSERT_TRUE(inputs.ok());
  EXPECT_EQ(inputs->size(), 200u);
  std::set<Tid> seeds;
  for (const auto& in : *inputs) {
    EXPECT_LT(in.seed_tid, 3000u);
    seeds.insert(in.seed_tid);
    EXPECT_EQ(in.dirty.size(), 4u);
  }
  EXPECT_EQ(seeds.size(), 200u) << "seed tids are distinct";
}

TEST_F(DatasetTest, DirtyTuplesUsuallyDiffer) {
  DatasetSpec spec = DatasetD1();  // heavy errors everywhere
  spec.num_inputs = 100;
  auto inputs = GenerateInputs(ref_, spec, nullptr);
  ASSERT_TRUE(inputs.ok());
  int differing = 0;
  for (const auto& in : *inputs) {
    auto clean = ref_->Get(in.seed_tid);
    ASSERT_TRUE(clean.ok());
    differing += (in.dirty != *clean);
  }
  EXPECT_GT(differing, 90);
}

TEST_F(DatasetTest, DeterministicPerSpecSeed) {
  DatasetSpec spec = DatasetD3();
  spec.num_inputs = 50;
  auto a = GenerateInputs(ref_, spec, nullptr);
  auto b = GenerateInputs(ref_, spec, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].seed_tid, (*b)[i].seed_tid);
    EXPECT_EQ((*a)[i].dirty, (*b)[i].dirty);
  }
  spec.seed = 999;
  auto c = GenerateInputs(ref_, spec, nullptr);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t i = 0; i < a->size(); ++i) {
    any_diff |= ((*a)[i].seed_tid != (*c)[i].seed_tid);
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(DatasetTest, CapsAtRelationSize) {
  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 10000;  // > 3000 rows
  auto inputs = GenerateInputs(ref_, spec, nullptr);
  ASSERT_TRUE(inputs.ok());
  EXPECT_EQ(inputs->size(), 3000u);
}

TEST_F(DatasetTest, ValidatesSpecArity) {
  DatasetSpec spec = DatasetD2();
  spec.column_error_prob = {0.5};
  EXPECT_TRUE(GenerateInputs(ref_, spec, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DatasetTest, TypeIIUsesWeights) {
  IdfWeights::Builder builder;
  const Tokenizer tok;
  Table::Scanner scanner = ref_->Scan();
  Tid tid;
  Row row;
  for (;;) {
    auto more = scanner.Next(&tid, &row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    builder.AddTuple(tok.TokenizeTuple(row));
  }
  const IdfWeights weights = builder.Finish();
  DatasetSpec spec = DatasetEdVsFmsTypeII();
  spec.num_inputs = 100;
  auto inputs = GenerateInputs(ref_, spec, &weights);
  ASSERT_TRUE(inputs.ok());
  EXPECT_EQ(inputs->size(), 100u);
}

}  // namespace
}  // namespace fuzzymatch

#include "gen/customer_gen.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "storage/database.h"
#include "text/tokenizer.h"

namespace fuzzymatch {
namespace {

TEST(SyntheticVocabularyTest, DistinctDeterministicWords) {
  const auto v1 = MakeSyntheticVocabulary(5000, 1);
  const auto v2 = MakeSyntheticVocabulary(5000, 1);
  const auto v3 = MakeSyntheticVocabulary(5000, 2);
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);
  std::set<std::string> distinct(v1.begin(), v1.end());
  EXPECT_EQ(distinct.size(), 5000u);
  for (const auto& w : v1) {
    EXPECT_GE(w.size(), 3u);
    for (const char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    }
  }
}

TEST(StateCodesTest, FiftyLowercaseCodes) {
  const auto& states = StateCodes();
  EXPECT_EQ(states.size(), 50u);
  std::set<std::string> distinct(states.begin(), states.end());
  EXPECT_EQ(distinct.size(), 50u);
  for (const auto& s : states) {
    EXPECT_EQ(s.size(), 2u);
  }
}

TEST(CustomerGeneratorTest, RowsMatchSchemaShape) {
  CustomerGenOptions options;
  options.num_tuples = 100;
  CustomerGenerator gen(options);
  for (int i = 0; i < 100; ++i) {
    const Row row = gen.NextRow();
    ASSERT_EQ(row.size(), 4u);
    for (const auto& field : row) {
      ASSERT_TRUE(field.has_value());
      EXPECT_FALSE(field->empty());
    }
    // zip is 5 digits.
    EXPECT_EQ(row[3]->size(), 5u);
    for (const char c : *row[3]) {
      EXPECT_TRUE(c >= '0' && c <= '9');
    }
    // state is a known code.
    EXPECT_NE(std::find(StateCodes().begin(), StateCodes().end(), *row[2]),
              StateCodes().end());
  }
}

TEST(CustomerGeneratorTest, DeterministicInSeed) {
  CustomerGenOptions options;
  CustomerGenerator a(options), b(options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextRow(), b.NextRow());
  }
  options.seed = 43;
  CustomerGenerator c(options);
  bool any_diff = false;
  CustomerGenerator a2(CustomerGenOptions{});
  for (int i = 0; i < 50; ++i) {
    any_diff |= (a2.NextRow() != c.NextRow());
  }
  EXPECT_TRUE(any_diff);
}

TEST(CustomerGeneratorTest, TokenFrequenciesAreSkewed) {
  // The Zipf draws must produce a heavy head (high-IDF-variance data,
  // which the OSC optimization depends on).
  CustomerGenOptions options;
  options.num_tuples = 5000;
  CustomerGenerator gen(options);
  const Tokenizer tok;
  std::map<std::string, int> name_freq;
  for (size_t i = 0; i < options.num_tuples; ++i) {
    const Row row = gen.NextRow();
    for (const auto& t : tok.TokenizeField(*row[0])) {
      ++name_freq[t];
    }
  }
  int max_freq = 0;
  int singletons = 0;
  for (const auto& [t, f] : name_freq) {
    max_freq = std::max(max_freq, f);
    singletons += (f == 1);
  }
  EXPECT_GT(max_freq, 500) << "suffixes like 'company' must be frequent";
  EXPECT_GT(singletons, 500) << "the tail must hold many rare tokens";
}

TEST(CustomerGeneratorTest, PopulateInsertsRequestedCount) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
  ASSERT_TRUE(table.ok());
  CustomerGenOptions options;
  options.num_tuples = 500;
  CustomerGenerator gen(options);
  ASSERT_TRUE(gen.Populate(*table).ok());
  EXPECT_EQ((*table)->row_count(), 500u);
  auto row = (*table)->Get(499);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->size(), 4u);
}

TEST(CustomerGeneratorTest, PopulateChecksSchema) {
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("wrong", Schema({"a", "b"}));
  ASSERT_TRUE(table.ok());
  CustomerGenerator gen(CustomerGenOptions{});
  EXPECT_TRUE(gen.Populate(*table).IsInvalidArgument());
}

TEST(CustomerGeneratorTest, ZipCorrelatesWithState) {
  CustomerGenOptions options;
  options.num_tuples = 3000;
  CustomerGenerator gen(options);
  std::map<std::string, std::set<std::string>> prefixes_by_state;
  for (int i = 0; i < 3000; ++i) {
    const Row row = gen.NextRow();
    prefixes_by_state[*row[2]].insert(row[3]->substr(0, 3));
  }
  // Each state uses a bounded band of zip prefixes, not the whole space.
  for (const auto& [state, prefixes] : prefixes_by_state) {
    EXPECT_LE(prefixes.size(), 20u) << state;
  }
}

}  // namespace
}  // namespace fuzzymatch

#include "match/naive_matcher.h"

#include <gtest/gtest.h>

#include "gen/customer_gen.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

class NaiveMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable(
        "orgs", Schema({"name", "city", "state", "zipcode"}));
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    // Table 1 of the paper.
    ASSERT_TRUE(ref_->Insert(Row{std::string("Boeing Company"),
                                 std::string("Seattle"), std::string("WA"),
                                 std::string("98004")})
                    .ok());
    ASSERT_TRUE(ref_->Insert(Row{std::string("Bon Corporation"),
                                 std::string("Seattle"), std::string("WA"),
                                 std::string("98014")})
                    .ok());
    ASSERT_TRUE(ref_->Insert(Row{std::string("Companions"),
                                 std::string("Seattle"), std::string("WA"),
                                 std::string("98024")})
                    .ok());
    IdfWeights::Builder builder;
    const Tokenizer tok;
    Table::Scanner scanner = ref_->Scan();
    Tid tid;
    Row row;
    for (;;) {
      auto more = scanner.Next(&tid, &row);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      builder.AddTuple(tok.TokenizeTuple(row));
    }
    weights_ = std::make_unique<IdfWeights>(builder.Finish());
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
  std::unique_ptr<IdfWeights> weights_;
};

TEST_F(NaiveMatcherTest, RequiresPrepare) {
  NaiveMatcher matcher(ref_, weights_.get(),
                       NaiveMatcher::SimilarityKind::kFms, MatcherOptions{});
  EXPECT_TRUE(matcher.FindMatches(Row{std::string("x"), std::nullopt,
                                      std::nullopt, std::nullopt})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(NaiveMatcherTest, ExactTupleMatchesItself) {
  NaiveMatcher matcher(ref_, weights_.get(),
                       NaiveMatcher::SimilarityKind::kFms, MatcherOptions{});
  ASSERT_TRUE(matcher.Prepare().ok());
  auto matches = matcher.FindMatches(Row{std::string("Boeing Company"),
                                         std::string("Seattle"),
                                         std::string("WA"),
                                         std::string("98004")});
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].tid, 0u);
  EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
}

TEST_F(NaiveMatcherTest, PaperTable2InputsUnderFms) {
  // I1 and I2 must resolve to R1 (tid 0) under fms.
  NaiveMatcher matcher(ref_, weights_.get(),
                       NaiveMatcher::SimilarityKind::kFms, MatcherOptions{});
  ASSERT_TRUE(matcher.Prepare().ok());
  for (const char* name : {"Beoing Company", "Beoing Co.",
                           "Boeing Corporation"}) {
    auto matches = matcher.FindMatches(Row{std::string(name),
                                           std::string("Seattle"),
                                           std::string("WA"),
                                           std::string("98004")});
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty()) << name;
    EXPECT_EQ((*matches)[0].tid, 0u) << name;
  }
}

TEST_F(NaiveMatcherTest, EdSimilarityMisleadsOnI3) {
  // The ed baseline must reproduce the paper's failure: I3 -> R2.
  NaiveMatcher matcher(ref_, weights_.get(),
                       NaiveMatcher::SimilarityKind::kEd, MatcherOptions{});
  ASSERT_TRUE(matcher.Prepare().ok());
  auto matches = matcher.FindMatches(Row{std::string("Boeing Corporation"),
                                         std::string("Seattle"),
                                         std::string("WA"),
                                         std::string("98004")});
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].tid, 1u) << "ed prefers Bon Corporation";
}

TEST_F(NaiveMatcherTest, TopKReturnsKSortedMatches) {
  MatcherOptions options;
  options.k = 3;
  NaiveMatcher matcher(ref_, weights_.get(),
                       NaiveMatcher::SimilarityKind::kFms, options);
  ASSERT_TRUE(matcher.Prepare().ok());
  auto matches = matcher.FindMatches(Row{std::string("Boeing Company"),
                                         std::string("Seattle"),
                                         std::string("WA"),
                                         std::string("98004")});
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 3u);
  EXPECT_GE((*matches)[0].similarity, (*matches)[1].similarity);
  EXPECT_GE((*matches)[1].similarity, (*matches)[2].similarity);
  EXPECT_EQ((*matches)[0].tid, 0u);
}

TEST_F(NaiveMatcherTest, MinSimilarityFilters) {
  MatcherOptions options;
  options.k = 3;
  options.min_similarity = 0.99;
  NaiveMatcher matcher(ref_, weights_.get(),
                       NaiveMatcher::SimilarityKind::kFms, options);
  ASSERT_TRUE(matcher.Prepare().ok());
  auto matches = matcher.FindMatches(Row{std::string("Boeing Company"),
                                         std::string("Seattle"),
                                         std::string("WA"),
                                         std::string("98004")});
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u) << "only the exact match clears c=0.99";
  auto none = matcher.FindMatches(Row{std::string("Completely Unrelated"),
                                      std::string("Nowhere"),
                                      std::string("zz"),
                                      std::string("00000")});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(NaiveMatcherTest, StatsReportFullScan) {
  NaiveMatcher matcher(ref_, weights_.get(),
                       NaiveMatcher::SimilarityKind::kFms, MatcherOptions{});
  ASSERT_TRUE(matcher.Prepare().ok());
  QueryStats stats;
  ASSERT_TRUE(matcher
                  .FindMatches(Row{std::string("Boeing"), std::nullopt,
                                   std::nullopt, std::nullopt},
                               &stats)
                  .ok());
  EXPECT_EQ(stats.ref_tuples_fetched, 3u);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace fuzzymatch

// Concurrency tests for the shared-read query path: many threads
// querying one FuzzyMatcher must produce byte-identical results to the
// serial run, and the shared aggregate-stats accumulator must not lose
// counts. Run under -DFM_SANITIZE=thread these are the TSan probes for
// the whole matcher/storage read stack.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_cleaner.h"
#include "core/fuzzy_match.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"

namespace fuzzymatch {
namespace {

class ConcurrentMatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table =
        db_->CreateTable("customers", CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions options;
    options.num_tuples = 2000;
    CustomerGenerator gen(options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
    FuzzyMatchConfig config;
    auto matcher = FuzzyMatcher::Build(db_.get(), "customers", config);
    ASSERT_TRUE(matcher.ok());
    matcher_ = std::move(*matcher);

    DatasetSpec spec = DatasetD2();
    spec.num_inputs = 120;
    auto inputs = GenerateInputs(ref_, spec, nullptr);
    ASSERT_TRUE(inputs.ok());
    for (const InputTuple& input : *inputs) {
      queries_.push_back(input.dirty);
    }
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
  std::unique_ptr<FuzzyMatcher> matcher_;
  std::vector<Row> queries_;
};

TEST_F(ConcurrentMatchTest, ThreadedFindMatchesEqualsSerial) {
  // Serial ground truth.
  std::vector<std::vector<Match>> serial(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto matches = matcher_->FindMatches(queries_[i]);
    ASSERT_TRUE(matches.ok());
    serial[i] = *matches;
  }

  // Every thread runs EVERY query, so each query executes concurrently
  // with itself and with all others.
  constexpr size_t kThreads = 8;
  std::vector<std::vector<std::vector<Match>>> per_thread(
      kThreads, std::vector<std::vector<Match>>(queries_.size()));
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < queries_.size(); ++i) {
        auto matches = matcher_->FindMatches(queries_[i]);
        if (!matches.ok()) {
          failures.fetch_add(1);
          return;
        }
        per_thread[t][i] = *matches;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  ASSERT_EQ(failures.load(), 0u);
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < queries_.size(); ++i) {
      EXPECT_EQ(per_thread[t][i], serial[i])
          << "thread " << t << " diverged on query " << i;
    }
  }
}

TEST_F(ConcurrentMatchTest, AggregateStatsLosesNothingUnderThreads) {
  matcher_->ResetAggregateStats();
  constexpr size_t kThreads = 6;
  constexpr size_t kPerThread = 40;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        QueryStats stats;
        (void)matcher_->FindMatches(queries_[(t * kPerThread + i) %
                                             queries_.size()],
                                    &stats);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const AggregateStats totals = matcher_->aggregate_stats();
  EXPECT_EQ(totals.queries, kThreads * kPerThread)
      << "the shared accumulator dropped queries (data race)";
}

TEST_F(ConcurrentMatchTest, GetReferenceTupleConcurrentWithQueries) {
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          auto row = matcher_->GetReferenceTuple((t * 977 + i * 31) % 2000);
          if (!row.ok()) failures.fetch_add(1);
        } else {
          auto matches =
              matcher_->FindMatches(queries_[i % queries_.size()]);
          if (!matches.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0u);
}

TEST_F(ConcurrentMatchTest, CleanBatchParallelMatchesSerial) {
  const BatchCleaner cleaner(matcher_.get(), {});

  std::vector<CleanResult> serial;
  auto serial_stats = cleaner.CleanBatch(
      queries_, [&](size_t, const CleanResult& r) -> Status {
        serial.push_back(r);
        return Status::OK();
      });
  ASSERT_TRUE(serial_stats.ok());

  for (const size_t threads : {2u, 5u}) {
    std::vector<CleanResult> parallel;
    std::vector<size_t> order;
    auto stats = cleaner.CleanBatchParallel(
        queries_, threads, [&](size_t i, const CleanResult& r) -> Status {
          order.push_back(i);
          parallel.push_back(r);
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << "threads=" << threads;
    EXPECT_EQ(stats->processed, serial_stats->processed);
    EXPECT_EQ(stats->validated, serial_stats->validated);
    EXPECT_EQ(stats->corrected, serial_stats->corrected);
    EXPECT_EQ(stats->routed, serial_stats->routed);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i) << "sink must run in input order";
    }
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].outcome, serial[i].outcome) << "input " << i;
      EXPECT_EQ(parallel[i].output, serial[i].output) << "input " << i;
      ASSERT_EQ(parallel[i].best_match.has_value(),
                serial[i].best_match.has_value());
      if (serial[i].best_match.has_value()) {
        EXPECT_EQ(*parallel[i].best_match, *serial[i].best_match);
      }
    }
  }
}

TEST_F(ConcurrentMatchTest, CleanBatchParallelSinkErrorAborts) {
  const BatchCleaner cleaner(matcher_.get(), {});
  auto stats = cleaner.CleanBatchParallel(
      queries_, 4, [&](size_t i, const CleanResult&) -> Status {
        if (i == 3) {
          return Status::Internal("sink exploded");
        }
        return Status::OK();
      });
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInternal());
}

}  // namespace
}  // namespace fuzzymatch

// Parameterized property sweeps over the matcher configuration space:
// K, q, OSC, conservative bounds. These pin the invariants that hold for
// EVERY configuration, complementing the targeted tests in
// eti_matcher_test.cc.

#include <gtest/gtest.h>

#include "core/fuzzy_match.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "match/naive_matcher.h"

namespace fuzzymatch {
namespace {

struct SweepParam {
  size_t k;
  int q;
  int h;
  bool index_tokens;
  bool use_osc;
  bool conservative;

  std::string Name() const {
    std::string name = "K";
    name += std::to_string(k);
    name += "_q";
    name += std::to_string(q);
    name += '_';
    name += index_tokens ? "QT" : "Q";
    name += std::to_string(h);
    name += use_osc ? "_osc" : "_basic";
    name += conservative ? "_safe" : "_fast";
    return name;
  }
};

using MatcherSweepTest = ::testing::TestWithParam<SweepParam>;

TEST_P(MatcherSweepTest, InvariantsHoldAcrossConfigurations) {
  const SweepParam& p = GetParam();
  FuzzyMatchConfig config;
  config.eti.q = p.q;
  config.eti.signature_size = p.h;
  config.eti.index_tokens = p.index_tokens;
  // Strategy names collide across sweep entries sharing (H, tokens), so
  // each configuration gets its own database.
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
  ASSERT_TRUE(table.ok());
  CustomerGenOptions gen_options;
  gen_options.num_tuples = 1200;
  CustomerGenerator gen(gen_options);
  ASSERT_TRUE(gen.Populate(*table).ok());

  config.matcher.k = p.k;
  config.matcher.use_osc = p.use_osc;
  config.matcher.bound_policy = p.conservative ? MatcherOptions::BoundPolicy::kConservative : MatcherOptions::BoundPolicy::kAggressive;
  auto matcher = FuzzyMatcher::Build(db->get(), "customers", config);
  ASSERT_TRUE(matcher.ok()) << matcher.status();

  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 25;
  auto inputs = GenerateInputs(*table, spec, nullptr);
  ASSERT_TRUE(inputs.ok());

  for (const InputTuple& input : *inputs) {
    QueryStats stats;
    auto matches = (*matcher)->FindMatches(input.dirty, &stats);
    ASSERT_TRUE(matches.ok());
    // Cardinality and ordering invariants.
    EXPECT_LE(matches->size(), p.k);
    for (size_t i = 0; i < matches->size(); ++i) {
      EXPECT_GE((*matches)[i].similarity, 0.0);
      EXPECT_LE((*matches)[i].similarity, 1.0);
      if (i > 0) {
        EXPECT_GE((*matches)[i - 1].similarity, (*matches)[i].similarity);
      }
    }
    // Distinct tids.
    for (size_t i = 0; i < matches->size(); ++i) {
      for (size_t j = i + 1; j < matches->size(); ++j) {
        EXPECT_NE((*matches)[i].tid, (*matches)[j].tid);
      }
    }
    // Stats sanity.
    EXPECT_GT(stats.eti_lookups, 0u);
    if (!p.use_osc) {
      EXPECT_FALSE(stats.osc_succeeded);
    }
  }

  // A clean reference tuple must always match itself with similarity 1.
  auto clean = (*matcher)->GetReferenceTuple(500);
  ASSERT_TRUE(clean.ok());
  auto self = (*matcher)->FindMatches(*clean);
  ASSERT_TRUE(self.ok());
  ASSERT_FALSE(self->empty());
  EXPECT_DOUBLE_EQ((*self)[0].similarity, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, MatcherSweepTest,
    ::testing::Values(
        SweepParam{1, 4, 2, false, true, false},
        SweepParam{1, 4, 2, false, false, false},
        SweepParam{1, 4, 2, false, true, true},
        SweepParam{3, 4, 2, true, true, false},
        SweepParam{5, 4, 3, true, false, false},
        SweepParam{2, 3, 1, false, true, false},
        SweepParam{1, 2, 2, true, true, false},
        SweepParam{4, 5, 3, false, true, true},
        SweepParam{1, 4, 0, true, true, false}),
    [](const auto& info) { return info.param.Name(); });

TEST(TopKAgreementTest, MatchesNaiveTopKOnCleanProbes) {
  // For clean probes (a reference tuple queried verbatim) the indexed
  // matcher's top-K should equal the exhaustive top-K similarity-for-
  // similarity: the top of the ranking is dominated by tuples with high
  // signature overlap, which the ETI retrieves reliably.
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
  ASSERT_TRUE(table.ok());
  CustomerGenOptions gen_options;
  gen_options.num_tuples = 1500;
  CustomerGenerator gen(gen_options);
  ASSERT_TRUE(gen.Populate(*table).ok());

  FuzzyMatchConfig config;
  config.eti.signature_size = 4;
  config.eti.index_tokens = true;
  config.matcher.k = 5;
  config.matcher.min_similarity = 0.3;
  auto matcher = FuzzyMatcher::Build(db->get(), "customers", config);
  ASSERT_TRUE(matcher.ok());

  MatcherOptions naive_options;
  naive_options.k = 5;
  naive_options.min_similarity = 0.3;
  NaiveMatcher naive(*table, &(*matcher)->weights(),
                     NaiveMatcher::SimilarityKind::kFms, naive_options);
  ASSERT_TRUE(naive.Prepare().ok());

  int positions = 0;
  int agreements = 0;
  for (Tid tid = 100; tid < 120; ++tid) {
    auto probe = (*matcher)->GetReferenceTuple(tid);
    ASSERT_TRUE(probe.ok());
    auto got = (*matcher)->FindMatches(*probe);
    auto want = naive.FindMatches(*probe);
    ASSERT_TRUE(got.ok() && want.ok());
    ASSERT_FALSE(got->empty());
    EXPECT_DOUBLE_EQ((*got)[0].similarity, 1.0);
    const size_t common = std::min(got->size(), want->size());
    for (size_t i = 0; i < common; ++i) {
      ++positions;
      const bool same = std::abs((*got)[i].similarity -
                                 (*want)[i].similarity) < 1e-9;
      agreements += same;
      if (i == 0) {
        EXPECT_TRUE(same) << "rank 1 must always agree on clean probes";
      }
    }
  }
  // Deep ranks (4th/5th-best at similarity ~0.3) have little signature
  // overlap, so the aggressive bounds may swap them; the bulk must agree.
  EXPECT_GE(agreements, positions * 3 / 4)
      << agreements << "/" << positions;
}

TEST(ConservativeBoundsTest, NearPerfectAgreementWithNaive) {
  // With adjustment-inclusive bounds the matcher cannot terminate early,
  // so its only misses are candidate-set misses (a tuple sharing NO
  // signature coordinate). With H = 8, agreement with the exhaustive scan
  // should be essentially total.
  auto db = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
  ASSERT_TRUE(table.ok());
  CustomerGenOptions gen_options;
  gen_options.num_tuples = 1500;
  CustomerGenerator gen(gen_options);
  ASSERT_TRUE(gen.Populate(*table).ok());

  FuzzyMatchConfig config;
  config.eti.signature_size = 8;
  config.matcher.bound_policy = MatcherOptions::BoundPolicy::kConservative;
  auto matcher = FuzzyMatcher::Build(db->get(), "customers", config);
  ASSERT_TRUE(matcher.ok());

  NaiveMatcher naive(*table, &(*matcher)->weights(),
                     NaiveMatcher::SimilarityKind::kFms, MatcherOptions{});
  ASSERT_TRUE(naive.Prepare().ok());

  DatasetSpec spec = DatasetD2();
  spec.num_inputs = 60;
  auto inputs = GenerateInputs(*table, spec, nullptr);
  ASSERT_TRUE(inputs.ok());

  int agree = 0;
  for (const InputTuple& input : *inputs) {
    auto got = (*matcher)->FindMatches(input.dirty);
    auto want = naive.FindMatches(input.dirty);
    ASSERT_TRUE(got.ok() && want.ok());
    if (!got->empty() && !want->empty() &&
        std::abs((*got)[0].similarity - (*want)[0].similarity) < 1e-9) {
      ++agree;
    }
  }
  EXPECT_GE(agree, 58) << agree << "/60";
}

}  // namespace
}  // namespace fuzzymatch

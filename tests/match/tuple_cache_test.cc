#include "match/tuple_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace fuzzymatch {
namespace {

std::shared_ptr<const TokenizedTuple> MakeTuple(const std::string& stem,
                                                size_t tokens = 3) {
  auto tuple = std::make_shared<TokenizedTuple>();
  tuple->emplace_back();
  for (size_t i = 0; i < tokens; ++i) {
    tuple->back().push_back(stem + std::to_string(i));
  }
  return tuple;
}

TEST(TupleCacheTest, ZeroBudgetDisablesTheCache) {
  TupleCache cache(0, 4);
  EXPECT_FALSE(cache.enabled());
  cache.Put(1, MakeTuple("a"));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.memory_bytes(), 0u);
}

TEST(TupleCacheTest, PutThenGetReturnsSameTuple) {
  TupleCache cache(1u << 20, 4);
  EXPECT_TRUE(cache.enabled());
  auto tuple = MakeTuple("boeing");
  cache.Put(42, tuple);
  auto hit = cache.Get(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), tuple.get());
  EXPECT_EQ(cache.Get(43), nullptr);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_GT(cache.memory_bytes(), 0u);
}

TEST(TupleCacheTest, PutReplacesExistingEntry) {
  TupleCache cache(1u << 20, 1);
  cache.Put(7, MakeTuple("old"));
  auto fresh = MakeTuple("new");
  cache.Put(7, fresh);
  EXPECT_EQ(cache.entry_count(), 1u);
  auto hit = cache.Get(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), fresh.get());
}

TEST(TupleCacheTest, EraseDropsTheEntry) {
  TupleCache cache(1u << 20, 4);
  cache.Put(9, MakeTuple("x"));
  ASSERT_NE(cache.Get(9), nullptr);
  cache.Erase(9);
  EXPECT_EQ(cache.Get(9), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
  // Erasing an absent tid is a no-op.
  cache.Erase(9);
  cache.Erase(12345);
}

TEST(TupleCacheTest, EvictsLeastRecentlyUsedPastTheBudget) {
  // Single shard so the LRU order is global. Budget sized for roughly
  // three of these tuples.
  const size_t one = TupleCache::TupleBytes(*MakeTuple("tuple0"));
  TupleCache cache(3 * one + one / 2, 1);
  cache.Put(0, MakeTuple("tuple0"));
  cache.Put(1, MakeTuple("tuple1"));
  cache.Put(2, MakeTuple("tuple2"));
  EXPECT_EQ(cache.entry_count(), 3u);
  // Touch 0 so 1 becomes the LRU victim.
  ASSERT_NE(cache.Get(0), nullptr);
  cache.Put(3, MakeTuple("tuple3"));
  EXPECT_LE(cache.memory_bytes(), 3 * one + one / 2);
  EXPECT_EQ(cache.Get(1), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(cache.Get(0), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(TupleCacheTest, EvictionDoesNotInvalidateHeldReferences) {
  const size_t one = TupleCache::TupleBytes(*MakeTuple("tuple0"));
  TupleCache cache(one + one / 2, 1);
  auto pinned = MakeTuple("pinned");
  cache.Put(0, pinned);
  std::shared_ptr<const TokenizedTuple> held = cache.Get(0);
  ASSERT_NE(held, nullptr);
  // Force eviction of tid 0.
  cache.Put(1, MakeTuple("evictor"));
  EXPECT_EQ(cache.Get(0), nullptr);
  // The reader's pin keeps the tuple alive and intact.
  ASSERT_EQ(held->size(), 1u);
  EXPECT_EQ((*held)[0][0], "pinned0");
}

TEST(TupleCacheTest, OversizedTuplesAreNotCached) {
  // A tuple larger than a shard's budget can never fit; Put must skip it
  // rather than evict everything and then fail anyway.
  TupleCache cache(512, 1);
  auto giant = std::make_shared<TokenizedTuple>();
  giant->emplace_back();
  giant->back().push_back(std::string(4096, 'g'));
  cache.Put(0, giant);
  EXPECT_EQ(cache.Get(0), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(TupleCacheTest, ShardsPartitionTheBudget) {
  // Same total budget, more shards: entries land in different shards and
  // both shards enforce their own slice.
  TupleCache cache(1u << 20, 8);
  for (Tid tid = 0; tid < 64; ++tid) {
    std::string stem = "t";
    stem += std::to_string(tid);
    cache.Put(tid, MakeTuple(stem));
  }
  EXPECT_EQ(cache.entry_count(), 64u);
  for (Tid tid = 0; tid < 64; ++tid) {
    EXPECT_NE(cache.Get(tid), nullptr) << tid;
  }
}

TEST(TupleCacheTest, TupleBytesGrowsWithContent) {
  const size_t small = TupleCache::TupleBytes(*MakeTuple("a", 1));
  const size_t big = TupleCache::TupleBytes(*MakeTuple("longertokens", 20));
  EXPECT_GT(small, 0u);
  EXPECT_GT(big, small);
}

}  // namespace
}  // namespace fuzzymatch

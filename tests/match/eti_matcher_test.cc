#include "match/eti_matcher.h"

#include <gtest/gtest.h>

#include "eti/eti_builder.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "match/naive_matcher.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace {

// Environment shared by the heavier tests: a 2000-row synthetic customer
// relation with one ETI per strategy under test.
class EtiMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto table = db_->CreateTable("customers",
                                  CustomerGenerator::CustomerSchema());
    ASSERT_TRUE(table.ok());
    ref_ = *table;
    CustomerGenOptions gen_options;
    gen_options.num_tuples = 2000;
    CustomerGenerator gen(gen_options);
    ASSERT_TRUE(gen.Populate(ref_).ok());
  }

  BuiltEti BuildEti(int h, bool tokens, uint32_t stop_threshold = 10000) {
    EtiBuilder::Options options;
    options.params.q = 4;
    options.params.signature_size = h;
    options.params.index_tokens = tokens;
    options.params.stop_qgram_threshold = stop_threshold;
    auto built = EtiBuilder::Build(db_.get(), ref_, options);
    EXPECT_TRUE(built.ok()) << built.status();
    return std::move(*built);
  }

  std::vector<InputTuple> MakeInputs(size_t n) {
    DatasetSpec spec = DatasetD2();
    spec.num_inputs = n;
    auto inputs = GenerateInputs(ref_, spec, nullptr);
    EXPECT_TRUE(inputs.ok());
    return std::move(*inputs);
  }

  std::unique_ptr<Database> db_;
  Table* ref_ = nullptr;
};

TEST_F(EtiMatcherTest, ExactInputFindsItselfWithSimilarityOne) {
  const BuiltEti built = BuildEti(3, false);
  const EtiMatcher matcher(ref_, &built.eti, &built.weights,
                           MatcherOptions{});
  for (const Tid tid : {0u, 777u, 1999u}) {
    auto row = ref_->Get(tid);
    ASSERT_TRUE(row.ok());
    auto matches = matcher.FindMatches(*row);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
    // Ties at similarity 1 are possible for duplicate synthetic rows; the
    // seed must at least be as similar as the returned best.
    auto self = ref_->Get((*matches)[0].tid);
    ASSERT_TRUE(self.ok());
  }
}

TEST_F(EtiMatcherTest, AgreesWithNaiveMatcherOnDirtyInputs) {
  // The central correctness property (Theorems 1 and 2): the ETI matcher
  // returns the same top-1 similarity as the exhaustive scan. With H=8
  // coordinates per token misses are rare but not impossible (the
  // reference relation deliberately contains confusable near-neighbors);
  // we require exact agreement on >= 90% of 120 inputs, near-agreement
  // (within 0.1) on all, and that the indexed result never beats the
  // exhaustive optimum.
  const BuiltEti built = BuildEti(8, false);
  const MatcherOptions options;
  const EtiMatcher eti_matcher(ref_, &built.eti, &built.weights, options);
  NaiveMatcher naive(ref_, &built.weights,
                     NaiveMatcher::SimilarityKind::kFms, options);
  ASSERT_TRUE(naive.Prepare().ok());

  const auto inputs = MakeInputs(120);
  int agree = 0;
  int bad_misses = 0;  // true optimum beaten by more than 0.1 similarity
  for (const auto& input : inputs) {
    auto got = eti_matcher.FindMatches(input.dirty);
    auto want = naive.FindMatches(input.dirty);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ASSERT_FALSE(want->empty());
    if (got->empty()) {
      ++bad_misses;
      continue;
    }
    const double got_sim = (*got)[0].similarity;
    const double want_sim = (*want)[0].similarity;
    EXPECT_LE(got_sim, want_sim + 1e-9) << "cannot beat the true optimum";
    bad_misses += (got_sim < want_sim - 0.1);
    agree += (std::abs(got_sim - want_sim) < 1e-9);
  }
  EXPECT_GE(agree, static_cast<int>(inputs.size() * 90 / 100))
      << agree << "/" << inputs.size();
  // Bad misses happen when an input is so corrupted that the true match's
  // signature overlap collapses (the case the Lemma 4.2 slack insures
  // against; see MatcherOptions::BoundPolicy). They must stay
  // rare.
  EXPECT_LE(bad_misses, static_cast<int>(inputs.size() / 15))
      << bad_misses << "/" << inputs.size();
}

TEST_F(EtiMatcherTest, OscMatchesBasicAlgorithmResults) {
  const BuiltEti built = BuildEti(3, true);
  MatcherOptions with_osc;
  with_osc.use_osc = true;
  MatcherOptions without_osc;
  without_osc.use_osc = false;
  const EtiMatcher osc(ref_, &built.eti, &built.weights, with_osc);
  const EtiMatcher basic(ref_, &built.eti, &built.weights, without_osc);

  const auto inputs = MakeInputs(100);
  size_t osc_successes = 0;
  for (const auto& input : inputs) {
    QueryStats stats;
    auto a = osc.FindMatches(input.dirty, &stats);
    auto b = basic.FindMatches(input.dirty);
    ASSERT_TRUE(a.ok() && b.ok());
    osc_successes += stats.osc_succeeded;
    ASSERT_EQ(a->empty(), b->empty());
    if (!a->empty()) {
      EXPECT_NEAR((*a)[0].similarity, (*b)[0].similarity, 1e-9)
          << "OSC may not change the answer";
    }
  }
  EXPECT_GT(osc_successes, 0u) << "OSC should fire on this workload";
}

TEST_F(EtiMatcherTest, TopKOrderingAndThreshold) {
  const BuiltEti built = BuildEti(3, false);
  MatcherOptions options;
  options.k = 5;
  const EtiMatcher matcher(ref_, &built.eti, &built.weights, options);
  auto row = ref_->Get(42);
  ASSERT_TRUE(row.ok());
  auto matches = matcher.FindMatches(*row);
  ASSERT_TRUE(matches.ok());
  ASSERT_GE(matches->size(), 1u);
  ASSERT_LE(matches->size(), 5u);
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_GE((*matches)[i - 1].similarity, (*matches)[i].similarity);
  }
  EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);

  // A high threshold prunes the weaker matches.
  MatcherOptions strict = options;
  strict.min_similarity = 0.95;
  const EtiMatcher strict_matcher(ref_, &built.eti, &built.weights, strict);
  auto strict_matches = strict_matcher.FindMatches(*row);
  ASSERT_TRUE(strict_matches.ok());
  for (const auto& m : *strict_matches) {
    EXPECT_GE(m.similarity, 0.95);
  }
  EXPECT_LE(strict_matches->size(), matches->size());
}

TEST_F(EtiMatcherTest, EmptyAndDegenerateInputs) {
  const BuiltEti built = BuildEti(2, false);
  const EtiMatcher matcher(ref_, &built.eti, &built.weights,
                           MatcherOptions{});
  // All-NULL input: no tokens, no matches, no crash.
  auto empty = matcher.FindMatches(
      Row{std::nullopt, std::nullopt, std::nullopt, std::nullopt});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // Whitespace-only.
  auto blank = matcher.FindMatches(Row{std::string("   "), std::string(""),
                                       std::nullopt, std::nullopt});
  ASSERT_TRUE(blank.ok());
  EXPECT_TRUE(blank->empty());
  // Tokens that hit nothing in the ETI.
  auto miss = matcher.FindMatches(Row{std::string("qqqqqqqq wwwwwwww"),
                                      std::nullopt, std::nullopt,
                                      std::nullopt});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
}

TEST_F(EtiMatcherTest, StatsAreConsistent) {
  const BuiltEti built = BuildEti(3, true);
  const EtiMatcher matcher(ref_, &built.eti, &built.weights,
                           MatcherOptions{});
  auto row = ref_->Get(10);
  ASSERT_TRUE(row.ok());
  QueryStats stats;
  ASSERT_TRUE(matcher.FindMatches(*row, &stats).ok());
  EXPECT_GT(stats.eti_lookups, 0u);
  EXPECT_GT(stats.tids_processed, 0u);
  EXPECT_GT(stats.ref_tuples_fetched, 0u);
  EXPECT_GT(stats.elapsed_seconds, 0.0);

  const AggregateStats& agg = matcher.aggregate_stats();
  EXPECT_EQ(agg.queries, 1u);
  EXPECT_EQ(agg.eti_lookups, stats.eti_lookups);
  EXPECT_EQ(agg.ref_tuples_fetched, stats.ref_tuples_fetched);
  EXPECT_EQ(agg.fetched_when_osc_succeeded + agg.fetched_when_osc_failed +
                agg.fetched_when_osc_not_attempted,
            agg.ref_tuples_fetched);
  // The failed bucket only counts queries where OSC actually fired.
  if (agg.osc_attempted == 0) {
    EXPECT_EQ(agg.fetched_when_osc_failed, 0u);
  }
}

TEST_F(EtiMatcherTest, StopQGramsDegradeGracefully) {
  // An aggressive stop threshold NULLs out many tid-lists; matching must
  // still work through the surviving rare q-grams.
  const BuiltEti built = BuildEti(3, false, /*stop_threshold=*/50);
  const EtiMatcher matcher(ref_, &built.eti, &built.weights,
                           MatcherOptions{});
  auto row = ref_->Get(5);
  ASSERT_TRUE(row.ok());
  auto matches = matcher.FindMatches(*row);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_DOUBLE_EQ((*matches)[0].similarity, 1.0);
}

TEST_F(EtiMatcherTest, AdmissionFilterPrunesWithHighThreshold) {
  const BuiltEti built = BuildEti(2, false);
  MatcherOptions with_filter;
  with_filter.min_similarity = 0.9;
  with_filter.admission_filter = true;
  with_filter.use_osc = false;
  MatcherOptions without_filter = with_filter;
  without_filter.admission_filter = false;
  const EtiMatcher filtered(ref_, &built.eti, &built.weights, with_filter);
  const EtiMatcher unfiltered(ref_, &built.eti, &built.weights,
                              without_filter);
  const auto inputs = MakeInputs(30);
  uint64_t filtered_size = 0, unfiltered_size = 0;
  for (const auto& input : inputs) {
    QueryStats fs, us;
    auto a = filtered.FindMatches(input.dirty, &fs);
    auto b = unfiltered.FindMatches(input.dirty, &us);
    ASSERT_TRUE(a.ok() && b.ok());
    filtered_size += fs.hash_table_size;
    unfiltered_size += us.hash_table_size;
    // Same results above the threshold.
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_NEAR((*a)[i].similarity, (*b)[i].similarity, 1e-9);
    }
  }
  EXPECT_LE(filtered_size, unfiltered_size);
}

TEST_F(EtiMatcherTest, FullQGramIndexMatchesAtLeastAsAccurately) {
  // The Section 2 baseline: deterministic retrieval (no min-hash
  // sampling) must be at least as accurate as a sampled signature, at a
  // larger index size.
  EtiBuilder::Options full_options;
  full_options.params.q = 4;
  full_options.params.full_qgram_index = true;
  auto full_built = EtiBuilder::Build(db_.get(), ref_, full_options);
  ASSERT_TRUE(full_built.ok());
  const BuiltEti sampled = BuildEti(2, false);

  const EtiMatcher full_matcher(ref_, &full_built->eti,
                                &full_built->weights, MatcherOptions{});
  const EtiMatcher sampled_matcher(ref_, &sampled.eti, &sampled.weights,
                                   MatcherOptions{});
  const auto inputs = MakeInputs(80);
  int full_correct = 0, sampled_correct = 0;
  for (const auto& input : inputs) {
    auto a = full_matcher.FindMatches(input.dirty);
    auto b = sampled_matcher.FindMatches(input.dirty);
    ASSERT_TRUE(a.ok() && b.ok());
    full_correct += (!a->empty() && (*a)[0].tid == input.seed_tid);
    sampled_correct += (!b->empty() && (*b)[0].tid == input.seed_tid);
  }
  EXPECT_GE(full_correct, sampled_correct - 3);
  EXPECT_GT(full_built->stats.pre_eti_rows,
            sampled.stats.pre_eti_rows * 2);
  // Exact self-match still holds.
  auto row = ref_->Get(3);
  ASSERT_TRUE(row.ok());
  auto self = full_matcher.FindMatches(*row);
  ASSERT_TRUE(self.ok());
  ASSERT_FALSE(self->empty());
  EXPECT_DOUBLE_EQ((*self)[0].similarity, 1.0);
}

TEST_F(EtiMatcherTest, QPlusTAgreesWithQOnAccuracyCriticalInputs) {
  const BuiltEti q_built = BuildEti(3, false);
  const BuiltEti qt_built = BuildEti(3, true);
  const EtiMatcher q_matcher(ref_, &q_built.eti, &q_built.weights,
                             MatcherOptions{});
  const EtiMatcher qt_matcher(ref_, &qt_built.eti, &qt_built.weights,
                              MatcherOptions{});
  const auto inputs = MakeInputs(80);
  int q_correct = 0, qt_correct = 0;
  for (const auto& input : inputs) {
    auto a = q_matcher.FindMatches(input.dirty);
    auto b = qt_matcher.FindMatches(input.dirty);
    ASSERT_TRUE(a.ok() && b.ok());
    q_correct += (!a->empty() && (*a)[0].tid == input.seed_tid);
    qt_correct += (!b->empty() && (*b)[0].tid == input.seed_tid);
  }
  // Section 5.1 / Figure 5: adding tokens must not hurt accuracy much.
  EXPECT_GE(qt_correct, q_correct - 8);
  EXPECT_GT(q_correct, static_cast<int>(inputs.size()) / 2);
}

}  // namespace
}  // namespace fuzzymatch

// fuzzymatch_cli: command-line front end for the library.
//
//   fuzzymatch_cli gen     --out ref.csv [--rows N] [--seed S]
//       Writes a synthetic Customer reference relation as CSV.
//
//   fuzzymatch_cli corrupt --ref ref.csv --out dirty.csv
//                          [--inputs N] [--profile D1|D2|D3] [--seeds]
//       Samples reference rows and corrupts them with the paper's Table 4
//       error model. --seeds appends the originating row number, so
//       accuracy can be audited downstream.
//
//   fuzzymatch_cli build   --ref ref.csv --db store.fmdb
//                          [--q N] [--h N] [--tokens]
//                          [--build-threads N] [--temp-dir DIR]
//                          [--sort-budget-kb KB] [--shards N]
//       Loads the reference CSV into a file-backed database, builds the
//       ETI with the requested parallelism, and checkpoints. The
//       persisted file is byte-identical for every --build-threads
//       value, which the CI buildcheck stage verifies with cmp(1).
//       --shards N instead hash-partitions the relation by tid into N
//       shard databases at store.fmdb.shard<k>, each with its own ETI.
//
//   fuzzymatch_cli match   --ref ref.csv --input dirty.csv --out out.csv
//                          [--q N] [--h N] [--tokens] [--k N]
//                          [--threshold C] [--load-threshold C]
//                          [--threads N] [--build-threads N]
//                          [--temp-dir DIR] [--metrics [FILE]]
//                          [--accel-budget-mb MB] [--tuple-cache-mb MB]
//                          [--lookup-path scalar|simd|learned]
//                          [--verbose]
//       Builds an Error Tolerant Index over the reference CSV and batch-
//       cleans the input CSV. The output repeats each input row and
//       appends: outcome (validated/corrected/routed), similarity, and
//       the matched reference row. --threads N fans the batch out over N
//       worker threads on the concurrent query path; routing decisions
//       and output row order are identical to the serial run.
//
//       --shards N serves the batch through the scatter/gather tier
//       (N per-shard engines, top-K merge) instead of one engine;
//       --replicas-per-shard R fans shard reads over R replica engines.
//       Under --bound-policy conservative the sharded output is byte-
//       identical to the single-engine run, which the CI shardcheck
//       stage verifies with cmp(1).
//
//       --metrics dumps the process-wide metrics registry (buffer-pool
//       hit rates, pages read, ETI probes, OSC outcomes, per-phase span
//       and query latency histograms) in Prometheus text format to
//       stdout, or to FILE when a value is given. --verbose lowers the
//       log level to debug, which also emits a per-query phase
//       breakdown from the span tracer.
//
//   fuzzymatch_cli trace   --port P [--host A] [--limit N] [--json]
//       Fetches the flight recorder from a running fuzzymatch_server
//       (the `tracez` protocol verb) and pretty-prints each retained
//       trace as an indented span tree with per-span durations and the
//       trace's counters. --json dumps the raw tracez response instead,
//       for piping into other tooling.
//
// CSV convention: first record is the header; empty fields are NULL.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/batch_cleaner.h"
#include "core/fuzzy_match.h"
#include "eti/eti_builder.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/json.h"
#include "shard/shard_router.h"
#include "shard/sharded_matcher.h"

using namespace fuzzymatch;

namespace {

/// Tiny --flag[=value] parser: flags with values must use --flag value.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        ordered_.push_back(key);
        continue;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> ordered_;
};

Row FieldsToRow(const std::vector<std::string>& fields) {
  Row row;
  row.reserve(fields.size());
  for (const auto& f : fields) {
    if (f.empty()) {
      row.emplace_back(std::nullopt);
    } else {
      row.emplace_back(f);
    }
  }
  return row;
}

std::vector<std::string> RowToFields(const Row& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (const auto& f : row) {
    fields.push_back(f.value_or(""));
  }
  return fields;
}

/// Loads a CSV (header + records) into a new table named `name`.
Result<Table*> LoadCsvTable(Database* db, const std::string& name,
                            const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  CsvReader reader(&in);
  std::vector<std::string> fields;
  FM_ASSIGN_OR_RETURN(const bool has_header, reader.Next(&fields));
  if (!has_header) {
    return Status::InvalidArgument(path + " is empty");
  }
  FM_ASSIGN_OR_RETURN(Table * table, db->CreateTable(name, Schema(fields)));
  const size_t arity = fields.size();
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, reader.Next(&fields));
    if (!more) break;
    if (fields.size() != arity) {
      return Status::InvalidArgument(
          StringPrintf("%s row %llu has %zu fields, header has %zu",
                       path.c_str(),
                       static_cast<unsigned long long>(reader.records_read()),
                       fields.size(), arity));
    }
    FM_RETURN_IF_ERROR(table->Insert(FieldsToRow(fields)).status());
  }
  return table;
}

Status CmdGen(const Args& args) {
  const std::string out_path = args.Get("out", "");
  if (out_path.empty()) {
    return Status::InvalidArgument("gen requires --out");
  }
  CustomerGenOptions options;
  options.num_tuples = static_cast<size_t>(args.GetInt("rows", 100000));
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  CustomerGenerator generator(options);

  std::ofstream out(out_path);
  if (!out) {
    return Status::IOError("cannot write " + out_path);
  }
  CsvWriter writer(&out);
  writer.Write(CustomerGenerator::CustomerSchema().column_names());
  for (size_t i = 0; i < options.num_tuples; ++i) {
    writer.Write(RowToFields(generator.NextRow()));
  }
  std::printf("wrote %zu reference tuples to %s\n", options.num_tuples,
              out_path.c_str());
  return Status::OK();
}

Status CmdCorrupt(const Args& args) {
  const std::string ref_path = args.Get("ref", "");
  const std::string out_path = args.Get("out", "");
  if (ref_path.empty() || out_path.empty()) {
    return Status::InvalidArgument("corrupt requires --ref and --out");
  }
  FM_ASSIGN_OR_RETURN(auto db, Database::Open(DatabaseOptions{
                                   .path = "", .pool_pages = 64 * 1024}));
  FM_ASSIGN_OR_RETURN(Table * ref,
                      LoadCsvTable(db.get(), "ref", ref_path));

  const std::string profile = args.Get("profile", "D2");
  DatasetSpec spec = profile == "D1"   ? DatasetD1()
                     : profile == "D3" ? DatasetD3()
                                       : DatasetD2();
  if (spec.column_error_prob.size() != ref->schema().num_columns()) {
    // Non-customer schemas get a uniform error profile.
    spec.column_error_prob.assign(ref->schema().num_columns(), 0.5);
    spec.column_error_prob[0] = 0.8;
  }
  spec.num_inputs = static_cast<size_t>(args.GetInt("inputs", 1000));
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                      GenerateInputs(ref, spec, nullptr));

  const bool with_seeds = args.Has("seeds");
  std::ofstream out(out_path);
  if (!out) {
    return Status::IOError("cannot write " + out_path);
  }
  CsvWriter writer(&out);
  std::vector<std::string> header = ref->schema().column_names();
  if (with_seeds) {
    header.push_back("_seed_row");
  }
  writer.Write(header);
  for (const InputTuple& input : inputs) {
    std::vector<std::string> fields = RowToFields(input.dirty);
    if (with_seeds) {
      fields.push_back(std::to_string(input.seed_tid));
    }
    writer.Write(fields);
  }
  std::printf("wrote %zu corrupted tuples (%s profile) to %s\n",
              inputs.size(), spec.name.c_str(), out_path.c_str());
  return Status::OK();
}

/// --bound-policy aggressive|tight|conservative (the per-candidate
/// upper-bound flavour of DESIGN.md 5e; conservative is the one under
/// which sharded output is provably byte-identical to single-database).
Status ApplyBoundPolicy(const Args& args, FuzzyMatchConfig* config) {
  const std::string policy = args.Get("bound-policy", "aggressive");
  if (policy == "aggressive") {
    config->matcher.bound_policy = MatcherOptions::BoundPolicy::kAggressive;
  } else if (policy == "tight") {
    config->matcher.bound_policy = MatcherOptions::BoundPolicy::kTight;
  } else if (policy == "conservative") {
    config->matcher.bound_policy =
        MatcherOptions::BoundPolicy::kConservative;
  } else {
    return Status::InvalidArgument(
        "--bound-policy must be aggressive, tight, or conservative");
  }
  return Status::OK();
}

Status ApplyLookupPath(const Args& args, FuzzyMatchConfig* config) {
  const std::string name =
      args.Get("lookup-path", LookupPathName(config->lookup_path));
  FM_ASSIGN_OR_RETURN(config->lookup_path, ParseLookupPath(name));
  return Status::OK();
}

Status CmdBuild(const Args& args) {
  const std::string ref_path = args.Get("ref", "");
  const std::string db_path = args.Get("db", "");
  if (ref_path.empty() || db_path.empty()) {
    return Status::InvalidArgument("build requires --ref and --db");
  }
  const size_t shards =
      static_cast<size_t>(std::max<int64_t>(1, args.GetInt("shards", 1)));
  if (shards > 1) {
    // Sharded build: the reference CSV is staged in memory, hash-
    // partitioned by tid, and persisted as one database per shard at
    // <db>.shard<k> — each with its own ETI.
    FM_ASSIGN_OR_RETURN(auto staging,
                        Database::Open(DatabaseOptions{
                            .path = "", .pool_pages = 64 * 1024}));
    FM_ASSIGN_OR_RETURN(Table * ref,
                        LoadCsvTable(staging.get(), "ref", ref_path));
    FuzzyMatchConfig config;
    config.eti.q = static_cast<int>(args.GetInt("q", 4));
    config.eti.signature_size = static_cast<int>(args.GetInt("h", 3));
    config.eti.index_tokens = args.Has("tokens");
    config.build_threads =
        static_cast<int>(args.GetInt("build-threads", 1));
    config.temp_dir = args.Get("temp-dir", "");
    FM_RETURN_IF_ERROR(ApplyBoundPolicy(args, &config));
    shard::ShardRouter::Options options;
    options.num_shards = shards;
    options.db_path_base = db_path;
    FM_ASSIGN_OR_RETURN(const auto router,
                        shard::ShardRouter::Build(ref, config, options));
    FM_RETURN_IF_ERROR(router->Checkpoint());
    std::printf("built %zu shard databases (ETI %s) over %llu tuples:\n",
                shards, config.eti.StrategyName().c_str(),
                static_cast<unsigned long long>(
                    router->total_reference_tuples()));
    for (size_t k = 0; k < shards; ++k) {
      std::printf("  %s: %llu tuples, %llu ETI rows\n",
                  shard::ShardDbPath(db_path, k).c_str(),
                  static_cast<unsigned long long>(
                      router->shard(k).reference().row_count()),
                  static_cast<unsigned long long>(
                      router->shard(k).build_stats().eti_rows));
    }
    return Status::OK();
  }
  FM_ASSIGN_OR_RETURN(auto db, Database::Open(DatabaseOptions{
                                   .path = db_path, .pool_pages = 64 * 1024}));
  FM_ASSIGN_OR_RETURN(Table * ref,
                      LoadCsvTable(db.get(), "ref", ref_path));

  EtiBuilder::Options options;
  options.params.q = static_cast<int>(args.GetInt("q", 4));
  options.params.signature_size = static_cast<int>(args.GetInt("h", 3));
  options.params.index_tokens = args.Has("tokens");
  options.build_threads =
      static_cast<int>(args.GetInt("build-threads", 1));
  options.temp_dir = args.Get("temp-dir", "");
  options.sort_memory_bytes =
      static_cast<size_t>(args.GetInt("sort-budget-kb", 64 * 1024)) << 10;
  FM_ASSIGN_OR_RETURN(const BuiltEti built,
                      EtiBuilder::Build(db.get(), ref, options));
  FM_RETURN_IF_ERROR(db->Checkpoint());

  const EtiBuildStats& stats = built.stats;
  std::printf(
      "built ETI %s over %llu tuples with %u thread(s): %llu rows, "
      "%llu stop q-grams, %llu spilled runs (spill dir %s)\n"
      "  scan %.2fs  sort %.2fs  merge %.2fs  total %.2fs -> %s\n",
      options.params.StrategyName().c_str(),
      static_cast<unsigned long long>(stats.reference_tuples),
      stats.build_threads,
      static_cast<unsigned long long>(stats.eti_rows),
      static_cast<unsigned long long>(stats.stop_qgrams),
      static_cast<unsigned long long>(stats.spilled_runs),
      stats.temp_dir.c_str(), stats.scan_seconds, stats.sort_seconds,
      stats.merge_seconds, stats.total_seconds, db_path.c_str());
  return Status::OK();
}

Status CmdMatch(const Args& args) {
  const std::string ref_path = args.Get("ref", "");
  const std::string input_path = args.Get("input", "");
  const std::string out_path = args.Get("out", "");
  if (ref_path.empty() || input_path.empty() || out_path.empty()) {
    return Status::InvalidArgument(
        "match requires --ref, --input and --out");
  }

  FM_ASSIGN_OR_RETURN(auto db, Database::Open(DatabaseOptions{
                                   .path = "", .pool_pages = 64 * 1024}));
  FM_ASSIGN_OR_RETURN(Table * ref,
                      LoadCsvTable(db.get(), "ref", ref_path));
  std::printf("loaded %llu reference tuples from %s\n",
              static_cast<unsigned long long>(ref->row_count()),
              ref_path.c_str());

  FuzzyMatchConfig config;
  config.eti.q = static_cast<int>(args.GetInt("q", 4));
  config.eti.signature_size = static_cast<int>(args.GetInt("h", 3));
  config.eti.index_tokens = args.Has("tokens");
  config.matcher.k = static_cast<size_t>(args.GetInt("k", 1));
  config.matcher.min_similarity = args.GetDouble("threshold", 0.0);
  config.build_threads =
      static_cast<int>(args.GetInt("build-threads", 1));
  config.temp_dir = args.Get("temp-dir", "");
  config.accel_memory_bytes =
      static_cast<size_t>(args.GetInt(
          "accel-budget-mb",
          static_cast<int64_t>(config.accel_memory_bytes >> 20)))
      << 20;
  config.matcher.tuple_cache_bytes =
      static_cast<size_t>(args.GetInt(
          "tuple-cache-mb",
          static_cast<int64_t>(config.matcher.tuple_cache_bytes >> 20)))
      << 20;
  FM_RETURN_IF_ERROR(ApplyBoundPolicy(args, &config));
  FM_RETURN_IF_ERROR(ApplyLookupPath(args, &config));

  // Either one engine over the whole relation, or a scatter/gather tier
  // of per-shard engines behind the same MatchSource interface; the
  // output CSV format is identical either way.
  const size_t shards =
      static_cast<size_t>(std::max<int64_t>(1, args.GetInt("shards", 1)));
  std::unique_ptr<FuzzyMatcher> matcher;
  std::unique_ptr<shard::ShardRouter> router;
  std::unique_ptr<shard::ShardedMatcher> sharded;
  const MatchSource* source = nullptr;
  if (shards > 1) {
    shard::ShardRouter::Options router_options;
    router_options.num_shards = shards;
    FM_ASSIGN_OR_RETURN(router,
                        shard::ShardRouter::Build(ref, config, router_options));
    shard::ShardedMatcher::Options sharded_options;
    sharded_options.replicas_per_shard = static_cast<size_t>(
        std::max<int64_t>(1, args.GetInt("replicas-per-shard", 1)));
    FM_ASSIGN_OR_RETURN(sharded, shard::ShardedMatcher::Create(
                                     router.get(), sharded_options));
    source = sharded.get();
    double build_seconds = 0.0;
    for (size_t k = 0; k < shards; ++k) {
      build_seconds += router->shard(k).build_stats().total_seconds;
    }
    std::printf("built %zu shard ETIs (%s) in %.2fs, %zu replica(s) each\n",
                shards, config.eti.StrategyName().c_str(), build_seconds,
                sharded->replicas_per_shard());
  } else {
    FM_ASSIGN_OR_RETURN(matcher,
                        FuzzyMatcher::Build(db.get(), "ref", config));
    source = matcher.get();
    std::printf("built ETI %s in %.2fs (%llu rows)\n",
                config.eti.StrategyName().c_str(),
                matcher->build_stats().total_seconds,
                static_cast<unsigned long long>(
                    matcher->build_stats().eti_rows));
  }

  // Read the input feed (tolerating an extra trailing audit column).
  std::ifstream in(input_path);
  if (!in) {
    return Status::IOError("cannot open " + input_path);
  }
  CsvReader reader(&in);
  std::vector<std::string> fields;
  FM_ASSIGN_OR_RETURN(const bool has_header, reader.Next(&fields));
  if (!has_header) {
    return Status::InvalidArgument(input_path + " is empty");
  }
  const size_t arity = ref->schema().num_columns();
  std::vector<Row> inputs;
  std::vector<std::vector<std::string>> raw_inputs;
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, reader.Next(&fields));
    if (!more) break;
    if (fields.size() < arity) {
      return Status::InvalidArgument(
          StringPrintf("%s row %llu has %zu fields, need at least %zu",
                       input_path.c_str(),
                       static_cast<unsigned long long>(reader.records_read()),
                       fields.size(), arity));
    }
    raw_inputs.push_back(fields);
    fields.resize(arity);
    inputs.push_back(FieldsToRow(fields));
  }

  std::ofstream out(out_path);
  if (!out) {
    return Status::IOError("cannot write " + out_path);
  }
  CsvWriter writer(&out);
  std::vector<std::string> header = ref->schema().column_names();
  header.push_back("outcome");
  header.push_back("similarity");
  for (const auto& col : ref->schema().column_names()) {
    header.push_back("matched_" + col);
  }
  writer.Write(header);

  BatchCleaner::Options clean_options;
  clean_options.load_threshold = args.GetDouble("load-threshold", 0.8);
  const BatchCleaner cleaner(source, clean_options);
  const size_t threads =
      static_cast<size_t>(std::max<int64_t>(1, args.GetInt("threads", 1)));
  FM_ASSIGN_OR_RETURN(
      const CleanStats stats,
      cleaner.CleanBatchParallel(
          inputs, threads,
          [&](size_t i, const CleanResult& result) -> Status {
            std::vector<std::string> record(raw_inputs[i].begin(),
                                            raw_inputs[i].begin() +
                                                static_cast<long>(arity));
            switch (result.outcome) {
              case CleanOutcome::kValidated:
                record.push_back("validated");
                break;
              case CleanOutcome::kCorrected:
                record.push_back("corrected");
                break;
              case CleanOutcome::kRouted:
                record.push_back("routed");
                break;
            }
            record.push_back(
                result.best_match
                    ? StringPrintf("%.4f", result.best_match->similarity)
                    : "");
            if (result.outcome != CleanOutcome::kRouted) {
              for (const auto& f : RowToFields(result.output)) {
                record.push_back(f);
              }
            } else {
              for (size_t c = 0; c < arity; ++c) {
                record.emplace_back();
              }
            }
            writer.Write(record);
            return Status::OK();
          }));

  std::printf(
      "processed %llu inputs in %.2fs: %llu validated, %llu corrected, "
      "%llu routed -> %s\n",
      static_cast<unsigned long long>(stats.processed),
      stats.elapsed_seconds,
      static_cast<unsigned long long>(stats.validated),
      static_cast<unsigned long long>(stats.corrected),
      static_cast<unsigned long long>(stats.routed), out_path.c_str());

  if (args.Has("metrics")) {
    const std::string text = obs::MetricsRegistry::Global().RenderText();
    const std::string metrics_path = args.Get("metrics", "");
    if (metrics_path.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream metrics_out(metrics_path);
      if (!metrics_out) {
        return Status::IOError("cannot write " + metrics_path);
      }
      metrics_out << text;
      std::printf("metrics written to %s\n", metrics_path.c_str());
    }
  }
  return Status::OK();
}

/// Prints one span and, recursively, its children indented beneath it.
/// Span order within a trace is open order, so children always appear
/// after their parent; a simple scan per level keeps this O(n^2) in the
/// (bounded, <=192) span count.
void PrintSpanSubtree(const std::vector<server::JsonValue>& spans,
                      int64_t parent, int depth) {
  for (size_t i = 0; i < spans.size(); ++i) {
    const server::JsonValue* p = spans[i].Find("parent");
    if (!p || static_cast<int64_t>(p->number_value()) != parent) continue;
    const server::JsonValue* name = spans[i].Find("name");
    const server::JsonValue* dur = spans[i].Find("duration_us");
    std::printf("    %*s%s  %.3fms\n", depth * 2, "",
                name && name->is_string() ? name->string_value().c_str() : "?",
                dur ? dur->number_value() / 1e3 : 0.0);
    PrintSpanSubtree(spans, static_cast<int64_t>(i), depth + 1);
  }
}

Status CmdTrace(const Args& args) {
  if (!args.Has("port")) {
    return Status::InvalidArgument("trace requires --port");
  }
  server::LineClient client;
  FM_RETURN_IF_ERROR(client.Connect(
      args.Get("host", "127.0.0.1"),
      static_cast<uint16_t>(args.GetInt("port", 0))));
  const int64_t limit = std::max<int64_t>(1, args.GetInt("limit", 16));
  FM_ASSIGN_OR_RETURN(
      const std::string raw,
      client.Roundtrip(StringPrintf("tracez %lld",
                                    static_cast<long long>(limit))));
  if (args.Has("json")) {
    std::printf("%s\n", raw.c_str());
    return Status::OK();
  }
  FM_ASSIGN_OR_RETURN(const server::JsonValue doc, server::ParseJson(raw));
  const server::JsonValue* ok = doc.Find("ok");
  if (!ok || !ok->is_bool() || !ok->bool_value()) {
    const server::JsonValue* error = doc.Find("error");
    return Status::Internal(
        "server rejected tracez: " +
        (error && error->is_string() ? error->string_value() : raw));
  }
  const server::JsonValue* recorder = doc.Find("recorder");
  if (!recorder || !recorder->is_object()) {
    return Status::Internal("tracez response missing recorder object");
  }
  if (const server::JsonValue* stats = recorder->Find("stats")) {
    const auto stat = [&](const char* key) -> unsigned long long {
      const server::JsonValue* v = stats->Find(key);
      return v ? static_cast<unsigned long long>(v->number_value()) : 0;
    };
    const server::JsonValue* threshold =
        recorder->Find("slow_threshold_seconds");
    std::printf(
        "recorder: %llu recorded, %llu slow, %llu errors, %llu retained "
        "(slow threshold %.0fms)\n",
        stat("recorded"), stat("slow"), stat("errors"), stat("retained"),
        threshold ? threshold->number_value() * 1e3 : 0.0);
  }
  const server::JsonValue* traces = recorder->Find("traces");
  if (!traces || !traces->is_array() || traces->array_items().empty()) {
    std::printf("no traces retained (is tracing enabled on the server?)\n");
    return Status::OK();
  }
  for (const server::JsonValue& trace : traces->array_items()) {
    const auto num = [&](const char* key) -> double {
      const server::JsonValue* v = trace.Find(key);
      return v ? v->number_value() : 0.0;
    };
    const server::JsonValue* op = trace.Find("op");
    const server::JsonValue* error = trace.Find("error");
    const server::JsonValue* status = trace.Find("status");
    std::printf("\n#%llu %s  %.3fms%s\n",
                static_cast<unsigned long long>(num("request_id")),
                op && op->is_string() ? op->string_value().c_str() : "?",
                num("duration_ms"),
                error && error->is_bool() && error->bool_value() ? "  ERROR"
                                                                 : "");
    if (status && status->is_string()) {
      std::printf("    status: %s\n", status->string_value().c_str());
    }
    if (const server::JsonValue* counts = trace.Find("counts")) {
      if (counts->is_object() && !counts->object_items().empty()) {
        std::string line = "    counts:";
        for (const auto& [key, value] : counts->object_items()) {
          line += StringPrintf(
              " %s=%llu", key.c_str(),
              static_cast<unsigned long long>(value.number_value()));
        }
        std::printf("%s\n", line.c_str());
      }
    }
    const server::JsonValue* spans = trace.Find("spans");
    if (spans && spans->is_array()) {
      PrintSpanSubtree(spans->array_items(), -1, 0);
    }
    if (const server::JsonValue* dropped = trace.Find("dropped_spans")) {
      std::printf("    (%llu spans dropped by the width/depth bound)\n",
                  static_cast<unsigned long long>(dropped->number_value()));
    }
  }
  return Status::OK();
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fuzzymatch_cli <gen|corrupt|build|match|trace> [flags]\n"
      "  gen     --out ref.csv [--rows N] [--seed S]\n"
      "  corrupt --ref ref.csv --out dirty.csv [--inputs N]\n"
      "          [--profile D1|D2|D3] [--seed S] [--seeds]\n"
      "  build   --ref ref.csv --db store.fmdb\n"
      "          [--q N] [--h N] [--tokens] [--build-threads N]\n"
      "          [--temp-dir DIR] [--sort-budget-kb KB] [--shards N]\n"
      "  match   --ref ref.csv --input dirty.csv --out out.csv\n"
      "          [--q N] [--h N] [--tokens] [--k N] [--threshold C]\n"
      "          [--load-threshold C] [--threads N] [--build-threads N]\n"
      "          [--temp-dir DIR] [--metrics [FILE]]\n"
      "          [--accel-budget-mb MB] [--tuple-cache-mb MB]\n"
      "          [--shards N] [--replicas-per-shard R]\n"
      "          [--bound-policy aggressive|tight|conservative]\n"
      "          [--lookup-path scalar|simd|learned]\n"
      "          [--verbose]\n"
      "  trace   --port P [--host A] [--limit N] [--json]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (args.Has("verbose")) {
    SetLogLevel(LogLevel::kDebug);
  }
  Status status;
  if (command == "gen") {
    status = CmdGen(args);
  } else if (command == "corrupt") {
    status = CmdCorrupt(args);
  } else if (command == "build") {
    status = CmdBuild(args);
  } else if (command == "match") {
    status = CmdMatch(args);
  } else if (command == "trace") {
    status = CmdTrace(args);
  } else {
    PrintUsage();
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

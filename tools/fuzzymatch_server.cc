// fuzzymatch_server: the online serving daemon.
//
//   fuzzymatch_server --ref ref.csv [--port P] [--host A]
//                     [--workers N] [--queue N] [--max-conns N]
//                     [--idle-timeout-ms N]
//                     [--q N] [--h N] [--tokens] [--k N] [--threshold C]
//                     [--load-threshold C]
//                     [--accel-budget-mb MB] [--tuple-cache-mb MB]
//                     [--lookup-path scalar|simd|learned]
//                     [--db PATH] [--wal-fsync always|group|never]
//                     [--verbose]
//
// Loads the reference CSV, builds the Error Tolerant Index once, then
// serves match/clean requests over the line protocol (see
// src/server/protocol.h) from a fixed worker pool. A full request queue
// sheds with {"ok":false,"error":"overloaded","shed":true}. SIGTERM and
// SIGINT trigger a graceful drain: in-flight requests complete and their
// responses flush — and, with a file-backed store, the WAL is
// group-committed and fsynced — before the process exits.
//
// --db makes the store file-backed and durable: maintenance commits
// through a write-ahead log at <PATH>.wal (replayed on the next open),
// --wal-fsync picks the log's durability/latency trade-off, and a
// restart with the same --db reattaches to the persisted ETI instead of
// rebuilding it. The default remains an in-memory store.
//
// Try it with netcat:
//
//   $ fuzzymatch_server --ref ref.csv --port 7878 &
//   $ printf 'ping\n{"op":"match","row":["joe","smith",...],"id":1}\n' |
//       nc 127.0.0.1 7878

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include <unistd.h>

#include "common/csv.h"
#include "common/result.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/fuzzy_match.h"
#include "fault/failpoint.h"
#include "obs/log.h"
#include "obs/process_metrics.h"
#include "obs/trace.h"
#include "server/server.h"
#include "shard/shard_router.h"
#include "shard/sharded_matcher.h"
#include "storage/wal.h"

using namespace fuzzymatch;

namespace {

/// Tiny --flag[=value] parser: flags with values must use --flag value.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        continue;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  /// Strict numeric flags: a present-but-malformed value is a startup
  /// error with a one-line diagnostic, never a silent zero.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    errno = 0;
    char* end = nullptr;
    const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (it->second.empty() || end == nullptr || *end != '\0' || errno != 0) {
      return Status::InvalidArgument(
          StringPrintf("--%s: '%s' is not an integer", key.c_str(),
                       it->second.c_str()));
    }
    return v;
  }

  Result<double> GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || end == nullptr || *end != '\0' || errno != 0) {
      return Status::InvalidArgument(
          StringPrintf("--%s: '%s' is not a number", key.c_str(),
                       it->second.c_str()));
    }
    return v;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// GetInt plus a range check, for flags where out-of-range values would
/// otherwise be silently truncated by a narrowing cast.
Result<int64_t> GetIntInRange(const Args& args, const std::string& key,
                              int64_t fallback, int64_t lo, int64_t hi) {
  FM_ASSIGN_OR_RETURN(const int64_t v, args.GetInt(key, fallback));
  if (v < lo || v > hi) {
    return Status::InvalidArgument(
        StringPrintf("--%s: %lld out of range [%lld, %lld]", key.c_str(),
                     static_cast<long long>(v), static_cast<long long>(lo),
                     static_cast<long long>(hi)));
  }
  return v;
}

Row FieldsToRow(const std::vector<std::string>& fields) {
  Row row;
  row.reserve(fields.size());
  for (const auto& f : fields) {
    if (f.empty()) {
      row.emplace_back(std::nullopt);
    } else {
      row.emplace_back(f);
    }
  }
  return row;
}

Result<Table*> LoadCsvTable(Database* db, const std::string& name,
                            const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  CsvReader reader(&in);
  std::vector<std::string> fields;
  FM_ASSIGN_OR_RETURN(const bool has_header, reader.Next(&fields));
  if (!has_header) {
    return Status::InvalidArgument(path + " is empty");
  }
  FM_ASSIGN_OR_RETURN(Table * table, db->CreateTable(name, Schema(fields)));
  const size_t arity = fields.size();
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, reader.Next(&fields));
    if (!more) break;
    if (fields.size() != arity) {
      return Status::InvalidArgument(
          StringPrintf("%s row %llu has %zu fields, header has %zu",
                       path.c_str(),
                       static_cast<unsigned long long>(reader.records_read()),
                       fields.size(), arity));
    }
    FM_RETURN_IF_ERROR(table->Insert(FieldsToRow(fields)).status());
  }
  return table;
}

// Self-pipe: the signal handler's only job is to wake main (a write(2) to
// a pipe is async-signal-safe; so is the server's RequestStop, but the
// graceful Shutdown must run on a normal thread).
int g_stop_pipe[2] = {-1, -1};
server::MatchServer* g_server = nullptr;

void HandleStopSignal(int) {
  if (g_server != nullptr) {
    g_server->RequestStop();
  }
  const char byte = 1;
  // The return value is irrelevant: if the pipe is full, main is already
  // waking up.
  [[maybe_unused]] const ssize_t n = ::write(g_stop_pipe[1], &byte, 1);
}

Status Run(const Args& args) {
  const std::string ref_path = args.Get("ref", "");
  if (ref_path.empty()) {
    return Status::InvalidArgument("fuzzymatch_server requires --ref");
  }

  // Parse and validate every flag before touching the data so a typo'd
  // invocation fails in milliseconds with a one-line diagnostic.
  FuzzyMatchConfig config;
  FM_ASSIGN_OR_RETURN(const int64_t q, GetIntInRange(args, "q", 4, 1, 64));
  FM_ASSIGN_OR_RETURN(const int64_t h, GetIntInRange(args, "h", 3, 1, 256));
  FM_ASSIGN_OR_RETURN(const int64_t k, GetIntInRange(args, "k", 1, 1, 1024));
  config.eti.q = static_cast<int>(q);
  config.eti.signature_size = static_cast<int>(h);
  config.eti.index_tokens = args.Has("tokens");
  config.matcher.k = static_cast<size_t>(k);
  FM_ASSIGN_OR_RETURN(config.matcher.min_similarity,
                      args.GetDouble("threshold", 0.0));
  FM_ASSIGN_OR_RETURN(
      const int64_t accel_mb,
      GetIntInRange(args, "accel-budget-mb",
                    static_cast<int64_t>(config.accel_memory_bytes >> 20), 0,
                    1 << 20));
  config.accel_memory_bytes = static_cast<size_t>(accel_mb) << 20;
  FM_ASSIGN_OR_RETURN(
      const int64_t cache_mb,
      GetIntInRange(args, "tuple-cache-mb",
                    static_cast<int64_t>(config.matcher.tuple_cache_bytes >>
                                         20),
                    0, 1 << 20));
  config.matcher.tuple_cache_bytes = static_cast<size_t>(cache_mb) << 20;
  FM_ASSIGN_OR_RETURN(
      const int64_t build_threads,
      GetIntInRange(args, "build-threads", 1, 0, 256));
  config.build_threads = static_cast<int>(build_threads);
  FM_ASSIGN_OR_RETURN(
      config.lookup_path,
      ParseLookupPath(
          args.Get("lookup-path", LookupPathName(config.lookup_path))));

  BatchCleaner::Options clean_options;
  FM_ASSIGN_OR_RETURN(clean_options.load_threshold,
                      args.GetDouble("load-threshold", 0.8));

  server::ServerOptions options;
  options.host = args.Get("host", "127.0.0.1");
  FM_ASSIGN_OR_RETURN(const int64_t port,
                      GetIntInRange(args, "port", 7878, 0, 65535));
  options.port = static_cast<uint16_t>(port);
  FM_ASSIGN_OR_RETURN(const int64_t workers,
                      GetIntInRange(args, "workers", 4, 1, 4096));
  options.workers = static_cast<size_t>(workers);
  FM_ASSIGN_OR_RETURN(const int64_t queue,
                      GetIntInRange(args, "queue", 64, 1, 1 << 20));
  options.queue_capacity = static_cast<size_t>(queue);
  FM_ASSIGN_OR_RETURN(const int64_t max_conns,
                      GetIntInRange(args, "max-conns", 256, 1, 1 << 20));
  options.max_connections = static_cast<size_t>(max_conns);
  FM_ASSIGN_OR_RETURN(
      const int64_t idle_ms,
      GetIntInRange(args, "idle-timeout-ms", 30000, 0, 86400000));
  options.idle_timeout_ms = static_cast<int>(idle_ms);
  FM_ASSIGN_OR_RETURN(const int64_t slow_ms,
                      GetIntInRange(args, "slow-trace-ms", 100, 1, 3600000));
  options.slow_trace_ms = static_cast<int>(slow_ms);
  FM_ASSIGN_OR_RETURN(
      const int64_t recorder_cap,
      GetIntInRange(args, "recorder-capacity", 64, 1, 1 << 16));
  options.recorder_capacity = static_cast<size_t>(recorder_cap);
  if (args.Has("no-trace")) {
    obs::SetTracingEnabled(false);
  }

  // Out-of-band fault arming for harnesses driving this process (e.g.
  // tools/ci.sh obscheck injects a sleep to exercise slow-query capture).
  FM_RETURN_IF_ERROR(fault::ArmFromEnv());

  FM_ASSIGN_OR_RETURN(
      const int64_t shards, GetIntInRange(args, "shards", 1, 1, 1024));
  FM_ASSIGN_OR_RETURN(
      const int64_t replicas,
      GetIntInRange(args, "replicas-per-shard", 1, 1, 64));

  DatabaseOptions db_options;
  db_options.path = args.Get("db", "");
  db_options.pool_pages = 64 * 1024;
  FM_ASSIGN_OR_RETURN(db_options.wal_fsync,
                      ParseWalFsyncMode(args.Get("wal-fsync", "group")));
  FM_ASSIGN_OR_RETURN(auto db, Database::Open(db_options));

  // A file-backed store that already holds the reference relation (a
  // restart with the same --db) is reattached; otherwise the CSV loads.
  Table* ref = nullptr;
  bool reattached = false;
  if (!db_options.path.empty()) {
    const Result<Table*> existing = db->GetTable("ref");
    if (existing.ok()) {
      ref = *existing;
      reattached = true;
    } else if (!existing.status().IsNotFound()) {
      return existing.status();
    }
  }
  if (ref == nullptr) {
    FM_ASSIGN_OR_RETURN(ref, LoadCsvTable(db.get(), "ref", ref_path));
  }
  FM_SLOG(Info, "server.reference_loaded")
      .Field("tuples", ref->row_count())
      .Field("path", reattached ? db_options.path : ref_path)
      .Field("reattached", reattached);

  // Single-database engine, or a scatter/gather tier of per-shard
  // engines hosted in-process — the protocol surface is identical and
  // statusz grows a per-shard section.
  std::unique_ptr<FuzzyMatcher> matcher;
  std::unique_ptr<shard::ShardRouter> router;
  std::unique_ptr<shard::ShardedMatcher> sharded;
  if (shards > 1) {
    shard::ShardRouter::Options router_options;
    router_options.num_shards = static_cast<size_t>(shards);
    FM_ASSIGN_OR_RETURN(router,
                        shard::ShardRouter::Build(ref, config, router_options));
    shard::ShardedMatcher::Options sharded_options;
    sharded_options.replicas_per_shard = static_cast<size_t>(replicas);
    FM_ASSIGN_OR_RETURN(sharded, shard::ShardedMatcher::Create(
                                     router.get(), sharded_options));
    for (size_t k = 0; k < router->num_shards(); ++k) {
      FM_SLOG(Info, "server.shard_built")
          .Field("shard", static_cast<uint64_t>(k))
          .Field("tuples", router->shard(k).reference().row_count())
          .Field("seconds", router->shard(k).build_stats().total_seconds);
    }
  } else {
    // On a reattach the persisted ETI already exists; Open() attaches to
    // it instead of paying the build again.
    Result<std::unique_ptr<FuzzyMatcher>> built =
        FuzzyMatcher::Build(db.get(), "ref", config);
    if (!built.ok() && built.status().IsAlreadyExists()) {
      built = FuzzyMatcher::Open(db.get(), "ref", config.eti.StrategyName(),
                                 config);
    }
    FM_ASSIGN_OR_RETURN(matcher, std::move(built));
    FM_SLOG(Info, "server.eti_built")
        .Field("strategy", config.eti.StrategyName())
        .Field("seconds", matcher->build_stats().total_seconds)
        .Field("rows", matcher->build_stats().eti_rows);
    if (const EtiAccel* accel = matcher->eti().accelerator()) {
      FM_SLOG(Info, "server.accel_attached")
          .Field("entries", static_cast<uint64_t>(accel->entry_count()))
          .Field("bytes", static_cast<uint64_t>(accel->memory_bytes()))
          .Field("complete", accel->complete());
    }
  }

  // Graceful drain must not lose acknowledged maintenance: after the
  // last response flushes, group-commit and fsync the WAL.
  options.drain_flush = [db = db.get()] { return db->FlushWal(); };
  if (matcher != nullptr) {
    options.rebuild_handler = [m = matcher.get()] { return m->RebuildEti(); };
  }

  std::unique_ptr<server::MatchServer> srv;
  if (sharded != nullptr) {
    srv = std::make_unique<server::MatchServer>(sharded.get(),
                                                clean_options, options);
  } else {
    srv = std::make_unique<server::MatchServer>(matcher.get(),
                                                clean_options, options);
  }

  if (::pipe(g_stop_pipe) != 0) {
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  g_server = srv.get();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  FM_RETURN_IF_ERROR(srv->Start());
  const obs::BuildInfo& build = obs::GetBuildInfo();
  FM_SLOG(Info, "server.start")
      .Field("host", options.host)
      .Field("port", static_cast<uint64_t>(srv->port()))
      .Field("workers", static_cast<uint64_t>(options.workers))
      .Field("queue", static_cast<uint64_t>(options.queue_capacity))
      .Field("slow_trace_ms", options.slow_trace_ms)
      .Field("tracing", obs::TracingEnabled())
      .Field("version", build.version)
      .Field("build_type", build.build_type);
  // Keep one human-facing line so `fuzzymatch_server &` in a shell still
  // shows where to connect.
  std::printf("serving on %s:%u (%zu workers, queue %zu); "
              "SIGTERM drains gracefully\n",
              options.host.c_str(), srv->port(), options.workers,
              options.queue_capacity);
  std::fflush(stdout);

  // Block until a stop signal arrives.
  char byte;
  while (::read(g_stop_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  FM_SLOG(Info, "server.drain");
  srv->Shutdown();
  g_server = nullptr;
  FM_SLOG(Info, "server.stop")
      .Field("responses", srv->responses_sent())
      .Field("shed", srv->shed_requests());
  return Status::OK();
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fuzzymatch_server --ref ref.csv [--port P] [--host A]\n"
      "         [--workers N] [--queue N] [--max-conns N]\n"
      "         [--idle-timeout-ms N] [--q N] [--h N] [--tokens] [--k N]\n"
      "         [--threshold C] [--load-threshold C] [--build-threads N]\n"
      "         [--accel-budget-mb MB] [--tuple-cache-mb MB]\n"
      "         [--lookup-path scalar|simd|learned]\n"
      "         [--db PATH] [--wal-fsync always|group|never]\n"
      "         [--slow-trace-ms N] [--recorder-capacity N] [--no-trace]\n"
      "         [--verbose]\n"
      "env: FM_FAILPOINTS=\"name=sleep:MS,name=error\" arms failpoints\n"
      "     at startup (builds with -DFM_FAILPOINTS=ON only)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.Has("help") || argc < 2) {
    PrintUsage();
    return 2;
  }
  if (args.Has("verbose")) {
    SetLogLevel(LogLevel::kDebug);
  }
  const Status status = Run(args);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

#!/usr/bin/env bash
# CI entry point: the checks a change must pass before merging.
#
#   tools/ci.sh            # full run: Release tier-1 + TSan + ASan slices
#   tools/ci.sh release    # just the Release build + full ctest
#   tools/ci.sh tsan       # just the ThreadSanitizer concurrency slice
#   tools/ci.sh asan       # just the AddressSanitizer slice
#
# Build trees live under build-ci-* so they never collide with a
# developer's ./build. JOBS defaults to the machine's core count.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

# The concurrency-sensitive test slice: everything that exercises the
# shared-read latching model (DESIGN.md 5c) plus the server itself.
SANITIZER_TESTS='ConcurrentMatchTest|BufferPoolConcurrencyTest|ServerTest|MetricsRegistryTest|BTreeStressTest|HeapFileStressTest|FileBackedPipelineTest|BatchCleanerTest'

run_release() {
  echo "=== [ci] Release build + full test suite ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-ci-release -j "$JOBS"
  ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"
}

run_sanitizer() {  # $1 = thread|address  $2 = build dir
  echo "=== [ci] ${1}-sanitizer build + concurrency slice ==="
  cmake -B "$2" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFM_SANITIZE="$1" > /dev/null
  # Only the test targets the slice needs: sanitizer builds are slow.
  cmake --build "$2" -j "$JOBS" --target \
        concurrent_match_test buffer_pool_concurrency_test server_test \
        metrics_registry_test storage_stress_test batch_cleaner_test
  ctest --test-dir "$2" --output-on-failure -j "$JOBS" \
        -R "$SANITIZER_TESTS"
}

case "$STAGE" in
  release) run_release ;;
  tsan)    run_sanitizer thread build-ci-tsan ;;
  asan)    run_sanitizer address build-ci-asan ;;
  all)
    run_release
    run_sanitizer thread build-ci-tsan
    run_sanitizer address build-ci-asan
    ;;
  *)
    echo "usage: tools/ci.sh [release|tsan|asan|all]" >&2
    exit 2
    ;;
esac

echo "=== [ci] OK (${STAGE}) ==="

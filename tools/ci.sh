#!/usr/bin/env bash
# CI entry point: the checks a change must pass before merging.
#
#   tools/ci.sh            # full run: Release tier-1 + TSan + ASan slices
#                          # + fault-injection suites + accelerator perf smoke
#   tools/ci.sh release    # just the Release build + full ctest
#   tools/ci.sh tsan       # just the ThreadSanitizer concurrency slice
#   tools/ci.sh asan       # just the AddressSanitizer slice
#   tools/ci.sh faultcheck # failpoints compiled in + ASan: crash
#                          # consistency, differential, error propagation
#   tools/ci.sh perfsmoke  # ETI-accelerator on/off output parity + metrics
#   tools/ci.sh obscheck   # observability end-to-end: statusz/tracez JSON
#                          # shapes, slow-query capture via an injected
#                          # sleep, and the tracing-overhead budget
#   tools/ci.sh buildcheck # parallel ETI build determinism: 1-thread vs
#                          # 4-thread builds must be byte-identical
#   tools/ci.sh shardcheck # sharded serving tier: 4-shard match output vs
#                          # single-engine under the conservative bound
#                          # policy, sharded test suite under TSan, and a
#                          # bench_serving shard-scaling metrics archive
#   tools/ci.sh lookupcheck # lookup-path ablation (DESIGN.md 5i): match
#                          # output byte-identical across
#                          # scalar|simd|learned, single-engine and
#                          # 4-shard; a -DFM_SIMD=OFF build passing
#                          # tier-1; bench_lookup_path metrics archived
#   tools/ci.sh walcheck   # durability (DESIGN.md 5j): kill-loop at every
#                          # WAL/pager failpoint vs the acknowledged-op
#                          # oracle, log-format + group-commit unit suite,
#                          # online-rebuild swap under load, and a
#                          # bench_wal wal.* metrics archive
#
# Build trees live under build-ci-* so they never collide with a
# developer's ./build. JOBS defaults to the machine's core count.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

# The concurrency-sensitive test slice: everything that exercises the
# shared-read latching model (DESIGN.md 5c) plus the server itself, plus
# the fault suites (sanitizer builds compile failpoints in, and injected
# errors are where cleanup paths race). Randomized fault suites honor
# FM_TEST_SEED, pinned below so sanitizer runs are reproducible.
SANITIZER_TESTS='ConcurrentMatchTest|BufferPoolConcurrencyTest|ServerTest|IntrospectionTest|TraceConcurrencyTest|MetricsRegistryTest|BTreeStressTest|HeapFileStressTest|FileBackedPipelineTest|BatchCleanerTest|EtiAccelConcurrencyTest|TupleCacheTest|FailpointTest|DifferentialMaintenanceTest|ErrorPropagationTest|BufferPoolPressureTest|ExternalSortTest|EtiBuilderParallelTest|SimdVarintTest|TornPostingsTest|LearnedOffsetsTest'

# The full fault-injection surface: the crash-consistency sweep over every
# canonical failpoint plus the randomized differential harness.
FAULT_TESTS='FailpointTest|CrashConsistencyTest|DifferentialMaintenanceTest|ErrorPropagationTest|BufferPoolPressureTest|EtiInvariantsTest|ServerStartupTest|BuildFaultTest|TornPostingsTest|TornPostingsFaultTest'

run_release() {
  echo "=== [ci] Release build + full test suite ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-ci-release -j "$JOBS"
  ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"
}

run_sanitizer() {  # $1 = thread|address  $2 = build dir
  echo "=== [ci] ${1}-sanitizer build + concurrency slice ==="
  cmake -B "$2" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFM_SANITIZE="$1" > /dev/null
  # Only the test targets the slice needs: sanitizer builds are slow.
  cmake --build "$2" -j "$JOBS" --target \
        concurrent_match_test buffer_pool_concurrency_test server_test \
        introspection_test trace_concurrency_test \
        metrics_registry_test storage_stress_test batch_cleaner_test \
        eti_accel_concurrency_test tuple_cache_test failpoint_test \
        differential_maintenance_test error_propagation_test \
        buffer_pool_pressure_test external_sort_test \
        eti_builder_parallel_test simd_varint_test torn_postings_test \
        learned_offsets_test
  FM_TEST_SEED="${FM_TEST_SEED:-101}" \
    ctest --test-dir "$2" --output-on-failure -j "$JOBS" \
        -R "$SANITIZER_TESTS"
}

# Failpoints compiled in + AddressSanitizer: the crash-consistency sweep
# (kill the stack at every canonical failpoint, reopen, audit), the
# randomized differential harness (all default seeds), error propagation,
# and the server startup-failure contract.
run_faultcheck() {
  echo "=== [ci] fault injection: failpoints + ASan ==="
  cmake -B build-ci-fault -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFM_FAILPOINTS=ON -DFM_SANITIZE=address > /dev/null
  cmake --build build-ci-fault -j "$JOBS" --target \
        failpoint_test crash_consistency_test \
        differential_maintenance_test error_propagation_test \
        buffer_pool_pressure_test eti_invariants_test server_startup_test \
        build_fault_test torn_postings_test
  ctest --test-dir build-ci-fault --output-on-failure -j "$JOBS" \
        -R "$FAULT_TESTS"
}

# The accelerator must never change answers, only latency: run the same
# match workload with the read accelerator + tuple cache on and off, and
# require byte-identical output CSVs. Both bench_query_time runs archive
# their metrics JSON under bench_results/ for before/after comparison.
run_perfsmoke() {
  echo "=== [ci] perf smoke: accelerator on/off parity + metrics ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-ci-release -j "$JOBS" --target \
        fuzzymatch_cli bench_query_time
  local cli=build-ci-release/tools/fuzzymatch_cli
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  "$cli" gen --out "$tmp/ref.csv" --rows 2000 --seed 42
  "$cli" corrupt --ref "$tmp/ref.csv" --out "$tmp/dirty.csv" --inputs 200
  "$cli" match --ref "$tmp/ref.csv" --input "$tmp/dirty.csv" \
        --out "$tmp/out.accel.csv" --tokens \
        --accel-budget-mb 64 --tuple-cache-mb 32
  "$cli" match --ref "$tmp/ref.csv" --input "$tmp/dirty.csv" \
        --out "$tmp/out.plain.csv" --tokens \
        --accel-budget-mb 0 --tuple-cache-mb 0
  cmp "$tmp/out.accel.csv" "$tmp/out.plain.csv"
  echo "[ci] match output byte-identical with accelerator on and off"

  mkdir -p bench_results
  FM_REF_SIZE=2000 FM_NUM_INPUTS=200 FM_METRICS_DIR=bench_results \
    FM_ACCEL_BUDGET_MB=0 FM_TUPLE_CACHE_MB=0 \
    build-ci-release/bench/bench_query_time
  mv bench_results/bench_query_time.metrics.json \
     bench_results/bench_query_time.noaccel.metrics.json
  FM_REF_SIZE=2000 FM_NUM_INPUTS=200 FM_METRICS_DIR=bench_results \
    FM_ACCEL_BUDGET_MB=64 FM_TUPLE_CACHE_MB=32 \
    build-ci-release/bench/bench_query_time
  mv bench_results/bench_query_time.metrics.json \
     bench_results/bench_query_time.accel.metrics.json
  echo "[ci] metrics archived: bench_results/bench_query_time.{noaccel,accel}.metrics.json"
}

# Observability end to end against the real binaries: boot the server
# with a 60ms sleep injected into the match path, drive mixed traffic,
# and require that the introspection surfaces report it — statusz and
# tracez must be valid JSON with their documented keys, the flight
# recorder must have captured the injected slow queries with complete
# span trees, and the Prometheus scrape must carry the process gauges.
# Then gate the cost of all of it: bench_query_time's A/B mode fails the
# stage when the span-tree + recorder overhead exceeds the budget, and a
# small bench_serving run archives its flight-recorder snapshot under
# bench_results/ for post-hoc inspection.
run_obscheck() {
  echo "=== [ci] obscheck: tracing, flight recorder, introspection ==="
  cmake -B build-ci-obs -S . -DCMAKE_BUILD_TYPE=Release \
        -DFM_FAILPOINTS=ON > /dev/null
  cmake --build build-ci-obs -j "$JOBS" --target \
        fuzzymatch_server fuzzymatch_cli fuzzymatch_loadgen \
        bench_query_time bench_serving
  local cli=build-ci-obs/tools/fuzzymatch_cli
  local tmp server_pid=""
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064  # expand $tmp now; $server_pid at fire time
  trap "[ -n \"\$server_pid\" ] && kill \"\$server_pid\" 2>/dev/null; \
        rm -rf '$tmp'" RETURN
  "$cli" gen --out "$tmp/ref.csv" --rows 2000 --seed 42
  "$cli" corrupt --ref "$tmp/ref.csv" --out "$tmp/dirty.csv" --inputs 100
  local port="${FM_OBSCHECK_PORT:-18771}"
  FM_FAILPOINTS='match.query_delay=sleep:60' \
    build-ci-obs/tools/fuzzymatch_server --ref "$tmp/ref.csv" \
      --port "$port" --workers 2 --slow-trace-ms 50 \
      > "$tmp/server.log" 2>&1 &
  server_pid=$!
  local up=0
  for _ in $(seq 1 150); do
    if grep -q "serving on" "$tmp/server.log"; then up=1; break; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then break; fi
    sleep 0.2
  done
  if [ "$up" != 1 ]; then
    echo "[ci] server failed to start:" >&2
    cat "$tmp/server.log" >&2
    exit 1
  fi

  build-ci-obs/tools/fuzzymatch_loadgen --port "$port" --clients 2 \
      --requests 10 --input "$tmp/dirty.csv" --op mixed \
      --metrics-out "$tmp/loadgen.json"

  # Scrape all three introspection surfaces. statusz/tracez are one JSON
  # line each; the Prometheus body ends at the "# EOF" marker.
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'statusz\n' >&3 && IFS= read -r line <&3 && \
      printf '%s\n' "$line" > "$tmp/statusz.json"
  exec 3<&- 3>&-
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'metrics\n' >&3
  : > "$tmp/metrics.prom"
  while IFS= read -r line <&3; do
    [ "$line" = "# EOF" ] && break
    printf '%s\n' "$line" >> "$tmp/metrics.prom"
  done
  exec 3<&- 3>&-
  "$cli" trace --port "$port" --json > "$tmp/tracez.json"
  "$cli" trace --port "$port" --limit 4 > "$tmp/tracez.txt"
  grep -q "server.handle_query" "$tmp/tracez.txt"

  kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
  server_pid=""

  python3 - "$tmp" <<'PYEOF'
import json, sys
tmp = sys.argv[1]

status = json.load(open(tmp + "/statusz.json"))
assert status["ok"] is True and status["op"] == "statusz", status
for key in ("uptime_seconds", "build", "tracing_enabled", "workers",
            "queue", "connections", "counters", "recorder", "process"):
    assert key in status, f"statusz missing {key}"
assert status["process"]["rss_bytes"] > 0
assert status["counters"]["responses"] >= 20
assert status["recorder"]["slow"] >= 1, status["recorder"]

tracez = json.load(open(tmp + "/tracez.json"))
assert tracez["ok"] is True, tracez
rec = tracez["recorder"]
assert rec["stats"]["recorded"] >= 20 and rec["stats"]["slow"] >= 1
traces = rec["traces"]
assert traces, "flight recorder retained no traces"
# Outliers sort first: the injected 60ms sleep must show up here.
first = traces[0]
assert first["duration_ms"] >= 50, first
spans = first["spans"]
assert spans and spans[0]["parent"] == -1
assert any(s["name"] == "match.find_matches" for s in spans), spans

load = json.load(open(tmp + "/loadgen.json"))
assert load["errors"] == 0 and load["shed"] == 0, load
for op in ("match", "clean"):
    assert load["ops"][op]["count"] == 10, load["ops"]
    assert load["ops"][op]["latency_ms"]["p50"] > 0

prom = open(tmp + "/metrics.prom").read()
for metric in ("fm_process_rss_bytes", "fm_process_open_fds",
               "fm_server_requests", "fm_span_match_find_matches_seconds"):
    assert metric in prom, f"prometheus scrape missing {metric}"
print("[ci] statusz/tracez/metrics/loadgen JSON shapes OK")
PYEOF

  # Tracing must stay cheap: A/B the traced vs untraced query path and
  # fail the stage when the median overhead blows the budget. Small-scale
  # CI runs are noisy, so the gate is looser than the ~1% measured at
  # paper scale (DESIGN.md 5g).
  mkdir -p bench_results
  FM_REF_SIZE=5000 FM_NUM_INPUTS=400 FM_METRICS_DIR=bench_results \
    FM_TRACE_OVERHEAD=1 FM_TRACE_BUDGET_PCT="${FM_TRACE_BUDGET_PCT:-10}" \
    build-ci-obs/bench/bench_query_time

  # Archive a live flight-recorder snapshot from the serving bench.
  FM_REF_SIZE=2000 FM_NUM_INPUTS=150 FM_MAX_WORKERS=2 \
    FM_METRICS_DIR=bench_results \
    build-ci-obs/bench/bench_serving
  test -s bench_results/bench_serving.tracez.json
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      bench_results/bench_serving.tracez.json
  echo "[ci] flight recorder snapshot archived: bench_results/bench_serving.tracez.json"
}

# The parallel ETI build must be a pure optimization: building the same
# reference relation with 1 and 4 threads (spilling in both) has to leave
# byte-identical database files — ETI relation, clustered index, catalog
# and all. cmp(1) over the whole page file enforces it exactly.
run_buildcheck() {
  echo "=== [ci] buildcheck: parallel ETI build determinism ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-ci-release -j "$JOBS" --target fuzzymatch_cli
  local cli=build-ci-release/tools/fuzzymatch_cli
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  "$cli" gen --out "$tmp/ref.csv" --rows 4000 --seed 42
  "$cli" build --ref "$tmp/ref.csv" --db "$tmp/serial.fmdb" --tokens \
        --build-threads 1 --sort-budget-kb 256
  "$cli" build --ref "$tmp/ref.csv" --db "$tmp/parallel.fmdb" --tokens \
        --build-threads 4 --sort-budget-kb 256
  cmp "$tmp/serial.fmdb" "$tmp/parallel.fmdb"
  echo "[ci] ETI build byte-identical with 1 and 4 threads"
  local leftovers
  leftovers="$(find "$tmp" \( -name 'fm_sort_run_*' -o -name 'fm_spill_probe_*' \))"
  if [ -n "$leftovers" ]; then
    echo "[ci] spill files leaked: $leftovers" >&2
    exit 1
  fi
}

# The sharded tier is a pure topology change: scatter/gather over N
# per-shard ETI engines must answer exactly what one engine over the
# whole relation answers. Under the conservative bound policy that
# equivalence is byte-exact (DESIGN.md 5h), so cmp(1) enforces it over
# a real CLI round trip; the lossy policies only promise never-worse
# and are covered by the unit suite. The same suite then runs under
# ThreadSanitizer — the coordinator's worker pool plus per-shard engines
# is the newest concurrent surface — and bench_serving archives the
# shard-scaling rows + shard.* metrics for post-hoc comparison.
run_shardcheck() {
  echo "=== [ci] shardcheck: scatter/gather equivalence + TSan + metrics ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-ci-release -j "$JOBS" --target \
        fuzzymatch_cli bench_serving
  local cli=build-ci-release/tools/fuzzymatch_cli
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  "$cli" gen --out "$tmp/ref.csv" --rows 2000 --seed 42
  "$cli" corrupt --ref "$tmp/ref.csv" --out "$tmp/dirty.csv" --inputs 200

  # A 4-shard build must persist one database file per shard.
  "$cli" build --ref "$tmp/ref.csv" --db "$tmp/store.fmdb" --tokens \
        --shards 4
  for k in 0 1 2 3; do
    test -s "$tmp/store.fmdb.shard$k"
  done
  echo "[ci] 4-shard build persisted store.fmdb.shard{0..3}"

  "$cli" match --ref "$tmp/ref.csv" --input "$tmp/dirty.csv" \
        --out "$tmp/out.single.csv" --tokens --bound-policy conservative
  "$cli" match --ref "$tmp/ref.csv" --input "$tmp/dirty.csv" \
        --out "$tmp/out.sharded.csv" --tokens --bound-policy conservative \
        --shards 4 --replicas-per-shard 2
  cmp "$tmp/out.single.csv" "$tmp/out.sharded.csv"
  echo "[ci] match output byte-identical with 1 engine and 4 shards"

  cmake -B build-ci-shard-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFM_SANITIZE=thread > /dev/null
  cmake --build build-ci-shard-tsan -j "$JOBS" --target \
        topk_merge_test shard_router_test sharded_equivalence_test
  FM_TEST_SEED="${FM_TEST_SEED:-101}" \
    ctest --test-dir build-ci-shard-tsan --output-on-failure -j "$JOBS" \
        -R 'TopKMergeTest|ShardOfTidTest|ShardRouterTest|ShardedEquivalenceTest'

  # Archive the shard-scaling sweep (QPS at 1/2/4/8 shards plus the
  # shard.* gauge family) next to the other bench artifacts.
  mkdir -p bench_results
  FM_REF_SIZE=2000 FM_NUM_INPUTS=150 FM_MAX_WORKERS=2 \
    FM_METRICS_DIR=bench_results \
    build-ci-release/bench/bench_serving
  mv bench_results/bench_serving.metrics.json \
     bench_results/bench_serving.sharded.metrics.json
  python3 - bench_results/bench_serving.sharded.metrics.json <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
names = set(metrics["counters"]) | set(metrics["gauges"]) \
        | set(metrics["histograms"])
for want in ("bench_serving.sharded_qps_s1", "bench_serving.sharded_qps_s4",
             "shard.fanout_tasks", "shard.queries_s0", "shard.merge_seconds"):
    assert want in names, f"sharded metrics archive missing {want}"
print("[ci] sharded metrics archived: "
      "bench_results/bench_serving.sharded.metrics.json")
PYEOF
}

# The durability contract (DESIGN.md 5j), enforced end to end: the
# kill-loop arms every WAL and pager failpoint in turn, runs the durable
# maintenance workload until the simulated power loss fires, reopens, and
# audits the recovered state against the acknowledged-op oracle — zero
# acknowledged-op loss, recovered state exactly the committed prefix
# (torn-write runs additionally allow the ambiguous-commit outcome, but
# only atomically). The same build carries the WAL format/group-commit
# unit suite and the online-rebuild swap-under-load suite, all under
# AddressSanitizer so recovery and rollback paths are leak/UB-checked.
# A Release bench_wal run then archives the wal.* counter family plus
# fsync-mode throughput and replay-speed gauges under bench_results/.
run_walcheck() {
  echo "=== [ci] walcheck: WAL kill-loop + recovery oracle + metrics ==="
  cmake -B build-ci-fault -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFM_FAILPOINTS=ON -DFM_SANITIZE=address > /dev/null
  cmake --build build-ci-fault -j "$JOBS" --target \
        wal_test wal_recovery_test eti_rebuild_test
  ctest --test-dir build-ci-fault --output-on-failure -j "$JOBS" \
        -R 'WalTest|WalRecoveryTest|EtiRebuildTest'
  echo "[ci] acked ops survived every WAL/pager failpoint kill"

  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-ci-release -j "$JOBS" --target bench_wal
  mkdir -p bench_results
  FM_REF_SIZE=2000 FM_MAINT_OPS=200 FM_METRICS_DIR=bench_results \
    build-ci-release/bench/bench_wal
  python3 - bench_results/bench_wal.metrics.json <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
names = set(metrics["counters"]) | set(metrics["gauges"]) \
        | set(metrics["histograms"])
for want in ("wal.commits", "wal.fsyncs", "wal.bytes_written",
             "wal.replay_pages", "wal.truncates",
             "bench_wal.maint_ops_per_s_always",
             "bench_wal.maint_ops_per_s_group",
             "bench_wal.maint_ops_per_s_never",
             "bench_wal.replay_seconds"):
    assert want in names, f"wal metrics archive missing {want}"
print("[ci] wal metrics archived: bench_results/bench_wal.metrics.json")
PYEOF
}

# The lookup path (DESIGN.md 5i) is a pure speed knob: scalar, simd and
# learned must produce byte-identical match output, single-engine and
# through the 4-shard scatter/gather tier (conservative bound policy, the
# configuration where sharded output is byte-exact). A -DFM_SIMD=OFF
# build then proves the scalar fallback carries tier-1 on its own (the
# non-x86 configuration), and bench_lookup_path archives the ablation
# metrics — the probe-loop p50/p95 per variant — under bench_results/.
run_lookupcheck() {
  echo "=== [ci] lookupcheck: scalar|simd|learned parity + FM_SIMD=OFF ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build build-ci-release -j "$JOBS" --target \
        fuzzymatch_cli bench_lookup_path
  local cli=build-ci-release/tools/fuzzymatch_cli
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  "$cli" gen --out "$tmp/ref.csv" --rows 2000 --seed 42
  "$cli" corrupt --ref "$tmp/ref.csv" --out "$tmp/dirty.csv" --inputs 200

  for path in scalar simd learned; do
    "$cli" match --ref "$tmp/ref.csv" --input "$tmp/dirty.csv" \
          --out "$tmp/out.$path.csv" --tokens --lookup-path "$path"
    "$cli" match --ref "$tmp/ref.csv" --input "$tmp/dirty.csv" \
          --out "$tmp/out.$path.s4.csv" --tokens --lookup-path "$path" \
          --bound-policy conservative --shards 4
  done
  cmp "$tmp/out.scalar.csv" "$tmp/out.simd.csv"
  cmp "$tmp/out.scalar.csv" "$tmp/out.learned.csv"
  cmp "$tmp/out.scalar.s4.csv" "$tmp/out.simd.s4.csv"
  cmp "$tmp/out.scalar.s4.csv" "$tmp/out.learned.s4.csv"
  echo "[ci] match output byte-identical across lookup paths (1 and 4 shards)"

  cmake -B build-ci-nosimd -S . -DCMAKE_BUILD_TYPE=Release \
        -DFM_SIMD=OFF > /dev/null
  cmake --build build-ci-nosimd -j "$JOBS"
  ctest --test-dir build-ci-nosimd --output-on-failure -j "$JOBS"
  echo "[ci] -DFM_SIMD=OFF build passed tier-1"

  mkdir -p bench_results
  FM_REF_SIZE=2000 FM_NUM_INPUTS=150 FM_METRICS_DIR=bench_results \
    build-ci-release/bench/bench_lookup_path
  python3 - bench_results/bench_lookup_path.metrics.json <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
names = set(metrics["counters"]) | set(metrics["gauges"]) \
        | set(metrics["histograms"])
for want in ("lookup_path.scalar.probe_p50_ns",
             "lookup_path.simd.probe_p50_ns",
             "lookup_path.learned.probe_p50_ns",
             "lookup_path.simd_vs_scalar_heavy_p50_reduction_pct",
             "lookup.probes_batched", "lookup.model_hits"):
    assert want in names, f"lookup metrics archive missing {want}"
print("[ci] lookup-path metrics archived: "
      "bench_results/bench_lookup_path.metrics.json")
PYEOF
}

case "$STAGE" in
  release)    run_release ;;
  tsan)       run_sanitizer thread build-ci-tsan ;;
  asan)       run_sanitizer address build-ci-asan ;;
  faultcheck) run_faultcheck ;;
  perfsmoke)  run_perfsmoke ;;
  obscheck)   run_obscheck ;;
  buildcheck) run_buildcheck ;;
  shardcheck) run_shardcheck ;;
  lookupcheck) run_lookupcheck ;;
  walcheck)   run_walcheck ;;
  all)
    run_release
    run_sanitizer thread build-ci-tsan
    run_sanitizer address build-ci-asan
    run_faultcheck
    run_perfsmoke
    run_obscheck
    run_buildcheck
    run_shardcheck
    run_lookupcheck
    run_walcheck
    ;;
  *)
    echo "usage: tools/ci.sh [release|tsan|asan|faultcheck|perfsmoke|obscheck|buildcheck|shardcheck|lookupcheck|walcheck|all]" >&2
    exit 2
    ;;
esac

echo "=== [ci] OK (${STAGE}) ==="

// fuzzymatch_loadgen: closed-loop load generator for fuzzymatch_server.
//
//   fuzzymatch_loadgen --port P [--host A] [--clients N] [--requests N]
//                      [--input dirty.csv] [--op match|clean|mixed]
//                      [--metrics-out FILE] [--watch [SECONDS]]
//
// Each client opens its own connection and issues `--requests` requests
// back to back (one outstanding at a time, matching the protocol).
// Request rows come from --input (a CSV with header, cycled as needed);
// without --input every request is a ping, which measures pure
// server/protocol overhead. `--op mixed` alternates match and clean per
// input row. Prints throughput and latency quantiles overall and per op
// type, and counts shed ("overloaded") and error responses separately.
// --metrics-out writes the run's summary as one JSON object (overall +
// per-op breakdown), in the same shape the bench harnesses archive under
// bench_results/. --watch polls the server's statusz and tracez
// endpoints on a side connection during the run and prints one live line
// per interval (busy workers, queue depth, shed/error counts, flight-
// recorder slow/error outliers, RSS, and — against a sharded server —
// the per-shard scatter-queue depths).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"
#include "server/client.h"
#include "server/json.h"

using namespace fuzzymatch;

namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        continue;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Request op types tracked separately in the report.
enum OpKind : uint8_t { kMatch = 0, kClean = 1, kPing = 2 };
constexpr const char* kOpNames[] = {"match", "clean", "ping"};
constexpr size_t kOpKinds = 3;

struct RequestSet {
  std::vector<std::string> lines;
  std::vector<OpKind> kinds;  // parallel to lines
};

/// Builds the request lines up front so the measured loop is pure I/O.
/// `op` is "match", "clean", or "mixed" (alternating per input row).
Result<RequestSet> BuildRequests(const std::string& input_path,
                                 const std::string& op) {
  RequestSet requests;
  if (input_path.empty()) {
    requests.lines.push_back("ping");
    requests.kinds.push_back(kPing);
    return requests;
  }
  if (op != "match" && op != "clean" && op != "mixed") {
    return Status::InvalidArgument("--op must be match, clean, or mixed");
  }
  std::ifstream in(input_path);
  if (!in) {
    return Status::IOError("cannot open " + input_path);
  }
  CsvReader reader(&in);
  std::vector<std::string> fields;
  FM_ASSIGN_OR_RETURN(const bool has_header, reader.Next(&fields));
  if (!has_header) {
    return Status::InvalidArgument(input_path + " is empty");
  }
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, reader.Next(&fields));
    if (!more) break;
    const OpKind kind =
        op == "mixed" ? (requests.lines.size() % 2 == 0 ? kMatch : kClean)
                      : (op == "clean" ? kClean : kMatch);
    std::string line = "{\"op\":";
    server::AppendJsonString(kOpNames[kind], &line);
    line += ",\"row\":[";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) line.push_back(',');
      if (fields[i].empty()) {
        line += "null";
      } else {
        server::AppendJsonString(fields[i], &line);
      }
    }
    line += "]}";
    requests.lines.push_back(std::move(line));
    requests.kinds.push_back(kind);
  }
  if (requests.lines.empty()) {
    return Status::InvalidArgument(input_path + " has no data rows");
  }
  return requests;
}

/// Per-op tallies; index by OpKind.
struct OpTally {
  std::vector<double> latencies_s;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;

  void Merge(const OpTally& other) {
    ok += other.ok;
    shed += other.shed;
    errors += other.errors;
    latencies_s.insert(latencies_s.end(), other.latencies_s.begin(),
                       other.latencies_s.end());
  }
};

struct ClientResult {
  OpTally per_op[kOpKinds];
  std::string fatal;  // non-empty = connection-level failure
};

void RunClient(const std::string& host, uint16_t port,
               const RequestSet& requests, size_t offset, size_t count,
               ClientResult* out) {
  server::LineClient client;
  if (const Status s = client.Connect(host, port); !s.ok()) {
    out->fatal = s.ToString();
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    const size_t slot = (offset + i) % requests.lines.size();
    const std::string& request = requests.lines[slot];
    OpTally& tally = out->per_op[requests.kinds[slot]];
    const auto start = std::chrono::steady_clock::now();
    auto response = client.Roundtrip(request);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!response.ok()) {
      out->fatal = response.status().ToString();
      return;
    }
    tally.latencies_s.push_back(elapsed);
    if (response->find("\"shed\":true") != std::string::npos) {
      ++tally.shed;
    } else if (response->rfind("{\"ok\":true", 0) == 0) {
      ++tally.ok;
    } else {
      ++tally.errors;
    }
  }
}

double Quantile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  const size_t idx = std::min(
      sorted->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted->size())));
  return (*sorted)[idx];
}

/// One latency summary as a JSON fragment (`sorted` must be sorted).
std::string LatencyJson(std::vector<double>* sorted) {
  return StringPrintf(
      "{\"p50\": %.6f, \"p95\": %.6f, \"p99\": %.6f, \"max\": %.6f}",
      Quantile(sorted, 0.50) * 1e3, Quantile(sorted, 0.95) * 1e3,
      Quantile(sorted, 0.99) * 1e3,
      sorted->empty() ? 0.0 : sorted->back() * 1e3);
}

/// --watch: polls statusz on a side connection and prints one compact
/// live line per interval until `stop` flips.
void WatchLoop(const std::string& host, uint16_t port, double interval_s,
               const std::atomic<bool>* stop) {
  server::LineClient client;
  if (const Status s = client.Connect(host, port); !s.ok()) {
    std::fprintf(stderr, "watch: %s\n", s.ToString().c_str());
    return;
  }
  while (!stop->load(std::memory_order_acquire)) {
    auto response = client.Roundtrip("statusz");
    if (!response.ok()) {
      std::fprintf(stderr, "watch: %s\n",
                   response.status().ToString().c_str());
      return;
    }
    auto doc = server::ParseJson(*response);
    if (!doc.ok() || !doc->is_object()) {
      std::fprintf(stderr, "watch: unparseable statusz\n");
      return;
    }
    size_t busy = 0, workers = 0;
    if (const server::JsonValue* w = doc->Find("workers");
        w != nullptr && w->is_array()) {
      workers = w->array_items().size();
      for (const server::JsonValue& one : w->array_items()) {
        const server::JsonValue* b = one.Find("busy");
        if (b != nullptr && b->bool_value()) ++busy;
      }
    }
    auto number_at = [&doc](const char* section, const char* key) {
      const server::JsonValue* s = doc->Find(section);
      if (s == nullptr) return 0.0;
      const server::JsonValue* v = s->Find(key);
      return v == nullptr ? 0.0 : v->number_value();
    };
    // Flight-recorder outliers come from tracez, not statusz: the
    // recorder's slow/error tallies are the authoritative count of
    // requests that crossed the slow threshold or failed.
    double trace_slow = 0.0;
    double trace_errors = 0.0;
    if (auto outliers = client.Roundtrip("tracez 1"); outliers.ok()) {
      if (auto odoc = server::ParseJson(*outliers);
          odoc.ok() && odoc->is_object()) {
        if (const server::JsonValue* recorder = odoc->Find("recorder")) {
          if (const server::JsonValue* stats = recorder->Find("stats")) {
            if (const server::JsonValue* v = stats->Find("slow")) {
              trace_slow = v->number_value();
            }
            if (const server::JsonValue* v = stats->Find("errors")) {
              trace_errors = v->number_value();
            }
          }
        }
      }
    }
    // Sharded servers expose one statusz entry per shard; the live line
    // shows each shard's scatter-queue depth.
    std::string shard_queues;
    if (const server::JsonValue* shards = doc->Find("shards");
        shards != nullptr && shards->is_array()) {
      for (const server::JsonValue& one : shards->array_items()) {
        if (!shard_queues.empty()) shard_queues.push_back(',');
        const server::JsonValue* depth = one.Find("queue_depth");
        shard_queues += StringPrintf(
            "%.0f", depth != nullptr ? depth->number_value() : 0.0);
      }
    }
    std::printf(
        "[watch] up=%.0fs busy=%zu/%zu queue=%.0f/%.0f shed=%.0f "
        "errors=%.0f outliers=%.0f slow/%.0f err rss=%.0fMB%s%s%s\n",
        doc->Find("uptime_seconds") != nullptr
            ? doc->Find("uptime_seconds")->number_value()
            : 0.0,
        busy, workers, number_at("queue", "depth"),
        number_at("queue", "capacity"), number_at("counters", "shed"),
        number_at("counters", "query_errors"), trace_slow, trace_errors,
        number_at("process", "rss_bytes") / (1 << 20),
        shard_queues.empty() ? "" : " shardq=[",
        shard_queues.c_str(), shard_queues.empty() ? "" : "]");
    std::fflush(stdout);
    // Sleep in small steps so shutdown is prompt.
    for (double slept = 0.0;
         slept < interval_s && !stop->load(std::memory_order_acquire);
         slept += 0.05) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.Has("help") || !args.Has("port")) {
    std::fprintf(
        stderr,
        "usage: fuzzymatch_loadgen --port P [--host A] [--clients N]\n"
        "         [--requests N] [--input dirty.csv]\n"
        "         [--op match|clean|mixed] [--metrics-out FILE]\n"
        "         [--watch [SECONDS]]\n");
    return 2;
  }
  const std::string host = args.Get("host", "127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(args.GetInt("port", 0));
  const size_t clients =
      static_cast<size_t>(std::max<int64_t>(1, args.GetInt("clients", 4)));
  const size_t requests_per_client =
      static_cast<size_t>(std::max<int64_t>(1, args.GetInt("requests", 100)));
  const std::string op = args.Get("op", "match");

  auto requests = BuildRequests(args.Get("input", ""), op);
  if (!requests.ok()) {
    std::fprintf(stderr, "error: %s\n", requests.status().ToString().c_str());
    return 1;
  }

  std::atomic<bool> stop_watch{false};
  std::thread watcher;
  if (args.Has("watch")) {
    const double interval =
        std::max<int64_t>(1, args.GetInt("watch", 1));
    watcher = std::thread(WatchLoop, host, port, interval, &stop_watch);
  }

  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back(RunClient, host, port, std::cref(*requests),
                         c * requests_per_client, requests_per_client,
                         &results[c]);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (watcher.joinable()) {
    stop_watch.store(true, std::memory_order_release);
    watcher.join();
  }

  OpTally totals[kOpKinds];
  for (const ClientResult& r : results) {
    if (!r.fatal.empty()) {
      std::fprintf(stderr, "client error: %s\n", r.fatal.c_str());
    }
    for (size_t k = 0; k < kOpKinds; ++k) {
      totals[k].Merge(r.per_op[k]);
    }
  }
  uint64_t ok = 0, shed = 0, errors = 0;
  std::vector<double> latencies;
  for (const OpTally& t : totals) {
    ok += t.ok;
    shed += t.shed;
    errors += t.errors;
    latencies.insert(latencies.end(), t.latencies_s.begin(),
                     t.latencies_s.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double throughput =
      wall > 0 ? static_cast<double>(latencies.size()) / wall : 0.0;
  std::printf(
      "%zu clients x %zu requests in %.3fs\n"
      "  throughput: %.1f req/s\n"
      "  ok: %llu  shed: %llu  errors: %llu\n"
      "  latency p50: %.3fms  p95: %.3fms  p99: %.3fms  max: %.3fms\n",
      clients, requests_per_client, wall, throughput,
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(errors),
      Quantile(&latencies, 0.50) * 1e3, Quantile(&latencies, 0.95) * 1e3,
      Quantile(&latencies, 0.99) * 1e3,
      latencies.empty() ? 0.0 : latencies.back() * 1e3);
  for (size_t k = 0; k < kOpKinds; ++k) {
    OpTally& t = totals[k];
    if (t.latencies_s.empty()) continue;
    std::sort(t.latencies_s.begin(), t.latencies_s.end());
    std::printf(
        "  %s: %zu req  ok: %llu  shed: %llu  errors: %llu  "
        "p50: %.3fms  p95: %.3fms  p99: %.3fms\n",
        kOpNames[k], t.latencies_s.size(),
        static_cast<unsigned long long>(t.ok),
        static_cast<unsigned long long>(t.shed),
        static_cast<unsigned long long>(t.errors),
        Quantile(&t.latencies_s, 0.50) * 1e3,
        Quantile(&t.latencies_s, 0.95) * 1e3,
        Quantile(&t.latencies_s, 0.99) * 1e3);
  }

  const std::string metrics_path = args.Get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::string ops_json;
    for (size_t k = 0; k < kOpKinds; ++k) {
      OpTally& t = totals[k];
      if (t.latencies_s.empty()) continue;  // already sorted above
      if (!ops_json.empty()) ops_json += ", ";
      ops_json += StringPrintf(
          "\"%s\": {\"count\": %zu, \"ok\": %llu, \"shed\": %llu, "
          "\"errors\": %llu, \"latency_ms\": %s}",
          kOpNames[k], t.latencies_s.size(),
          static_cast<unsigned long long>(t.ok),
          static_cast<unsigned long long>(t.shed),
          static_cast<unsigned long long>(t.errors),
          LatencyJson(&t.latencies_s).c_str());
    }
    out << StringPrintf(
        "{\"clients\": %zu, \"requests_per_client\": %zu, "
        "\"wall_seconds\": %.6f, \"throughput_rps\": %.3f, "
        "\"ok\": %llu, \"shed\": %llu, \"errors\": %llu, "
        "\"latency_ms\": %s, \"ops\": {%s}}\n",
        clients, requests_per_client, wall, throughput,
        static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(errors),
        LatencyJson(&latencies).c_str(), ops_json.c_str());
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return latencies.empty() ? 1 : 0;
}

// fuzzymatch_loadgen: closed-loop load generator for fuzzymatch_server.
//
//   fuzzymatch_loadgen --port P [--host A] [--clients N] [--requests N]
//                      [--input dirty.csv] [--op match|clean]
//                      [--metrics-out FILE]
//
// Each client opens its own connection and issues `--requests` requests
// back to back (one outstanding at a time, matching the protocol).
// Request rows come from --input (a CSV with header, cycled as needed);
// without --input every request is a ping, which measures pure
// server/protocol overhead. Prints throughput and latency quantiles, and
// counts shed ("overloaded") responses separately. --metrics-out writes
// the run's throughput/latency summary as one JSON object, in the same
// shape the bench harnesses archive under bench_results/.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"
#include "server/client.h"
#include "server/json.h"

using namespace fuzzymatch;

namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        continue;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Builds the request lines up front so the measured loop is pure I/O.
Result<std::vector<std::string>> BuildRequests(const std::string& input_path,
                                               const std::string& op) {
  std::vector<std::string> requests;
  if (input_path.empty()) {
    requests.push_back("ping");
    return requests;
  }
  std::ifstream in(input_path);
  if (!in) {
    return Status::IOError("cannot open " + input_path);
  }
  CsvReader reader(&in);
  std::vector<std::string> fields;
  FM_ASSIGN_OR_RETURN(const bool has_header, reader.Next(&fields));
  if (!has_header) {
    return Status::InvalidArgument(input_path + " is empty");
  }
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, reader.Next(&fields));
    if (!more) break;
    std::string line = "{\"op\":";
    server::AppendJsonString(op, &line);
    line += ",\"row\":[";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) line.push_back(',');
      if (fields[i].empty()) {
        line += "null";
      } else {
        server::AppendJsonString(fields[i], &line);
      }
    }
    line += "]}";
    requests.push_back(std::move(line));
  }
  if (requests.empty()) {
    return Status::InvalidArgument(input_path + " has no data rows");
  }
  return requests;
}

struct ClientResult {
  std::vector<double> latencies_s;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  std::string fatal;  // non-empty = connection-level failure
};

void RunClient(const std::string& host, uint16_t port,
               const std::vector<std::string>& requests, size_t offset,
               size_t count, ClientResult* out) {
  server::LineClient client;
  if (const Status s = client.Connect(host, port); !s.ok()) {
    out->fatal = s.ToString();
    return;
  }
  out->latencies_s.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const std::string& request = requests[(offset + i) % requests.size()];
    const auto start = std::chrono::steady_clock::now();
    auto response = client.Roundtrip(request);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!response.ok()) {
      out->fatal = response.status().ToString();
      return;
    }
    out->latencies_s.push_back(elapsed);
    if (response->find("\"shed\":true") != std::string::npos) {
      ++out->shed;
    } else if (response->rfind("{\"ok\":true", 0) == 0) {
      ++out->ok;
    } else {
      ++out->errors;
    }
  }
}

double Quantile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  const size_t idx = std::min(
      sorted->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted->size())));
  return (*sorted)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.Has("help") || !args.Has("port")) {
    std::fprintf(
        stderr,
        "usage: fuzzymatch_loadgen --port P [--host A] [--clients N]\n"
        "         [--requests N] [--input dirty.csv] [--op match|clean]\n"
        "         [--metrics-out FILE]\n");
    return 2;
  }
  const std::string host = args.Get("host", "127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(args.GetInt("port", 0));
  const size_t clients =
      static_cast<size_t>(std::max<int64_t>(1, args.GetInt("clients", 4)));
  const size_t requests_per_client =
      static_cast<size_t>(std::max<int64_t>(1, args.GetInt("requests", 100)));
  const std::string op = args.Get("op", "match");

  auto requests = BuildRequests(args.Get("input", ""), op);
  if (!requests.ok()) {
    std::fprintf(stderr, "error: %s\n", requests.status().ToString().c_str());
    return 1;
  }

  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back(RunClient, host, port, std::cref(*requests),
                         c * requests_per_client, requests_per_client,
                         &results[c]);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  uint64_t ok = 0, shed = 0, errors = 0;
  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    if (!r.fatal.empty()) {
      std::fprintf(stderr, "client error: %s\n", r.fatal.c_str());
    }
    ok += r.ok;
    shed += r.shed;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_s.begin(),
                     r.latencies_s.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double throughput =
      wall > 0 ? static_cast<double>(latencies.size()) / wall : 0.0;
  std::printf(
      "%zu clients x %zu requests in %.3fs\n"
      "  throughput: %.1f req/s\n"
      "  ok: %llu  shed: %llu  errors: %llu\n"
      "  latency p50: %.3fms  p95: %.3fms  p99: %.3fms  max: %.3fms\n",
      clients, requests_per_client, wall, throughput,
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(errors),
      Quantile(&latencies, 0.50) * 1e3, Quantile(&latencies, 0.95) * 1e3,
      Quantile(&latencies, 0.99) * 1e3,
      latencies.empty() ? 0.0 : latencies.back() * 1e3);

  const std::string metrics_path = args.Get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    out << StringPrintf(
        "{\"clients\": %zu, \"requests_per_client\": %zu, "
        "\"wall_seconds\": %.6f, \"throughput_rps\": %.3f, "
        "\"ok\": %llu, \"shed\": %llu, \"errors\": %llu, "
        "\"latency_ms\": {\"p50\": %.6f, \"p95\": %.6f, \"p99\": %.6f, "
        "\"max\": %.6f}}\n",
        clients, requests_per_client, wall, throughput,
        static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(errors),
        Quantile(&latencies, 0.50) * 1e3, Quantile(&latencies, 0.95) * 1e3,
        Quantile(&latencies, 0.99) * 1e3,
        latencies.empty() ? 0.0 : latencies.back() * 1e3);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return latencies.empty() ? 1 : 0;
}

// The fuzzymatch serving protocol: line-delimited requests over a byte
// stream, one JSON response line per request.
//
// Request forms (one per line, '\n'-terminated):
//
//   {"op":"match","row":["seattle","wa",...],"id":7}
//   {"op":"clean","row":[...]}
//   match <csv row>              convenience CSV form of the JSON above
//   clean <csv row>
//   ping                         liveness check
//   metrics                      (alias: "GET /metrics") registry dump
//   statusz                      live server introspection JSON
//   tracez [N]                   flight-recorder traces (at most N)
//   rebuild                      admin: online ETI rebuild + atomic swap
//   quit                         asks the server to close the connection
//
// `row` fields are strings or null (null = NULL attribute; the empty
// string in the CSV form). `id`, when present, is a client correlation
// number echoed in the response. A row's arity must equal the reference
// relation's column count.
//
// Response lines:
//
//   {"ok":true,"op":"match","id":7,"matches":[
//       {"tid":12,"similarity":0.9731,"row":[...]}]}
//   {"ok":true,"op":"clean","outcome":"corrected","similarity":0.93,
//       "tid":12,"row":[...]}
//   {"ok":true,"op":"ping"}
//   {"ok":false,"error":"..."}               malformed request
//   {"ok":false,"error":"...","code":"io_error"}    typed backend failure
//   {"ok":false,"error":"overloaded","shed":true}   admission control
//
// `statusz` answers one JSON line of live server state (uptime, build
// info, per-worker state, queue depth, shed/error counts, accel and
// tuple-cache health, recorder stats); `tracez` answers one JSON line
// embedding the flight recorder's retained span trees (see
// obs/flight_recorder.h). Both are answered inline by the connection
// thread — like ping/metrics, they must work while the pool is wedged.
//
// `metrics` is the one multi-line response: the Prometheus text
// exposition of the process registry, terminated by a line that is
// exactly "# EOF".

#ifndef FUZZYMATCH_SERVER_PROTOCOL_H_
#define FUZZYMATCH_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/batch_cleaner.h"
#include "match/match_types.h"
#include "storage/schema.h"

namespace fuzzymatch {
namespace server {

/// One parsed request line.
struct Request {
  enum class Op {
    kMatch,
    kClean,
    kPing,
    kMetrics,
    kStatusz,
    kTracez,
    kRebuild,
    kQuit,
  };

  Op op = Op::kPing;
  Row row;                      // kMatch / kClean payload
  std::optional<uint64_t> id;   // client correlation id, echoed back
  std::optional<uint64_t> limit;  // kTracez: max traces returned
};

/// Parses one request line (without the trailing newline).
Result<Request> ParseRequest(std::string_view line);

/// A match result enriched with the reference tuple for the response.
struct MatchWithRow {
  Match match;
  Row row;
};

/// Response renderers; each returns one '\n'-terminated JSON line.
std::string RenderMatchResponse(const std::optional<uint64_t>& id,
                                const std::vector<MatchWithRow>& matches);
std::string RenderCleanResponse(const std::optional<uint64_t>& id,
                                const CleanResult& result);
std::string RenderPingResponse(const std::optional<uint64_t>& id);
std::string RenderErrorResponse(std::string_view error, bool shed = false);

/// Renders a non-OK backend Status with a machine-readable "code" field
/// (the snake_case StatusCode name, e.g. "io_error", "not_found"), so
/// clients can tell an injected/real storage failure from a malformed
/// request and decide whether to retry.
std::string RenderStatusResponse(const Status& status);

/// The stable wire token for a status code ("io_error", "corruption",
/// ...). Exposed for tests.
std::string_view StatusCodeToken(StatusCode code);

/// The terminator line of a metrics response (followed by '\n' on the
/// wire).
inline constexpr std::string_view kMetricsEndMarker = "# EOF";

}  // namespace server
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SERVER_PROTOCOL_H_

#include "server/protocol.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/csv.h"
#include "common/string_util.h"
#include "server/json.h"

namespace fuzzymatch {
namespace server {

namespace {

/// Converts a JSON "row" array (strings / nulls) into a Row.
Result<Row> RowFromJson(const JsonValue& value) {
  if (!value.is_array()) {
    return Status::InvalidArgument("\"row\" must be an array");
  }
  Row row;
  row.reserve(value.array_items().size());
  for (const JsonValue& field : value.array_items()) {
    if (field.is_null()) {
      row.emplace_back(std::nullopt);
    } else if (field.is_string()) {
      // Empty string doubles as NULL, matching the CSV convention.
      if (field.string_value().empty()) {
        row.emplace_back(std::nullopt);
      } else {
        row.emplace_back(field.string_value());
      }
    } else {
      return Status::InvalidArgument(
          "\"row\" fields must be strings or null");
    }
  }
  return row;
}

/// Converts a CSV record into a Row (empty field = NULL).
Result<Row> RowFromCsv(std::string_view text) {
  std::istringstream in{std::string(text)};
  CsvReader reader(&in);
  std::vector<std::string> fields;
  FM_ASSIGN_OR_RETURN(const bool more, reader.Next(&fields));
  if (!more) {
    return Status::InvalidArgument("empty CSV row");
  }
  Row row;
  row.reserve(fields.size());
  for (const std::string& f : fields) {
    if (f.empty()) {
      row.emplace_back(std::nullopt);
    } else {
      row.emplace_back(f);
    }
  }
  return row;
}

Result<Request> ParseJsonRequest(std::string_view line) {
  FM_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("missing string \"op\"");
  }
  Request request;
  const std::string& name = op->string_value();
  if (name == "match") {
    request.op = Request::Op::kMatch;
  } else if (name == "clean") {
    request.op = Request::Op::kClean;
  } else if (name == "ping") {
    request.op = Request::Op::kPing;
  } else if (name == "metrics") {
    request.op = Request::Op::kMetrics;
  } else if (name == "statusz") {
    request.op = Request::Op::kStatusz;
  } else if (name == "tracez") {
    request.op = Request::Op::kTracez;
  } else if (name == "rebuild") {
    request.op = Request::Op::kRebuild;
  } else if (name == "quit") {
    request.op = Request::Op::kQuit;
  } else {
    return Status::InvalidArgument("unknown op \"" + name + "\"");
  }
  if (const JsonValue* id = doc.Find("id"); id != nullptr) {
    if (!id->is_number() || id->number_value() < 0 ||
        id->number_value() != std::floor(id->number_value())) {
      return Status::InvalidArgument("\"id\" must be a non-negative integer");
    }
    request.id = static_cast<uint64_t>(id->number_value());
  }
  if (const JsonValue* limit = doc.Find("limit"); limit != nullptr) {
    if (!limit->is_number() || limit->number_value() < 1 ||
        limit->number_value() != std::floor(limit->number_value())) {
      return Status::InvalidArgument("\"limit\" must be a positive integer");
    }
    request.limit = static_cast<uint64_t>(limit->number_value());
  }
  if (request.op == Request::Op::kMatch ||
      request.op == Request::Op::kClean) {
    const JsonValue* row = doc.Find("row");
    if (row == nullptr) {
      return Status::InvalidArgument("missing \"row\"");
    }
    FM_ASSIGN_OR_RETURN(request.row, RowFromJson(*row));
  }
  return request;
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  // Tolerate a trailing '\r' from netcat/telnet-style clients.
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  if (line.front() == '{') {
    return ParseJsonRequest(line);
  }
  Request request;
  if (line == "ping") {
    request.op = Request::Op::kPing;
    return request;
  }
  if (line == "metrics" || line == "GET /metrics") {
    request.op = Request::Op::kMetrics;
    return request;
  }
  if (line == "statusz") {
    request.op = Request::Op::kStatusz;
    return request;
  }
  if (line == "tracez" || line.rfind("tracez ", 0) == 0) {
    request.op = Request::Op::kTracez;
    if (line.size() > 7) {
      char* end = nullptr;
      const std::string arg(line.substr(7));
      const long n = std::strtol(arg.c_str(), &end, 10);
      if (n <= 0 || end == nullptr || *end != '\0') {
        return Status::InvalidArgument("tracez limit must be a positive "
                                       "integer");
      }
      request.limit = static_cast<uint64_t>(n);
    }
    return request;
  }
  if (line == "rebuild") {
    request.op = Request::Op::kRebuild;
    return request;
  }
  if (line == "quit") {
    request.op = Request::Op::kQuit;
    return request;
  }
  if (line.rfind("match ", 0) == 0) {
    request.op = Request::Op::kMatch;
    FM_ASSIGN_OR_RETURN(request.row, RowFromCsv(line.substr(6)));
    return request;
  }
  if (line.rfind("clean ", 0) == 0) {
    request.op = Request::Op::kClean;
    FM_ASSIGN_OR_RETURN(request.row, RowFromCsv(line.substr(6)));
    return request;
  }
  return Status::InvalidArgument(
      "unrecognized request (want JSON, match/clean <csv>, ping, metrics, "
      "statusz, tracez, rebuild or quit)");
}

namespace {

JsonValue RowToJson(const Row& row) {
  JsonValue arr = JsonValue::Array();
  for (const auto& field : row) {
    if (field.has_value()) {
      arr.Append(JsonValue::String(*field));
    } else {
      arr.Append(JsonValue::Null());
    }
  }
  return arr;
}

void MaybeSetId(const std::optional<uint64_t>& id, JsonValue* obj) {
  if (id.has_value()) {
    obj->Set("id", JsonValue::Number(static_cast<double>(*id)));
  }
}

std::string FinishLine(const JsonValue& obj) { return obj.Dump() + "\n"; }

}  // namespace

std::string RenderMatchResponse(const std::optional<uint64_t>& id,
                                const std::vector<MatchWithRow>& matches) {
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("op", JsonValue::String("match"));
  MaybeSetId(id, &obj);
  JsonValue arr = JsonValue::Array();
  for (const MatchWithRow& m : matches) {
    JsonValue item = JsonValue::Object();
    item.Set("tid", JsonValue::Number(static_cast<double>(m.match.tid)));
    item.Set("similarity", JsonValue::Number(m.match.similarity));
    item.Set("row", RowToJson(m.row));
    arr.Append(std::move(item));
  }
  obj.Set("matches", std::move(arr));
  return FinishLine(obj);
}

std::string RenderCleanResponse(const std::optional<uint64_t>& id,
                                const CleanResult& result) {
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("op", JsonValue::String("clean"));
  MaybeSetId(id, &obj);
  switch (result.outcome) {
    case CleanOutcome::kValidated:
      obj.Set("outcome", JsonValue::String("validated"));
      break;
    case CleanOutcome::kCorrected:
      obj.Set("outcome", JsonValue::String("corrected"));
      break;
    case CleanOutcome::kRouted:
      obj.Set("outcome", JsonValue::String("routed"));
      break;
  }
  if (result.best_match.has_value()) {
    obj.Set("tid",
            JsonValue::Number(static_cast<double>(result.best_match->tid)));
    obj.Set("similarity", JsonValue::Number(result.best_match->similarity));
  }
  obj.Set("row", RowToJson(result.output));
  return FinishLine(obj);
}

std::string RenderPingResponse(const std::optional<uint64_t>& id) {
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("op", JsonValue::String("ping"));
  MaybeSetId(id, &obj);
  return FinishLine(obj);
}

std::string RenderErrorResponse(std::string_view error, bool shed) {
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(false));
  obj.Set("error", JsonValue::String(std::string(error)));
  if (shed) {
    obj.Set("shed", JsonValue::Bool(true));
  }
  return FinishLine(obj);
}

std::string_view StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kNotSupported:
      return "not_supported";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string RenderStatusResponse(const Status& status) {
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(false));
  obj.Set("error", JsonValue::String(status.message()));
  obj.Set("code", JsonValue::String(std::string(StatusCodeToken(
                      status.code()))));
  return FinishLine(obj);
}

}  // namespace server
}  // namespace fuzzymatch

#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/protocol.h"

namespace fuzzymatch {
namespace server {

Status LineClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status s =
        Status::IOError("connect " + host + ": " + std::strerror(errno));
    Close();
    return s;
  }
  return Status::OK();
}

Status LineClient::Send(std::string_view request) {
  if (fd_ < 0) {
    return Status::InvalidArgument("not connected");
  }
  std::string line(request);
  if (line.empty() || line.back() != '\n') {
    line.push_back('\n');
  }
  std::string_view data = line;
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return Status::IOError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) {
    return Status::InvalidArgument("not connected");
  }
  char chunk[4096];
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

Result<std::string> LineClient::Roundtrip(std::string_view request) {
  FM_RETURN_IF_ERROR(Send(request));
  return ReadLine();
}

Result<std::string> LineClient::FetchMetrics() {
  FM_RETURN_IF_ERROR(Send("metrics"));
  std::string body;
  for (;;) {
    FM_ASSIGN_OR_RETURN(std::string line, ReadLine());
    if (line == kMetricsEndMarker) {
      return body;
    }
    body += line;
    body.push_back('\n');
  }
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace server
}  // namespace fuzzymatch

// Minimal JSON: a value type, a recursive-descent parser, and a compact
// serializer. Dependency-free by design (the serving protocol must not
// pull a third-party library into the storage engine's build).
//
// Supported: null, booleans, finite doubles, strings (with \uXXXX escapes
// parsed into UTF-8), arrays, objects (insertion-ordered, duplicate keys
// keep the last value). Not supported: NaN/Inf literals, comments.

#ifndef FUZZYMATCH_SERVER_JSON_H_
#define FUZZYMATCH_SERVER_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace fuzzymatch {
namespace server {

/// One JSON value (a small tagged union).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items = {});
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; only valid for the matching kind.
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Appends to an array / sets an object member (builder interface).
  void Append(JsonValue v);
  void Set(std::string key, JsonValue v);

  /// Compact serialization (no whitespace); numbers use shortest-ish
  /// %.17g round-trip formatting, integers print without a fraction.
  std::string Dump() const;
  void DumpTo(std::string* out) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (the whole input must be consumed, modulo
/// trailing whitespace). Depth-limited to keep hostile inputs from
/// exhausting the stack.
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` as a JSON string literal (with quotes) into `out`.
void AppendJsonString(std::string_view s, std::string* out);

}  // namespace server
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SERVER_JSON_H_

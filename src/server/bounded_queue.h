// BoundedQueue<T>: a small mutex+condvar MPMC queue with a hard capacity,
// the admission-control point of the serving pipeline. Producers never
// block — a full queue rejects the push so the caller can shed the
// request with an explicit "overloaded" response instead of building an
// invisible backlog. Consumers block until an item arrives or the queue
// is closed AND drained (Close() is graceful by construction: items
// already admitted are always handed out).

#ifndef FUZZYMATCH_SERVER_BOUNDED_QUEUE_H_
#define FUZZYMATCH_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace fuzzymatch {
namespace server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; false when the queue is full or closed (the
  /// caller sheds).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Returns false only in the latter case.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects future pushes; queued items still drain through Pop().
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace server
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SERVER_BOUNDED_QUEUE_H_

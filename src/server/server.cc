#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "obs/trace.h"
#include "server/json.h"
#include "shard/sharded_matcher.h"

namespace fuzzymatch {
namespace server {

namespace {

/// Writes the whole buffer, riding out EINTR and partial writes.
/// MSG_NOSIGNAL turns a dead peer into an error instead of SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer gone or write timeout
  }
  return true;
}

void SetSocketTimeout(int fd, int optname, int timeout_ms) {
  if (timeout_ms <= 0) {
    return;
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Backend Status failures surfaced to clients as typed error responses
// (distinct from malformed-request errors, which clients must not retry).
obs::Counter& QueryErrorsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.query_errors");
  return *c;
}

}  // namespace

MatchServer::MatchServer(const FuzzyMatcher* matcher,
                         BatchCleaner::Options clean_options,
                         ServerOptions options)
    : MatchServer(matcher, matcher, nullptr, std::move(clean_options),
                  std::move(options)) {}

MatchServer::MatchServer(const shard::ShardedMatcher* matcher,
                         BatchCleaner::Options clean_options,
                         ServerOptions options)
    : MatchServer(matcher, nullptr, matcher, std::move(clean_options),
                  std::move(options)) {}

MatchServer::MatchServer(const MatchSource* source,
                         const FuzzyMatcher* single,
                         const shard::ShardedMatcher* sharded,
                         BatchCleaner::Options clean_options,
                         ServerOptions options)
    : source_(source),
      single_(single),
      sharded_(sharded),
      cleaner_(source, clean_options),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

MatchServer::~MatchServer() { Shutdown(); }

Status MatchServer::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.workers == 0) {
    return Status::InvalidArgument("server needs at least one worker");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Errno("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status s = Errno("bind " + options_.host);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status s = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) != 0) {
    const Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  started_.store(true, std::memory_order_release);
  start_time_ = std::chrono::steady_clock::now();
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("server.workers")->Set(static_cast<double>(options_.workers));
  reg.GetGauge("server.queue_capacity")
      ->Set(static_cast<double>(options_.queue_capacity));

  // Size the flight recorder to this deployment before traffic arrives.
  {
    obs::FlightRecorder::Options rec =
        obs::FlightRecorder::Global().options();
    if (options_.slow_trace_ms > 0) {
      rec.slow_threshold_seconds =
          static_cast<double>(options_.slow_trace_ms) * 1e-3;
    }
    if (options_.recorder_capacity > 0) {
      rec.recent_capacity = options_.recorder_capacity;
      rec.outlier_capacity = options_.recorder_capacity;
    }
    obs::FlightRecorder::Global().Configure(rec);
  }

  worker_state_.clear();
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    worker_state_.push_back(std::make_unique<WorkerState>());
  }
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MatchServer::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  // Unblocks accept(2). shutdown(2) is async-signal-safe, so this whole
  // method may run inside a SIGTERM handler.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void MatchServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire) ||
      shut_down_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  RequestStop();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }

  // Stop reading new requests on every live connection. In-flight
  // requests still complete: the workers stay up until all connection
  // threads (each possibly blocked on a reply future) have exited.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) {
        break;
      }
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
    ::close(conn->fd);
  }

  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  workers_.clear();

  // Every acknowledged response is flushed; now make the backing store
  // durable (group-commit + fsync the WAL) before the process exits.
  if (options_.drain_flush) {
    const Status flushed = options_.drain_flush();
    if (!flushed.ok()) {
      FM_LOG(Warning) << "drain flush on shutdown failed: " << flushed;
    }
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  obs::MetricsRegistry::Global().GetGauge("server.active_connections")->Set(0);
}

void MatchServer::ReapConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* conn = it->get();
    if (conn->done.load(std::memory_order_acquire)) {
      if (conn->thread.joinable()) {
        conn->thread.join();
      }
      ::close(conn->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void MatchServer::AcceptLoop() {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* accepted = reg.GetCounter("server.connections_accepted");
  obs::Counter* refused = reg.GetCounter("server.connections_refused");

  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      // Listener shut down (RequestStop) or broken: stop accepting.
      break;
    }
    ReapConnections();
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      refused->Increment();
      WriteAll(fd, RenderErrorResponse("overloaded", /*shed=*/true));
      ::close(fd);
      continue;
    }
    SetSocketTimeout(fd, SO_RCVTIMEO, options_.idle_timeout_ms);
    SetSocketTimeout(fd, SO_SNDTIMEO, options_.write_timeout_ms);

    accepted->Increment();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void MatchServer::ConnectionLoop(Connection* conn) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Gauge* active = reg.GetGauge("server.active_connections");
  obs::Gauge* queue_depth = reg.GetGauge("server.queue_depth");
  obs::Counter* requests = reg.GetCounter("server.requests");
  obs::Counter* responses = reg.GetCounter("server.responses");
  obs::Counter* shed = reg.GetCounter("server.shed_requests");
  obs::Counter* parse_errors = reg.GetCounter("server.parse_errors");

  active->Set(static_cast<double>(
      active_connections_.fetch_add(1, std::memory_order_relaxed) + 1));

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    // Assemble the next request line.
    size_t nl;
    while ((nl = buffer.find('\n')) == std::string::npos) {
      if (buffer.size() > options_.max_line_bytes) {
        WriteAll(conn->fd, RenderErrorResponse("request line too long"));
        open = false;
        break;
      }
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      // 0 = peer closed (or our SHUT_RD during drain); EAGAIN/EWOULDBLOCK
      // = idle timeout. Either way the connection is done.
      open = false;
      break;
    }
    if (!open) {
      break;
    }

    const std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);

    auto parsed = ParseRequest(line);
    if (!parsed.ok()) {
      parse_errors->Increment();
      if (!WriteAll(conn->fd, RenderErrorResponse(parsed.status().message()))) {
        break;
      }
      continue;
    }
    Request& request = *parsed;

    // Control ops answer inline: they must stay responsive while the
    // worker pool is saturated.
    if (request.op == Request::Op::kPing) {
      if (!WriteAll(conn->fd, RenderPingResponse(request.id))) break;
      continue;
    }
    if (request.op == Request::Op::kMetrics) {
      std::string text = obs::MetricsRegistry::Global().RenderText();
      text.append(kMetricsEndMarker);
      text.push_back('\n');
      if (!WriteAll(conn->fd, text)) break;
      continue;
    }
    if (request.op == Request::Op::kStatusz) {
      if (!WriteAll(conn->fd, HandleStatusz())) break;
      continue;
    }
    if (request.op == Request::Op::kTracez) {
      if (!WriteAll(conn->fd, HandleTracez(request))) break;
      continue;
    }
    if (request.op == Request::Op::kRebuild) {
      // Inline on purpose: the rebuild is long-running and the worker
      // pool must keep serving match/clean traffic while it runs.
      if (!WriteAll(conn->fd, HandleRebuild())) break;
      continue;
    }
    if (request.op == Request::Op::kQuit) {
      WriteAll(conn->fd, "{\"ok\":true,\"op\":\"quit\"}\n");
      break;
    }

    // match / clean: admission control, then hand off to the pool. The
    // request id is minted here, at the boundary, so a shed request is
    // attributable too (its id simply never reaches the recorder).
    requests->Increment();
    requests_received_.fetch_add(1, std::memory_order_relaxed);

    WorkItem item;
    item.request = std::move(request);
    item.request_id = obs::NextRequestId();
    std::future<std::string> reply = item.reply.get_future();
    if (!queue_.TryPush(&item)) {
      shed->Increment();
      shed_requests_.fetch_add(1, std::memory_order_relaxed);
      if (!WriteAll(conn->fd, RenderErrorResponse("overloaded", true))) {
        break;
      }
      continue;
    }
    queue_depth->Set(static_cast<double>(queue_.size()));
    // One outstanding request per connection: blocking here is what keeps
    // responses ordered. The item lives on this stack; the wait below is
    // what makes that safe.
    const std::string response = reply.get();
    responses->Increment();
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteAll(conn->fd, response)) {
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      break;  // drain: last response flushed, close out
    }
  }

  active->Set(static_cast<double>(
      active_connections_.fetch_sub(1, std::memory_order_relaxed) - 1));
  // The fd stays open until ReapConnections/Shutdown joins us; shut it
  // down now so the peer sees EOF promptly.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void MatchServer::WorkerLoop(size_t worker_index) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Gauge* busy = reg.GetGauge("server.busy_workers");
  obs::Histogram* latency = reg.GetHistogram(
      "server.request_seconds", obs::LatencyHistogramOptions());
  WorkerState& state = *worker_state_[worker_index];

  WorkItem* item = nullptr;
  while (queue_.Pop(&item)) {
    busy->Set(static_cast<double>(
        busy_workers_.fetch_add(1, std::memory_order_relaxed) + 1));
    const auto start = std::chrono::steady_clock::now();
    state.request_id.store(item->request_id, std::memory_order_relaxed);
    state.start_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    state.busy.store(true, std::memory_order_release);
    if (options_.handler_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.handler_delay_ms));
    }
    std::string response;
    {
      // The request's trace context: every span and count below this
      // frame — matcher, ETI, B-tree, buffer pool, pager — lands in this
      // request's tree, keyed by the id minted at the connection.
      std::optional<obs::RequestTrace> trace;
      if (obs::TracingEnabled()) {
        trace.emplace(
            item->request.op == Request::Op::kClean ? "clean" : "match",
            item->request_id, &obs::FlightRecorder::Global());
      }
      response = HandleQuery(item->request);
    }
    latency->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    state.busy.store(false, std::memory_order_release);
    item->reply.set_value(std::move(response));
    busy->Set(static_cast<double>(
        busy_workers_.fetch_sub(1, std::memory_order_relaxed) - 1));
  }
}

std::string MatchServer::HandleQuery(const Request& request) {
  FM_TRACE_SPAN("server.handle_query");
  const size_t want = source_->reference_schema().num_columns();
  if (request.row.size() != want) {
    return RenderErrorResponse(StringPrintf(
        "row arity %zu does not match reference arity %zu",
        request.row.size(), want));
  }
  switch (request.op) {
    case Request::Op::kMatch:
      return HandleMatch(request);
    case Request::Op::kClean:
      return HandleClean(request);
    default:
      return RenderErrorResponse("internal: non-query op reached the pool");
  }
}

std::string MatchServer::HandleMatch(const Request& request) {
  auto matches = source_->FindMatches(request.row);
  if (!matches.ok()) {
    QueryErrorsCounter().Increment();
    return RenderStatusResponse(matches.status());
  }
  std::vector<MatchWithRow> enriched;
  enriched.reserve(matches->size());
  for (const Match& m : *matches) {
    auto row = source_->GetReferenceTuple(m.tid);
    if (!row.ok()) {
      QueryErrorsCounter().Increment();
      // This fetch is outside the matcher's boundary; stamp the trace
      // directly so the failed request is retained with its status.
      if (obs::RequestTrace* trace = obs::RequestTrace::Current()) {
        trace->SetStatus(row.status());
      }
      return RenderStatusResponse(row.status());
    }
    enriched.push_back(MatchWithRow{m, *std::move(row)});
  }
  return RenderMatchResponse(request.id, enriched);
}

std::string MatchServer::HandleClean(const Request& request) {
  auto result = cleaner_.Clean(request.row);
  if (!result.ok()) {
    QueryErrorsCounter().Increment();
    return RenderStatusResponse(result.status());
  }
  return RenderCleanResponse(request.id, *result);
}

std::string MatchServer::HandleStatusz() const {
  auto& reg = obs::MetricsRegistry::Global();
  const auto now = std::chrono::steady_clock::now();
  const obs::ProcessStats proc = obs::UpdateProcessMetrics();
  const obs::BuildInfo& build = obs::GetBuildInfo();
  const obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const obs::FlightRecorder::Stats rec_stats = recorder.GetStats();

  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("op", JsonValue::String("statusz"));
  obj.Set("uptime_seconds",
          JsonValue::Number(
              std::chrono::duration<double>(now - start_time_).count()));

  JsonValue build_obj = JsonValue::Object();
  build_obj.Set("version", JsonValue::String(build.version));
  build_obj.Set("build_type", JsonValue::String(build.build_type));
  build_obj.Set("compiler", JsonValue::String(build.compiler));
  build_obj.Set("failpoints", JsonValue::Bool(build.failpoints));
  obj.Set("build", std::move(build_obj));

  obj.Set("tracing_enabled", JsonValue::Bool(obs::TracingEnabled()));

  JsonValue workers = JsonValue::Array();
  for (const auto& state : worker_state_) {
    JsonValue w = JsonValue::Object();
    const bool busy = state->busy.load(std::memory_order_acquire);
    w.Set("busy", JsonValue::Bool(busy));
    if (busy) {
      w.Set("request_id",
            JsonValue::Number(static_cast<double>(
                state->request_id.load(std::memory_order_relaxed))));
      const int64_t start_ns =
          state->start_ns.load(std::memory_order_relaxed);
      const int64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now.time_since_epoch())
              .count();
      w.Set("age_ms", JsonValue::Number(
                          static_cast<double>(now_ns - start_ns) * 1e-6));
    }
    workers.Append(std::move(w));
  }
  obj.Set("workers", std::move(workers));

  JsonValue queue = JsonValue::Object();
  queue.Set("depth", JsonValue::Number(static_cast<double>(queue_.size())));
  queue.Set("capacity",
            JsonValue::Number(static_cast<double>(queue_.capacity())));
  obj.Set("queue", std::move(queue));

  JsonValue conns = JsonValue::Object();
  conns.Set("active", JsonValue::Number(
                          static_cast<double>(active_connections())));
  conns.Set("max", JsonValue::Number(
                       static_cast<double>(options_.max_connections)));
  obj.Set("connections", std::move(conns));

  JsonValue counters = JsonValue::Object();
  counters.Set("requests", JsonValue::Number(
                               static_cast<double>(requests_received())));
  counters.Set("responses",
               JsonValue::Number(static_cast<double>(responses_sent())));
  counters.Set("shed", JsonValue::Number(
                           static_cast<double>(shed_requests())));
  counters.Set("query_errors",
               JsonValue::Number(static_cast<double>(
                   QueryErrorsCounter().value())));
  counters.Set("parse_errors",
               JsonValue::Number(static_cast<double>(
                   reg.GetCounter("server.parse_errors")->value())));
  obj.Set("counters", std::move(counters));

  if (single_ != nullptr) {
    JsonValue accel_obj = JsonValue::Object();
    const EtiAccel* accel = single_->eti().accelerator();
    accel_obj.Set("present", JsonValue::Bool(accel != nullptr));
    if (accel != nullptr) {
      accel_obj.Set("complete", JsonValue::Bool(accel->complete()));
      accel_obj.Set("entries",
                    JsonValue::Number(
                        static_cast<double>(accel->entry_count())));
      accel_obj.Set("bytes",
                    JsonValue::Number(
                        static_cast<double>(accel->memory_bytes())));
    }
    obj.Set("accel", std::move(accel_obj));

    JsonValue cache_obj = JsonValue::Object();
    const TupleCache& cache = single_->eti_matcher().tuple_cache();
    cache_obj.Set("enabled", JsonValue::Bool(cache.enabled()));
    if (cache.enabled()) {
      cache_obj.Set("entries",
                    JsonValue::Number(
                        static_cast<double>(cache.entry_count())));
      cache_obj.Set("bytes",
                    JsonValue::Number(
                        static_cast<double>(cache.memory_bytes())));
    }
    obj.Set("tuple_cache", std::move(cache_obj));
  }

  if (sharded_ != nullptr) {
    JsonValue shards = JsonValue::Array();
    for (size_t k = 0; k < sharded_->num_shards(); ++k) {
      const FuzzyMatcher& shard = sharded_->router().shard(k);
      const AggregateStats stats = sharded_->shard_aggregate_stats(k);
      JsonValue s = JsonValue::Object();
      s.Set("index", JsonValue::Number(static_cast<double>(k)));
      s.Set("tuples", JsonValue::Number(static_cast<double>(
                          shard.reference().row_count())));
      s.Set("queue_depth", JsonValue::Number(static_cast<double>(
                               sharded_->queue_depth(k))));
      s.Set("replicas", JsonValue::Number(static_cast<double>(
                            sharded_->replicas_per_shard())));
      s.Set("queries",
            JsonValue::Number(static_cast<double>(stats.queries)));
      s.Set("candidates",
            JsonValue::Number(static_cast<double>(stats.candidates)));
      s.Set("osc_short_circuits",
            JsonValue::Number(static_cast<double>(stats.osc_succeeded)));
      s.Set("accel_present",
            JsonValue::Bool(shard.eti().accelerator() != nullptr));
      shards.Append(std::move(s));
    }
    obj.Set("shards", std::move(shards));
  }

  JsonValue rec_obj = JsonValue::Object();
  rec_obj.Set("recorded", JsonValue::Number(
                              static_cast<double>(rec_stats.recorded)));
  rec_obj.Set("slow",
              JsonValue::Number(static_cast<double>(rec_stats.slow)));
  rec_obj.Set("errors",
              JsonValue::Number(static_cast<double>(rec_stats.errors)));
  rec_obj.Set("retained",
              JsonValue::Number(static_cast<double>(rec_stats.retained)));
  rec_obj.Set("slow_threshold_ms",
              JsonValue::Number(
                  recorder.options().slow_threshold_seconds * 1e3));
  obj.Set("recorder", std::move(rec_obj));

  JsonValue proc_obj = JsonValue::Object();
  proc_obj.Set("rss_bytes", JsonValue::Number(
                                static_cast<double>(proc.rss_bytes)));
  proc_obj.Set("open_fds", JsonValue::Number(
                               static_cast<double>(proc.open_fds)));
  proc_obj.Set("uptime_seconds", JsonValue::Number(proc.uptime_seconds));
  obj.Set("process", std::move(proc_obj));

  return obj.Dump() + "\n";
}

std::string MatchServer::HandleTracez(const Request& request) const {
  // The recorder renders its own JSON (fm_obs cannot use server/json.h);
  // wrap it in the protocol's response envelope.
  std::string out = "{\"ok\":true,\"op\":\"tracez\",\"recorder\":";
  out += obs::FlightRecorder::Global().RenderJson(
      request.limit.has_value() ? static_cast<size_t>(*request.limit) : 32);
  out += "}\n";
  return out;
}

std::string MatchServer::HandleRebuild() {
  if (!options_.rebuild_handler) {
    return RenderStatusResponse(
        Status::NotSupported("this server has no rebuild handler"));
  }
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  const Result<EtiRebuildStats> rebuilt = options_.rebuild_handler();
  if (!rebuilt.ok()) {
    return RenderStatusResponse(rebuilt.status());
  }
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("op", JsonValue::String("rebuild"));
  obj.Set("eti_rows", JsonValue::Number(
                          static_cast<double>(rebuilt->build.eti_rows)));
  obj.Set("side_ops_replayed",
          JsonValue::Number(static_cast<double>(rebuilt->side_ops_replayed)));
  obj.Set("build_seconds", JsonValue::Number(rebuilt->build.total_seconds));
  obj.Set("total_seconds", JsonValue::Number(rebuilt->total_seconds));
  return obj.Dump() + "\n";
}

}  // namespace server
}  // namespace fuzzymatch

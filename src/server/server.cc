#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {
namespace server {

namespace {

/// Writes the whole buffer, riding out EINTR and partial writes.
/// MSG_NOSIGNAL turns a dead peer into an error instead of SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer gone or write timeout
  }
  return true;
}

void SetSocketTimeout(int fd, int optname, int timeout_ms) {
  if (timeout_ms <= 0) {
    return;
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Backend Status failures surfaced to clients as typed error responses
// (distinct from malformed-request errors, which clients must not retry).
obs::Counter& QueryErrorsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("server.query_errors");
  return *c;
}

}  // namespace

MatchServer::MatchServer(const FuzzyMatcher* matcher,
                         BatchCleaner::Options clean_options,
                         ServerOptions options)
    : matcher_(matcher),
      cleaner_(matcher, clean_options),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

MatchServer::~MatchServer() { Shutdown(); }

Status MatchServer::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.workers == 0) {
    return Status::InvalidArgument("server needs at least one worker");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Errno("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status s = Errno("bind " + options_.host);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status s = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) != 0) {
    const Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  started_.store(true, std::memory_order_release);
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("server.workers")->Set(static_cast<double>(options_.workers));
  reg.GetGauge("server.queue_capacity")
      ->Set(static_cast<double>(options_.queue_capacity));

  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MatchServer::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  // Unblocks accept(2). shutdown(2) is async-signal-safe, so this whole
  // method may run inside a SIGTERM handler.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void MatchServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire) ||
      shut_down_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  RequestStop();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }

  // Stop reading new requests on every live connection. In-flight
  // requests still complete: the workers stay up until all connection
  // threads (each possibly blocked on a reply future) have exited.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) {
        break;
      }
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
    ::close(conn->fd);
  }

  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  workers_.clear();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  obs::MetricsRegistry::Global().GetGauge("server.active_connections")->Set(0);
}

void MatchServer::ReapConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* conn = it->get();
    if (conn->done.load(std::memory_order_acquire)) {
      if (conn->thread.joinable()) {
        conn->thread.join();
      }
      ::close(conn->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void MatchServer::AcceptLoop() {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* accepted = reg.GetCounter("server.connections_accepted");
  obs::Counter* refused = reg.GetCounter("server.connections_refused");

  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      // Listener shut down (RequestStop) or broken: stop accepting.
      break;
    }
    ReapConnections();
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      refused->Increment();
      WriteAll(fd, RenderErrorResponse("overloaded", /*shed=*/true));
      ::close(fd);
      continue;
    }
    SetSocketTimeout(fd, SO_RCVTIMEO, options_.idle_timeout_ms);
    SetSocketTimeout(fd, SO_SNDTIMEO, options_.write_timeout_ms);

    accepted->Increment();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void MatchServer::ConnectionLoop(Connection* conn) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Gauge* active = reg.GetGauge("server.active_connections");
  obs::Gauge* queue_depth = reg.GetGauge("server.queue_depth");
  obs::Counter* requests = reg.GetCounter("server.requests");
  obs::Counter* responses = reg.GetCounter("server.responses");
  obs::Counter* shed = reg.GetCounter("server.shed_requests");
  obs::Counter* parse_errors = reg.GetCounter("server.parse_errors");

  active->Set(static_cast<double>(
      active_connections_.fetch_add(1, std::memory_order_relaxed) + 1));

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    // Assemble the next request line.
    size_t nl;
    while ((nl = buffer.find('\n')) == std::string::npos) {
      if (buffer.size() > options_.max_line_bytes) {
        WriteAll(conn->fd, RenderErrorResponse("request line too long"));
        open = false;
        break;
      }
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      // 0 = peer closed (or our SHUT_RD during drain); EAGAIN/EWOULDBLOCK
      // = idle timeout. Either way the connection is done.
      open = false;
      break;
    }
    if (!open) {
      break;
    }

    const std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);

    auto parsed = ParseRequest(line);
    if (!parsed.ok()) {
      parse_errors->Increment();
      if (!WriteAll(conn->fd, RenderErrorResponse(parsed.status().message()))) {
        break;
      }
      continue;
    }
    Request& request = *parsed;

    // Control ops answer inline: they must stay responsive while the
    // worker pool is saturated.
    if (request.op == Request::Op::kPing) {
      if (!WriteAll(conn->fd, RenderPingResponse(request.id))) break;
      continue;
    }
    if (request.op == Request::Op::kMetrics) {
      std::string text = obs::MetricsRegistry::Global().RenderText();
      text.append(kMetricsEndMarker);
      text.push_back('\n');
      if (!WriteAll(conn->fd, text)) break;
      continue;
    }
    if (request.op == Request::Op::kQuit) {
      WriteAll(conn->fd, "{\"ok\":true,\"op\":\"quit\"}\n");
      break;
    }

    // match / clean: admission control, then hand off to the pool.
    requests->Increment();
    requests_received_.fetch_add(1, std::memory_order_relaxed);

    WorkItem item;
    item.request = std::move(request);
    std::future<std::string> reply = item.reply.get_future();
    if (!queue_.TryPush(&item)) {
      shed->Increment();
      shed_requests_.fetch_add(1, std::memory_order_relaxed);
      if (!WriteAll(conn->fd, RenderErrorResponse("overloaded", true))) {
        break;
      }
      continue;
    }
    queue_depth->Set(static_cast<double>(queue_.size()));
    // One outstanding request per connection: blocking here is what keeps
    // responses ordered. The item lives on this stack; the wait below is
    // what makes that safe.
    const std::string response = reply.get();
    responses->Increment();
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteAll(conn->fd, response)) {
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      break;  // drain: last response flushed, close out
    }
  }

  active->Set(static_cast<double>(
      active_connections_.fetch_sub(1, std::memory_order_relaxed) - 1));
  // The fd stays open until ReapConnections/Shutdown joins us; shut it
  // down now so the peer sees EOF promptly.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void MatchServer::WorkerLoop() {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Gauge* busy = reg.GetGauge("server.busy_workers");
  obs::Histogram* latency = reg.GetHistogram(
      "server.request_seconds", obs::LatencyHistogramOptions());

  WorkItem* item = nullptr;
  while (queue_.Pop(&item)) {
    busy->Set(static_cast<double>(
        busy_workers_.fetch_add(1, std::memory_order_relaxed) + 1));
    const auto start = std::chrono::steady_clock::now();
    if (options_.handler_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.handler_delay_ms));
    }
    std::string response = HandleQuery(item->request);
    latency->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    item->reply.set_value(std::move(response));
    busy->Set(static_cast<double>(
        busy_workers_.fetch_sub(1, std::memory_order_relaxed) - 1));
  }
}

std::string MatchServer::HandleQuery(const Request& request) {
  FM_TRACE_SPAN("server.handle_query");
  const size_t want = matcher_->reference().schema().num_columns();
  if (request.row.size() != want) {
    return RenderErrorResponse(StringPrintf(
        "row arity %zu does not match reference arity %zu",
        request.row.size(), want));
  }
  switch (request.op) {
    case Request::Op::kMatch:
      return HandleMatch(request);
    case Request::Op::kClean:
      return HandleClean(request);
    default:
      return RenderErrorResponse("internal: non-query op reached the pool");
  }
}

std::string MatchServer::HandleMatch(const Request& request) {
  auto matches = matcher_->FindMatches(request.row);
  if (!matches.ok()) {
    QueryErrorsCounter().Increment();
    return RenderStatusResponse(matches.status());
  }
  std::vector<MatchWithRow> enriched;
  enriched.reserve(matches->size());
  for (const Match& m : *matches) {
    auto row = matcher_->GetReferenceTuple(m.tid);
    if (!row.ok()) {
      QueryErrorsCounter().Increment();
      return RenderStatusResponse(row.status());
    }
    enriched.push_back(MatchWithRow{m, *std::move(row)});
  }
  return RenderMatchResponse(request.id, enriched);
}

std::string MatchServer::HandleClean(const Request& request) {
  auto result = cleaner_.Clean(request.row);
  if (!result.ok()) {
    QueryErrorsCounter().Increment();
    return RenderStatusResponse(result.status());
  }
  return RenderCleanResponse(request.id, *result);
}

}  // namespace server
}  // namespace fuzzymatch

// MatchServer: the online serving subsystem — a dependency-free TCP
// server exposing the fuzzy-match operator over the line protocol of
// protocol.h.
//
// Architecture (thread-per-connection front, pooled execution back):
//
//   accept thread ──> connection threads (parse, admission control)
//                          │  bounded request queue (TryPush; full = shed
//                          ▼   with an explicit "overloaded" response)
//                     worker pool (fixed size; runs the concurrent
//                          │   match/clean query path)
//                          ▼
//                     response written back by the connection thread
//
// Each connection has at most one request in flight, so responses are
// trivially ordered. ping/metrics/quit are answered inline by the
// connection thread — they must stay responsive while the workers are
// saturated, which is precisely when an operator asks for metrics.
//
// Overload behavior: when the queue is full the request is refused
// immediately ({"ok":false,"error":"overloaded","shed":true}); when
// max_connections is reached new sockets get the same response at accept
// time. Idle connections are closed after idle_timeout_ms.
//
// Graceful drain: RequestStop() (async-signal-safe, callable from a
// SIGTERM handler) stops the accept loop; Shutdown() then closes the
// read side of every connection, lets in-flight requests finish and
// their responses flush, drains the queue, and joins all threads.

#ifndef FUZZYMATCH_SERVER_SERVER_H_
#define FUZZYMATCH_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/batch_cleaner.h"
#include "core/fuzzy_match.h"
#include "server/bounded_queue.h"
#include "server/protocol.h"

namespace fuzzymatch {
namespace shard {
class ShardedMatcher;
}  // namespace shard

namespace server {

struct ServerOptions {
  /// Listen address. Loopback by default: the server is a backend, not an
  /// internet-facing endpoint.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Worker threads executing match/clean requests.
  size_t workers = 4;
  /// Bounded request queue capacity; a full queue sheds.
  size_t queue_capacity = 64;
  /// Accept-time connection cap; beyond it new sockets are refused with
  /// an "overloaded" response.
  size_t max_connections = 256;
  /// Per-connection read timeout: an idle connection is closed after this
  /// long with no complete request line. <= 0 disables.
  int idle_timeout_ms = 30000;
  /// Per-connection write timeout (a stuck client cannot hold a
  /// connection thread forever). <= 0 disables.
  int write_timeout_ms = 30000;
  /// Longest accepted request line; longer input poisons the connection.
  size_t max_line_bytes = 1 << 20;
  /// Test hook: artificial extra milliseconds of work per match/clean
  /// request, for deterministic overload/drain tests. 0 in production.
  int handler_delay_ms = 0;
  /// Flight-recorder slow-query threshold: a request slower than this is
  /// retained as an outlier and logged (event "query.slow"). <= 0 keeps
  /// the recorder's default.
  int slow_trace_ms = 100;
  /// Flight-recorder retention per class (recent ring and outlier ring,
  /// per stripe). 0 keeps the recorder's default.
  size_t recorder_capacity = 64;
  /// Invoked once by Shutdown() after the last in-flight request has
  /// flushed and the workers have joined — the graceful-drain hook the
  /// launcher uses to group-commit and fsync the WAL before exit. A
  /// non-OK status is logged, not fatal.
  std::function<Status()> drain_flush;
  /// Backs the "rebuild" admin verb: runs an online ETI rebuild (build
  /// beside, replay side log, atomic swap) while queries keep being
  /// served. Unset = the verb answers an unimplemented error.
  std::function<Result<EtiRebuildStats>()> rebuild_handler;
};

class MatchServer {
 public:
  /// `matcher` must outlive the server and already be built. The server
  /// constructs its own BatchCleaner from `clean_options`.
  MatchServer(const FuzzyMatcher* matcher, BatchCleaner::Options clean_options,
              ServerOptions options);

  /// Sharded deployment: hosts the scatter/gather coordinator (and the
  /// shard engines behind it) in-process behind the same worker pool;
  /// statusz grows a per-shard section.
  MatchServer(const shard::ShardedMatcher* matcher,
              BatchCleaner::Options clean_options, ServerOptions options);

  /// Calls Shutdown() if the server is still running.
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Binds, listens, and spawns the accept thread and worker pool.
  Status Start();

  /// The bound port (after Start(); useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// Flags the server to stop and unblocks the accept loop. Safe to call
  /// from a signal handler (atomic store + shutdown(2)) and from any
  /// thread; does not block or join.
  void RequestStop();

  /// Graceful drain: stops accepting, lets in-flight requests complete
  /// and flush, then joins every thread. Idempotent; blocks.
  void Shutdown();

  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Serving statistics (also mirrored into the metrics registry as
  /// server.* counters/gauges).
  uint64_t requests_received() const {
    return requests_received_.load(std::memory_order_relaxed);
  }
  uint64_t responses_sent() const {
    return responses_sent_.load(std::memory_order_relaxed);
  }
  uint64_t shed_requests() const {
    return shed_requests_.load(std::memory_order_relaxed);
  }
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  const ServerOptions& options() const { return options_; }

 private:
  struct WorkItem {
    Request request;
    uint64_t request_id = 0;  // assigned at the connection boundary
    std::promise<std::string> reply;
  };

  /// Per-worker live state, read lock-free by statusz.
  struct WorkerState {
    std::atomic<bool> busy{false};
    std::atomic<uint64_t> request_id{0};
    std::atomic<int64_t> start_ns{0};  // steady-clock ns when work began
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void WorkerLoop(size_t worker_index);
  void ConnectionLoop(Connection* conn);

  /// Executes one match/clean request (worker side).
  std::string HandleQuery(const Request& request);
  std::string HandleMatch(const Request& request);
  std::string HandleClean(const Request& request);

  /// Introspection verbs, answered inline by connection threads.
  std::string HandleStatusz() const;
  std::string HandleTracez(const Request& request) const;

  /// The "rebuild" admin verb, answered inline by the connection thread
  /// so the worker pool keeps serving queries for its whole duration.
  /// Serialized: concurrent rebuild requests queue behind rebuild_mu_.
  std::string HandleRebuild();

  /// Joins and erases finished connection threads.
  void ReapConnections();

  /// Shared tail of the two public constructors.
  MatchServer(const MatchSource* source, const FuzzyMatcher* single,
              const shard::ShardedMatcher* sharded,
              BatchCleaner::Options clean_options, ServerOptions options);

  /// The query path; exactly one of single_/sharded_ backs it (kept for
  /// topology-specific introspection in statusz).
  const MatchSource* source_;
  const FuzzyMatcher* single_;
  const shard::ShardedMatcher* sharded_;
  BatchCleaner cleaner_;
  ServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};

  BoundedQueue<WorkItem*> queue_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerState>> worker_state_;
  std::chrono::steady_clock::time_point start_time_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
  std::mutex rebuild_mu_;

  std::atomic<uint64_t> requests_received_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> shed_requests_{0};
  std::atomic<size_t> active_connections_{0};
  std::atomic<size_t> busy_workers_{0};
};

}  // namespace server
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SERVER_SERVER_H_

#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace fuzzymatch {
namespace server {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    FM_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Fail("invalid literal");
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Fail("invalid literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Fail("invalid number");
    }
    return JsonValue::Number(v);
  }

  Result<JsonValue> ParseString() {
    FM_ASSIGN_OR_RETURN(std::string s, ParseStringRaw());
    return JsonValue::String(std::move(s));
  }

  Result<std::string> ParseStringRaw() {
    if (!Consume('"')) {
      return Fail("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          FM_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pair?
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            FM_ASSIGN_OR_RETURN(const uint32_t low, ParseHex4());
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Fail("invalid low surrogate");
            }
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Fail("truncated \\u escape");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Fail("invalid \\u escape");
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return arr;
    }
    for (;;) {
      FM_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      arr.Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) {
        return arr;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return obj;
    }
    for (;;) {
      SkipWhitespace();
      FM_ASSIGN_OR_RETURN(std::string key, ParseStringRaw());
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      FM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return obj;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void JsonValue::Append(JsonValue v) { array_.push_back(std::move(v)); }

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      char buf[32];
      // Integers (the common case: tids, counts, ids) print exactly;
      // everything else uses the shortest precision that round-trips.
      if (number_ == std::floor(number_) && std::fabs(number_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
      } else {
        for (int precision = 15; precision <= 17; ++precision) {
          std::snprintf(buf, sizeof(buf), "%.*g", precision, number_);
          if (std::strtod(buf, nullptr) == number_) break;
        }
      }
      *out += buf;
      return;
    }
    case Kind::kString:
      AppendJsonString(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : array_) {
        if (!first) out->push_back(',');
        first = false;
        item.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(k, out);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace server
}  // namespace fuzzymatch

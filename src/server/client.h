// LineClient: a minimal blocking client for the serving protocol, shared
// by the loadgen tool, the serving bench, and the server tests. One
// request in flight at a time (matching the server's per-connection
// contract).

#ifndef FUZZYMATCH_SERVER_CLIENT_H_
#define FUZZYMATCH_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace fuzzymatch {
namespace server {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Sends one request line ('\n' appended if missing) and returns the
  /// single response line, without its trailing newline.
  Result<std::string> Roundtrip(std::string_view request);

  /// Sends `metrics` and returns the full multi-line body up to (and
  /// excluding) the "# EOF" terminator.
  Result<std::string> FetchMetrics();

  /// Sends one line without waiting for a response (for quit).
  Status Send(std::string_view request);

  /// Reads the next response line (without the trailing newline).
  Result<std::string> ReadLine();

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received but not yet consumed
};

}  // namespace server
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SERVER_CLIENT_H_

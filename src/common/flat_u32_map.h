// Open-addressed hash map keyed by dense 32-bit ids (tids), probing with
// the repo's Mix64 hash.
//
// The candidate-score table is the single hottest data structure of query
// processing: every tid-list entry of every ETI probe does one lookup in
// it (Figure 3 step 9). std::unordered_map pays a heap allocation per
// node and a pointer chase per find; this map is two flat arrays with
// linear probing, so a find is one multiply-shift and a short cache-local
// scan, and inserts allocate only on power-of-two growth.
//
// Key 0xFFFFFFFF is reserved as the empty-slot marker. Tids are assigned
// densely from 0 (storage/table.h), so the reserved key is unreachable in
// practice; inserting it is a checked error in debug builds and a no-find
// in release.

#ifndef FUZZYMATCH_COMMON_FLAT_U32_MAP_H_
#define FUZZYMATCH_COMMON_FLAT_U32_MAP_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace fuzzymatch {

template <typename Value>
class FlatU32Map {
 public:
  static constexpr uint32_t kEmptyKey = 0xFFFFFFFFu;

  FlatU32Map() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` keys without rehashing along the way.
  void Reserve(size_t n) {
    size_t target = 16;
    while (target < 2 * n) {
      target <<= 1;
    }
    if (target > keys_.size()) {
      Rehash(target);
    }
  }

  /// Pointer to the value stored under `key`; nullptr when absent.
  Value* Find(uint32_t key) {
    if (keys_.empty()) {
      return nullptr;
    }
    const size_t mask = keys_.size() - 1;
    for (size_t i = Mix64(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) {
        return &values_[i];
      }
      if (keys_[i] == kEmptyKey) {
        return nullptr;
      }
    }
  }
  const Value* Find(uint32_t key) const {
    return const_cast<FlatU32Map*>(this)->Find(key);
  }

  /// Inserts `value` under `key` (which must be absent) and returns a
  /// reference to the stored value.
  Value& Insert(uint32_t key, Value value) {
    assert(key != kEmptyKey);
    if (2 * (size_ + 1) > keys_.size()) {
      Rehash(keys_.empty() ? 16 : 2 * keys_.size());
    }
    const size_t mask = keys_.size() - 1;
    size_t i = Mix64(key) & mask;
    while (keys_[i] != kEmptyKey) {
      assert(keys_[i] != key);
      i = (i + 1) & mask;
    }
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
    return values_[i];
  }

  /// Calls fn(key, const Value&) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) {
        fn(keys_[i], values_[i]);
      }
    }
  }

  void Clear() {
    keys_.assign(keys_.size(), kEmptyKey);
    size_ = 0;
  }

 private:
  void Rehash(size_t new_capacity) {
    std::vector<uint32_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    keys_.assign(new_capacity, kEmptyKey);
    values_.assign(new_capacity, Value());
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) {
        continue;
      }
      size_t j = Mix64(old_keys[i]) & mask;
      while (keys_[j] != kEmptyKey) {
        j = (j + 1) & mask;
      }
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<uint32_t> keys_;  // always a power of two (or empty)
  std::vector<Value> values_;
  size_t size_ = 0;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_COMMON_FLAT_U32_MAP_H_

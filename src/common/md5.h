// MD5 message digest (RFC 1321).
//
// The paper's "cache without collisions" (Section 4.4.1) keys the
// token-frequency cache by a 16-byte MD5 digest instead of the token string.
// MD5 is used here purely as a 128-bit fingerprint, not for security.

#ifndef FUZZYMATCH_COMMON_MD5_H_
#define FUZZYMATCH_COMMON_MD5_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fuzzymatch {

/// A 128-bit MD5 digest.
struct Md5Digest {
  std::array<uint8_t, 16> bytes{};

  bool operator==(const Md5Digest& other) const { return bytes == other.bytes; }
  bool operator!=(const Md5Digest& other) const { return !(*this == other); }

  /// Lowercase hex representation (32 characters).
  std::string ToHex() const;

  /// First 8 bytes as a little-endian uint64 (handy hash-table key).
  uint64_t Low64() const;
  /// Last 8 bytes as a little-endian uint64.
  uint64_t High64() const;
};

/// Incremental MD5 computation.
class Md5 {
 public:
  Md5();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without Reset().
  Md5Digest Finish();

  /// Restores the initial state.
  void Reset();

  /// One-shot convenience.
  static Md5Digest Hash(std::string_view s);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_COMMON_MD5_H_

// Minimal leveled logging plus CHECK macros.
//
// FM_CHECK* are for programmer errors (invariant violations) and abort;
// recoverable conditions go through Status instead.

#ifndef FUZZYMATCH_COMMON_LOGGING_H_
#define FUZZYMATCH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fuzzymatch {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level emitted to stderr (default kInfo).
void SetLogLevel(LogLevel level);

/// Current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fuzzymatch

#define FM_LOG(level)                                            \
  ::fuzzymatch::internal::LogMessage(::fuzzymatch::LogLevel::k##level, \
                                     __FILE__, __LINE__)

#define FM_CHECK(cond)                                        \
  if (!(cond))                                                \
  FM_LOG(Fatal) << "Check failed: " #cond " "

#define FM_CHECK_OP_(a, b, op) FM_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define FM_CHECK_EQ(a, b) FM_CHECK_OP_(a, b, ==)
#define FM_CHECK_NE(a, b) FM_CHECK_OP_(a, b, !=)
#define FM_CHECK_LT(a, b) FM_CHECK_OP_(a, b, <)
#define FM_CHECK_LE(a, b) FM_CHECK_OP_(a, b, <=)
#define FM_CHECK_GT(a, b) FM_CHECK_OP_(a, b, >)
#define FM_CHECK_GE(a, b) FM_CHECK_OP_(a, b, >=)

/// Aborts if `expr` evaluates to a non-OK Status.
#define FM_CHECK_OK(expr)                                  \
  do {                                                     \
    const ::fuzzymatch::Status fm_log_macro_s__ = (expr);  \
    FM_CHECK(fm_log_macro_s__.ok()) << fm_log_macro_s__;   \
  } while (false)

#endif  // FUZZYMATCH_COMMON_LOGGING_H_

// Status: error model for the fuzzymatch library.
//
// Library code does not use exceptions for control flow (following the
// Arrow/RocksDB idiom). Fallible operations return Status, or Result<T>
// (see common/result.h) when they also produce a value.

#ifndef FUZZYMATCH_COMMON_STATUS_H_
#define FUZZYMATCH_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace fuzzymatch {

/// Machine-readable classification of an error.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kOutOfRange = 6,
  kNotSupported = 7,
  kResourceExhausted = 8,
  kInternal = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status holds either success (OK) or an error code plus message.
///
/// The OK state is represented by a null rep pointer, so returning and
/// checking OK statuses is as cheap as a pointer move/compare.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message; `code` must not
  /// be kOk (use the default constructor for that).
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk iff ok().
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message.
  /// OK statuses are returned unchanged.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace fuzzymatch

/// Propagates a non-OK Status from the evaluated expression.
#define FM_RETURN_IF_ERROR(expr)                       \
  do {                                                 \
    ::fuzzymatch::Status fm_status_macro_s__ = (expr); \
    if (!fm_status_macro_s__.ok()) {                   \
      return fm_status_macro_s__;                      \
    }                                                  \
  } while (false)

#endif  // FUZZYMATCH_COMMON_STATUS_H_

#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace fuzzymatch {

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    c = AsciiLowerChar(c);
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s,
                                      std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t pos = s.find_first_of(delims, start);
    const size_t end = (pos == std::string_view::npos) ? s.size() : pos;
    if (end > start) {
      out.emplace_back(s.substr(start, end - start));
    }
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace fuzzymatch

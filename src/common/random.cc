#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace fuzzymatch {

namespace {
inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed with splitmix64 per the xoshiro authors' guidance.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = Mix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl64(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl64(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfSampler::ZipfSampler(size_t n, double theta) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace fuzzymatch

#include "common/status.h"

namespace fuzzymatch {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : rep_(code == StatusCode::kOk
               ? nullptr
               : std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

Status::Status(const Status& other)
    : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return rep_ ? rep_->msg : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace fuzzymatch

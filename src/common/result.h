// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef FUZZYMATCH_COMMON_RESULT_H_
#define FUZZYMATCH_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fuzzymatch {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced.
///
/// Typical use:
///
///   Result<int> ParsePort(const std::string& s);
///   ...
///   FM_ASSIGN_OR_RETURN(int port, ParsePort(arg));
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs from a non-OK status (implicit, enables
  /// `return Status::NotFound(...)`). `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

}  // namespace fuzzymatch

#define FM_RESULT_CONCAT_INNER_(a, b) a##b
#define FM_RESULT_CONCAT_(a, b) FM_RESULT_CONCAT_INNER_(a, b)

/// Evaluates a Result<T> expression; on error returns its Status from the
/// enclosing function, otherwise assigns the value to `lhs` (which may be a
/// declaration such as `auto x`).
#define FM_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  FM_ASSIGN_OR_RETURN_IMPL_(                                         \
      FM_RESULT_CONCAT_(fm_result_macro_r__, __LINE__), lhs, rexpr)

#define FM_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) {                                 \
    return result.status();                           \
  }                                                   \
  lhs = std::move(result).value()

#endif  // FUZZYMATCH_COMMON_RESULT_H_

// Minimal RFC-4180 CSV reading/writing (quoted fields, "" escapes,
// embedded newlines, CRLF or LF). Used by the command-line tool to load
// reference relations and dirty feeds from files.

#ifndef FUZZYMATCH_COMMON_CSV_H_
#define FUZZYMATCH_COMMON_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"

namespace fuzzymatch {

/// Streams records from a CSV input.
class CsvReader {
 public:
  /// `in` must outlive the reader.
  explicit CsvReader(std::istream* in) : in_(in) {}

  /// Reads the next record; returns false at end of input. Fields are
  /// unescaped. Fails on malformed quoting.
  Result<bool> Next(std::vector<std::string>* fields);

  /// Number of records read so far.
  uint64_t records_read() const { return records_; }

 private:
  std::istream* in_;
  uint64_t records_ = 0;
};

/// Writes records to a CSV output, quoting only when needed.
class CsvWriter {
 public:
  /// `out` must outlive the writer.
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  void Write(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
};

/// Escapes one field (exposed for tests).
std::string CsvEscapeField(const std::string& field);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_COMMON_CSV_H_

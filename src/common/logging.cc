#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace fuzzymatch {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    // Emit the whole line (terminator included) in one fwrite: stderr is
    // unbuffered, so this reaches the fd as a single write and
    // concurrent threads' log lines cannot interleave mid-line.
    stream_ << '\n';
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace fuzzymatch

// LEB128 variable-length integer encoding (row codec, tid-lists).

#ifndef FUZZYMATCH_COMMON_VARINT_H_
#define FUZZYMATCH_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace fuzzymatch {

/// Appends `v` to `out` as LEB128 (1-10 bytes).
inline void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Parses a varint from the front of `*in`, consuming its bytes.
inline Result<uint64_t> GetVarint64(std::string_view* in) {
  uint64_t v = 0;
  int shift = 0;
  size_t i = 0;
  while (i < in->size() && shift <= 63) {
    const uint8_t b = static_cast<uint8_t>((*in)[i++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      in->remove_prefix(i);
      return v;
    }
    shift += 7;
  }
  return Status::Corruption("truncated or overlong varint");
}

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_COMMON_VARINT_H_

// Small string helpers shared across the library.

#ifndef FUZZYMATCH_COMMON_STRING_UTIL_H_
#define FUZZYMATCH_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fuzzymatch {

/// ASCII-lowercases a copy of `s` (the paper ignores case when tokenizing).
std::string AsciiLower(std::string_view s);

/// ASCII lowercase of a single character.
inline char AsciiLowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view s,
                                      std::string_view delims);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_COMMON_STRING_UTIL_H_

#include "common/simd_varint.h"

#include <cstdlib>
#include <cstring>

#if defined(FM_SIMD_ENABLED) && defined(__x86_64__)
#include <immintrin.h>
#define FM_SIMD_X86 1
#endif

namespace fuzzymatch {

namespace {

/// Decodes one LEB128 varint at `*p` as a strictly positive delta onto
/// `*acc`. Shared by the scalar loop and the SIMD kernels' slow step
/// (multi-byte varints inside a block), so every path enforces the same
/// bounds, duplicate, and overflow rules.
inline Status DecodeOneDelta(const uint8_t** p, const uint8_t* end,
                             uint32_t* acc, uint32_t* out_val) {
  uint64_t delta = 0;
  int shift = 0;
  const uint8_t* q = *p;
  for (;;) {
    if (q >= end) {
      return Status::Corruption("truncated varint in tid-list");
    }
    if (shift > 63) {
      return Status::Corruption("overlong varint in tid-list");
    }
    const uint8_t b = *q++;
    delta |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  if (delta == 0) {
    return Status::Corruption("duplicate tid in tid-list");
  }
  if (delta > UINT32_MAX - *acc) {
    return Status::Corruption("tid-list delta overflows uint32");
  }
  *acc += static_cast<uint32_t>(delta);
  *out_val = *acc;
  *p = q;
  return Status::OK();
}

#ifdef FM_SIMD_X86

/// Inclusive prefix sum of 4 u32 lanes, then adds the running base; the
/// new base is the top lane. SSE2 ops only, but kept behind the sse4.1
/// target attribute with its callers.
#define FM_PREFIX_SUM_STEP(vec)                              \
  do {                                                       \
    (vec) = _mm_add_epi32((vec), _mm_slli_si128((vec), 4));  \
    (vec) = _mm_add_epi32((vec), _mm_slli_si128((vec), 8));  \
  } while (0)

/// Decodes a 16-byte block known to hold 16 single-byte, non-zero deltas:
/// widen u8 -> u32, prefix-sum each group of 4, carry the base across
/// groups, store 16 absolute values.
__attribute__((target("sse4.1"))) inline void DecodeBlock16(
    __m128i chunk, uint32_t* acc, uint32_t* out) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo16 = _mm_unpacklo_epi8(chunk, zero);
  const __m128i hi16 = _mm_unpackhi_epi8(chunk, zero);
  __m128i groups[4] = {
      _mm_unpacklo_epi16(lo16, zero), _mm_unpackhi_epi16(lo16, zero),
      _mm_unpacklo_epi16(hi16, zero), _mm_unpackhi_epi16(hi16, zero)};
  uint32_t base = *acc;
  for (int g = 0; g < 4; ++g) {
    FM_PREFIX_SUM_STEP(groups[g]);
    groups[g] = _mm_add_epi32(groups[g], _mm_set1_epi32(
                                             static_cast<int>(base)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * g), groups[g]);
    base = static_cast<uint32_t>(_mm_extract_epi32(groups[g], 3));
  }
  *acc = base;
}

/// 16 single-byte deltas can add at most 16*127; starting above this
/// ceiling forces the (overflow-checked) scalar step instead.
constexpr uint32_t kMaxSafeBase16 = UINT32_MAX - 16u * 127u;
constexpr uint32_t kMaxSafeBase32 = UINT32_MAX - 32u * 127u;

__attribute__((target("sse4.1"))) Status DecodeDeltaVarintsSse4(
    std::string_view* in, size_t count, uint32_t base, uint32_t* out) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in->data());
  const uint8_t* end = p + in->size();
  uint32_t acc = base;
  size_t i = 0;
  while (i + 16 <= count && end - p >= 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    if (_mm_movemask_epi8(chunk) != 0 || acc > kMaxSafeBase16) {
      // A multi-byte varint somewhere in the block (or a base too close
      // to the u32 ceiling): decode one value the checked way, then
      // re-test the window one varint further along.
      FM_RETURN_IF_ERROR(DecodeOneDelta(&p, end, &acc, out + i));
      ++i;
      continue;
    }
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(chunk, _mm_setzero_si128())) !=
        0) {
      return Status::Corruption("duplicate tid in tid-list");
    }
    DecodeBlock16(chunk, &acc, out + i);
    p += 16;
    i += 16;
  }
  for (; i < count; ++i) {
    FM_RETURN_IF_ERROR(DecodeOneDelta(&p, end, &acc, out + i));
  }
  in->remove_prefix(static_cast<size_t>(
      p - reinterpret_cast<const uint8_t*>(in->data())));
  return Status::OK();
}

__attribute__((target("avx2"))) Status DecodeDeltaVarintsAvx2(
    std::string_view* in, size_t count, uint32_t base, uint32_t* out) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in->data());
  const uint8_t* end = p + in->size();
  uint32_t acc = base;
  size_t i = 0;
  while (i + 32 <= count && end - p >= 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    if (_mm256_movemask_epi8(chunk) != 0 || acc > kMaxSafeBase32) {
      FM_RETURN_IF_ERROR(DecodeOneDelta(&p, end, &acc, out + i));
      ++i;
      continue;
    }
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(
            chunk, _mm256_setzero_si256())) != 0) {
      return Status::Corruption("duplicate tid in tid-list");
    }
    DecodeBlock16(_mm256_castsi256_si128(chunk), &acc, out + i);
    DecodeBlock16(_mm256_extracti128_si256(chunk, 1), &acc, out + i + 16);
    p += 32;
    i += 32;
  }
  // Hand the sub-32 tail to the narrower kernel (which ends scalar).
  std::string_view rest(reinterpret_cast<const char*>(p),
                        static_cast<size_t>(end - p));
  FM_RETURN_IF_ERROR(
      DecodeDeltaVarintsSse4(&rest, count - i, acc, out + i));
  in->remove_prefix(in->size() - rest.size());
  return Status::OK();
}

#undef FM_PREFIX_SUM_STEP

#endif  // FM_SIMD_X86

SimdLevel DetectSimdLevelUncached() {
  SimdLevel hw = SimdLevel::kScalar;
#ifdef FM_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    hw = SimdLevel::kAvx2;
  } else if (__builtin_cpu_supports("sse4.1")) {
    hw = SimdLevel::kSse4;
  }
#endif
  const char* env = std::getenv("FM_SIMD_LEVEL");
  if (env != nullptr && *env != '\0') {
    const Result<SimdLevel> forced = ParseSimdLevel(env);
    // The override can only lower the level: asking for a kernel the
    // CPU (or an FM_SIMD=OFF build) lacks silently keeps the best
    // supported one, so a fleet-wide env var never crashes a machine.
    if (forced.ok() && *forced < hw) {
      hw = *forced;
    }
  }
  return hw;
}

}  // namespace

SimdLevel DetectSimdLevel() {
  static const SimdLevel level = DetectSimdLevelUncached();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse4:
      return "sse4";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Result<SimdLevel> ParseSimdLevel(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse4") return SimdLevel::kSse4;
  if (name == "avx2") return SimdLevel::kAvx2;
  return Status::InvalidArgument("unknown SIMD level: " +
                                 std::string(name));
}

Status DecodeDeltaVarintsScalar(std::string_view* in, size_t count,
                                uint32_t base, uint32_t* out) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in->data());
  const uint8_t* end = p + in->size();
  uint32_t acc = base;
  for (size_t i = 0; i < count; ++i) {
    FM_RETURN_IF_ERROR(DecodeOneDelta(&p, end, &acc, out + i));
  }
  in->remove_prefix(static_cast<size_t>(
      p - reinterpret_cast<const uint8_t*>(in->data())));
  return Status::OK();
}

Status DecodeDeltaVarints(SimdLevel level, std::string_view* in,
                          size_t count, uint32_t base, uint32_t* out) {
#ifdef FM_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return DecodeDeltaVarintsAvx2(in, count, base, out);
    case SimdLevel::kSse4:
      return DecodeDeltaVarintsSse4(in, count, base, out);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return DecodeDeltaVarintsScalar(in, count, base, out);
}

}  // namespace fuzzymatch

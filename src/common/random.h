// Deterministic pseudo-random number generation.
//
// All stochastic components (min-hash seeding, error injection, synthetic
// data generation) draw from explicitly-seeded Rng instances so experiments
// are reproducible run to run.

#ifndef FUZZYMATCH_COMMON_RANDOM_H_
#define FUZZYMATCH_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fuzzymatch {

/// xoshiro256** PRNG. Not cryptographically secure; fast and high quality
/// for simulation purposes.
class Rng {
 public:
  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (unbiased).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Samples from a Zipf distribution over ranks {0, ..., n-1}:
/// P(rank k) proportional to 1 / (k+1)^theta. Used to give synthetic tokens
/// the skewed frequency profile (and hence IDF variance) of real data.
class ZipfSampler {
 public:
  /// Precomputes the CDF; n must be >= 1, theta >= 0 (theta = 0 is uniform).
  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_COMMON_RANDOM_H_

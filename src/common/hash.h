// Fast non-cryptographic 64-bit hashing.
//
// Used for min-hash signature coordinates, the token-frequency cache, and
// the candidate-score hash table. Seeded variants give the independent hash
// function family h_1..h_H required by min-hash (Section 4.1 of the paper).

#ifndef FUZZYMATCH_COMMON_HASH_H_
#define FUZZYMATCH_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fuzzymatch {

/// Mixes a 64-bit value (splitmix64 finalizer); bijective.
uint64_t Mix64(uint64_t x);

/// Hashes `data` with the given seed. Distinct seeds give (empirically)
/// independent hash functions; this is an xxhash-style multiply/rotate mix.
uint64_t Hash64(const void* data, size_t len, uint64_t seed);

/// Convenience overload for string views.
inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// Combines two hash values (order-dependent).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_COMMON_HASH_H_

#include "common/csv.h"

namespace fuzzymatch {

Result<bool> CsvReader::Next(std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  bool field_was_quoted = false;

  for (;;) {
    const int ci = in_->get();
    if (ci == std::char_traits<char>::eof()) {
      if (in_quotes) {
        return Status::Corruption("unterminated quoted CSV field");
      }
      if (!saw_any) {
        return false;
      }
      fields->push_back(std::move(field));
      ++records_;
      return true;
    }
    const char c = static_cast<char>(ci);
    saw_any = true;

    if (in_quotes) {
      if (c == '"') {
        if (in_->peek() == '"') {
          in_->get();
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }

    switch (c) {
      case '"':
        if (field.empty() && !field_was_quoted) {
          in_quotes = true;
          field_was_quoted = true;
        } else {
          return Status::Corruption("stray quote inside CSV field");
        }
        break;
      case ',':
        fields->push_back(std::move(field));
        field.clear();
        field_was_quoted = false;
        break;
      case '\r':
        // Swallow; the record ends at the following '\n'.
        break;
      case '\n':
        fields->push_back(std::move(field));
        ++records_;
        return true;
      default:
        field.push_back(c);
        break;
    }
  }
}

std::string CsvEscapeField(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

void CsvWriter::Write(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out_->put(',');
    }
    *out_ << CsvEscapeField(fields[i]);
  }
  out_->put('\n');
}

}  // namespace fuzzymatch

// SIMD-accelerated decode of delta-compressed LEB128 varint runs — the
// byte layout of ETI tid-list postings (eti/tid_list.h).
//
// The persisted format is untouched: these kernels read the exact bytes
// EncodeTidList writes. The speedup comes from the shape of real posting
// lists: tids are dense, so almost every delta fits one LEB128 byte, and a
// 16/32-byte block whose continuation bits are all clear decodes to 16/32
// values with one load, one movemask test, a widen, and a SIMD prefix sum
// instead of 16/32 dependent scalar byte walks. Blocks containing
// multi-byte varints fall back to the scalar step for one value and
// re-enter the fast path.
//
// Dispatch: DetectSimdLevel() probes the CPU once (AVX2, then SSE4.1,
// else scalar) and honours an FM_SIMD_LEVEL environment override
// (scalar|sse4|avx2) clamped to what the hardware supports — tests use it
// to force every kernel onto one machine. Builds with -DFM_SIMD=OFF (or
// non-x86-64 targets) compile only the scalar path and DetectSimdLevel()
// reports kScalar.
//
// Every kernel is bounds-checked: truncated input, overlong varints,
// deltas overflowing uint32, and zero deltas (duplicate tids) all return
// Status::Corruption without reading past the buffer — the contract the
// torn-write fault gate (fault/faulty_env.h) tests against.

#ifndef FUZZYMATCH_COMMON_SIMD_VARINT_H_
#define FUZZYMATCH_COMMON_SIMD_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/result.h"

namespace fuzzymatch {

enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

/// The best level this binary + CPU supports, probed once (thread-safe).
/// FM_SIMD_LEVEL=scalar|sse4|avx2 lowers (never raises) the answer.
SimdLevel DetectSimdLevel();

/// "scalar" / "sse4" / "avx2".
const char* SimdLevelName(SimdLevel level);

/// Parses a level name; InvalidArgument on anything else.
Result<SimdLevel> ParseSimdLevel(std::string_view name);

/// Decodes exactly `count` LEB128 varints from `in`, treating each as a
/// strictly positive delta accumulated onto `base`, and appends the
/// `count` absolute values to `out` (which must have room for them).
/// Consumes the decoded bytes from `*in`. Fails with Corruption on
/// truncated or overlong varints, zero deltas, or accumulation past
/// UINT32_MAX; `*in` and `out` are then in an unspecified (but in-bounds)
/// state and the caller discards both.
Status DecodeDeltaVarints(SimdLevel level, std::string_view* in,
                          size_t count, uint32_t base, uint32_t* out);

/// The reference implementation the SIMD kernels are tested against.
Status DecodeDeltaVarintsScalar(std::string_view* in, size_t count,
                                uint32_t base, uint32_t* out);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_COMMON_SIMD_VARINT_H_

// Shared types of the fuzzy match query processors.

#ifndef FUZZYMATCH_MATCH_MATCH_TYPES_H_
#define FUZZYMATCH_MATCH_MATCH_TYPES_H_

#include <cstdint>
#include <vector>

#include "sim/fms.h"
#include "storage/table.h"

namespace fuzzymatch {

/// One fuzzy match: a reference tuple and its fms similarity to the input.
struct Match {
  Tid tid = 0;
  double similarity = 0.0;

  bool operator==(const Match& other) const {
    return tid == other.tid && similarity == other.similarity;
  }
};

/// Query-level knobs of the K-fuzzy-match problem and the algorithms.
struct MatcherOptions {
  /// K: number of matches to return.
  size_t k = 1;
  /// c: minimum fms similarity of returned matches (paper experiments: 0).
  double min_similarity = 0.0;
  /// Optimistic short circuiting (Section 4.3.2) on/off.
  bool use_osc = true;
  /// The new-tid admission optimization of Figure 3 step 9b on/off.
  bool admission_filter = true;

  /// How the candidate upper bounds (OSC stopping test, verification-order
  /// early exit) treat the Lemma 4.2 q-gram slack. This is THE
  /// accuracy/efficiency dial of the algorithm:
  ///
  ///  - kAggressive (default): bound = score/w(u), the paper's practical
  ///    behavior — its OSC walkthrough computes bounds without adjustment
  ///    terms, and its measured OSC success rates (50-75%) and candidate
  ///    fetch counts (~1-60 per input) are only reachable this way. Not a
  ///    true upper bound of fms: heavily corrupted inputs whose target
  ///    under-scores in the ETI can be cut early (a few points of
  ///    accuracy versus the exhaustive scan — consistent with the
  ///    accuracies the paper reports).
  ///  - kTight: bound = min(1, (2/q)·score/w(u) + (1-1/q)), a provable
  ///    upper bound of fms_apx. Near-exhaustive accuracy, but the
  ///    (1-1/q) floor (0.75 at q=4) means thousands of candidates stay
  ///    above any realistic threshold, so most of the index's speedup is
  ///    forfeited.
  ///  - kConservative: bound = (score + Σw(t)(1-1/q))/w(u), the slack the
  ///    paper's Figure 3 pseudocode carries. Early termination can never
  ///    fire at q = 4; every scored tid is verified.
  enum class BoundPolicy { kAggressive, kTight, kConservative };
  BoundPolicy bound_policy = BoundPolicy::kAggressive;
  /// fms parameters (c_ins, transpositions, column weights).
  FmsOptions fms;

  /// Budget of the verified-tuple cache (tokenized reference tuples kept
  /// across queries, DESIGN.md 5d); 0 disables it.
  size_t tuple_cache_bytes = 32u << 20;
  /// Shard count of the tuple cache (rounded up to a power of two);
  /// higher values reduce lock contention between concurrent queries.
  size_t tuple_cache_shards = 8;
};

/// Per-query counters (the quantities Figures 6, 8, 9, 10 report).
struct QueryStats {
  uint64_t eti_lookups = 0;       // q-gram/token probes against the ETI
  uint64_t tids_processed = 0;    // tid-list entries scored
  uint64_t hash_table_size = 0;   // distinct tids that entered the table
  uint64_t candidates = 0;        // tids passing the score threshold
  uint64_t ref_tuples_fetched = 0;  // reference tuples fetched & compared
  uint64_t tuple_cache_hits = 0;  // verifications served from the cache
  bool osc_attempted = false;     // fetching test fired at least once
  bool osc_succeeded = false;     // stopping test confirmed the result
  double elapsed_seconds = 0.0;

  void Reset() { *this = QueryStats(); }
};

/// Running totals over many queries.
///
/// This struct is a per-matcher façade: every Accumulate() also records
/// the same quantities into the process-wide obs::MetricsRegistry under
/// `match.*` (counters plus the `match.query_seconds` histogram), so the
/// benches' per-matcher reporting and the system's own metrics dump stay
/// in lockstep.
struct AggregateStats {
  uint64_t queries = 0;
  uint64_t eti_lookups = 0;
  uint64_t tids_processed = 0;
  uint64_t hash_table_size = 0;
  uint64_t candidates = 0;
  uint64_t ref_tuples_fetched = 0;
  /// Cache-served verifications (the registry's tuple_cache.* counters
  /// carry the process-wide account; this is the per-matcher slice).
  uint64_t tuple_cache_hits = 0;
  uint64_t osc_attempted = 0;
  uint64_t osc_succeeded = 0;
  /// Fetch counts split by OSC outcome (Figure 8's bars): succeeded,
  /// attempted-but-failed, and queries where the fetching test never
  /// fired (counting those as "failed" would skew the Figure 8 split).
  uint64_t fetched_when_osc_succeeded = 0;
  uint64_t fetched_when_osc_failed = 0;
  uint64_t fetched_when_osc_not_attempted = 0;
  double elapsed_seconds = 0.0;

  void Accumulate(const QueryStats& q);
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_MATCH_MATCH_TYPES_H_

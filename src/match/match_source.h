// MatchSource: the minimal query-side contract a serving component needs
// from a fuzzy-match engine — find top-K matches for a row and fetch the
// reference tuple behind a match. Both the single-database FuzzyMatcher
// and the sharded scatter/gather coordinator implement it, so
// BatchCleaner and MatchServer run unchanged against either topology.

#ifndef FUZZYMATCH_MATCH_MATCH_SOURCE_H_
#define FUZZYMATCH_MATCH_MATCH_SOURCE_H_

#include <vector>

#include "match/match_types.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace fuzzymatch {

/// Thread safety: implementations must allow concurrent FindMatches /
/// GetReferenceTuple calls once construction has finished, matching the
/// read-side contract of FuzzyMatcher.
class MatchSource {
 public:
  virtual ~MatchSource() = default;

  /// Returns the K reference tuples most similar to `input`, best first,
  /// with ties broken by ascending tid.
  virtual Result<std::vector<Match>> FindMatches(
      const Row& input, QueryStats* stats = nullptr) const = 0;

  /// Fetches the reference tuple behind a match result.
  virtual Result<Row> GetReferenceTuple(Tid tid) const = 0;

  /// Schema of the reference relation (shared by all shards, if any).
  virtual const Schema& reference_schema() const = 0;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_MATCH_MATCH_SOURCE_H_

// TupleCache: a sharded LRU cache of tokenized reference tuples.
//
// Candidate verification (the match.fetch/match.verify spans) re-reads
// popular reference tuples through the pager on every query that reaches
// them — in a served workload the same clean tuples are fetched over and
// over across queries. This cache keeps their *tokenized* form resident,
// so a hit skips both the heap-file read (buffer-pool latching included)
// and the re-tokenization.
//
// Values are shared_ptr<const TokenizedTuple>: a reader holds its pin via
// the shared_ptr while eviction or invalidation can drop the cache's own
// reference concurrently, so no reader ever observes a freed tuple.
//
// Thread safety: fully thread-safe. Keys are sharded by mixed tid; each
// shard has its own mutex and LRU list, so concurrent queries rarely
// contend. Maintenance (tuple insert/remove in the reference relation)
// calls Erase(tid) to keep served verifications coherent.

#ifndef FUZZYMATCH_MATCH_TUPLE_CACHE_H_
#define FUZZYMATCH_MATCH_TUPLE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "text/tokenizer.h"

namespace fuzzymatch {

class TupleCache {
 public:
  /// `memory_budget_bytes` caps the estimated resident bytes across all
  /// shards (0 disables the cache: Get always misses, Put is a no-op).
  /// `shards` is rounded up to a power of two.
  TupleCache(size_t memory_budget_bytes, size_t shards);

  TupleCache(const TupleCache&) = delete;
  TupleCache& operator=(const TupleCache&) = delete;

  /// The cached tokenization of `tid`, or nullptr on a miss. A hit
  /// refreshes the entry's LRU position.
  std::shared_ptr<const TokenizedTuple> Get(Tid tid) const;

  /// Inserts (or replaces) the tokenization of `tid`, evicting
  /// least-recently-used entries of the same shard past the budget.
  void Put(Tid tid, std::shared_ptr<const TokenizedTuple> tuple);

  /// Drops `tid` if cached — the maintenance coherence hook.
  void Erase(Tid tid);

  bool enabled() const { return budget_per_shard_ > 0; }
  size_t entry_count() const;
  size_t memory_bytes() const;

  /// Estimated resident cost of one cached tuple (strings + overheads).
  static size_t TupleBytes(const TokenizedTuple& tuple);

 private:
  struct Entry {
    Tid tid = 0;
    std::shared_ptr<const TokenizedTuple> tuple;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Tid, std::list<Entry>::iterator> map;
    size_t bytes = 0;
  };

  Shard& ShardFor(Tid tid) const;

  size_t budget_per_shard_ = 0;
  mutable std::vector<Shard> shards_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_MATCH_TUPLE_CACHE_H_

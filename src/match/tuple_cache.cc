#include "match/tuple_cache.h"

#include "common/hash.h"
#include "obs/metrics.h"

namespace fuzzymatch {

namespace {

obs::Counter& HitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("tuple_cache.hits");
  return *c;
}

obs::Counter& MissesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("tuple_cache.misses");
  return *c;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("tuple_cache.evictions");
  return *c;
}

obs::Counter& InvalidationsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("tuple_cache.invalidations");
  return *c;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TupleCache::TupleCache(size_t memory_budget_bytes, size_t shards) {
  const size_t num_shards = RoundUpPow2(shards == 0 ? 1 : shards);
  shards_ = std::vector<Shard>(num_shards);
  budget_per_shard_ = memory_budget_bytes / num_shards;
}

TupleCache::Shard& TupleCache::ShardFor(Tid tid) const {
  return shards_[Mix64(tid) & (shards_.size() - 1)];
}

size_t TupleCache::TupleBytes(const TokenizedTuple& tuple) {
  size_t bytes = 128;  // entry, list node, and map slot overheads
  for (const auto& column : tuple) {
    bytes += sizeof(std::vector<std::string>) + 8;
    for (const auto& token : column) {
      bytes += sizeof(std::string) + token.capacity();
    }
  }
  return bytes;
}

std::shared_ptr<const TokenizedTuple> TupleCache::Get(Tid tid) const {
  if (!enabled()) {
    return nullptr;
  }
  Shard& shard = ShardFor(tid);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(tid);
  if (it == shard.map.end()) {
    MissesCounter().Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  HitsCounter().Increment();
  return it->second->tuple;
}

void TupleCache::Put(Tid tid, std::shared_ptr<const TokenizedTuple> tuple) {
  if (!enabled() || tuple == nullptr) {
    return;
  }
  const size_t bytes = TupleBytes(*tuple);
  Shard& shard = ShardFor(tid);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(tid);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  // An oversized tuple would evict the whole shard for nothing.
  if (bytes > budget_per_shard_) {
    return;
  }
  while (shard.bytes + bytes > budget_per_shard_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.tid);
    shard.lru.pop_back();
    EvictionsCounter().Increment();
  }
  shard.lru.push_front(Entry{tid, std::move(tuple), bytes});
  shard.map.emplace(tid, shard.lru.begin());
  shard.bytes += bytes;
}

void TupleCache::Erase(Tid tid) {
  if (!enabled()) {
    return;
  }
  Shard& shard = ShardFor(tid);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(tid);
  if (it == shard.map.end()) {
    return;
  }
  shard.bytes -= it->second->bytes;
  shard.lru.erase(it->second);
  shard.map.erase(it);
  InvalidationsCounter().Increment();
}

size_t TupleCache::entry_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

size_t TupleCache::memory_bytes() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.bytes;
  }
  return n;
}

}  // namespace fuzzymatch

// Naive fuzzy match: compare the input tuple against every reference
// tuple. The paper's baseline (and its unit of normalized elapsed time),
// also usable with the ed similarity for the Section 6.2.1.1 comparison.

#ifndef FUZZYMATCH_MATCH_NAIVE_MATCHER_H_
#define FUZZYMATCH_MATCH_NAIVE_MATCHER_H_

#include <vector>

#include "match/match_types.h"
#include "sim/fms.h"
#include "storage/table.h"
#include "text/idf_weights.h"
#include "text/tokenizer.h"

namespace fuzzymatch {

/// Thread safety: once Prepare() has returned, FindMatches is safe from
/// concurrent threads — it only reads the tokenized snapshot and records
/// into lock-free registry metrics.
class NaiveMatcher {
 public:
  /// Which similarity function ranks the reference tuples.
  enum class SimilarityKind { kFms, kEd };

  /// `ref` and `weights` must outlive the matcher.
  NaiveMatcher(Table* ref, const IdfWeights* weights, SimilarityKind kind,
               MatcherOptions options);

  /// Scans and tokenizes the reference relation once; must be called
  /// before Match().
  Status Prepare();

  /// Returns the K reference tuples most similar to `input`, best first,
  /// filtered by the minimum similarity.
  Result<std::vector<Match>> FindMatches(const Row& input,
                                   QueryStats* stats = nullptr) const;

 private:
  Table* ref_;
  SimilarityKind kind_;
  MatcherOptions options_;
  FmsSimilarity fms_;
  Tokenizer tokenizer_;
  std::vector<std::pair<Tid, TokenizedTuple>> tokenized_ref_;
  bool prepared_ = false;
};

/// Keeps the best K (tid, similarity) pairs seen; shared by both matchers.
class TopKCollector {
 public:
  TopKCollector(size_t k, double min_similarity)
      : k_(k), min_similarity_(min_similarity) {}

  /// Offers one scored tuple.
  void Offer(Tid tid, double similarity);

  /// K-th best similarity so far, or -1 if fewer than K collected. Any
  /// tuple that cannot beat this cannot enter the result.
  double KthBest() const;

  /// Sorted best-first, filtered by the minimum similarity.
  std::vector<Match> Take();

 private:
  size_t k_;
  double min_similarity_;
  std::vector<Match> heap_;  // min-heap on similarity
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_MATCH_NAIVE_MATCHER_H_

#include "match/match_types.h"

#include "obs/metrics.h"

namespace fuzzymatch {

namespace {

/// The registry-side accumulation targets, resolved once per process.
struct MatchMetrics {
  obs::Counter* queries;
  obs::Counter* eti_lookups;
  obs::Counter* tids_processed;
  obs::Counter* candidates;
  obs::Counter* ref_tuples_fetched;
  obs::Counter* osc_attempted;
  obs::Counter* osc_succeeded;
  obs::Counter* fetched_osc_succeeded;
  obs::Counter* fetched_osc_failed;
  obs::Counter* fetched_osc_not_attempted;
  obs::Histogram* query_seconds;

  static const MatchMetrics& Get() {
    static const MatchMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* metrics = new MatchMetrics();
      metrics->queries = reg.GetCounter("match.queries");
      metrics->eti_lookups = reg.GetCounter("match.eti_lookups");
      metrics->tids_processed = reg.GetCounter("match.tids_processed");
      metrics->candidates = reg.GetCounter("match.candidates");
      metrics->ref_tuples_fetched = reg.GetCounter("match.ref_tuples_fetched");
      metrics->osc_attempted = reg.GetCounter("match.osc_attempted");
      metrics->osc_succeeded = reg.GetCounter("match.osc_succeeded");
      metrics->fetched_osc_succeeded =
          reg.GetCounter("match.fetched_when_osc_succeeded");
      metrics->fetched_osc_failed =
          reg.GetCounter("match.fetched_when_osc_failed");
      metrics->fetched_osc_not_attempted =
          reg.GetCounter("match.fetched_when_osc_not_attempted");
      metrics->query_seconds = reg.GetHistogram(
          "match.query_seconds", obs::LatencyHistogramOptions());
      return metrics;
    }();
    return *m;
  }
};

}  // namespace

void AggregateStats::Accumulate(const QueryStats& q) {
  ++queries;
  eti_lookups += q.eti_lookups;
  tids_processed += q.tids_processed;
  hash_table_size += q.hash_table_size;
  candidates += q.candidates;
  ref_tuples_fetched += q.ref_tuples_fetched;
  tuple_cache_hits += q.tuple_cache_hits;
  osc_attempted += q.osc_attempted ? 1 : 0;
  osc_succeeded += q.osc_succeeded ? 1 : 0;
  if (q.osc_succeeded) {
    fetched_when_osc_succeeded += q.ref_tuples_fetched;
  } else if (q.osc_attempted) {
    fetched_when_osc_failed += q.ref_tuples_fetched;
  } else {
    fetched_when_osc_not_attempted += q.ref_tuples_fetched;
  }
  elapsed_seconds += q.elapsed_seconds;

  const MatchMetrics& m = MatchMetrics::Get();
  m.queries->Increment();
  m.eti_lookups->Increment(q.eti_lookups);
  m.tids_processed->Increment(q.tids_processed);
  m.candidates->Increment(q.candidates);
  m.ref_tuples_fetched->Increment(q.ref_tuples_fetched);
  if (q.osc_attempted) {
    m.osc_attempted->Increment();
  }
  if (q.osc_succeeded) {
    m.osc_succeeded->Increment();
    m.fetched_osc_succeeded->Increment(q.ref_tuples_fetched);
  } else if (q.osc_attempted) {
    m.fetched_osc_failed->Increment(q.ref_tuples_fetched);
  } else {
    m.fetched_osc_not_attempted->Increment(q.ref_tuples_fetched);
  }
  m.query_seconds->Observe(q.elapsed_seconds);
}

}  // namespace fuzzymatch

// ETI-based fuzzy match query processing (Section 4.3 of the paper).
//
// Implements the basic algorithm of Figure 3 — probe the ETI with every
// coordinate of every input token's signature, score tids in a hash table,
// then fetch and verify candidates with fms in decreasing score order —
// and the optimistic short circuiting (OSC) optimization of Figure 4,
// which probes q-grams in decreasing weight order and tries to stop after
// the heavy ones via a fetching test and a stopping test.

#ifndef FUZZYMATCH_MATCH_ETI_MATCHER_H_
#define FUZZYMATCH_MATCH_ETI_MATCHER_H_

#include <mutex>
#include <vector>

#include "common/flat_u32_map.h"
#include "eti/eti.h"
#include "match/match_types.h"
#include "match/tuple_cache.h"
#include "sim/fms.h"
#include "storage/table.h"
#include "text/idf_weights.h"
#include "text/minhash.h"
#include "text/tokenizer.h"

namespace fuzzymatch {

/// Thread safety: FindMatches is safe to call from any number of threads
/// concurrently — per-query state lives on the stack, the storage read
/// path is latched, and the aggregate-stats accumulator is guarded by a
/// small mutex (registry mirrors are lock-free atomics). Pass a distinct
/// `stats` out-param per thread, or none.
class EtiMatcher {
 public:
  /// `ref`, `eti` and `weights` must outlive the matcher and must describe
  /// the same build (same reference relation, same EtiParams).
  EtiMatcher(Table* ref, const Eti* eti, const IdfWeights* weights,
             MatcherOptions options);

  /// The K-fuzzy-match operation: the at-most-K reference tuples closest
  /// to `input` under fms, each with similarity >= the configured minimum,
  /// best first. Probabilistically exact (Theorems 1 and 2).
  Result<std::vector<Match>> FindMatches(const Row& input,
                                   QueryStats* stats = nullptr) const;

  /// Snapshot of the totals over all FindMatches() calls since
  /// construction/reset (by value: the accumulator is shared between
  /// threads and must not be read through a reference).
  AggregateStats aggregate_stats() const {
    std::lock_guard<std::mutex> lock(aggregate_mu_);
    return aggregate_;
  }
  void ResetAggregateStats() {
    std::lock_guard<std::mutex> lock(aggregate_mu_);
    aggregate_ = AggregateStats();
  }

  const MatcherOptions& options() const { return options_; }

  /// Drops `tid` from the verified-tuple cache — called by reference
  /// maintenance so served verifications never see a stale tokenization.
  void InvalidateCachedTuple(Tid tid) const { tuple_cache_.Erase(tid); }

  /// The cross-query verified-tuple cache (telemetry and tests).
  const TupleCache& tuple_cache() const { return tuple_cache_; }

  /// The index this matcher probes (introspection: statusz accel health).
  const Eti& eti() const { return *eti_; }

 private:
  /// One ETI probe. The gram bytes live in the query's arena string —
  /// offsets instead of per-probe strings keep expansion allocation-free
  /// (and safe across arena reallocation, which string_views would not
  /// be under SSO).
  struct Probe {
    uint32_t gram_offset;
    uint32_t gram_len;
    uint32_t coordinate;
    uint32_t column;
    double weight;
  };

  /// Per-thread reusable query state (gram arena, probe list, score
  /// tables, decode scratch) — defined in the .cc. FindMatchesImpl grabs
  /// the calling thread's instance, so steady-state queries allocate
  /// nothing; this covers ShardedMatcher's worker threads too, since
  /// they land here per shard.
  struct MatchScratch;

  /// fms(u, reference tuple `tid`), served from the per-query memo, then
  /// the cross-query tuple cache, and only then the pager.
  Result<double> VerifiedSimilarity(Tid tid, const TokenizedTuple& u,
                                    FlatU32Map<double>* cache,
                                    QueryStats* qs) const;

  /// FindMatches minus the trace boundary (which needs to observe the
  /// early returns' Status).
  Result<std::vector<Match>> FindMatchesImpl(const Row& input,
                                             QueryStats* stats) const;

  Table* ref_;
  const Eti* eti_;
  MatcherOptions options_;
  FmsSimilarity fms_;
  Tokenizer tokenizer_;
  MinHasher hasher_;
  mutable TupleCache tuple_cache_;
  mutable std::mutex aggregate_mu_;
  mutable AggregateStats aggregate_;  // guarded by aggregate_mu_
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_MATCH_ETI_MATCHER_H_

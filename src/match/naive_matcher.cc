#include "match/naive_matcher.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/metrics.h"
#include "sim/ed_tuple.h"

namespace fuzzymatch {

namespace {

obs::Counter& NaiveQueriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("naive.queries");
  return *c;
}

obs::Histogram& NaiveQuerySeconds() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "naive.query_seconds", obs::LatencyHistogramOptions());
  return *h;
}

// Min-heap on (similarity, then tid descending): the root is the entry
// that deterministically loses first, so score ties evict the larger tid
// and the retained set never depends on insertion order.
struct HeapLess {
  bool operator()(const Match& a, const Match& b) const {
    if (a.similarity != b.similarity) {
      return a.similarity > b.similarity;
    }
    return a.tid < b.tid;
  }
};

bool Beats(Tid tid, double similarity, const Match& worst) {
  if (similarity != worst.similarity) {
    return similarity > worst.similarity;
  }
  return tid < worst.tid;
}
}  // namespace

void TopKCollector::Offer(Tid tid, double similarity) {
  if (similarity < min_similarity_) {
    return;
  }
  if (heap_.size() < k_) {
    heap_.push_back(Match{tid, similarity});
    std::push_heap(heap_.begin(), heap_.end(), HeapLess());
    return;
  }
  if (Beats(tid, similarity, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapLess());
    heap_.back() = Match{tid, similarity};
    std::push_heap(heap_.begin(), heap_.end(), HeapLess());
  }
}

double TopKCollector::KthBest() const {
  if (heap_.size() < k_) {
    return -1.0;
  }
  return heap_.front().similarity;
}

std::vector<Match> TopKCollector::Take() {
  std::vector<Match> out = std::move(heap_);
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) {
      return a.similarity > b.similarity;
    }
    return a.tid < b.tid;
  });
  return out;
}

NaiveMatcher::NaiveMatcher(Table* ref, const IdfWeights* weights,
                           SimilarityKind kind, MatcherOptions options)
    : ref_(ref),
      kind_(kind),
      options_(std::move(options)),
      fms_(weights, options_.fms),
      tokenizer_() {}

Status NaiveMatcher::Prepare() {
  tokenized_ref_.clear();
  tokenized_ref_.reserve(ref_->row_count());
  Table::Scanner scanner = ref_->Scan();
  Tid tid;
  Row row;
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
    if (!more) break;
    tokenized_ref_.emplace_back(tid, tokenizer_.TokenizeTuple(row));
  }
  prepared_ = true;
  return Status::OK();
}

Result<std::vector<Match>> NaiveMatcher::FindMatches(const Row& input,
                                               QueryStats* stats) const {
  if (!prepared_) {
    return Status::InvalidArgument("NaiveMatcher::Prepare() not called");
  }
  Timer timer;
  const TokenizedTuple u = tokenizer_.TokenizeTuple(input);
  TopKCollector top_k(options_.k, options_.min_similarity);
  for (const auto& [tid, v] : tokenized_ref_) {
    const double sim = (kind_ == SimilarityKind::kFms)
                           ? fms_.Similarity(u, v)
                           : EdTupleSimilarity(u, v);
    top_k.Offer(tid, sim);
  }
  const double elapsed = timer.ElapsedSeconds();
  NaiveQueriesCounter().Increment();
  NaiveQuerySeconds().Observe(elapsed);
  if (stats != nullptr) {
    stats->Reset();
    stats->ref_tuples_fetched = tokenized_ref_.size();
    stats->elapsed_seconds = elapsed;
  }
  return top_k.Take();
}

}  // namespace fuzzymatch

#include "match/eti_matcher.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "eti/signature.h"
#include "fault/failpoint.h"
#include "match/naive_matcher.h"  // TopKCollector
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {

namespace {

obs::Counter& ProbesBatchedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("lookup.probes_batched");
  return *c;
}

/// How far ahead of the probe being processed slot lines are prefetched.
/// Deep enough to cover a DRAM round-trip behind the decode+score work
/// of one probe, shallow enough not to thrash L1.
constexpr size_t kPrefetchDepth = 8;

/// Incrementally tracks the K+1 highest-scoring tids for the OSC tests.
/// Scores only grow during query processing and Update() is called on
/// every change, so the kept set is always the exact current top K+1:
/// a tid is only ever dropped when it is <= the list minimum, and the
/// list minimum never decreases afterwards. K is tiny, so a small sorted
/// array beats a heap.
class TopScores {
 public:
  TopScores() = default;
  explicit TopScores(size_t k) : limit_(k + 1) {}

  /// Re-arms for a new query, keeping the entry array's capacity.
  void Reset(size_t k) {
    limit_ = k + 1;
    entries_.clear();
  }

  /// Reports that `tid` now has total score `score` (>= its last value).
  void Update(Tid tid, double score) {
    // Remove a stale entry for this tid, if present.
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == tid) {
        entries_.erase(it);
        break;
      }
    }
    // Score ties order by tid ascending so the kept set (and which tid
    // is dropped at the limit) never depends on update order.
    auto pos = std::find_if(
        entries_.begin(), entries_.end(), [&](const auto& e) {
          return score > e.second || (score == e.second && tid < e.first);
        });
    if (pos == entries_.end()) {
      if (entries_.size() < limit_) {
        entries_.emplace_back(tid, score);
      }
      return;
    }
    entries_.insert(pos, {tid, score});
    if (entries_.size() > limit_) {
      entries_.pop_back();
    }
  }

  size_t size() const { return entries_.size(); }
  Tid tid(size_t i) const { return entries_[i].first; }
  double score(size_t i) const { return entries_[i].second; }

 private:
  size_t limit_ = 1;
  std::vector<std::pair<Tid, double>> entries_;  // descending score
};

}  // namespace

/// All heap-backed per-query state, held per thread so its capacity is
/// reused query over query — the hot loops then allocate only while a
/// buffer is still growing toward the workload's high-water mark.
struct EtiMatcher::MatchScratch {
  std::string gram_arena;
  std::vector<Probe> probes;
  std::vector<uint64_t> probe_hashes;
  std::vector<ArenaTokenCoordinate> coords;
  FlatU32Map<double> scores;
  FlatU32Map<double> fms_cache;
  TopScores top_scores;
  EtiScratch eti;
  std::vector<std::pair<double, Tid>> candidates;
};

EtiMatcher::EtiMatcher(Table* ref, const Eti* eti, const IdfWeights* weights,
                       MatcherOptions options)
    : ref_(ref),
      eti_(eti),
      options_(std::move(options)),
      fms_(weights, options_.fms),
      tokenizer_(eti->MakeTokenizer()),
      hasher_(eti->MakeHasher()),
      tuple_cache_(options_.tuple_cache_bytes, options_.tuple_cache_shards) {}

Result<double> EtiMatcher::VerifiedSimilarity(Tid tid,
                                              const TokenizedTuple& u,
                                              FlatU32Map<double>* cache,
                                              QueryStats* qs) const {
  if (const double* memo = cache->Find(tid)) {
    return *memo;
  }
  std::shared_ptr<const TokenizedTuple> tokens = tuple_cache_.Get(tid);
  if (tokens != nullptr) {
    ++qs->tuple_cache_hits;
  } else {
    FM_ASSIGN_OR_RETURN(const Row row, [&]() -> Result<Row> {
      FM_TRACE_SPAN("match.fetch");
      FM_FAIL_POINT("match.fetch_tuple");
      return ref_->Get(tid);
    }());
    ++qs->ref_tuples_fetched;
    tokens = std::make_shared<const TokenizedTuple>(
        tokenizer_.TokenizeTuple(row));
    tuple_cache_.Put(tid, tokens);
  }
  FM_TRACE_SPAN("match.verify");
  const double sim = fms_.Similarity(u, *tokens);
  cache->Insert(tid, sim);
  return sim;
}

Result<std::vector<Match>> EtiMatcher::FindMatches(const Row& input,
                                             QueryStats* stats) const {
  // Request boundary: when nothing upstream (server worker, cleaner)
  // installed a trace, this query gets its own id and span tree.
  obs::MaybeRequestTrace boundary("match");
  Result<std::vector<Match>> result = FindMatchesImpl(input, stats);
  if (!result.ok()) {
    boundary.SetStatus(result.status());
  }
  return result;
}

Result<std::vector<Match>> EtiMatcher::FindMatchesImpl(
    const Row& input, QueryStats* stats) const {
  Timer timer;
  QueryStats local_stats;
  QueryStats* qs = stats != nullptr ? stats : &local_stats;
  qs->Reset();

  FM_TRACE_SPAN("match.find_matches");
  FM_FAIL_POINT("match.query_delay");

  static thread_local MatchScratch scr;

  const TokenizedTuple u = tokenizer_.TokenizeTuple(input);
  const EtiParams& params = eti_->params();

  // Expand tokens into weighted ETI probes; compute w(u) and the total
  // adjustment term Σ_t w(t)·(1 − 1/q) (Figure 3, step 7). Gram bytes go
  // into one arena string and probes carry offsets, so expansion does a
  // handful of amortized appends instead of a string per probe.
  std::string& gram_arena = scr.gram_arena;
  gram_arena.clear();
  std::vector<Probe>& probes = scr.probes;
  probes.clear();
  double total_weight = 0.0;
  double full_adjustment = 0.0;
  const double dq = 1.0 - 1.0 / static_cast<double>(params.q);
  {
    FM_TRACE_SPAN("match.signature");
    size_t token_count = 0;
    size_t char_count = 0;
    for (uint32_t col = 0; col < u.size(); ++col) {
      for (const auto& token : u[col]) {
        ++token_count;
        char_count += token.size();
      }
    }
    const size_t probe_estimate =
        params.full_qgram_index
            ? char_count + token_count
            : token_count *
                  (static_cast<size_t>(params.signature_size) + 1);
    probes.reserve(probe_estimate);
    gram_arena.reserve(char_count +
                       probe_estimate * static_cast<size_t>(params.q));
    std::vector<ArenaTokenCoordinate>& coords = scr.coords;
    for (uint32_t col = 0; col < u.size(); ++col) {
      for (const auto& token : u[col]) {
        const double w = fms_.TokenWeight(token, col);
        total_weight += w;
        full_adjustment += w * dq;
        coords.clear();
        AppendTokenCoordinates(hasher_, params, token, w, &gram_arena,
                               &coords);
        for (const ArenaTokenCoordinate& tc : coords) {
          probes.push_back(Probe{tc.gram_offset, tc.gram_len,
                                 tc.coordinate, col, tc.weight_share});
        }
      }
    }
  }

  // Upper "bound" on the fms of a candidate whose accumulated absolute
  // score is `score_abs` — see MatcherOptions::BoundPolicy for the three
  // flavours and their accuracy/efficiency trade-off.
  const double two_over_q = 2.0 / static_cast<double>(params.q);
  auto ScoreUpperBound = [&](double score_abs) {
    switch (options_.bound_policy) {
      case MatcherOptions::BoundPolicy::kAggressive:
        return std::min(1.0, score_abs / total_weight);
      case MatcherOptions::BoundPolicy::kTight:
        return std::min(1.0, two_over_q * score_abs / total_weight + dq);
      case MatcherOptions::BoundPolicy::kConservative:
        return std::min(1.0,
                        (score_abs + full_adjustment) / total_weight);
    }
    return 1.0;
  };

  auto finish = [&](std::vector<Match> result) {
    qs->elapsed_seconds = timer.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lock(aggregate_mu_);
      aggregate_.Accumulate(*qs);
    }
    // Key query attributes ride on the trace so a tracez entry explains
    // itself without cross-referencing the aggregate counters.
    if (obs::RequestTrace::Current() != nullptr) {
      obs::AddTraceCount("eti_lookups", qs->eti_lookups);
      obs::AddTraceCount("tids_processed", qs->tids_processed);
      obs::AddTraceCount("candidates", qs->candidates);
      obs::AddTraceCount("ref_tuples_fetched", qs->ref_tuples_fetched);
      obs::AddTraceCount("tuple_cache_hits", qs->tuple_cache_hits);
      obs::AddTraceCount("matches", result.size());
      if (qs->osc_succeeded) {
        obs::AddTraceCount("osc_succeeded", 1);
      }
    }
    return result;
  };

  if (probes.empty() || total_weight <= 0.0) {
    return finish({});
  }

  if (options_.use_osc) {
    // OSC processes q-grams in decreasing weight order (Section 4.3.2).
    std::stable_sort(probes.begin(), probes.end(),
                     [](const Probe& a, const Probe& b) {
                       return a.weight > b.weight;
                     });
  }

  FlatU32Map<double>& scores = scr.scores;
  scores.Clear();
  scores.Reserve(256);
  FlatU32Map<double>& fms_cache = scr.fms_cache;
  fms_cache.Clear();
  fms_cache.Reserve(2 * options_.k + 8);
  TopScores& top_scores = scr.top_scores;
  top_scores.Reset(options_.k);
  EtiScratch& scratch = scr.eti;

  // Batched probing: with the hash accelerator on the route, compute
  // every probe's slot hash up front and software-prefetch slot lines a
  // fixed depth ahead of the probe being processed. Probes are still
  // *processed* strictly in the weight-sorted order above, so OSC
  // semantics — and match output — are unchanged byte for byte.
  const bool batched = eti_->accel_probes_active();
  std::vector<uint64_t>& probe_hashes = scr.probe_hashes;
  if (batched) {
    probe_hashes.resize(probes.size());
    for (size_t i = 0; i < probes.size(); ++i) {
      const Probe& p = probes[i];
      probe_hashes[i] = Eti::ProbeHash(
          std::string_view(gram_arena.data() + p.gram_offset, p.gram_len),
          p.coordinate, p.column);
    }
    ProbesBatchedCounter().Increment(probes.size());
    for (size_t i = 0; i < std::min(kPrefetchDepth, probes.size()); ++i) {
      eti_->PrefetchProbe(probe_hashes[i]);
    }
  }

  double remaining = total_weight;  // weight of probes not yet processed
  double processed = 0.0;

  for (size_t idx = 0; idx < probes.size(); ++idx) {
    const Probe& probe = probes[idx];
    const std::string_view gram(gram_arena.data() + probe.gram_offset,
                                probe.gram_len);
    ++qs->eti_lookups;
    if (batched && idx + kPrefetchDepth < probes.size()) {
      eti_->PrefetchProbe(probe_hashes[idx + kPrefetchDepth]);
    }
    FM_ASSIGN_OR_RETURN(
        const EtiLookupView entry,
        [&]() -> Result<EtiLookupView> {
          FM_TRACE_SPAN("match.probe");
          if (batched) {
            return eti_->LookupHashed(probe_hashes[idx], gram,
                                      probe.coordinate, probe.column,
                                      &scratch);
          }
          return eti_->LookupInto(gram, probe.coordinate, probe.column,
                                  &scratch);
        }());
    remaining -= probe.weight;
    processed += probe.weight;

    if (entry.found && !entry.is_stop) {
      FM_TRACE_SPAN("match.score");
      for (size_t t = 0; t < entry.num_tids; ++t) {
        const Tid tid = entry.tids[t];
        ++qs->tids_processed;
        if (double* score = scores.Find(tid)) {
          *score += probe.weight;
          if (options_.use_osc) {
            top_scores.Update(tid, *score);
          }
        } else if (!options_.admission_filter ||
                   ScoreUpperBound(probe.weight + remaining) >=
                       options_.min_similarity) {
          // A new tid can reach at most probe.weight + remaining score;
          // admit only if that could clear the similarity threshold
          // (Figure 3 step 9b, with the configured bound flavour).
          scores.Insert(tid, probe.weight);
          if (options_.use_osc) {
            top_scores.Update(tid, probe.weight);
          }
        }
      }
    }

    // Short-circuiting procedure (Figure 4), pointless after the last
    // probe (the basic path takes over then anyway).
    if (!options_.use_osc || idx + 1 >= probes.size() ||
        top_scores.size() < options_.k || processed <= 0.0) {
      continue;
    }
    const double score_k = top_scores.score(options_.k - 1);
    const double score_k1 =
        top_scores.size() > options_.k ? top_scores.score(options_.k) : 0.0;

    // Fetching test: extrapolate the K-th score over all q-grams and
    // compare with the best any other tid could still reach.
    const double estimated_k = score_k / processed * total_weight;
    const double best_possible_k1 = score_k1 + remaining;
    if (estimated_k <= best_possible_k1) {
      continue;
    }
    qs->osc_attempted = true;

    // Stopping test: every fetched candidate must already beat the upper
    // bound on any tuple outside the current top K.
    const double outsider_bound = ScoreUpperBound(score_k1 + remaining);
    bool all_pass = true;
    for (size_t j = 0; j < options_.k; ++j) {
      FM_ASSIGN_OR_RETURN(
          const double sim,
          VerifiedSimilarity(top_scores.tid(j), u, &fms_cache, qs));
      if (sim < outsider_bound) {
        all_pass = false;
        break;
      }
    }
    if (!all_pass) {
      continue;
    }
    qs->osc_succeeded = true;
    qs->hash_table_size = scores.size();
    TopKCollector collector(options_.k, options_.min_similarity);
    for (size_t j = 0; j < options_.k; ++j) {
      collector.Offer(top_scores.tid(j),
                      *fms_cache.Find(top_scores.tid(j)));
    }
    return finish(collector.Take());
  }

  // Basic path (Figure 3 steps 11-13): verify candidates in decreasing
  // score order, stopping once no unverified candidate's upper bound can
  // beat the current K-th best similarity.
  qs->hash_table_size = scores.size();
  std::vector<std::pair<double, Tid>>& candidates = scr.candidates;
  candidates.clear();
  candidates.reserve(scores.size());
  scores.ForEach([&](uint32_t tid, const double& score) {
    if (ScoreUpperBound(score) >= options_.min_similarity) {
      candidates.emplace_back(score, tid);
    }
  });
  qs->candidates = candidates.size();
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });

  TopKCollector collector(options_.k, options_.min_similarity);
  for (const auto& [score, tid] : candidates) {
    const double upper = ScoreUpperBound(score);
    const double kth = collector.KthBest();
    // Strict inequality: a candidate whose bound exactly equals the K-th
    // similarity could still tie and win on the tid tie-break.
    if (kth >= 0.0 && upper < kth) {
      break;  // nothing left can displace the current top K
    }
    FM_ASSIGN_OR_RETURN(const double sim,
                        VerifiedSimilarity(tid, u, &fms_cache, qs));
    collector.Offer(tid, sim);
  }
  return finish(collector.Take());
}

}  // namespace fuzzymatch

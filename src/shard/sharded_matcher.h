// ShardedMatcher: the scatter/gather coordinator over a ShardRouter.
//
// Each query is scattered to every shard's worker pool, runs the normal
// candidate/OSC pipeline against that shard's ETI (OSC's stopping test
// is sound per partition — see DESIGN.md 5h), and the per-shard top-K
// lists are k-way merged into the global top-K with deterministic
// (similarity desc, tid asc) ordering, so the merged output is
// byte-identical to the single-database matcher's.
//
// Each shard owns `replicas_per_shard` query engines (the read fan-out
// stub: all replicas share the shard's immutable index, each has its own
// tuple cache) and the same number of worker threads; tasks round-robin
// over the replica handles.

#ifndef FUZZYMATCH_SHARD_SHARDED_MATCHER_H_
#define FUZZYMATCH_SHARD_SHARDED_MATCHER_H_

#include <memory>
#include <vector>

#include "match/match_source.h"
#include "shard/shard_router.h"

namespace fuzzymatch {
namespace shard {

/// K-way merges per-shard top-K lists — each sorted best-first with the
/// matchers' (similarity desc, tid asc) order — into the global top-K,
/// preserving that order. Shards hold disjoint tids, so no deduplication
/// is needed. Exposed for unit testing.
std::vector<Match> MergeTopK(
    const std::vector<std::vector<Match>>& per_shard, size_t k);

/// Thread safety: FindMatches and GetReferenceTuple are safe from any
/// number of threads after Create() returns. Destroy only once no query
/// is in flight.
class ShardedMatcher : public MatchSource {
 public:
  struct Options {
    /// Query engines (and worker threads) per shard; tasks round-robin
    /// over the replica handles.
    size_t replicas_per_shard = 1;
  };

  /// `router` must outlive the matcher.
  static Result<std::unique_ptr<ShardedMatcher>> Create(
      ShardRouter* router, Options options);

  ~ShardedMatcher() override;

  /// Scatters the query to all shards and merges: at most K reference
  /// tuples (global tids) with fms >= c, most similar first, ties by
  /// ascending tid. `stats`, when given, receives the per-shard counters
  /// summed (osc_succeeded = every shard short-circuited).
  Result<std::vector<Match>> FindMatches(
      const Row& input, QueryStats* stats = nullptr) const override;

  /// Routes a global tid to its shard and fetches the tuple.
  Result<Row> GetReferenceTuple(Tid tid) const override;

  const Schema& reference_schema() const override {
    return router_->reference_schema();
  }

  const ShardRouter& router() const { return *router_; }
  size_t num_shards() const { return router_->num_shards(); }
  size_t replicas_per_shard() const { return options_.replicas_per_shard; }

  /// Tasks queued (not yet picked up) at shard `k` right now.
  size_t queue_depth(size_t k) const;

  /// Query-path totals of shard `k`, summed over its replica engines.
  AggregateStats shard_aggregate_stats(size_t k) const;

 private:
  struct ShardExec;
  struct Task;

  ShardedMatcher(ShardRouter* router, Options options);

  Result<std::vector<Match>> FindMatchesImpl(const Row& input,
                                             QueryStats* stats) const;
  void WorkerLoop(ShardExec* exec) const;
  void RunTask(ShardExec* exec, Task* task) const;

  ShardRouter* router_;
  Options options_;
  size_t k_;  // MatcherOptions::k of the shard engines
  std::vector<std::unique_ptr<ShardExec>> execs_;
};

}  // namespace shard
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SHARD_SHARDED_MATCHER_H_

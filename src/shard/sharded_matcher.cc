#include "shard/sharded_matcher.h"

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {
namespace shard {

namespace {

/// Interned "shard[k]" span label — trace records holding the pointer
/// can outlive any particular matcher, so the strings leak by design.
const char* ShardSpanLabel(size_t k) {
  static std::mutex mu;
  static std::vector<std::string*> labels;
  std::lock_guard<std::mutex> lock(mu);
  while (labels.size() <= k) {
    labels.push_back(
        new std::string("shard[" + std::to_string(labels.size()) + "]"));
  }
  return labels[k]->c_str();
}

obs::Counter& ScatterQueriesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("shard.scatter_queries");
  return *c;
}

obs::Counter& FanoutTasksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("shard.fanout_tasks");
  return *c;
}

obs::Histogram& MergeSecondsHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "shard.merge_seconds", obs::LatencyHistogramOptions());
  return *h;
}

}  // namespace

std::vector<Match> MergeTopK(
    const std::vector<std::vector<Match>>& per_shard, size_t k) {
  struct Cursor {
    size_t shard;
    size_t pos;
  };
  // Top of the heap = globally best remaining match; shard index breaks
  // exact (similarity, tid) duplicates, which disjoint tids rule out
  // anyway.
  const auto after = [&per_shard](const Cursor& a, const Cursor& b) {
    const Match& ma = per_shard[a.shard][a.pos];
    const Match& mb = per_shard[b.shard][b.pos];
    if (ma.similarity != mb.similarity) {
      return ma.similarity < mb.similarity;
    }
    return ma.tid > mb.tid;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heap(
      after);
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (!per_shard[s].empty()) {
      heap.push(Cursor{s, 0});
    }
  }
  std::vector<Match> out;
  out.reserve(std::min(k, per_shard.size() * 4));
  while (!heap.empty() && out.size() < k) {
    const Cursor top = heap.top();
    heap.pop();
    out.push_back(per_shard[top.shard][top.pos]);
    if (top.pos + 1 < per_shard[top.shard].size()) {
      heap.push(Cursor{top.shard, top.pos + 1});
    }
  }
  return out;
}

/// One scattered query at one shard. The coordinator owns the storage;
/// the worker fills in the result and signals `done`.
struct ShardedMatcher::Task {
  const Row* input = nullptr;
  uint64_t request_id = 0;
  bool traced = false;
  std::chrono::steady_clock::time_point child_start;
  obs::TraceRecord child_record;

  Status status;
  std::vector<Match> matches;  // global tids, best first
  QueryStats stats;

  std::mutex* done_mu = nullptr;
  std::condition_variable* done_cv = nullptr;
  size_t* remaining = nullptr;
};

/// Per-shard executor: replica engines + task queue + worker threads.
struct ShardedMatcher::ShardExec {
  size_t index = 0;
  std::vector<std::unique_ptr<EtiMatcher>> replicas;
  std::atomic<size_t> next_replica{0};

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Task*> queue;
  bool stopping = false;
  std::atomic<size_t> depth{0};  // queued, not yet picked up
  std::vector<std::thread> workers;

  // This shard's registry slice, resolved once at Create.
  obs::Counter* queries = nullptr;
  obs::Counter* candidates = nullptr;
  obs::Counter* osc_short_circuits = nullptr;
  obs::Gauge* queue_depth_gauge = nullptr;
};

ShardedMatcher::ShardedMatcher(ShardRouter* router, Options options)
    : router_(router),
      options_(options),
      k_(router->shard(0).config().matcher.k) {}

Result<std::unique_ptr<ShardedMatcher>> ShardedMatcher::Create(
    ShardRouter* router, Options options) {
  if (router == nullptr || router->num_shards() < 1) {
    return Status::InvalidArgument("ShardedMatcher needs a built router");
  }
  if (options.replicas_per_shard < 1) {
    return Status::InvalidArgument("replicas_per_shard must be >= 1");
  }
  auto matcher = std::unique_ptr<ShardedMatcher>(
      new ShardedMatcher(router, options));
  auto& reg = obs::MetricsRegistry::Global();
  matcher->execs_.reserve(router->num_shards());
  for (size_t k = 0; k < router->num_shards(); ++k) {
    auto exec = std::make_unique<ShardExec>();
    exec->index = k;
    for (size_t r = 0; r < options.replicas_per_shard; ++r) {
      exec->replicas.push_back(router->shard(k).NewQueryEngine());
    }
    const std::string suffix = "_s" + std::to_string(k);
    exec->queries = reg.GetCounter("shard.queries" + suffix);
    exec->candidates = reg.GetCounter("shard.candidates" + suffix);
    exec->osc_short_circuits =
        reg.GetCounter("shard.osc_short_circuits" + suffix);
    exec->queue_depth_gauge = reg.GetGauge("shard.queue_depth" + suffix);
    matcher->execs_.push_back(std::move(exec));
  }
  for (auto& exec : matcher->execs_) {
    ShardExec* raw = exec.get();
    for (size_t r = 0; r < options.replicas_per_shard; ++r) {
      raw->workers.emplace_back(
          [m = matcher.get(), raw] { m->WorkerLoop(raw); });
    }
  }
  return matcher;
}

ShardedMatcher::~ShardedMatcher() {
  for (auto& exec : execs_) {
    {
      std::lock_guard<std::mutex> lock(exec->mu);
      exec->stopping = true;
    }
    exec->cv.notify_all();
  }
  for (auto& exec : execs_) {
    for (std::thread& worker : exec->workers) {
      worker.join();
    }
  }
}

void ShardedMatcher::WorkerLoop(ShardExec* exec) const {
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(exec->mu);
      exec->cv.wait(lock, [exec] {
        return exec->stopping || !exec->queue.empty();
      });
      if (exec->queue.empty()) {
        return;  // stopping, queue drained
      }
      task = exec->queue.front();
      exec->queue.pop_front();
      exec->depth.store(exec->queue.size(), std::memory_order_relaxed);
      exec->queue_depth_gauge->Set(
          static_cast<double>(exec->queue.size()));
    }
    if (task->traced) {
      task->child_start = std::chrono::steady_clock::now();
      // Child trace carries the coordinator's request id and collects
      // into the task; the coordinator grafts it into the parent tree
      // after the gather, so one request renders as one tree.
      obs::RequestTrace child(
          "shard", task->request_id,
          obs::RequestTrace::CollectInto{&task->child_record});
      RunTask(exec, task);
      if (!task->status.ok()) {
        child.SetStatus(task->status);
      }
    } else {
      RunTask(exec, task);
    }
    {
      // Notify while still holding the lock: the coordinator owns the
      // Task, the counter, and the condition variable on its stack and
      // frees them as soon as it observes remaining == 0 — which it can
      // only do after this mutex is released. Signalling after unlock
      // would race with that destruction.
      std::lock_guard<std::mutex> lock(*task->done_mu);
      --*task->remaining;
      task->done_cv->notify_one();
    }
  }
}

void ShardedMatcher::RunTask(ShardExec* exec, Task* task) const {
  // The read fan-out stub: round-robin over this shard's replica
  // handles. All replicas answer from the same immutable index.
  const size_t r = exec->next_replica.fetch_add(
                       1, std::memory_order_relaxed) %
                   exec->replicas.size();
  EtiMatcher* engine = exec->replicas[r].get();
  Result<std::vector<Match>> result =
      engine->FindMatches(*task->input, &task->stats);
  if (!result.ok()) {
    task->status = result.status();
    return;
  }
  task->matches = std::move(*result);
  for (Match& match : task->matches) {
    Result<Tid> global = router_->GlobalTid(exec->index, match.tid);
    if (!global.ok()) {  // engine returned a tid outside the shard map
      task->status = global.status();
      task->matches.clear();
      return;
    }
    match.tid = *global;
  }
  exec->queries->Increment();
  exec->candidates->Increment(task->stats.candidates);
  if (task->stats.osc_succeeded) {
    exec->osc_short_circuits->Increment();
  }
}

Result<std::vector<Match>> ShardedMatcher::FindMatches(
    const Row& input, QueryStats* stats) const {
  // Request boundary when called outside the server; under a server
  // worker (or BatchCleaner::Clean) the upstream trace is reused, so the
  // shard children always graft onto exactly one tree.
  obs::MaybeRequestTrace boundary("match");
  Result<std::vector<Match>> result = FindMatchesImpl(input, stats);
  if (!result.ok()) {
    boundary.SetStatus(result.status());
  }
  return result;
}

Result<std::vector<Match>> ShardedMatcher::FindMatchesImpl(
    const Row& input, QueryStats* stats) const {
  Timer timer;
  FM_TRACE_SPAN("shard.scatter_gather");
  obs::RequestTrace* parent = obs::RequestTrace::Current();

  const size_t n = execs_.size();
  std::vector<Task> tasks(n);
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = n;
  for (size_t k = 0; k < n; ++k) {
    Task& task = tasks[k];
    task.input = &input;
    task.traced = parent != nullptr;
    task.request_id = parent != nullptr ? parent->request_id() : 0;
    task.done_mu = &done_mu;
    task.done_cv = &done_cv;
    task.remaining = &remaining;
    ShardExec* exec = execs_[k].get();
    {
      std::lock_guard<std::mutex> lock(exec->mu);
      exec->queue.push_back(&task);
      exec->depth.store(exec->queue.size(), std::memory_order_relaxed);
      exec->queue_depth_gauge->Set(
          static_cast<double>(exec->queue.size()));
    }
    exec->cv.notify_one();
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
  }
  ScatterQueriesCounter().Increment();
  FanoutTasksCounter().Increment(n);

  if (parent != nullptr) {
    for (size_t k = 0; k < n; ++k) {
      parent->AdoptChildTrace(tasks[k].child_record, ShardSpanLabel(k),
                              tasks[k].child_start);
    }
  }
  for (size_t k = 0; k < n; ++k) {
    FM_RETURN_IF_ERROR(tasks[k].status);
  }

  std::vector<std::vector<Match>> per_shard(n);
  for (size_t k = 0; k < n; ++k) {
    per_shard[k] = std::move(tasks[k].matches);
  }
  Timer merge_timer;
  std::vector<Match> merged;
  {
    FM_TRACE_SPAN("shard.merge");
    merged = MergeTopK(per_shard, k_);
  }
  MergeSecondsHistogram().Observe(merge_timer.ElapsedSeconds());

  if (stats != nullptr) {
    stats->Reset();
    bool any_attempted = false;
    bool all_succeeded = true;
    for (const Task& task : tasks) {
      stats->eti_lookups += task.stats.eti_lookups;
      stats->tids_processed += task.stats.tids_processed;
      stats->hash_table_size += task.stats.hash_table_size;
      stats->candidates += task.stats.candidates;
      stats->ref_tuples_fetched += task.stats.ref_tuples_fetched;
      stats->tuple_cache_hits += task.stats.tuple_cache_hits;
      any_attempted = any_attempted || task.stats.osc_attempted;
      all_succeeded = all_succeeded && task.stats.osc_succeeded;
    }
    stats->osc_attempted = any_attempted;
    stats->osc_succeeded = all_succeeded;
    stats->elapsed_seconds = timer.ElapsedSeconds();
  }
  return merged;
}

Result<Row> ShardedMatcher::GetReferenceTuple(Tid tid) const {
  FM_ASSIGN_OR_RETURN(const auto location, router_->Locate(tid));
  return router_->shard(location.first)
      .GetReferenceTuple(location.second);
}

size_t ShardedMatcher::queue_depth(size_t k) const {
  return execs_[k]->depth.load(std::memory_order_relaxed);
}

AggregateStats ShardedMatcher::shard_aggregate_stats(size_t k) const {
  AggregateStats total;
  for (const auto& replica : execs_[k]->replicas) {
    const AggregateStats stats = replica->aggregate_stats();
    total.queries += stats.queries;
    total.eti_lookups += stats.eti_lookups;
    total.tids_processed += stats.tids_processed;
    total.hash_table_size += stats.hash_table_size;
    total.candidates += stats.candidates;
    total.ref_tuples_fetched += stats.ref_tuples_fetched;
    total.tuple_cache_hits += stats.tuple_cache_hits;
    total.osc_attempted += stats.osc_attempted;
    total.osc_succeeded += stats.osc_succeeded;
    total.fetched_when_osc_succeeded += stats.fetched_when_osc_succeeded;
    total.fetched_when_osc_failed += stats.fetched_when_osc_failed;
    total.fetched_when_osc_not_attempted +=
        stats.fetched_when_osc_not_attempted;
    total.elapsed_seconds += stats.elapsed_seconds;
  }
  return total;
}

}  // namespace shard
}  // namespace fuzzymatch

#include "shard/shard_router.h"

#include <algorithm>
#include <cstdlib>

#include "common/hash.h"
#include "common/string_util.h"
#include "text/idf_weights.h"
#include "text/token_frequency.h"
#include "text/tokenizer.h"

namespace fuzzymatch {
namespace shard {

namespace {

constexpr char kRefTableName[] = "ref";
constexpr char kShardMapName[] = "ref_shardmap";
constexpr char kShardInfoName[] = "ref_shardinfo";

Row MakeValueRow(const std::string& value) {
  Row row;
  row.emplace_back(value);
  return row;
}

Row MakeInfoRow(const std::string& key, const std::string& value) {
  Row row;
  row.emplace_back(key);
  row.emplace_back(value);
  return row;
}

Result<uint64_t> ParseUint(const std::optional<std::string>& field,
                           const char* what) {
  if (!field.has_value() || field->empty()) {
    return Status::Corruption(StringPrintf("shard %s field missing", what));
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(field->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::Corruption(
        StringPrintf("shard %s field not a number: %s", what,
                     field->c_str()));
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

size_t ShardOfTid(Tid global_tid, size_t num_shards) {
  if (num_shards <= 1) {
    return 0;
  }
  return static_cast<size_t>(Mix64(global_tid) %
                             static_cast<uint64_t>(num_shards));
}

std::string ShardDbPath(const std::string& base, size_t k) {
  return base + ".shard" + std::to_string(k);
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Build(
    Table* ref, const FuzzyMatchConfig& config, const Options& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->shards_.resize(options.num_shards);

  // One shard database each, with the partition table, the local->global
  // tid map, and a small info table guarding against topology mismatch
  // at Open time.
  std::vector<Table*> ref_tables(options.num_shards);
  std::vector<Table*> map_tables(options.num_shards);
  for (size_t k = 0; k < options.num_shards; ++k) {
    DatabaseOptions db_options;
    if (!options.db_path_base.empty()) {
      db_options.path = ShardDbPath(options.db_path_base, k);
    }
    db_options.pool_pages = options.pool_pages;
    db_options.wal_fsync = options.wal_fsync;
    FM_ASSIGN_OR_RETURN(router->shards_[k].db,
                        Database::Open(std::move(db_options)));
    Database* db = router->shards_[k].db.get();
    FM_ASSIGN_OR_RETURN(ref_tables[k],
                        db->CreateTable(kRefTableName, ref->schema()));
    FM_ASSIGN_OR_RETURN(
        map_tables[k],
        db->CreateTable(kShardMapName, Schema({"gtid"})));
  }

  // Partition in one scan. Scan order is tid order for this append-only
  // engine, so each shard's local tids come out in increasing global-tid
  // order — the mapping stays binary-searchable.
  {
    Table::Scanner scanner = ref->Scan();
    Tid gtid;
    Row row;
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&gtid, &row));
      if (!more) break;
      const size_t k = ShardOfTid(gtid, options.num_shards);
      Shard& shard = router->shards_[k];
      if (!shard.local_to_global.empty() &&
          gtid <= shard.local_to_global.back()) {
        return Status::Internal(
            "reference scan produced non-increasing tids; shard mapping "
            "would not be searchable");
      }
      FM_ASSIGN_OR_RETURN(const Tid local, ref_tables[k]->Insert(row));
      if (static_cast<size_t>(local) != shard.local_to_global.size()) {
        return Status::Internal(
            StringPrintf("shard %zu assigned local tid %u to row %zu",
                         k, local, shard.local_to_global.size()));
      }
      FM_RETURN_IF_ERROR(
          map_tables[k]->Insert(MakeValueRow(std::to_string(gtid)))
              .status());
      shard.local_to_global.push_back(gtid);
      ++router->total_tuples_;
    }
  }

  for (size_t k = 0; k < options.num_shards; ++k) {
    Database* db = router->shards_[k].db.get();
    FM_ASSIGN_OR_RETURN(Table * info,
                        db->CreateTable(kShardInfoName,
                                        Schema({"key", "value"})));
    FM_RETURN_IF_ERROR(
        info->Insert(MakeInfoRow("shard_index", std::to_string(k)))
            .status());
    FM_RETURN_IF_ERROR(
        info->Insert(MakeInfoRow("shard_count",
                                 std::to_string(options.num_shards)))
            .status());
    FM_ASSIGN_OR_RETURN(
        router->shards_[k].matcher,
        FuzzyMatcher::Build(db, kRefTableName, config));
  }

  FM_RETURN_IF_ERROR(router->InstallGlobalWeights(config));
  return router;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Open(
    const std::string& db_path_base, size_t num_shards,
    const std::string& strategy_name, const FuzzyMatchConfig& config,
    size_t pool_pages, WalFsyncMode wal_fsync) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (db_path_base.empty()) {
    return Status::InvalidArgument(
        "ShardRouter::Open needs a file-backed db_path_base");
  }
  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->shards_.resize(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    DatabaseOptions db_options;
    db_options.path = ShardDbPath(db_path_base, k);
    db_options.pool_pages = pool_pages;
    db_options.wal_fsync = wal_fsync;
    FM_ASSIGN_OR_RETURN(router->shards_[k].db,
                        Database::Open(std::move(db_options)));
    Database* db = router->shards_[k].db.get();

    FM_ASSIGN_OR_RETURN(Table * info, db->GetTable(kShardInfoName));
    Table::Scanner info_scan = info->Scan();
    Tid tid;
    Row row;
    uint64_t stored_index = num_shards;
    uint64_t stored_count = 0;
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, info_scan.Next(&tid, &row));
      if (!more) break;
      if (row.size() != 2 || !row[0].has_value()) continue;
      if (*row[0] == "shard_index") {
        FM_ASSIGN_OR_RETURN(stored_index, ParseUint(row[1], "shard_index"));
      } else if (*row[0] == "shard_count") {
        FM_ASSIGN_OR_RETURN(stored_count, ParseUint(row[1], "shard_count"));
      }
    }
    if (stored_index != k || stored_count != num_shards) {
      return Status::InvalidArgument(StringPrintf(
          "shard database %s was built as shard %llu of %llu, opened as "
          "shard %zu of %zu",
          ShardDbPath(db_path_base, k).c_str(),
          static_cast<unsigned long long>(stored_index),
          static_cast<unsigned long long>(stored_count), k, num_shards));
    }

    FM_ASSIGN_OR_RETURN(Table * map, db->GetTable(kShardMapName));
    Table::Scanner map_scan = map->Scan();
    std::vector<Tid>& mapping = router->shards_[k].local_to_global;
    mapping.reserve(map->row_count());
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, map_scan.Next(&tid, &row));
      if (!more) break;
      if (row.size() != 1) {
        return Status::Corruption("malformed shard map row");
      }
      FM_ASSIGN_OR_RETURN(const uint64_t gtid, ParseUint(row[0], "gtid"));
      if (!mapping.empty() && gtid <= mapping.back()) {
        return Status::Corruption("shard map tids not increasing");
      }
      mapping.push_back(static_cast<Tid>(gtid));
    }
    router->total_tuples_ += mapping.size();

    FM_ASSIGN_OR_RETURN(
        router->shards_[k].matcher,
        FuzzyMatcher::Open(db, kRefTableName, strategy_name, config));
    if (router->shards_[k].matcher->reference().row_count() !=
        mapping.size()) {
      return Status::Corruption(
          "shard map size does not match shard reference table");
    }
  }
  FM_RETURN_IF_ERROR(router->InstallGlobalWeights(config));
  return router;
}

Status ShardRouter::InstallGlobalWeights(const FuzzyMatchConfig& config) {
  // Replays the single-database reference scan exactly: tuples feed the
  // builder in GLOBAL tid order, merged across the shards' (sorted)
  // local->global maps. Counts alone would commute, but the average
  // weight of unseen tokens is a float summation over the cache in
  // iteration order — which follows insertion order — so a shard-by-
  // shard scan could differ from EtiBuilder's weights by a few ULPs and
  // break byte-identity with the single-database matcher.
  IdfWeights::Builder builder(MakeFrequencyCache(
      config.cache_kind, config.bounded_cache_buckets));
  const Tokenizer tokenizer = shards_[0].matcher->eti().MakeTokenizer();
  std::vector<size_t> next(shards_.size(), 0);
  for (uint64_t processed = 0; processed < total_tuples_; ++processed) {
    size_t best = shards_.size();
    Tid best_gtid = 0;
    for (size_t k = 0; k < shards_.size(); ++k) {
      if (next[k] >= shards_[k].local_to_global.size()) continue;
      const Tid gtid = shards_[k].local_to_global[next[k]];
      if (best == shards_.size() || gtid < best_gtid) {
        best = k;
        best_gtid = gtid;
      }
    }
    if (best == shards_.size()) {
      return Status::Internal("shard maps smaller than total tuple count");
    }
    FM_ASSIGN_OR_RETURN(
        const Row row,
        shards_[best].matcher->GetReferenceTuple(
            static_cast<Tid>(next[best])));
    builder.AddTuple(tokenizer.TokenizeTuple(row));
    ++next[best];
  }
  const IdfWeights global = builder.Finish();
  for (Shard& shard : shards_) {
    shard.matcher->OverrideWeights(global);
  }
  return Status::OK();
}

Status ShardRouter::Checkpoint() {
  for (Shard& shard : shards_) {
    if (!shard.db->path().empty()) {
      FM_RETURN_IF_ERROR(shard.db->Checkpoint());
    }
  }
  return Status::OK();
}

Result<Tid> ShardRouter::GlobalTid(size_t k, Tid local) const {
  if (k >= shards_.size() ||
      local >= shards_[k].local_to_global.size()) {
    return Status::InvalidArgument(
        StringPrintf("no local tid %u in shard %zu", local, k));
  }
  return shards_[k].local_to_global[local];
}

Result<std::pair<size_t, Tid>> ShardRouter::Locate(Tid global) const {
  const size_t k = ShardOfTid(global, shards_.size());
  const std::vector<Tid>& mapping = shards_[k].local_to_global;
  const auto it =
      std::lower_bound(mapping.begin(), mapping.end(), global);
  if (it == mapping.end() || *it != global) {
    return Status::NotFound(
        StringPrintf("tid %u not in any shard", global));
  }
  return std::make_pair(
      k, static_cast<Tid>(std::distance(mapping.begin(), it)));
}

const Schema& ShardRouter::reference_schema() const {
  return shards_[0].matcher->reference().schema();
}

}  // namespace shard
}  // namespace fuzzymatch

// ShardRouter: hash-partitions one reference relation into N shard
// databases, each carrying its own ETI (+ read accelerator) built over
// just its partition, and owns the global-tid <-> (shard, local-tid)
// mapping.
//
// Partitioning is by tid (Mix64 of the global tid modulo N), decided
// once at build time. Every shard's IDF weight table is then overridden
// with the weights computed over the FULL relation, so a tuple scores
// exactly the same fms against its shard's engine as it does against the
// single-database matcher — the precondition for the scatter/gather
// coordinator's merged output being byte-identical (DESIGN.md 5h).

#ifndef FUZZYMATCH_SHARD_SHARD_ROUTER_H_
#define FUZZYMATCH_SHARD_SHARD_ROUTER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fuzzy_match.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace shard {

/// Which shard owns a global tid. Mix64 spreads the dense tid space so
/// partitions stay balanced even for sequential tids.
size_t ShardOfTid(Tid global_tid, size_t num_shards);

/// Backing file of shard `k` for a base database path ("x.fmdb" ->
/// "x.fmdb.shard3").
std::string ShardDbPath(const std::string& base, size_t k);

/// Thread safety: after Build()/Open() returns, all accessors and the
/// shard matchers' query paths are safe from concurrent threads (the
/// mapping vectors are immutable).
class ShardRouter {
 public:
  struct Options {
    size_t num_shards = 1;
    /// Base path for the shard databases (shard k lives at
    /// ShardDbPath(db_path_base, k)); empty keeps every shard in memory.
    std::string db_path_base;
    /// Buffer pool pages per shard database.
    size_t pool_pages = 4096;
    /// Commit-durability policy of each shard's own write-ahead log
    /// (file-backed shards only; see DESIGN.md 5j).
    WalFsyncMode wal_fsync = WalFsyncMode::kGroup;
  };

  /// Partitions `ref` into Options::num_shards shard databases, builds
  /// each shard's ETI, and installs the full-relation IDF weights on
  /// every shard matcher. The source table is only read.
  static Result<std::unique_ptr<ShardRouter>> Build(
      Table* ref, const FuzzyMatchConfig& config, const Options& options);

  /// Re-attaches to shard databases persisted by an earlier file-backed
  /// Build. `strategy_name` is EtiParams::StrategyName() of the build.
  static Result<std::unique_ptr<ShardRouter>> Open(
      const std::string& db_path_base, size_t num_shards,
      const std::string& strategy_name, const FuzzyMatchConfig& config,
      size_t pool_pages = 4096,
      WalFsyncMode wal_fsync = WalFsyncMode::kGroup);

  /// Persists every shard database (no-op for in-memory shards).
  Status Checkpoint();

  size_t num_shards() const { return shards_.size(); }
  const FuzzyMatcher& shard(size_t k) const { return *shards_[k].matcher; }

  /// Global tid of shard `k`'s local tid; InvalidArgument when out of
  /// range.
  Result<Tid> GlobalTid(size_t k, Tid local) const;

  /// Locates a global tid as (shard index, local tid); NotFound when the
  /// tid is not in any shard.
  Result<std::pair<size_t, Tid>> Locate(Tid global) const;

  /// Schema of the reference relation (identical across shards).
  const Schema& reference_schema() const;

  uint64_t total_reference_tuples() const { return total_tuples_; }

 private:
  struct Shard {
    std::unique_ptr<Database> db;
    std::unique_ptr<FuzzyMatcher> matcher;
    /// local tid -> global tid; strictly increasing (partitioning
    /// preserves scan order), so global -> local is a binary search.
    std::vector<Tid> local_to_global;
  };

  ShardRouter() = default;

  /// Shared tail of Build/Open: per-shard matchers exist, mappings are
  /// loaded; computes the full-relation weights (one scan over all
  /// shards) and overrides every shard matcher's weight table.
  Status InstallGlobalWeights(const FuzzyMatchConfig& config);

  std::vector<Shard> shards_;
  uint64_t total_tuples_ = 0;
};

}  // namespace shard
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SHARD_SHARD_ROUTER_H_

#include "fault/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"
#include "fault/faulty_env.h"
#include "obs/metrics.h"

namespace fuzzymatch::fault {

namespace {

obs::Counter& InjectedErrorsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("fault.injected_errors");
  return *c;
}

obs::Counter& SimulatedCrashesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("fault.crashes_simulated");
  return *c;
}

obs::Counter& InjectedSleepsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("fault.injected_sleeps");
  return *c;
}

Status MakeInjectedError(StatusCode code, std::string_view name) {
  return Status(code,
                StringPrintf("injected fault at failpoint %.*s",
                             static_cast<int>(name.size()), name.data()));
}

CrashMode CrashModeFor(Action action) {
  switch (action) {
    case Action::kCrashTorn:
      return CrashMode::kTornWrite;
    case Action::kCrashTruncate:
      return CrashMode::kTruncate;
    case Action::kError:
    case Action::kCrash:
    case Action::kSleep:
      break;
  }
  return CrashMode::kDropWrites;
}

}  // namespace

Failpoints& Failpoints::Global() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

void Failpoints::Arm(const std::string& name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[name];
  p.spec = spec;
  p.armed = true;
  p.hits_since_arm = 0;
  p.rng.emplace(spec.seed);
}

void Failpoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  if (it != points_.end()) {
    it->second.armed = false;
  }
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    point.armed = false;
  }
}

void Failpoints::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  fired_ = 0;
}

Status Failpoints::Hit(std::string_view name) {
  Action action;
  StatusCode error_code;
  uint32_t sleep_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Point& p = points_[std::string(name)];
    ++p.total_hits;
    if (!p.armed) {
      return Status::OK();
    }
    ++p.hits_since_arm;
    const bool fire = p.spec.probability.has_value()
                          ? p.rng->Bernoulli(*p.spec.probability)
                          : p.hits_since_arm == p.spec.fire_on_hit;
    if (!fire) {
      return Status::OK();
    }
    if (p.spec.one_shot) {
      p.armed = false;
    }
    ++fired_;
    action = p.spec.action;
    error_code = p.spec.error_code;
    sleep_ms = p.spec.sleep_ms;
  }
  // The FileFaults call, sleeps, and metrics run outside the registry
  // lock: the pager's write gate is hit from the same stack moments
  // later, and a stalled hit must not block other threads' hooks.
  if (action == Action::kSleep) {
    InjectedSleepsCounter().Increment();
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    return Status::OK();
  }
  if (action == Action::kError) {
    InjectedErrorsCounter().Increment();
    return MakeInjectedError(error_code, name);
  }
  FileFaults::Global().Crash(CrashModeFor(action));
  SimulatedCrashesCounter().Increment();
  return Status(StatusCode::kIOError,
                StringPrintf("simulated crash at failpoint %.*s",
                             static_cast<int>(name.size()), name.data()));
}

void Failpoints::HitVoid(std::string_view name) {
  // Error actions cannot propagate from a void site; only crash actions
  // (which act through the global write gate) take effect.
  const Status s = Hit(name);
  (void)s;
}

uint64_t Failpoints::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.total_hits;
}

uint64_t Failpoints::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::vector<std::string> Failpoints::SeenPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    if (point.total_hits > 0) {
      names.push_back(name);
    }
  }
  return names;
}

namespace {
/// Parses one "name=action[:arg]" clause into an Arm() call.
Status ArmOne(std::string_view clause) {
  const size_t eq = clause.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument(
        StringPrintf("failpoint spec clause '%.*s' is not name=action",
                     static_cast<int>(clause.size()), clause.data()));
  }
  const std::string name(clause.substr(0, eq));
  std::string_view action = clause.substr(eq + 1);
  std::string_view arg;
  if (const size_t colon = action.find(':');
      colon != std::string_view::npos) {
    arg = action.substr(colon + 1);
    action = action.substr(0, colon);
  }
  FailpointSpec spec;
  if (action == "sleep") {
    spec.action = Action::kSleep;
    spec.one_shot = false;
    spec.probability = 1.0;  // every hit stalls
    if (!arg.empty()) {
      char* end = nullptr;
      const long ms = std::strtol(std::string(arg).c_str(), &end, 10);
      if (ms <= 0 || ms > 60'000) {
        return Status::InvalidArgument("failpoint sleep ms out of range: " +
                                       std::string(arg));
      }
      spec.sleep_ms = static_cast<uint32_t>(ms);
    }
  } else if (action == "error") {
    spec.action = Action::kError;
    if (!arg.empty()) {
      const long nth = std::strtol(std::string(arg).c_str(), nullptr, 10);
      if (nth <= 0) {
        return Status::InvalidArgument("failpoint error hit out of range: " +
                                       std::string(arg));
      }
      spec.fire_on_hit = static_cast<uint64_t>(nth);
    }
  } else if (action == "crash") {
    spec.action = Action::kCrash;
  } else {
    return Status::InvalidArgument("unknown failpoint action: " +
                                   std::string(action));
  }
  Failpoints::Global().Arm(name, spec);
  return Status::OK();
}
}  // namespace

Status ArmFromSpec(std::string_view spec) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    const std::string_view clause = spec.substr(begin, end - begin);
    if (!clause.empty()) {
      FM_RETURN_IF_ERROR(ArmOne(clause));
    }
    begin = end + 1;
  }
  return Status::OK();
}

Status ArmFromEnv() {
  const char* spec = std::getenv("FM_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') {
    return Status::OK();
  }
  return ArmFromSpec(spec);
}

}  // namespace fuzzymatch::fault

#include "fault/failpoint.h"

#include "common/string_util.h"
#include "fault/faulty_env.h"
#include "obs/metrics.h"

namespace fuzzymatch::fault {

namespace {

obs::Counter& InjectedErrorsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("fault.injected_errors");
  return *c;
}

obs::Counter& SimulatedCrashesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("fault.crashes_simulated");
  return *c;
}

Status MakeInjectedError(StatusCode code, std::string_view name) {
  return Status(code,
                StringPrintf("injected fault at failpoint %.*s",
                             static_cast<int>(name.size()), name.data()));
}

CrashMode CrashModeFor(Action action) {
  switch (action) {
    case Action::kCrashTorn:
      return CrashMode::kTornWrite;
    case Action::kCrashTruncate:
      return CrashMode::kTruncate;
    case Action::kError:
    case Action::kCrash:
      break;
  }
  return CrashMode::kDropWrites;
}

}  // namespace

Failpoints& Failpoints::Global() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

void Failpoints::Arm(const std::string& name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[name];
  p.spec = spec;
  p.armed = true;
  p.hits_since_arm = 0;
  p.rng.emplace(spec.seed);
}

void Failpoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  if (it != points_.end()) {
    it->second.armed = false;
  }
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    point.armed = false;
  }
}

void Failpoints::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  fired_ = 0;
}

Status Failpoints::Hit(std::string_view name) {
  Action action;
  StatusCode error_code;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Point& p = points_[std::string(name)];
    ++p.total_hits;
    if (!p.armed) {
      return Status::OK();
    }
    ++p.hits_since_arm;
    const bool fire = p.spec.probability.has_value()
                          ? p.rng->Bernoulli(*p.spec.probability)
                          : p.hits_since_arm == p.spec.fire_on_hit;
    if (!fire) {
      return Status::OK();
    }
    if (p.spec.one_shot) {
      p.armed = false;
    }
    ++fired_;
    action = p.spec.action;
    error_code = p.spec.error_code;
  }
  // The FileFaults call and metrics run outside the registry lock: the
  // pager's write gate is hit from the same stack moments later.
  if (action == Action::kError) {
    InjectedErrorsCounter().Increment();
    return MakeInjectedError(error_code, name);
  }
  FileFaults::Global().Crash(CrashModeFor(action));
  SimulatedCrashesCounter().Increment();
  return Status(StatusCode::kIOError,
                StringPrintf("simulated crash at failpoint %.*s",
                             static_cast<int>(name.size()), name.data()));
}

void Failpoints::HitVoid(std::string_view name) {
  // Error actions cannot propagate from a void site; only crash actions
  // (which act through the global write gate) take effect.
  const Status s = Hit(name);
  (void)s;
}

uint64_t Failpoints::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.total_hits;
}

uint64_t Failpoints::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::vector<std::string> Failpoints::SeenPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    if (point.total_hits > 0) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace fuzzymatch::fault

#include "fault/faulty_env.h"

#include <filesystem>
#include <system_error>

#include "common/logging.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace fuzzymatch::fault {

namespace {

obs::Counter& WritesDroppedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("fault.writes_dropped");
  return *c;
}

obs::Gauge& CrashedGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("fault.crashed");
  return *g;
}

}  // namespace

FileFaults& FileFaults::Global() {
  static FileFaults* instance = new FileFaults();
  return *instance;
}

void FileFaults::Crash(CrashMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) {
    return;
  }
  if (mode == CrashMode::kTornWrite) {
    tear_next_.store(true, std::memory_order_relaxed);
  }
  if (mode == CrashMode::kTruncate && !path_.empty()) {
    // A crash mid file-extension: leave the file half a page past the
    // last full page boundary. Reopen must reject it as corrupt.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    if (!ec && size >= kPageSize) {
      std::filesystem::resize_file(path_, size - kPageSize / 2, ec);
    }
    if (ec) {
      FM_LOG(Warning) << "fault: truncate of " << path_
                      << " failed: " << ec.message();
    }
  }
  crashed_.store(true, std::memory_order_relaxed);
  CrashedGauge().Set(1);
}

void FileFaults::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_.store(false, std::memory_order_relaxed);
  tear_next_.store(false, std::memory_order_relaxed);
  writes_dropped_.store(0, std::memory_order_relaxed);
  CrashedGauge().Set(0);
}

void FileFaults::RegisterFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
}

size_t FileFaults::AdmitWrite(size_t len) {
  if (!crashed_.load(std::memory_order_relaxed)) {
    return len;
  }
  writes_dropped_.fetch_add(1, std::memory_order_relaxed);
  WritesDroppedCounter().Increment();
  if (tear_next_.exchange(false, std::memory_order_relaxed)) {
    return len / 2;
  }
  return 0;
}

bool FileFaults::AdmitSync() {
  return !crashed_.load(std::memory_order_relaxed);
}

}  // namespace fuzzymatch::fault

// Deterministic fault injection for the storage/ETI write path.
//
// A failpoint is a named hook compiled into a write path:
//
//   Status HeapFile::Insert(...) {
//     FM_FAIL_POINT("heap.insert");
//     ...
//   }
//
// Unarmed failpoints only bump a hit counter; a test arms one with a
// FailpointSpec to make it fire — either returning an injected error
// Status from the enclosing function, or simulating a process crash by
// flipping the global FileFaults gate (see fault/faulty_env.h) so every
// subsequent page write is dropped before it reaches the file, exactly as
// if the machine had lost power.
//
// Firing is deterministic by default (the Nth hit after arming) and
// optionally probabilistic with a seeded RNG, so every failure schedule a
// test explores is reproducible from its seed.
//
// The hooks compile to nothing unless FM_FAILPOINTS_ENABLED is defined
// (CMake: -DFM_FAILPOINTS=ON; default on for every build type except
// Release). The registry itself is always built so tests can link and
// GTEST_SKIP when the hooks are compiled out.
//
// Thread safety: all registry operations take an internal mutex; the
// macros are safe to hit from concurrent writers.

#ifndef FUZZYMATCH_FAULT_FAILPOINT_H_
#define FUZZYMATCH_FAULT_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace fuzzymatch::fault {

/// True when the FM_FAIL_POINT hooks are compiled into the write paths.
#if FM_FAILPOINTS_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// What an armed failpoint does when it fires.
enum class Action : uint8_t {
  /// Return an injected error Status from the enclosing function.
  kError = 0,
  /// Simulate power loss: every later page write/sync is silently dropped
  /// (FileFaults CrashMode::kDropWrites), and the enclosing function
  /// returns an IOError so the stack unwinds.
  kCrash = 1,
  /// As kCrash, but the next page write is torn (first half reaches the
  /// file) before the gate closes.
  kCrashTorn = 2,
  /// As kCrash, but the registered database file is also truncated to a
  /// non-page-multiple length, as if the crash interrupted an extension.
  kCrashTruncate = 3,
  /// Stall the enclosing function for FailpointSpec::sleep_ms, then
  /// continue normally — tail-latency injection for the observability
  /// stack (slow-query capture, flight-recorder thresholds).
  kSleep = 4,
};

/// Per-test control block for one failpoint.
struct FailpointSpec {
  Action action = Action::kError;

  /// Deterministic trigger: fire on the Nth hit after arming (1-based).
  /// Ignored when `probability` is set.
  uint64_t fire_on_hit = 1;

  /// Probabilistic trigger: fire each hit with this probability, drawn
  /// from an Rng seeded with `seed`.
  std::optional<double> probability;
  uint64_t seed = 0;

  /// Disarm automatically after the first firing (the common case: tests
  /// inject one fault, then expect the retry to go through clean).
  bool one_shot = true;

  /// Status code injected by Action::kError.
  StatusCode error_code = StatusCode::kIOError;

  /// Stall duration for Action::kSleep.
  uint32_t sleep_ms = 50;
};

/// Process-wide registry of failpoints, keyed by name. Names are created
/// lazily on first Hit() or Arm(), so the registry doubles as a record of
/// which points a workload actually crossed (see SeenPoints()).
class Failpoints {
 public:
  static Failpoints& Global();

  /// Arms `name` with `spec`; resets its since-arm hit counter.
  void Arm(const std::string& name, FailpointSpec spec);

  /// Disarms `name` (no-op if unarmed). Hit counters are kept.
  void Disarm(const std::string& name);

  /// Disarms every failpoint. Hit counters are kept.
  void DisarmAll();

  /// Forgets all hit counters and firing stats (keeps nothing armed).
  void Reset();

  /// The hook behind FM_FAIL_POINT: returns an injected error when `name`
  /// is armed and due, OK otherwise.
  Status Hit(std::string_view name);

  /// The hook behind FM_FAIL_POINT_VOID, for void write paths (e.g.
  /// accelerator invalidation): crash actions take effect, error actions
  /// are counted but cannot propagate and so do nothing else.
  void HitVoid(std::string_view name);

  /// Total hits of `name` since the last Reset (armed or not).
  uint64_t HitCount(const std::string& name) const;

  /// Total injected faults (errors + crashes) since the last Reset.
  uint64_t fired_count() const;

  /// Names of every failpoint hit at least once since the last Reset.
  std::vector<std::string> SeenPoints() const;

 private:
  struct Point {
    uint64_t total_hits = 0;
    uint64_t hits_since_arm = 0;
    bool armed = false;
    FailpointSpec spec;
    std::optional<Rng> rng;
  };

  Failpoints() = default;

  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
  uint64_t fired_ = 0;
};

/// The canonical write-path failpoints. Every name here is compiled into
/// a storage/ETI write path; the crash-consistency suite iterates this
/// list and asserts each one both fires and recovers. Keep it in sync
/// with the FM_FAIL_POINT sites (failpoint_test cross-checks).
inline constexpr const char* kWritePathFailpoints[] = {
    "pager.write_page",       // Pager::WritePage (file + memory modes)
    "pager.sync",             // Pager::Sync
    "pager.allocate_page",    // Pager::AllocatePage
    "bufferpool.evict_dirty", // BufferPool dirty-victim writeback
    "bufferpool.flush_all",   // BufferPool::FlushAll (checkpoint path)
    "heap.insert",            // HeapFile::Insert
    "heap.write_overflow",    // HeapFile overflow-chain writeout
    "heap.delete",            // HeapFile::Delete
    "btree.put",              // BPlusTree::Put
    "btree.split_leaf",       // leaf split
    "btree.split_internal",   // internal-node split
    "btree.delete",           // BPlusTree::Delete
    "table.insert",           // Table::Insert / InsertWithLocation
    "table.update",           // Table::UpdateByRid (ETI row relocation)
    "eti.mutate_entry",       // Eti::MutateEntry (per-coordinate write)
    "eti.index_tuple",        // Eti::IndexTuple (per-tuple)
    "eti.unindex_tuple",      // Eti::UnindexTuple apply pass
    "eti.accel_invalidate",   // EtiAccel::Invalidate (void site)
    "wal.append",             // Wal physical log write
    "wal.fsync",              // Wal group-commit fsync
    "wal.commit",             // BufferPool::CommitWalTxn (txn commit)
    "wal.truncate",           // Wal::Truncate (checkpoint log reset)
    "db.checkpoint",          // Database::Checkpoint
    "db.checkpoint_barrier",  // between data flush and catalog rewrite
};

/// Arms failpoints from a comma-separated spec string — the out-of-band
/// control surface for a separate server process under test:
///
///   "match.query_delay=sleep:80,match.fetch_tuple=error"
///
/// Supported actions: `sleep:MS` (fires on every hit), `error` and
/// `error:N` (one-shot, fires on the Nth hit, default 1), `crash`
/// (one-shot). Returns InvalidArgument on a malformed spec; arming when
/// the hooks are compiled out succeeds but has no effect.
Status ArmFromSpec(std::string_view spec);

/// ArmFromSpec(getenv("FM_FAILPOINTS")); OK no-op when unset or empty.
Status ArmFromEnv();

}  // namespace fuzzymatch::fault

#if FM_FAILPOINTS_ENABLED
/// Write-path hook: propagates an injected fault out of a function that
/// returns Status or Result<T>.
#define FM_FAIL_POINT(name) \
  FM_RETURN_IF_ERROR(::fuzzymatch::fault::Failpoints::Global().Hit(name))
/// Hook for void write paths: only crash-type actions take effect.
#define FM_FAIL_POINT_VOID(name) \
  ::fuzzymatch::fault::Failpoints::Global().HitVoid(name)
#else
#define FM_FAIL_POINT(name) \
  do {                      \
  } while (false)
#define FM_FAIL_POINT_VOID(name) \
  do {                           \
  } while (false)
#endif

#endif  // FUZZYMATCH_FAULT_FAILPOINT_H_

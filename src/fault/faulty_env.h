// FaultyEnv: a global gate between the Pager and the page file that lets
// tests simulate power loss mid-write.
//
// After FileFaults::Global().Crash(mode), every page write and fsync from
// a file-backed Pager is silently dropped ("accepted" from the caller's
// point of view, never reaching the file), exactly like a kernel losing
// its dirty page cache at power-off. The process keeps running so the
// test can tear the stack down, then Reset() the gate and reopen the
// database file to observe what a restart would see.
//
// Modes refine what the last moments look like:
//  - kDropWrites: clean cut — nothing after the crash point reaches disk;
//  - kTornWrite:  the write in flight at crash time lands half-done
//                 (first half of the page), then the gate closes;
//  - kTruncate:   the registered database file is truncated to a
//                 non-page-multiple size (a crash mid file-extension).
//
// The Pager consults the gate only in FM_FAILPOINTS_ENABLED builds; in
// Release the shim is dead code behind a constant-false branch that never
// compiles in.
//
// Thread safety: Crash/Reset/Register take a mutex; AdmitWrite/AdmitSync
// are a single relaxed atomic load until a crash is simulated.

#ifndef FUZZYMATCH_FAULT_FAULTY_ENV_H_
#define FUZZYMATCH_FAULT_FAULTY_ENV_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace fuzzymatch::fault {

enum class CrashMode : uint8_t {
  kDropWrites = 0,
  kTornWrite = 1,
  kTruncate = 2,
};

class FileFaults {
 public:
  static FileFaults& Global();

  /// Simulates power loss now. Idempotent; the first call wins.
  void Crash(CrashMode mode);

  /// Reopens the gate (the "machine" is back up) and forgets counters.
  /// The registered file path is kept until the next RegisterFile.
  void Reset();

  bool crashed() const {
    return crashed_.load(std::memory_order_relaxed);
  }

  /// Pager hook at OpenFile: remembers the file kTruncate will shorten.
  void RegisterFile(const std::string& path);

  /// Pager hook before a page write of `len` bytes: how many bytes may
  /// actually reach the file. `len` when the gate is open, 0 once crashed
  /// (drop), `len / 2` exactly once in kTornWrite mode.
  size_t AdmitWrite(size_t len);

  /// Pager hook before fsync: false once crashed (skip the sync).
  bool AdmitSync();

  /// Page writes fully or partially suppressed since the last Reset.
  uint64_t writes_dropped() const {
    return writes_dropped_.load(std::memory_order_relaxed);
  }

 private:
  FileFaults() = default;

  std::atomic<bool> crashed_{false};
  std::atomic<bool> tear_next_{false};
  std::atomic<uint64_t> writes_dropped_{0};
  mutable std::mutex mu_;  // guards path_ and the Crash transition
  std::string path_;
};

}  // namespace fuzzymatch::fault

#endif  // FUZZYMATCH_FAULT_FAULTY_ENV_H_

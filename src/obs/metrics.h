// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms, with Prometheus and JSON text exposition.
//
// The registry is the system's own account of where time and I/O go —
// the counters behind the paper's Figures 6-10 (ETI probes, tids scored,
// candidates fetched, OSC outcomes) plus the storage-layer telemetry
// (buffer-pool hit rate, pages read, B-tree node fetches) that dominates
// real query latency. Layers record into MetricsRegistry::Global();
// fuzzymatch_cli --metrics and the bench harnesses render it.
//
// Naming convention: `layer.metric`, lower_snake within components
// (e.g. "bufferpool.hits", "match.query_seconds"). Prometheus exposition
// sanitizes names to `fm_layer_metric`; the dotted name is kept in the
// HELP line.
//
// Thread safety: metric lookup/creation takes a mutex; increments and
// observations on the returned objects are lock-free relaxed atomics.
// Pointers returned by GetCounter/GetGauge/GetHistogram are stable for
// the registry's lifetime — cache them at construction time and keep the
// hot path mutex-free.

#ifndef FUZZYMATCH_OBS_METRICS_H_
#define FUZZYMATCH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fuzzymatch {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (rates, sizes, configuration echoes).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  double value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Log-spaced bucket layout of a Histogram. Bucket i (0-based) covers
/// (min * growth^(i-1), min * growth^i]; bucket 0 covers (-inf, min]; one
/// extra overflow bucket covers everything above the last finite edge.
struct HistogramOptions {
  /// Upper edge of the first bucket.
  double min = 1e-6;
  /// Ratio between consecutive bucket edges (> 1).
  double growth = 2.0;
  /// Number of finite buckets (>= 1), excluding the overflow bucket.
  size_t buckets = 36;
};

/// Layout for sub-second latency spans: 100 ns up to ~3.8 h.
inline HistogramOptions LatencyHistogramOptions() {
  return HistogramOptions{1e-7, 2.0, 37};
}

/// Fixed-bucket histogram with quantile estimation. Observations count
/// into log-spaced buckets; quantiles interpolate linearly inside the
/// covering bucket, so the relative error is bounded by the growth
/// factor.
class Histogram {
 public:
  Histogram(std::string name, HistogramOptions options);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated q-quantile (q in [0, 1]); 0 when empty. Values in the
  /// overflow bucket report the last finite edge.
  double Quantile(double q) const;

  /// Bucket introspection (exposition and tests). Index `buckets()` - 1
  /// is the overflow bucket with an infinite upper edge.
  size_t buckets() const { return counts_.size(); }
  double bucket_upper_edge(size_t i) const;  // +inf for the overflow bucket
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Index of the bucket an observation of `v` lands in.
  size_t BucketIndex(double v) const;

  void Reset();

  const std::string& name() const { return name_; }
  const HistogramOptions& options() const { return options_; }

 private:
  std::string name_;
  HistogramOptions options_;
  double inv_log_growth_ = 0.0;
  std::vector<std::atomic<uint64_t>> counts_;  // finite buckets + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owner of all metrics. Metric kinds live in separate namespaces; asking
/// twice for the same (kind, name) returns the same object.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumented layer records into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          HistogramOptions options = {});

  /// Prometheus text exposition format. Dotted names are sanitized to
  /// `fm_<name with non-alphanumerics as '_'>`; the dotted original is
  /// kept in the HELP line. Histograms additionally render p50/p95/p99
  /// quantile samples.
  std::string RenderText() const;

  /// The same content as one JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, p50, p95, p99, buckets: [...]}}}
  std::string RenderJson() const;

  /// Zeroes every metric (names and objects stay registered). For tests
  /// and per-run isolation in the bench harnesses.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_OBS_METRICS_H_

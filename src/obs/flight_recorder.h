// Flight recorder: bounded in-memory retention of finished request
// traces, the evidence store behind `tracez` and the slow-query log.
//
// Two retention classes per stripe:
//   - recent:   a ring of the last N traces, regardless of outcome —
//               "what has the server been doing just now".
//   - outliers: a ring of traces that exceeded the slow threshold or
//               ended in error — the tail-latency and failure evidence
//               that a plain ring would evict before anyone looks.
//
// Recording is lock-striped by request id: each stripe has its own
// mutex and rings, so concurrent workers finishing requests rarely
// contend. Memory is bounded by construction: stripes x (recent +
// outlier capacity) traces, each itself bounded by RequestTrace::Limits
// (see DESIGN.md 5g for the arithmetic).
//
// Every outlier capture also emits one structured slow-query log line
// (event "query.slow" or "query.error") carrying the request id, so the
// log is the cheap signal and `tracez` the full span tree.

#ifndef FUZZYMATCH_OBS_FLIGHT_RECORDER_H_
#define FUZZYMATCH_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace fuzzymatch {
namespace obs {

class FlightRecorder {
 public:
  struct Options {
    size_t recent_capacity = 64;    // per stripe
    size_t outlier_capacity = 64;   // per stripe
    double slow_threshold_seconds = 0.100;
    size_t stripes = 4;
    bool log_outliers = true;  // emit query.slow / query.error log lines
  };

  struct Stats {
    uint64_t recorded = 0;   // traces offered to Record()
    uint64_t slow = 0;       // exceeded the latency threshold
    uint64_t errors = 0;     // finished with a non-OK status
    uint64_t retained = 0;   // traces currently held across all rings
  };

  FlightRecorder();  // default Options
  explicit FlightRecorder(Options options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder RequestTraces report to by default.
  static FlightRecorder& Global();

  /// Replaces options and drops all retained traces. Call at startup
  /// (server options) or between test cases, before traffic — Record()
  /// racing a Configure() is not supported.
  void Configure(Options options);

  /// Takes ownership of a finished trace. Classifies it slow/error,
  /// appends to the stripe's rings, and emits the slow-query log line.
  void Record(TraceRecord&& record);

  Stats GetStats() const;
  const Options& options() const { return options_; }

  /// All retained traces, outliers first, newest first within each
  /// class, deduplicated by request id, capped at `max` (0 = all).
  std::vector<TraceRecord> Snapshot(size_t max = 0) const;

  /// Compact JSON: {"slow_threshold_seconds":...,"stats":{...},
  /// "traces":[{...full span tree...}]}. Single line, parseable by
  /// server/json.h on the consuming side.
  std::string RenderJson(size_t max_traces = 32) const;

  /// Renders one trace as a compact JSON object (shared with tests).
  static void AppendTraceJson(const TraceRecord& record, std::string* out);

  /// Drops retained traces and zeroes stats (tests).
  void Clear();

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<TraceRecord> recent;    // ring, recent_head = next slot
    std::vector<TraceRecord> outliers;  // ring, outlier_head = next slot
    size_t recent_head = 0;
    size_t outlier_head = 0;
    uint64_t seq = 0;  // arrival order, for cross-stripe newest-first
    std::vector<uint64_t> recent_seq;
    std::vector<uint64_t> outlier_seq;
  };

  Stripe& StripeFor(uint64_t request_id) {
    return *stripes_[request_id % stripes_.size()];
  }

  Options options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> slow_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> arrival_seq_{0};
};

}  // namespace obs
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_OBS_FLIGHT_RECORDER_H_

#include "obs/flight_recorder.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/log.h"

namespace fuzzymatch {
namespace obs {

namespace {
/// Ring append: overwrite the slot at *head, advance *head.
void RingPush(std::vector<TraceRecord>* ring, std::vector<uint64_t>* seqs,
              size_t capacity, size_t* head, TraceRecord&& record,
              uint64_t seq) {
  if (capacity == 0) {
    return;
  }
  if (ring->size() < capacity) {
    ring->push_back(std::move(record));
    seqs->push_back(seq);
    *head = ring->size() % capacity;
    return;
  }
  (*ring)[*head] = std::move(record);
  (*seqs)[*head] = seq;
  *head = (*head + 1) % capacity;
}
}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options) { Configure(options); }

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Configure(Options options) {
  options_ = options;
  if (options_.stripes == 0) {
    options_.stripes = 1;
  }
  stripes_.clear();
  for (size_t i = 0; i < options_.stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  recorded_.store(0, std::memory_order_relaxed);
  slow_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::Record(TraceRecord&& record) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const bool slow =
      record.duration_seconds() >= options_.slow_threshold_seconds;
  const bool outlier = slow || record.error;
  if (slow) {
    slow_.fetch_add(1, std::memory_order_relaxed);
  }
  if (record.error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  if (outlier && options_.log_outliers) {
    // The cheap signal; the span tree stays here, addressable by id.
    LogLine(record.error ? LogLevel::kWarning : LogLevel::kInfo,
            record.error ? "query.error" : "query.slow")
        .Field("request_id", record.request_id)
        .Field("op", record.op)
        .Field("duration_ms", record.duration_seconds() * 1e3)
        .Field("spans", static_cast<uint64_t>(record.spans.size()))
        .Field("status", record.status);
  }
  const uint64_t seq = arrival_seq_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = StripeFor(record.request_id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (outlier) {
    TraceRecord copy = record;
    RingPush(&stripe.outliers, &stripe.outlier_seq, options_.outlier_capacity,
             &stripe.outlier_head, std::move(copy), seq);
  }
  RingPush(&stripe.recent, &stripe.recent_seq, options_.recent_capacity,
           &stripe.recent_head, std::move(record), seq);
}

FlightRecorder::Stats FlightRecorder::GetStats() const {
  Stats stats;
  stats.recorded = recorded_.load(std::memory_order_relaxed);
  stats.slow = slow_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stats.retained += stripe->recent.size() + stripe->outliers.size();
  }
  return stats;
}

std::vector<TraceRecord> FlightRecorder::Snapshot(size_t max) const {
  struct Entry {
    uint64_t seq;
    bool outlier;
    TraceRecord record;
  };
  std::vector<Entry> entries;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (size_t i = 0; i < stripe->outliers.size(); ++i) {
      entries.push_back(Entry{stripe->outlier_seq[i], true,
                              stripe->outliers[i]});
    }
    for (size_t i = 0; i < stripe->recent.size(); ++i) {
      entries.push_back(Entry{stripe->recent_seq[i], false,
                              stripe->recent[i]});
    }
  }
  // Outliers first (they are the evidence a cap must not squeeze out),
  // newest first within each class.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.outlier != b.outlier) return a.outlier;
    return a.seq > b.seq;
  });
  std::vector<TraceRecord> out;
  out.reserve(entries.size());
  for (Entry& entry : entries) {
    const uint64_t id = entry.record.request_id;
    bool duplicate = false;
    for (const TraceRecord& kept : out) {
      if (kept.request_id == id) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    out.push_back(std::move(entry.record));
    if (max != 0 && out.size() >= max) {
      break;
    }
  }
  return out;
}

void FlightRecorder::AppendTraceJson(const TraceRecord& record,
                                     std::string* out) {
  *out += StringPrintf(
      "{\"request_id\":%llu,\"op\":\"",
      static_cast<unsigned long long>(record.request_id));
  AppendJsonEscaped(record.op, out);
  *out += StringPrintf(
      "\",\"start_unix_ns\":%lld,\"duration_ms\":%.3f,\"error\":%s",
      static_cast<long long>(record.start_unix_ns),
      record.duration_seconds() * 1e3, record.error ? "true" : "false");
  if (record.error) {
    *out += ",\"status\":\"";
    AppendJsonEscaped(record.status, out);
    *out += "\"";
  }
  if (record.dropped_spans > 0) {
    *out += StringPrintf(",\"dropped_spans\":%u", record.dropped_spans);
  }
  *out += ",\"counts\":{";
  for (size_t i = 0; i < record.counts.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "\"";
    AppendJsonEscaped(record.counts[i].key, out);
    *out += StringPrintf(
        "\":%llu", static_cast<unsigned long long>(record.counts[i].value));
  }
  *out += "},\"spans\":[";
  for (size_t i = 0; i < record.spans.size(); ++i) {
    const TraceSpan& span = record.spans[i];
    if (i > 0) *out += ",";
    *out += "{\"name\":\"";
    AppendJsonEscaped(span.name, out);
    *out += StringPrintf(
        "\",\"parent\":%d,\"start_us\":%.1f,\"duration_us\":%.1f}",
        span.parent, static_cast<double>(span.start_ns) * 1e-3,
        static_cast<double>(span.duration_ns) * 1e-3);
  }
  *out += "]}";
}

std::string FlightRecorder::RenderJson(size_t max_traces) const {
  const Stats stats = GetStats();
  const std::vector<TraceRecord> traces = Snapshot(max_traces);
  std::string out = StringPrintf(
      "{\"slow_threshold_seconds\":%.3f,"
      "\"stats\":{\"recorded\":%llu,\"slow\":%llu,\"errors\":%llu,"
      "\"retained\":%llu},\"traces\":[",
      options_.slow_threshold_seconds,
      static_cast<unsigned long long>(stats.recorded),
      static_cast<unsigned long long>(stats.slow),
      static_cast<unsigned long long>(stats.errors),
      static_cast<unsigned long long>(stats.retained));
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) out += ",";
    AppendTraceJson(traces[i], &out);
  }
  out += "]}";
  return out;
}

void FlightRecorder::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->recent.clear();
    stripe->outliers.clear();
    stripe->recent_seq.clear();
    stripe->outlier_seq.clear();
    stripe->recent_head = 0;
    stripe->outlier_head = 0;
  }
  recorded_.store(0, std::memory_order_relaxed);
  slow_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace fuzzymatch

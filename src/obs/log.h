// Structured leveled logging: one JSON object per line, machine-parseable.
//
//   FM_SLOG(Info, "server.start").Field("port", port).Field("workers", n);
//   => {"ts":1723100000.123,"level":"info","event":"server.start",
//       "port":7070,"workers":4}
//
// This is the operational log surface for the server and tools —
// lifecycle events, slow queries, errors — designed to be shipped to a
// log pipeline and joined with traces: when a RequestTrace is active on
// the logging thread, its request id is attached automatically as
// "request_id", so a slow-query log line points straight at the
// `tracez` entry holding the full span tree.
//
// FM_LOG (common/logging.h) remains the human-facing debug stream;
// FM_SLOG respects the same SetLogLevel threshold. Lines are rendered
// into a single buffer and written with one stdio call, so concurrent
// loggers never interleave within a line.

#ifndef FUZZYMATCH_OBS_LOG_H_
#define FUZZYMATCH_OBS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/logging.h"

namespace fuzzymatch {
namespace obs {

/// Redirects structured log lines (default stderr). Not thread-safe
/// against in-flight loggers; call at startup or in single-threaded
/// tests. Returns the previous sink.
FILE* SetStructuredLogSink(FILE* sink);

/// Appends `s` JSON-escaped (without surrounding quotes) to `*out`.
/// Shared by the hand-rolled JSON emitters in fm_obs, which cannot use
/// server/json.h (fm_server links fm_obs, not the reverse).
void AppendJsonEscaped(const std::string& s, std::string* out);

/// One structured log line; builder-style fields, emitted on
/// destruction when `level` passes GetLogLevel(). Use via FM_SLOG.
class LogLine {
 public:
  LogLine(LogLevel level, const char* event);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& Field(const char* key, const char* value);
  LogLine& Field(const char* key, const std::string& value);
  LogLine& Field(const char* key, int64_t value);
  LogLine& Field(const char* key, uint64_t value);
  LogLine& Field(const char* key, int value) {
    return Field(key, static_cast<int64_t>(value));
  }
  LogLine& Field(const char* key, double value);
  LogLine& Field(const char* key, bool value);

  /// Appends `json` verbatim as the value of `key` — for pre-rendered
  /// sub-objects (a trace summary, a config echo).
  LogLine& RawField(const char* key, const std::string& json);

 private:
  void AppendKey(const char* key);

  bool enabled_;
  std::string line_;
};

}  // namespace obs
}  // namespace fuzzymatch

#define FM_SLOG(level, event) \
  ::fuzzymatch::obs::LogLine(::fuzzymatch::LogLevel::k##level, (event))

#endif  // FUZZYMATCH_OBS_LOG_H_

// Process-level health gauges and build identification.
//
// UpdateProcessMetrics() samples /proc/self and publishes:
//   process.rss_bytes        resident set size
//   process.open_fds         open file descriptors
//   process.uptime_seconds   since the first sample in this process
// Callers refresh on demand (metrics/statusz scrape, bench dump) — the
// gauges are snapshots, not continuously maintained.
//
// GetBuildInfo() reports what binary is answering: version, build type,
// compiler, and whether failpoints are compiled in. Deliberately no
// build timestamp — bit-reproducible builds stay reproducible.

#ifndef FUZZYMATCH_OBS_PROCESS_METRICS_H_
#define FUZZYMATCH_OBS_PROCESS_METRICS_H_

#include <cstdint>
#include <string>

namespace fuzzymatch {
namespace obs {

struct ProcessStats {
  uint64_t rss_bytes = 0;
  uint64_t open_fds = 0;
  double uptime_seconds = 0.0;
};

struct BuildInfo {
  std::string version;     // project version, e.g. "0.6"
  std::string build_type;  // "release" / "debug" (from NDEBUG)
  std::string compiler;    // __VERSION__
  bool failpoints = false;
};

/// Samples the process and sets the process.* gauges in the global
/// registry; returns the sample. Safe to call from any thread.
ProcessStats UpdateProcessMetrics();

const BuildInfo& GetBuildInfo();

}  // namespace obs
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_OBS_PROCESS_METRICS_H_

#include "obs/process_metrics.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace fuzzymatch {
namespace obs {

namespace {
uint64_t ReadRssBytes() {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long size = 0, resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (n != 2) {
    return 0;
  }
  const long page = sysconf(_SC_PAGESIZE);
  return resident * static_cast<uint64_t>(page > 0 ? page : 4096);
}

uint64_t CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    return 0;
  }
  uint64_t count = 0;
  while (const dirent* entry = readdir(dir)) {
    if (entry->d_name[0] != '.') {
      ++count;
    }
  }
  closedir(dir);
  // The opendir itself holds one fd while we count.
  return count > 0 ? count - 1 : 0;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

// Anchor the uptime epoch as early as static init runs.
[[maybe_unused]] const auto g_start_anchor = ProcessStart();
}  // namespace

ProcessStats UpdateProcessMetrics() {
  ProcessStats stats;
  stats.rss_bytes = ReadRssBytes();
  stats.open_fds = CountOpenFds();
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ProcessStart())
          .count();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("process.rss_bytes")
      ->Set(static_cast<double>(stats.rss_bytes));
  registry.GetGauge("process.open_fds")
      ->Set(static_cast<double>(stats.open_fds));
  registry.GetGauge("process.uptime_seconds")->Set(stats.uptime_seconds);
  return stats;
}

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = [] {
    auto* b = new BuildInfo();
    b->version = "0.6";
#ifdef NDEBUG
    b->build_type = "release";
#else
    b->build_type = "debug";
#endif
#ifdef __VERSION__
    b->compiler = __VERSION__;
#else
    b->compiler = "unknown";
#endif
#ifdef FM_FAILPOINTS_ENABLED
    b->failpoints = true;
#endif
    return b;
  }();
  return *info;
}

}  // namespace obs
}  // namespace fuzzymatch

#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace fuzzymatch {
namespace obs {

namespace {

/// `layer.metric` -> `fm_layer_metric` (Prometheus-legal name).
std::string SanitizeName(const std::string& name) {
  std::string out = "fm_";
  out.reserve(name.size() + 3);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Tracks sanitized names already emitted in one exposition pass and
/// disambiguates collisions: sanitization folds every non-alphanumeric
/// to '_', so distinct registered names like "accel.probe-hits" and
/// "accel.probe.hits" would otherwise both render as
/// fm_accel_probe_hits — an illegal duplicate metric (worse across
/// kinds, where the TYPE lines would disagree). The first claimant
/// keeps the clean name; later ones get a deterministic _2, _3, ...
/// suffix (registry maps iterate in name order, so the assignment is
/// stable for a given set of registered metrics).
class PromNamer {
 public:
  std::string Name(const std::string& registered) {
    const std::string base = SanitizeName(registered);
    std::string prom = base;
    for (size_t k = 2; !used_.insert(prom).second; ++k) {
      prom = base + StringPrintf("_%zu", k);
    }
    return prom;
  }

 private:
  std::set<std::string> used_;
};

std::string FormatDouble(double v) { return StringPrintf("%.9g", v); }

/// Escapes a string for a JSON value. Metric names are plain ASCII, so
/// only quotes and backslashes need care.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Histogram::Histogram(std::string name, HistogramOptions options)
    : name_(std::move(name)), options_(options) {
  FM_CHECK_GT(options_.min, 0.0);
  FM_CHECK_GT(options_.growth, 1.0);
  FM_CHECK_GE(options_.buckets, size_t{1});
  inv_log_growth_ = 1.0 / std::log(options_.growth);
  counts_ = std::vector<std::atomic<uint64_t>>(options_.buckets + 1);
}

size_t Histogram::BucketIndex(double v) const {
  if (!(v > options_.min)) {  // also catches NaN and negatives
    return 0;
  }
  const double pos = std::log(v / options_.min) * inv_log_growth_;
  // Edge i = min * growth^i is the upper bound of bucket i; take the
  // first edge >= v. Nudge below the integer grid so exact edges stay in
  // their own bucket despite floating-point log round-off.
  const double idx = std::ceil(pos - 1e-9);
  if (idx >= static_cast<double>(options_.buckets)) {
    return options_.buckets;  // overflow bucket
  }
  return static_cast<size_t>(idx);
}

void Histogram::Observe(double v) {
  counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::bucket_upper_edge(size_t i) const {
  if (i + 1 >= counts_.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.min * std::pow(options_.growth, static_cast<double>(i));
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(seen + in_bucket) >= target) {
      if (i + 1 >= counts_.size()) {
        // Overflow bucket has no finite upper edge; report the last one.
        return bucket_upper_edge(counts_.size() - 2);
      }
      const double hi = bucket_upper_edge(i);
      const double lo = i == 0 ? 0.0 : bucket_upper_edge(i - 1);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return bucket_upper_edge(counts_.size() - 2);
}

void Histogram::Reset() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>(name);
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>(name);
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(name, options);
  }
  return slot.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  PromNamer namer;  // one namespace across all three kinds
  for (const auto& [name, counter] : counters_) {
    const std::string prom = namer.Name(name);
    out += "# HELP " + prom + " " + name + "\n";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " +
           StringPrintf("%llu",
                        static_cast<unsigned long long>(counter->value())) +
           "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = namer.Name(name);
    out += "# HELP " + prom + " " + name + "\n";
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string prom = namer.Name(name);
    out += "# HELP " + prom + " " + name + "\n";
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist->buckets(); ++i) {
      cumulative += hist->bucket_count(i);
      const double edge = hist->bucket_upper_edge(i);
      const std::string le =
          std::isinf(edge) ? std::string("+Inf") : FormatDouble(edge);
      out += prom + "_bucket{le=\"" + le + "\"} " +
             StringPrintf("%llu", static_cast<unsigned long long>(cumulative)) +
             "\n";
    }
    out += prom + "_sum " + FormatDouble(hist->sum()) + "\n";
    out += prom + "_count " +
           StringPrintf("%llu",
                        static_cast<unsigned long long>(hist->count())) +
           "\n";
    out += "# " + prom + " p50=" + FormatDouble(hist->Quantile(0.5)) +
           " p95=" + FormatDouble(hist->Quantile(0.95)) +
           " p99=" + FormatDouble(hist->Quantile(0.99)) + "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": " +
           StringPrintf("%llu",
                        static_cast<unsigned long long>(counter->value()));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": " + FormatDouble(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(name) + ": {\n";
    out += "      \"count\": " +
           StringPrintf("%llu",
                        static_cast<unsigned long long>(hist->count())) +
           ",\n";
    out += "      \"sum\": " + FormatDouble(hist->sum()) + ",\n";
    out += "      \"p50\": " + FormatDouble(hist->Quantile(0.5)) + ",\n";
    out += "      \"p95\": " + FormatDouble(hist->Quantile(0.95)) + ",\n";
    out += "      \"p99\": " + FormatDouble(hist->Quantile(0.99)) + ",\n";
    out += "      \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < hist->buckets(); ++i) {
      // Only materialized (non-empty) buckets keep the dump small.
      const uint64_t n = hist->bucket_count(i);
      if (n == 0) {
        continue;
      }
      out += first_bucket ? "" : ", ";
      first_bucket = false;
      const double edge = hist->bucket_upper_edge(i);
      const std::string le =
          std::isinf(edge) ? std::string("\"+Inf\"") : FormatDouble(edge);
      out += "{\"le\": " + le + ", \"count\": " +
             StringPrintf("%llu", static_cast<unsigned long long>(n)) + "}";
    }
    out += "]\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (const auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (const auto& [name, hist] : histograms_) {
    hist->Reset();
  }
}

}  // namespace obs
}  // namespace fuzzymatch

#include "obs/trace.h"

#include <atomic>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"

namespace fuzzymatch {
namespace obs {

namespace {
thread_local RequestTrace* g_current_trace = nullptr;
std::atomic<uint64_t> g_next_request_id{0};
std::atomic<bool> g_tracing_enabled{true};

/// Human-scale rendering of a duration (breakdown dumps only).
std::string FormatSeconds(double s) {
  if (s < 1e-3) {
    return StringPrintf("%.0fus", s * 1e6);
  }
  if (s < 1.0) {
    return StringPrintf("%.2fms", s * 1e3);
  }
  return StringPrintf("%.3fs", s);
}

int64_t UnixNanosNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

uint64_t NextRequestId() {
  return g_next_request_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

RequestTrace::RequestTrace(std::string op, uint64_t request_id,
                           FlightRecorder* recorder)
    : RequestTrace(std::move(op), request_id, recorder, Limits()) {}

RequestTrace::RequestTrace(std::string op, uint64_t request_id,
                           FlightRecorder* recorder, Limits limits)
    : limits_(limits),
      recorder_(recorder),
      start_(std::chrono::steady_clock::now()) {
  record_.request_id = request_id;
  record_.op = std::move(op);
  record_.start_unix_ns = UnixNanosNow();
  record_.spans.reserve(16);
  previous_ = g_current_trace;
  g_current_trace = this;
}

RequestTrace::RequestTrace(std::string op, uint64_t request_id,
                           CollectInto into)
    : RequestTrace(std::move(op), request_id, nullptr, Limits()) {
  sink_ = into.sink;
}

RequestTrace::~RequestTrace() {
  g_current_trace = previous_;
  record_.duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  if (!record_.spans.empty() && GetLogLevel() == LogLevel::kDebug) {
    FM_LOG(Debug) << "trace " << record_.op << "#" << record_.request_id
                  << ": " << Summary();
  }
  if (sink_ != nullptr) {
    *sink_ = std::move(record_);
  } else if (recorder_ != nullptr) {
    recorder_->Record(std::move(record_));
  }
}

RequestTrace* RequestTrace::Current() { return g_current_trace; }

int32_t RequestTrace::OpenSpan(const char* name,
                               std::chrono::steady_clock::time_point start) {
  if (record_.spans.size() >= limits_.max_spans ||
      open_stack_.size() >= limits_.max_depth) {
    ++record_.dropped_spans;
    return -1;
  }
  TraceSpan span;
  span.name = name;
  span.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - start_)
          .count());
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  const int32_t index = static_cast<int32_t>(record_.spans.size());
  record_.spans.push_back(span);
  open_stack_.push_back(index);
  return index;
}

void RequestTrace::CloseSpan(int32_t index, uint64_t duration_ns) {
  if (index < 0) {
    return;
  }
  record_.spans[static_cast<size_t>(index)].duration_ns = duration_ns;
  // Spans are scoped, so closes arrive in LIFO order; pop through to the
  // closed span defensively in case an intermediate one was dropped.
  while (!open_stack_.empty()) {
    const int32_t top = open_stack_.back();
    open_stack_.pop_back();
    if (top == index) {
      break;
    }
  }
}

void RequestTrace::AddCount(const char* key, uint64_t delta) {
  // A request has a handful of tallies; linear scan beats hashing.
  for (TraceCount& count : record_.counts) {
    if (count.key == key || std::strcmp(count.key, key) == 0) {
      count.value += delta;
      return;
    }
  }
  record_.counts.push_back(TraceCount{key, delta});
}

void RequestTrace::SetStatus(const Status& status) {
  if (status.ok()) {
    return;  // errors are sticky: a later OK does not clear one
  }
  record_.error = true;
  record_.status = status.ToString();
}

void RequestTrace::AdoptChildTrace(
    const TraceRecord& child, const char* label,
    std::chrono::steady_clock::time_point child_start) {
  const int64_t offset =
      std::chrono::duration_cast<std::chrono::nanoseconds>(child_start -
                                                           start_)
          .count();
  const uint64_t base_ns = offset > 0 ? static_cast<uint64_t>(offset) : 0;
  record_.dropped_spans += child.dropped_spans;

  // Synthetic root covering the child's whole tree, parented under the
  // innermost open span (the coordinator's scatter/gather span).
  int32_t root = -1;
  if (record_.spans.size() < limits_.max_spans) {
    TraceSpan span;
    span.name = label;
    span.start_ns = base_ns;
    span.duration_ns = child.duration_ns;
    span.parent = open_stack_.empty() ? -1 : open_stack_.back();
    root = static_cast<int32_t>(record_.spans.size());
    record_.spans.push_back(span);
  } else {
    ++record_.dropped_spans;
  }

  // Rebase the child's spans: offsets shift by base_ns, parent indexes
  // remap into this record (child roots hang off the synthetic root).
  std::vector<int32_t> remap(child.spans.size(), -1);
  for (size_t i = 0; i < child.spans.size(); ++i) {
    if (record_.spans.size() >= limits_.max_spans) {
      record_.dropped_spans +=
          static_cast<uint32_t>(child.spans.size() - i);
      break;
    }
    const TraceSpan& from = child.spans[i];
    int32_t parent = root;
    if (from.parent >= 0) {
      parent = remap[static_cast<size_t>(from.parent)];
      if (parent < 0) {  // parent itself was dropped
        ++record_.dropped_spans;
        continue;
      }
    }
    TraceSpan span;
    span.name = from.name;
    span.start_ns = base_ns + from.start_ns;
    span.duration_ns = from.duration_ns;
    span.parent = parent;
    remap[i] = static_cast<int32_t>(record_.spans.size());
    record_.spans.push_back(span);
  }

  for (const TraceCount& count : child.counts) {
    AddCount(count.key, count.value);
  }
  if (child.error) {
    record_.error = true;
    if (record_.status.empty()) {
      record_.status = child.status;
    }
  }
}

std::string RequestTrace::Summary() const {
  // Aggregate the tree by span name — the per-query breakdown shape:
  // "match.probe=3ms/12 match.verify=1ms/4".
  struct Agg {
    const char* name;
    uint64_t calls;
    uint64_t ns;
  };
  std::vector<Agg> aggs;
  for (const TraceSpan& span : record_.spans) {
    bool found = false;
    for (Agg& agg : aggs) {
      if (agg.name == span.name || std::strcmp(agg.name, span.name) == 0) {
        ++agg.calls;
        agg.ns += span.duration_ns;
        found = true;
        break;
      }
    }
    if (!found) {
      aggs.push_back(Agg{span.name, 1, span.duration_ns});
    }
  }
  std::string out;
  for (const Agg& agg : aggs) {
    if (!out.empty()) {
      out += " ";
    }
    out +=
        StringPrintf("%s=%s/%llu", agg.name,
                     FormatSeconds(static_cast<double>(agg.ns) * 1e-9).c_str(),
                     static_cast<unsigned long long>(agg.calls));
  }
  return out;
}

MaybeRequestTrace::MaybeRequestTrace(const char* op,
                                     FlightRecorder* recorder) {
  if (!TracingEnabled() || RequestTrace::Current() != nullptr) {
    return;
  }
  trace_.emplace(op, NextRequestId(),
                 recorder != nullptr ? recorder : &FlightRecorder::Global());
}

void MaybeRequestTrace::SetStatus(const Status& status) {
  if (RequestTrace* trace = RequestTrace::Current()) {
    trace->SetStatus(status);
  }
}

Histogram* SpanHistogram(const char* name) {
  return MetricsRegistry::Global().GetHistogram(
      std::string("span.") + name + "_seconds", LatencyHistogramOptions());
}

}  // namespace obs
}  // namespace fuzzymatch

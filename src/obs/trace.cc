#include "obs/trace.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace fuzzymatch {
namespace obs {

namespace {
thread_local QueryTrace* g_current_trace = nullptr;

/// Human-scale rendering of a duration (breakdown dumps only).
std::string FormatSeconds(double s) {
  if (s < 1e-3) {
    return StringPrintf("%.0fus", s * 1e6);
  }
  if (s < 1.0) {
    return StringPrintf("%.2fms", s * 1e3);
  }
  return StringPrintf("%.3fs", s);
}
}  // namespace

QueryTrace::QueryTrace(std::string label) : label_(std::move(label)) {
  previous_ = g_current_trace;
  g_current_trace = this;
}

QueryTrace::~QueryTrace() {
  g_current_trace = previous_;
  if (!phases_.empty()) {
    FM_LOG(Debug) << "trace " << label_ << ": " << Summary();
  }
}

QueryTrace* QueryTrace::Current() { return g_current_trace; }

void QueryTrace::Record(const char* name, double seconds) {
  // A query has a handful of phases; linear scan beats hashing.
  for (Phase& phase : phases_) {
    if (phase.name == name || std::strcmp(phase.name, name) == 0) {
      ++phase.calls;
      phase.seconds += seconds;
      return;
    }
  }
  phases_.push_back(Phase{name, 1, seconds});
}

std::string QueryTrace::Summary() const {
  std::string out;
  for (const Phase& phase : phases_) {
    if (!out.empty()) {
      out += " ";
    }
    out += StringPrintf("%s=%s/%llu", phase.name,
                        FormatSeconds(phase.seconds).c_str(),
                        static_cast<unsigned long long>(phase.calls));
  }
  return out;
}

Histogram* SpanHistogram(const char* name) {
  return MetricsRegistry::Global().GetHistogram(
      std::string("span.") + name + "_seconds", LatencyHistogramOptions());
}

}  // namespace obs
}  // namespace fuzzymatch

// Request-scoped tracing: per-phase wall time recorded into histograms,
// plus a real per-request span tree.
//
//   Result<...> EtiMatcher::FindMatches(...) {
//     FM_TRACE_SPAN("match.signature");   // until end of scope
//     ...
//   }
//
// Every FM_TRACE_SPAN("x") call site records its elapsed seconds into
// the registry histogram `span.x_seconds` (the histogram pointer is
// resolved once per call site via a function-local static). When a
// RequestTrace is active on the current thread, the span additionally
// becomes a node of that request's span tree: name, start offset,
// duration, and parent span, bounded in depth and width so a
// pathological request cannot balloon its own trace.
//
// A RequestTrace is installed at a request boundary — the MatchServer
// worker, BatchCleaner::Clean, or EtiMatcher::FindMatches when nothing
// upstream started one — carries the process-unique request id, and on
// destruction hands the finished TraceRecord to a FlightRecorder (see
// obs/flight_recorder.h), which retains recent and outlier traces for
// the `tracez` endpoint and the slow-query log.
//
// Overhead: two steady_clock reads plus one histogram observation per
// span; tree recording is one thread-local pointer test when no trace is
// active, and one vector append when one is. SetTracingEnabled(false)
// stops boundaries from creating traces (spans still feed histograms);
// bench_query_time measures the on/off delta (DESIGN.md 5g).

#ifndef FUZZYMATCH_OBS_TRACE_H_
#define FUZZYMATCH_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace fuzzymatch {
namespace obs {

class FlightRecorder;

/// Allocates the next process-unique request id (1-based, monotonic).
uint64_t NextRequestId();

/// Whether request boundaries install RequestTraces (default true).
/// Spans always record into their histograms regardless.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// One node of a request's span tree. Offsets are nanoseconds from the
/// trace start; `parent` indexes an earlier span, -1 = child of the
/// request root.
struct TraceSpan {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  int32_t parent = -1;
};

/// A named per-request tally (accel hits, pages read, candidates...),
/// aggregated at the trace root.
struct TraceCount {
  const char* key = nullptr;
  uint64_t value = 0;
};

/// The finished, self-contained form of one request's trace — what the
/// flight recorder retains and `tracez` serves.
struct TraceRecord {
  uint64_t request_id = 0;
  std::string op;                 // boundary label: "match", "clean", ...
  int64_t start_unix_ns = 0;      // wall-clock start, for display
  uint64_t duration_ns = 0;
  bool error = false;
  std::string status;             // non-OK status string when error
  uint32_t dropped_spans = 0;     // spans lost to the depth/width bounds
  std::vector<TraceSpan> spans;   // start-ordered; parents precede children
  std::vector<TraceCount> counts;

  double duration_seconds() const {
    return static_cast<double>(duration_ns) * 1e-9;
  }
};

/// Collects one request's span tree; installs itself as the current
/// thread's trace on construction and offers the finished record to
/// `recorder` (when non-null) on destruction. Nestable: the previous
/// trace is restored, and inner traces record independently.
class RequestTrace {
 public:
  struct Limits {
    uint32_t max_spans = 192;  // width bound: further spans are dropped
    uint32_t max_depth = 12;   // depth bound: deeper spans are dropped
  };

  RequestTrace(std::string op, uint64_t request_id,
               FlightRecorder* recorder);  // default Limits
  RequestTrace(std::string op, uint64_t request_id,
               FlightRecorder* recorder, Limits limits);
  /// Tag for the collect-into constructor (keeps it unambiguous with the
  /// null-recorder form).
  struct CollectInto {
    TraceRecord* sink;
  };
  /// Collect-into constructor: on destruction the finished record is
  /// moved into `*into.sink` instead of a recorder. For child traces
  /// gathered on shard worker threads and merged into the coordinator's
  /// trace via AdoptChildTrace, so a scattered request stays one tree.
  RequestTrace(std::string op, uint64_t request_id, CollectInto into);
  ~RequestTrace();

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  /// The active trace on this thread, or nullptr.
  static RequestTrace* Current();

  /// Opens a span starting at `start`; returns its index, or -1 when the
  /// span was dropped by the depth/width bounds. Balanced by CloseSpan.
  int32_t OpenSpan(const char* name,
                   std::chrono::steady_clock::time_point start);
  void CloseSpan(int32_t index, uint64_t duration_ns);

  /// Adds `delta` to the root-level tally named `key` (pointer-stable
  /// string literals expected; names are aggregated).
  void AddCount(const char* key, uint64_t delta);

  /// Records the request's final status; non-OK marks the trace as an
  /// error outlier for the recorder.
  void SetStatus(const Status& status);

  /// Grafts a finished child trace (collected on another thread via the
  /// sink constructor) into this trace as a subtree: a synthetic root
  /// span named `label` at offset `child_start` − this trace's start,
  /// with the child's spans rebased under it, its counts merged into
  /// this trace's tallies, and its error status propagated. Spans beyond
  /// the width bound are counted as dropped. `label` must outlive the
  /// trace record (string literal or interned).
  void AdoptChildTrace(const TraceRecord& child, const char* label,
                       std::chrono::steady_clock::time_point child_start);

  uint64_t request_id() const { return record_.request_id; }
  const TraceRecord& record() const { return record_; }

  /// One-line per-span-name aggregation ("probe=3ms/12 verify=1ms/4"),
  /// the per-query breakdown dumped at debug level.
  std::string Summary() const;

 private:
  TraceRecord record_;
  Limits limits_;
  FlightRecorder* recorder_;         // may be null (collect only)
  TraceRecord* sink_ = nullptr;      // set by the collect-into constructor
  std::chrono::steady_clock::time_point start_;
  std::vector<int32_t> open_stack_;  // indexes of open spans, root first
  RequestTrace* previous_ = nullptr;
};

/// Installs a RequestTrace with a fresh request id only when tracing is
/// enabled and no trace is already active on this thread — the
/// one-liner for request boundaries that may also run nested (e.g.
/// BatchCleaner::Clean under the server worker's trace).
class MaybeRequestTrace {
 public:
  /// `op` must outlive the trace (string literal). A null `recorder`
  /// means FlightRecorder::Global().
  explicit MaybeRequestTrace(const char* op,
                             FlightRecorder* recorder = nullptr);

  MaybeRequestTrace(const MaybeRequestTrace&) = delete;
  MaybeRequestTrace& operator=(const MaybeRequestTrace&) = delete;

  /// The trace this boundary installed (null when one was already
  /// active upstream or tracing is disabled).
  RequestTrace* installed() { return trace_ ? &*trace_ : nullptr; }

  /// Forwards a final status to whichever trace is active — the one this
  /// boundary installed or the upstream one.
  void SetStatus(const Status& status);

 private:
  std::optional<RequestTrace> trace_;
};

/// RAII span: measures its own lifetime, records it into `hist`, and
/// appends itself to the current RequestTrace's span tree. Use via
/// FM_TRACE_SPAN.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {
    if (RequestTrace* trace = RequestTrace::Current()) {
      trace_ = trace;
      index_ = trace->OpenSpan(name, start_);
    }
  }

  ~ScopedSpan() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Observe(std::chrono::duration<double>(elapsed).count());
    if (trace_ != nullptr) {
      trace_->CloseSpan(
          index_,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram* hist_;
  RequestTrace* trace_ = nullptr;
  int32_t index_ = -1;
  std::chrono::steady_clock::time_point start_;
};

/// The registry histogram a span named `name` records into
/// (`span.<name>_seconds`, latency bucket layout).
Histogram* SpanHistogram(const char* name);

/// Adds `delta` to the current trace's root tally `key`; no-op without
/// an active trace. For hot paths: one thread-local load when idle.
inline void AddTraceCount(const char* key, uint64_t delta) {
  if (RequestTrace* trace = RequestTrace::Current()) {
    trace->AddCount(key, delta);
  }
}

}  // namespace obs
}  // namespace fuzzymatch

#define FM_TRACE_SPAN(name) FM_TRACE_SPAN_COUNTER_(name, __COUNTER__)
#define FM_TRACE_SPAN_COUNTER_(name, ctr) FM_TRACE_SPAN_IMPL_(name, ctr)
#define FM_TRACE_SPAN_IMPL_(name, ctr)                                 \
  static ::fuzzymatch::obs::Histogram* fm_span_hist_##ctr =            \
      ::fuzzymatch::obs::SpanHistogram(name);                          \
  const ::fuzzymatch::obs::ScopedSpan fm_span_##ctr((name),            \
                                                    fm_span_hist_##ctr)

#endif  // FUZZYMATCH_OBS_TRACE_H_

// Scoped-span tracing: per-phase wall time recorded into histograms,
// plus an optional per-query phase breakdown.
//
//   Result<...> EtiMatcher::FindMatches(...) {
//     FM_TRACE_SPAN("match.signature");   // until end of scope
//     ...
//   }
//
// Every FM_TRACE_SPAN("x") call site records its elapsed seconds into
// the registry histogram `span.x_seconds` (the histogram pointer is
// resolved once per call site via a function-local static). When a
// QueryTrace is active on the current thread, the span also contributes
// to that query's phase breakdown, which QueryTrace dumps through
// FM_LOG(Debug) on destruction — the per-query attribution of time to
// signature computation, ETI probing, scoring, fetching, and
// verification.
//
// Overhead: two steady_clock reads plus one histogram observation per
// span; the breakdown path is a thread-local pointer test. Create
// QueryTrace objects only when their dump will be emitted (debug level).

#ifndef FUZZYMATCH_OBS_TRACE_H_
#define FUZZYMATCH_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace fuzzymatch {
namespace obs {

/// Collects one query's span timings; installs itself as the current
/// thread's trace on construction and dumps the aggregated breakdown at
/// debug level on destruction. Nestable (the previous trace is restored).
class QueryTrace {
 public:
  explicit QueryTrace(std::string label);
  ~QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// The active trace on this thread, or nullptr.
  static QueryTrace* Current();

  /// Adds `seconds` to the phase named `name` (aggregated per name).
  void Record(const char* name, double seconds);

  /// The aggregated breakdown, insertion-ordered: (phase, calls, seconds).
  struct Phase {
    const char* name;
    uint64_t calls;
    double seconds;
  };
  const std::vector<Phase>& phases() const { return phases_; }

  /// One-line rendering of the breakdown ("sig=12us probe=3ms ...").
  std::string Summary() const;

 private:
  std::string label_;
  std::vector<Phase> phases_;
  QueryTrace* previous_ = nullptr;
};

/// RAII span: measures its own lifetime and records it into `hist` and
/// the current QueryTrace. Use via FM_TRACE_SPAN.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Histogram* hist)
      : name_(name), hist_(hist), start_(std::chrono::steady_clock::now()) {}

  ~ScopedSpan() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    hist_->Observe(seconds);
    if (QueryTrace* trace = QueryTrace::Current()) {
      trace->Record(name_, seconds);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// The registry histogram a span named `name` records into
/// (`span.<name>_seconds`, latency bucket layout).
Histogram* SpanHistogram(const char* name);

}  // namespace obs
}  // namespace fuzzymatch

#define FM_TRACE_SPAN(name) FM_TRACE_SPAN_COUNTER_(name, __COUNTER__)
#define FM_TRACE_SPAN_COUNTER_(name, ctr) FM_TRACE_SPAN_IMPL_(name, ctr)
#define FM_TRACE_SPAN_IMPL_(name, ctr)                                 \
  static ::fuzzymatch::obs::Histogram* fm_span_hist_##ctr =            \
      ::fuzzymatch::obs::SpanHistogram(name);                          \
  const ::fuzzymatch::obs::ScopedSpan fm_span_##ctr((name),            \
                                                    fm_span_hist_##ctr)

#endif  // FUZZYMATCH_OBS_TRACE_H_

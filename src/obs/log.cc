#include "obs/log.h"

#include <atomic>
#include <chrono>

#include "common/string_util.h"
#include "obs/trace.h"

namespace fuzzymatch {
namespace obs {

namespace {
std::atomic<FILE*> g_sink{nullptr};  // null = stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
    case LogLevel::kFatal:
      return "fatal";
  }
  return "info";
}
}  // namespace

FILE* SetStructuredLogSink(FILE* sink) {
  FILE* previous = g_sink.exchange(sink);
  return previous != nullptr ? previous : stderr;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StringPrintf("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
}

LogLine::LogLine(LogLevel level, const char* event)
    : enabled_(level >= GetLogLevel()) {
  if (!enabled_) {
    return;
  }
  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  line_ = StringPrintf("{\"ts\":%.3f,\"level\":\"%s\",\"event\":\"", ts,
                       LevelName(level));
  AppendJsonEscaped(event, &line_);
  line_ += "\"";
  if (const RequestTrace* trace = RequestTrace::Current()) {
    line_ += StringPrintf(",\"request_id\":%llu",
                          static_cast<unsigned long long>(trace->request_id()));
  }
}

LogLine::~LogLine() {
  if (!enabled_) {
    return;
  }
  line_ += "}\n";
  FILE* sink = g_sink.load();
  if (sink == nullptr) {
    sink = stderr;
  }
  // One fwrite per line: stdio's stream lock keeps lines whole under
  // concurrent loggers.
  std::fwrite(line_.data(), 1, line_.size(), sink);
  std::fflush(sink);
}

void LogLine::AppendKey(const char* key) {
  line_ += ",\"";
  AppendJsonEscaped(key, &line_);
  line_ += "\":";
}

LogLine& LogLine::Field(const char* key, const char* value) {
  return Field(key, std::string(value));
}

LogLine& LogLine::Field(const char* key, const std::string& value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += "\"";
  AppendJsonEscaped(value, &line_);
  line_ += "\"";
  return *this;
}

LogLine& LogLine::Field(const char* key, int64_t value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += StringPrintf("%lld", static_cast<long long>(value));
  return *this;
}

LogLine& LogLine::Field(const char* key, uint64_t value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += StringPrintf("%llu", static_cast<unsigned long long>(value));
  return *this;
}

LogLine& LogLine::Field(const char* key, double value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += StringPrintf("%.6g", value);
  return *this;
}

LogLine& LogLine::Field(const char* key, bool value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += value ? "true" : "false";
  return *this;
}

LogLine& LogLine::RawField(const char* key, const std::string& json) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_ += json;
  return *this;
}

}  // namespace obs
}  // namespace fuzzymatch

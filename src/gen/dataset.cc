#include "gen/dataset.h"

#include <unordered_set>

#include "common/string_util.h"

namespace fuzzymatch {

DatasetSpec DatasetD1() {
  return DatasetSpec{"D1", {0.90, 0.90, 0.90, 0.90},
                     TokenSelection::kTypeI, 1655, 101};
}

DatasetSpec DatasetD2() {
  return DatasetSpec{"D2", {0.80, 0.50, 0.50, 0.60},
                     TokenSelection::kTypeI, 1655, 102};
}

DatasetSpec DatasetD3() {
  return DatasetSpec{"D3", {0.70, 0.50, 0.50, 0.25},
                     TokenSelection::kTypeI, 1655, 103};
}

DatasetSpec DatasetEdVsFmsTypeI() {
  return DatasetSpec{"EdVsFms-TypeI", {0.90, 0.50, 0.50, 0.60},
                     TokenSelection::kTypeI, 100, 104};
}

DatasetSpec DatasetEdVsFmsTypeII() {
  return DatasetSpec{"EdVsFms-TypeII", {0.90, 0.50, 0.50, 0.60},
                     TokenSelection::kTypeII, 100, 105};
}

Result<std::vector<InputTuple>> GenerateInputs(Table* ref,
                                               const DatasetSpec& spec,
                                               const IdfWeights* weights) {
  const uint64_t rows = ref->row_count();
  if (rows == 0) {
    return Status::InvalidArgument("reference relation is empty");
  }
  if (spec.column_error_prob.size() != ref->schema().num_columns()) {
    return Status::InvalidArgument(StringPrintf(
        "dataset %s has %zu column probabilities for a %zu-column relation",
        spec.name.c_str(), spec.column_error_prob.size(),
        ref->schema().num_columns()));
  }

  Rng rng(spec.seed);
  ErrorModelOptions model;
  model.column_error_prob = spec.column_error_prob;
  model.selection = spec.selection;
  const ErrorInjector injector(
      model,
      spec.selection == TokenSelection::kTypeII ? weights : nullptr);

  // Sample distinct seed tids (all rows if the relation is small).
  std::unordered_set<Tid> chosen;
  const size_t want =
      std::min<size_t>(spec.num_inputs, static_cast<size_t>(rows));
  while (chosen.size() < want) {
    chosen.insert(static_cast<Tid>(rng.Uniform(rows)));
  }

  std::vector<InputTuple> inputs;
  inputs.reserve(want);
  for (const Tid tid : chosen) {
    FM_ASSIGN_OR_RETURN(const Row clean, ref->Get(tid));
    inputs.push_back(InputTuple{injector.Inject(clean, rng), tid});
  }
  return inputs;
}

}  // namespace fuzzymatch

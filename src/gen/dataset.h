// Input-dataset specifications (Section 6.1, Table 5 of the paper) and
// the generator that corrupts sampled reference tuples into input tuples.

#ifndef FUZZYMATCH_GEN_DATASET_H_
#define FUZZYMATCH_GEN_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "gen/error_model.h"
#include "storage/table.h"
#include "text/idf_weights.h"

namespace fuzzymatch {

/// One dirty input tuple together with the reference tuple it was derived
/// from — the "seed" whose recovery defines the accuracy metric.
struct InputTuple {
  Row dirty;
  Tid seed_tid = 0;
};

/// A named input-dataset configuration.
struct DatasetSpec {
  std::string name;
  std::vector<double> column_error_prob;
  TokenSelection selection = TokenSelection::kTypeI;
  size_t num_inputs = 1655;  // the paper's input count
  uint64_t seed = 7;
};

/// Table 5's datasets (Type I errors, 1655 tuples each).
DatasetSpec DatasetD1();  // [0.90, 0.90, 0.90, 0.90]
DatasetSpec DatasetD2();  // [0.80, 0.50, 0.50, 0.60]
DatasetSpec DatasetD3();  // [0.70, 0.50, 0.50, 0.25]

/// The ~100-tuple fms-vs-ed datasets of Section 6.2.1.1,
/// error probabilities [0.90, 0.5, 0.5, 0.6].
DatasetSpec DatasetEdVsFmsTypeI();
DatasetSpec DatasetEdVsFmsTypeII();

/// Samples `spec.num_inputs` distinct reference tuples from `ref` and
/// corrupts them per the spec. `weights` is required for Type II specs
/// (frequency-proportional token selection) and ignored otherwise.
Result<std::vector<InputTuple>> GenerateInputs(Table* ref,
                                               const DatasetSpec& spec,
                                               const IdfWeights* weights);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_GEN_DATASET_H_

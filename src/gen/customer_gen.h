// Synthetic Customer[name, city, state, zipcode] reference data.
//
// The paper evaluates on a proprietary 1.7M-tuple customer relation from
// an internal warehouse; this generator is the documented substitute (see
// DESIGN.md). It reproduces the statistics the algorithms are sensitive
// to: Zipf-skewed token frequencies (hence high IDF variance, which OSC
// exploits), short multi-token names with very frequent suffix tokens
// ('company', 'inc', ...), city/state/zip correlation, and realistic
// token lengths. Everything is deterministic in the seed.

#ifndef FUZZYMATCH_GEN_CUSTOMER_GEN_H_
#define FUZZYMATCH_GEN_CUSTOMER_GEN_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/table.h"

namespace fuzzymatch {

struct CustomerGenOptions {
  uint64_t seed = 42;
  /// Rows to generate with Populate().
  size_t num_tuples = 100000;
  /// Distinct name-token vocabulary size and its Zipf skew.
  size_t name_vocab_size = 20000;
  double name_zipf_theta = 0.9;
  /// Distinct city vocabulary size and skew.
  size_t city_vocab_size = 1500;
  double city_zipf_theta = 0.9;
  /// Fraction of rows generated as clean *variants* of earlier rows (same
  /// name head with a different suffix, a dropped/added token, a nearby
  /// zip, ...). Real customer relations are full of such confusable
  /// neighbors — franchises, family members, sister companies — and they
  /// are what makes fuzzy matching hard (Table 1's R1 vs R2).
  double confusable_fraction = 0.3;
};

/// Streams deterministic synthetic customer rows.
class CustomerGenerator {
 public:
  explicit CustomerGenerator(CustomerGenOptions options);

  /// Customer[name, city, state, zipcode].
  static Schema CustomerSchema();

  /// The next synthetic row.
  Row NextRow();

  /// Inserts options.num_tuples rows into `table` (schema must match).
  Status Populate(Table* table);

  const CustomerGenOptions& options() const { return options_; }

 private:
  std::string MakeName();
  std::string MakeCity();
  /// Derives a clean confusable variant of an earlier row.
  Row MakeVariant(const Row& base);

  CustomerGenOptions options_;
  Rng rng_;
  std::vector<Row> recent_;  // reservoir feeding MakeVariant
  std::vector<std::string> name_vocab_;
  std::vector<std::string> city_vocab_;
  ZipfSampler name_zipf_;
  ZipfSampler city_zipf_;
  ZipfSampler state_zipf_;
  ZipfSampler suffix_zipf_;
};

/// Generates `count` distinct pronounceable synthetic words (lowercase),
/// deterministically from `seed`. Exposed for tests and other generators.
std::vector<std::string> MakeSyntheticVocabulary(size_t count,
                                                 uint64_t seed);

/// The 50 two-letter US state codes (lowercase).
const std::vector<std::string>& StateCodes();

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_GEN_CUSTOMER_GEN_H_

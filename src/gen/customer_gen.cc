#include "gen/customer_gen.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace fuzzymatch {

namespace {

// Business-name suffix tokens, most frequent first (sampled by a Zipf over
// this rank order, so 'company' and 'inc' dominate — these are the
// low-weight tokens the paper's examples revolve around).
const char* const kSuffixes[] = {
    "company",    "inc",        "corporation", "corp",     "llc",
    "ltd",        "group",      "services",    "associates", "enterprises",
    "systems",    "solutions",  "industries",  "partners", "holdings",
    "consulting", "technologies", "international", "supply", "distributors",
};
constexpr size_t kNumSuffixes = sizeof(kSuffixes) / sizeof(kSuffixes[0]);

const char* const kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",
                               "k",  "l",  "m",  "n",  "p",  "r",  "s",
                               "t",  "v",  "w",  "z",  "br", "ch", "cl",
                               "cr", "dr", "fl", "fr", "gl", "gr", "pl",
                               "pr", "sh", "sl", "sp", "st", "th", "tr"};
const char* const kVowels[] = {"a",  "e",  "i",  "o",  "u",
                               "ai", "ea", "ee", "io", "ou"};
const char* const kCodas[] = {"",   "n",  "r",  "s",  "t",  "l",  "m",
                              "ck", "rd", "st", "ng", "nd", "ll", "x"};

template <size_t N>
const char* Pick(const char* const (&arr)[N], Rng& rng) {
  return arr[rng.Uniform(N)];
}

}  // namespace

std::vector<std::string> MakeSyntheticVocabulary(size_t count,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> words;
  words.reserve(count);
  while (words.size() < count) {
    std::string w;
    const int syllables = 2 + static_cast<int>(rng.Uniform(2));  // 2-3
    for (int s = 0; s < syllables; ++s) {
      w += Pick(kOnsets, rng);
      w += Pick(kVowels, rng);
      if (s + 1 == syllables || rng.Bernoulli(0.4)) {
        w += Pick(kCodas, rng);
      }
    }
    if (w.size() >= 3 && seen.insert(w).second) {
      words.push_back(std::move(w));
    }
  }
  return words;
}

const std::vector<std::string>& StateCodes() {
  static const std::vector<std::string> kStates = {
      "al", "ak", "az", "ar", "ca", "co", "ct", "de", "fl", "ga",
      "hi", "id", "il", "in", "ia", "ks", "ky", "la", "me", "md",
      "ma", "mi", "mn", "ms", "mo", "mt", "ne", "nv", "nh", "nj",
      "nm", "ny", "nc", "nd", "oh", "ok", "or", "pa", "ri", "sc",
      "sd", "tn", "tx", "ut", "vt", "va", "wa", "wv", "wi", "wy"};
  return kStates;
}

CustomerGenerator::CustomerGenerator(CustomerGenOptions options)
    : options_(options),
      rng_(options.seed),
      name_vocab_(MakeSyntheticVocabulary(options.name_vocab_size,
                                          options.seed ^ 0x1111)),
      city_vocab_(MakeSyntheticVocabulary(options.city_vocab_size,
                                          options.seed ^ 0x2222)),
      name_zipf_(options.name_vocab_size, options.name_zipf_theta),
      city_zipf_(options.city_vocab_size, options.city_zipf_theta),
      state_zipf_(StateCodes().size(), 0.5),
      suffix_zipf_(kNumSuffixes, 1.0) {}

Schema CustomerGenerator::CustomerSchema() {
  return Schema({"name", "city", "state", "zipcode"});
}

std::string CustomerGenerator::MakeName() {
  std::string name = name_vocab_[name_zipf_.Sample(rng_)];
  const int extra = static_cast<int>(rng_.Uniform(3));  // 0-2 extra tokens
  for (int i = 0; i < extra; ++i) {
    name += ' ';
    name += name_vocab_[name_zipf_.Sample(rng_)];
  }
  if (rng_.Bernoulli(0.7)) {
    name += ' ';
    name += kSuffixes[suffix_zipf_.Sample(rng_)];
  }
  return name;
}

std::string CustomerGenerator::MakeCity() {
  std::string city = city_vocab_[city_zipf_.Sample(rng_)];
  if (rng_.Bernoulli(0.2)) {
    city += ' ';
    city += city_vocab_[city_zipf_.Sample(rng_)];
  }
  return city;
}

Row CustomerGenerator::MakeVariant(const Row& base) {
  Row row = base;
  auto tokens = SplitAndTrim(*row[0], " ");
  switch (rng_.Uniform(4)) {
    case 0:  // different corporate suffix ("x company" vs "x corporation")
      if (!tokens.empty()) {
        tokens.back() = kSuffixes[suffix_zipf_.Sample(rng_)];
      }
      break;
    case 1:  // extra name token
      tokens.insert(tokens.begin() + static_cast<long>(
                                         rng_.Uniform(tokens.size() + 1)),
                    name_vocab_[name_zipf_.Sample(rng_)]);
      break;
    case 2:  // dropped name token
      if (tokens.size() > 1) {
        tokens.erase(tokens.begin() +
                     static_cast<long>(rng_.Uniform(tokens.size())));
      } else {
        tokens.push_back(kSuffixes[suffix_zipf_.Sample(rng_)]);
      }
      break;
    default:  // same name, different branch city
      row[1] = MakeCity();
      break;
  }
  row[0] = Join(tokens, " ");
  // Nearby zip: same prefix, different low digits.
  row[3] = row[3]->substr(0, 3) +
           StringPrintf("%02u", static_cast<unsigned>(rng_.Uniform(100)));
  return row;
}

Row CustomerGenerator::NextRow() {
  if (!recent_.empty() && rng_.Bernoulli(options_.confusable_fraction)) {
    const Row variant =
        MakeVariant(recent_[rng_.Uniform(recent_.size())]);
    if (recent_.size() < 1024) {
      recent_.push_back(variant);
    }
    return variant;
  }
  Row row(4);
  row[0] = MakeName();
  row[1] = MakeCity();
  const size_t state_idx = state_zipf_.Sample(rng_);
  row[2] = StateCodes()[state_idx];
  // Zip prefix correlates with the state (as real zips do); the low two
  // digits spread uniformly.
  const unsigned prefix =
      static_cast<unsigned>((state_idx * 20 + rng_.Uniform(20)) % 1000);
  const unsigned low = static_cast<unsigned>(rng_.Uniform(100));
  row[3] = StringPrintf("%03u%02u", prefix, low);
  if (recent_.size() < 1024) {
    recent_.push_back(row);
  } else {
    recent_[rng_.Uniform(recent_.size())] = row;
  }
  return row;
}

Status CustomerGenerator::Populate(Table* table) {
  if (!(table->schema() == CustomerSchema())) {
    return Status::InvalidArgument(
        "table schema does not match Customer[name, city, state, zipcode]");
  }
  for (size_t i = 0; i < options_.num_tuples; ++i) {
    FM_ASSIGN_OR_RETURN(const Tid tid, table->Insert(NextRow()));
    (void)tid;
  }
  return Status::OK();
}

}  // namespace fuzzymatch

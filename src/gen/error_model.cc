#include "gen/error_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace fuzzymatch {

namespace {

char RandomLowercaseLetter(Rng& rng) {
  return static_cast<char>('a' + rng.Uniform(26));
}

/// Draws an index from an unnormalized discrete distribution.
size_t DrawDiscrete(const double* probs, size_t n, Rng& rng) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += probs[i];
  }
  FM_CHECK_GT(total, 0.0);
  double u = rng.NextDouble() * total;
  for (size_t i = 0; i < n; ++i) {
    u -= probs[i];
    if (u < 0.0) {
      return i;
    }
  }
  return n - 1;
}

std::vector<std::string> SplitTokens(const std::string& value) {
  return SplitAndTrim(value, " \t");
}

std::string JoinValue(const std::vector<std::string>& tokens) {
  return Join(tokens, " ");
}

}  // namespace

ErrorInjector::ErrorInjector(ErrorModelOptions options,
                             const IdfWeights* weights)
    : options_(std::move(options)), weights_(weights) {
  if (options_.selection == TokenSelection::kTypeII) {
    FM_CHECK(weights_ != nullptr)
        << "Type II selection needs reference token frequencies";
  }
}

const std::vector<std::pair<std::string, std::string>>&
ErrorInjector::AbbreviationTable() {
  static const std::vector<std::pair<std::string, std::string>> kTable = {
      {"corporation", "corp"},   {"company", "co."},
      {"incorporated", "inc"},   {"limited", "ltd"},
      {"associates", "assoc"},   {"enterprises", "ent"},
      {"international", "intl"}, {"services", "svcs"},
      {"systems", "sys"},        {"technologies", "tech"},
      {"industries", "ind"},     {"group", "grp"},
      {"solutions", "soln"},     {"consulting", "cons"},
      {"distributors", "dist"},  {"holdings", "hldgs"},
      {"partners", "ptnrs"},     {"supply", "sup"},
  };
  return kTable;
}

std::string ErrorInjector::MisspellToken(const std::string& token,
                                         Rng& rng) {
  std::string out = token;
  const int edits = 1 + static_cast<int>(rng.Uniform(2));  // 1-2 edits
  for (int e = 0; e < edits; ++e) {
    if (out.empty()) {
      out.push_back(RandomLowercaseLetter(rng));
      continue;
    }
    const uint64_t op = rng.Uniform(4);
    const size_t pos = rng.Uniform(out.size());
    switch (op) {
      case 0:  // substitute
        out[pos] = RandomLowercaseLetter(rng);
        break;
      case 1:  // insert
        out.insert(out.begin() + static_cast<long>(pos),
                   RandomLowercaseLetter(rng));
        break;
      case 2:  // delete
        if (out.size() > 1) {
          out.erase(out.begin() + static_cast<long>(pos));
        } else {
          out[pos] = RandomLowercaseLetter(rng);
        }
        break;
      default:  // transpose adjacent characters
        if (out.size() >= 2) {
          const size_t p = std::min(pos, out.size() - 2);
          std::swap(out[p], out[p + 1]);
        } else {
          out[pos] = RandomLowercaseLetter(rng);
        }
        break;
    }
  }
  return out;
}

size_t ErrorInjector::PickTokenIndex(const std::vector<std::string>& tokens,
                                     uint32_t column, Rng& rng) const {
  FM_CHECK(!tokens.empty());
  if (options_.selection == TokenSelection::kTypeI || weights_ == nullptr) {
    return rng.Uniform(tokens.size());
  }
  // Type II: weight each token by its reference frequency (unseen tokens
  // get 1 so every token stays selectable).
  std::vector<double> probs(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    probs[i] = std::max<uint32_t>(
        1, weights_->Frequency(AsciiLower(tokens[i]), column));
  }
  return DrawDiscrete(probs.data(), probs.size(), rng);
}

ErrorType ErrorInjector::DrawErrorType(size_t column, Rng& rng) const {
  const auto& probs = (column == options_.name_column)
                          ? options_.type_probs_name
                          : options_.type_probs_other;
  return static_cast<ErrorType>(
      DrawDiscrete(probs.data(), probs.size(), rng));
}

std::optional<std::string> ErrorInjector::ApplyToField(
    const std::string& value, uint32_t column, ErrorType type,
    Rng& rng) const {
  std::vector<std::string> tokens = SplitTokens(value);
  if (tokens.empty()) {
    return value;
  }

  // Degrade structurally impossible errors to spelling errors, so every
  // erring column really changes.
  if ((type == ErrorType::kTokenMerge ||
       type == ErrorType::kTokenTransposition) &&
      tokens.size() < 2) {
    type = ErrorType::kSpelling;
  }

  switch (type) {
    case ErrorType::kSpelling: {
      const size_t i = PickTokenIndex(tokens, column, rng);
      tokens[i] = MisspellToken(tokens[i], rng);
      return JoinValue(tokens);
    }
    case ErrorType::kAbbreviation: {
      // Replace a commonly-abbreviated token if one is present; otherwise
      // abbreviate a chosen token to a short prefix.
      for (size_t i = 0; i < tokens.size(); ++i) {
        const std::string lower = AsciiLower(tokens[i]);
        for (const auto& [full, abbr] : AbbreviationTable()) {
          if (lower == full) {
            tokens[i] = abbr;
            return JoinValue(tokens);
          }
        }
      }
      const size_t i = PickTokenIndex(tokens, column, rng);
      if (tokens[i].size() > 3) {
        tokens[i] = tokens[i].substr(0, 2 + rng.Uniform(2));
        if (rng.Bernoulli(0.5)) {
          tokens[i] += '.';
        }
      } else {
        tokens[i] = MisspellToken(tokens[i], rng);
      }
      return JoinValue(tokens);
    }
    case ErrorType::kMissingValue:
      return std::nullopt;
    case ErrorType::kTruncation: {
      // Truncate the field by up to 5 characters (at least 1), never
      // below a single character.
      const size_t cut = 1 + rng.Uniform(5);
      std::string v = value;
      v.resize(v.size() > cut ? v.size() - cut : 1);
      // Avoid a dangling trailing space.
      while (!v.empty() && v.back() == ' ') {
        v.pop_back();
      }
      return v.empty() ? std::string(1, value[0]) : v;
    }
    case ErrorType::kTokenMerge: {
      const size_t i = rng.Uniform(tokens.size() - 1);
      tokens[i] += tokens[i + 1];
      tokens.erase(tokens.begin() + static_cast<long>(i) + 1);
      return JoinValue(tokens);
    }
    case ErrorType::kTokenTransposition: {
      const size_t i = rng.Uniform(tokens.size() - 1);
      std::swap(tokens[i], tokens[i + 1]);
      return JoinValue(tokens);
    }
  }
  return value;
}

Row ErrorInjector::Inject(const Row& clean, Rng& rng) const {
  FM_CHECK_EQ(clean.size(), options_.column_error_prob.size());
  Row dirty = clean;
  for (uint32_t col = 0; col < dirty.size(); ++col) {
    if (!dirty[col].has_value()) {
      continue;
    }
    if (!rng.Bernoulli(options_.column_error_prob[col])) {
      continue;
    }
    const ErrorType type = DrawErrorType(col, rng);
    dirty[col] = ApplyToField(*dirty[col], col, type, rng);
  }
  return dirty;
}

}  // namespace fuzzymatch

// Error injection (Section 6.1, Table 4 of the paper).
//
// Input datasets are made by corrupting clean reference tuples: each
// column i errs with probability p_i; an erring column gets one error type
// drawn from the Table 4 conditional distribution (spelling errors,
// abbreviation replacement, missing value, truncation, token merge, token
// transposition). Token selection is Type I (uniform over tokens) or
// Type II (probability proportional to token frequency — frequent tokens
// such as 'corporation' spawn more erroneous variants, which biases the
// comparison in favour of fms, as the paper notes).

#ifndef FUZZYMATCH_GEN_ERROR_MODEL_H_
#define FUZZYMATCH_GEN_ERROR_MODEL_H_

#include <array>
#include <vector>

#include "common/random.h"
#include "storage/schema.h"
#include "text/idf_weights.h"

namespace fuzzymatch {

/// Table 4's error catalogue, in its row order.
enum class ErrorType : int {
  kSpelling = 0,
  kAbbreviation = 1,
  kMissingValue = 2,
  kTruncation = 3,
  kTokenMerge = 4,
  kTokenTransposition = 5,
};
inline constexpr int kNumErrorTypes = 6;

/// How the token to corrupt is chosen within a column.
enum class TokenSelection {
  kTypeI,   // uniform over the column's tokens
  kTypeII,  // probability proportional to reference frequency
};

struct ErrorModelOptions {
  /// p_i: per-column error probability (size must match the row arity).
  std::vector<double> column_error_prob;

  TokenSelection selection = TokenSelection::kTypeI;

  /// P(e_j | column errs) for the name column (i = 1 in the paper; no
  /// missing values — a nameless input cannot be matched at all) and for
  /// the other columns. Table 4's values; normalized internally.
  std::array<double, kNumErrorTypes> type_probs_name = {0.5,  0.25, 0.0,
                                                        0.1,  0.1,  0.1};
  std::array<double, kNumErrorTypes> type_probs_other = {0.4,  0.25, 0.1,
                                                         0.1,  0.1,  0.05};

  /// Index of the "name" column (uses type_probs_name).
  size_t name_column = 0;
};

/// Applies the error model to clean rows.
class ErrorInjector {
 public:
  /// `weights` supplies reference token frequencies for Type II selection;
  /// it may be null for Type I. Must outlive the injector.
  explicit ErrorInjector(ErrorModelOptions options,
                         const IdfWeights* weights = nullptr);

  /// Returns a corrupted copy of `clean`. Deterministic given the Rng
  /// state. Columns that cannot take the drawn error (e.g. a transposition
  /// in a one-token field) degrade to a spelling error.
  Row Inject(const Row& clean, Rng& rng) const;

  /// Corrupts a single token with 1-2 random character edits (exposed for
  /// tests).
  static std::string MisspellToken(const std::string& token, Rng& rng);

  /// The forward abbreviation dictionary ('corporation' -> 'corp', ...).
  static const std::vector<std::pair<std::string, std::string>>&
  AbbreviationTable();

 private:
  size_t PickTokenIndex(const std::vector<std::string>& tokens,
                        uint32_t column, Rng& rng) const;
  ErrorType DrawErrorType(size_t column, Rng& rng) const;
  /// Applies one error of the given type to a non-null field value;
  /// returns the new value (nullopt for kMissingValue).
  std::optional<std::string> ApplyToField(const std::string& value,
                                          uint32_t column, ErrorType type,
                                          Rng& rng) const;

  ErrorModelOptions options_;
  const IdfWeights* weights_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_GEN_ERROR_MODEL_H_

#include "core/fuzzy_match.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace fuzzymatch {

namespace {

obs::Counter& MaintenanceRollbacksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("maintenance.rollbacks");
  return *c;
}

obs::Counter& MaintenanceRollbackFailuresCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "maintenance.rollback_failures");
  return *c;
}

}  // namespace

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Assemble(
    FuzzyMatchConfig config, Table* ref, BuiltEti built) {
  auto matcher = std::unique_ptr<FuzzyMatcher>(new FuzzyMatcher());
  matcher->config_ = std::move(config);
  matcher->config_.eti = built.eti.params();
  matcher->ref_ = ref;
  matcher->eti_ = std::make_unique<Eti>(std::move(built.eti));
  if (matcher->config_.accel_memory_bytes > 0) {
    FM_RETURN_IF_ERROR(matcher->eti_->AttachAccelerator(
        EtiAccelOptions{matcher->config_.accel_memory_bytes}));
  }
  FM_RETURN_IF_ERROR(
      matcher->eti_->SetLookupPath(matcher->config_.lookup_path));
  matcher->weights_ = std::make_unique<IdfWeights>(std::move(built.weights));
  matcher->build_stats_ = built.stats;
  matcher->matcher_ = std::make_unique<EtiMatcher>(
      ref, matcher->eti_.get(), matcher->weights_.get(),
      matcher->config_.matcher);
  return matcher;
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Build(
    Database* db, const std::string& ref_table_name,
    FuzzyMatchConfig config) {
  FM_ASSIGN_OR_RETURN(Table * ref, db->GetTable(ref_table_name));

  EtiBuilder::Options build_options;
  build_options.params = config.eti;
  build_options.cache_kind = config.cache_kind;
  build_options.bounded_buckets = config.bounded_cache_buckets;
  build_options.sort_memory_bytes = config.sort_memory_bytes;
  build_options.temp_dir = config.temp_dir;
  build_options.build_threads = config.build_threads;
  FM_ASSIGN_OR_RETURN(BuiltEti built, EtiBuilder::Build(db, ref,
                                                        build_options));
  return Assemble(std::move(config), ref, std::move(built));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Build(
    Database* db, const std::string& ref_table_name) {
  FuzzyMatchConfig config;
  return Build(db, ref_table_name, std::move(config));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Open(
    Database* db, const std::string& ref_table_name,
    const std::string& strategy_name, FuzzyMatchConfig config) {
  FM_ASSIGN_OR_RETURN(Table * ref, db->GetTable(ref_table_name));
  FM_ASSIGN_OR_RETURN(
      BuiltEti built,
      EtiBuilder::Attach(db, ref, strategy_name, config.cache_kind,
                         config.bounded_cache_buckets));
  return Assemble(std::move(config), ref, std::move(built));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Open(
    Database* db, const std::string& ref_table_name,
    const std::string& strategy_name) {
  FuzzyMatchConfig config;
  return Open(db, ref_table_name, strategy_name, std::move(config));
}

void FuzzyMatcher::OverrideWeights(IdfWeights weights) {
  weights_ = std::make_unique<IdfWeights>(std::move(weights));
  matcher_ = std::make_unique<EtiMatcher>(ref_, eti_.get(), weights_.get(),
                                          config_.matcher);
}

Result<Tid> FuzzyMatcher::InsertReferenceTuple(const Row& row) {
  FM_ASSIGN_OR_RETURN(const Tid tid, ref_->Insert(row));
  const Tokenizer tokenizer = eti_->MakeTokenizer();
  const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
  const Status indexed = eti_->IndexTuple(tid, tokens);
  if (!indexed.ok()) {
    // Roll the half-applied insert back so the tuple ends fully absent
    // (the all-or-nothing maintenance invariant, DESIGN.md 5e). The
    // caller may retry the whole insert; the tid is burned either way.
    MaintenanceRollbacksCounter().Increment();
    const Status unindexed = eti_->UnindexTuple(tid, tokens);
    if (!unindexed.ok() && !unindexed.IsNotFound()) {
      MaintenanceRollbackFailuresCounter().Increment();
      FM_LOG(Warning) << "rollback of partially indexed tuple " << tid
                      << " failed: " << unindexed;
    }
    const Status removed = ref_->Delete(tid);
    if (!removed.ok()) {
      MaintenanceRollbackFailuresCounter().Increment();
      FM_LOG(Warning) << "rollback delete of reference tuple " << tid
                      << " failed: " << removed;
    }
    matcher_->InvalidateCachedTuple(tid);
    return indexed;
  }
  matcher_->InvalidateCachedTuple(tid);
  return tid;
}

Status FuzzyMatcher::RemoveReferenceTuple(Tid tid) {
  FM_ASSIGN_OR_RETURN(const Row row, ref_->Get(tid));
  const Tokenizer tokenizer = eti_->MakeTokenizer();
  const Status unindexed = eti_->UnindexTuple(tid, tokenizer.TokenizeTuple(row));
  // NotFound means a previous attempt already stripped every coordinate
  // before failing later in this function; finish the removal.
  if (!unindexed.ok() && !unindexed.IsNotFound()) {
    return unindexed;
  }
  matcher_->InvalidateCachedTuple(tid);
  return ref_->Delete(tid);
}

}  // namespace fuzzymatch

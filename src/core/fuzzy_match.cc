#include "core/fuzzy_match.h"

namespace fuzzymatch {

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Assemble(
    FuzzyMatchConfig config, Table* ref, BuiltEti built) {
  auto matcher = std::unique_ptr<FuzzyMatcher>(new FuzzyMatcher());
  matcher->config_ = std::move(config);
  matcher->config_.eti = built.eti.params();
  matcher->ref_ = ref;
  matcher->eti_ = std::make_unique<Eti>(std::move(built.eti));
  if (matcher->config_.accel_memory_bytes > 0) {
    FM_RETURN_IF_ERROR(matcher->eti_->AttachAccelerator(
        EtiAccelOptions{matcher->config_.accel_memory_bytes}));
  }
  matcher->weights_ = std::make_unique<IdfWeights>(std::move(built.weights));
  matcher->build_stats_ = built.stats;
  matcher->matcher_ = std::make_unique<EtiMatcher>(
      ref, matcher->eti_.get(), matcher->weights_.get(),
      matcher->config_.matcher);
  return matcher;
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Build(
    Database* db, const std::string& ref_table_name,
    FuzzyMatchConfig config) {
  FM_ASSIGN_OR_RETURN(Table * ref, db->GetTable(ref_table_name));

  EtiBuilder::Options build_options;
  build_options.params = config.eti;
  build_options.cache_kind = config.cache_kind;
  build_options.bounded_buckets = config.bounded_cache_buckets;
  build_options.sort_memory_bytes = config.sort_memory_bytes;
  build_options.temp_dir = config.temp_dir;
  FM_ASSIGN_OR_RETURN(BuiltEti built, EtiBuilder::Build(db, ref,
                                                        build_options));
  return Assemble(std::move(config), ref, std::move(built));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Build(
    Database* db, const std::string& ref_table_name) {
  FuzzyMatchConfig config;
  return Build(db, ref_table_name, std::move(config));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Open(
    Database* db, const std::string& ref_table_name,
    const std::string& strategy_name, FuzzyMatchConfig config) {
  FM_ASSIGN_OR_RETURN(Table * ref, db->GetTable(ref_table_name));
  FM_ASSIGN_OR_RETURN(
      BuiltEti built,
      EtiBuilder::Attach(db, ref, strategy_name, config.cache_kind,
                         config.bounded_cache_buckets));
  return Assemble(std::move(config), ref, std::move(built));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Open(
    Database* db, const std::string& ref_table_name,
    const std::string& strategy_name) {
  FuzzyMatchConfig config;
  return Open(db, ref_table_name, strategy_name, std::move(config));
}

Result<Tid> FuzzyMatcher::InsertReferenceTuple(const Row& row) {
  FM_ASSIGN_OR_RETURN(const Tid tid, ref_->Insert(row));
  const Tokenizer tokenizer = eti_->MakeTokenizer();
  FM_RETURN_IF_ERROR(eti_->IndexTuple(tid, tokenizer.TokenizeTuple(row)));
  matcher_->InvalidateCachedTuple(tid);
  return tid;
}

Status FuzzyMatcher::RemoveReferenceTuple(Tid tid) {
  FM_ASSIGN_OR_RETURN(const Row row, ref_->Get(tid));
  const Tokenizer tokenizer = eti_->MakeTokenizer();
  FM_RETURN_IF_ERROR(eti_->UnindexTuple(tid, tokenizer.TokenizeTuple(row)));
  matcher_->InvalidateCachedTuple(tid);
  return ref_->Delete(tid);
}

}  // namespace fuzzymatch

#include "core/fuzzy_match.h"

#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace fuzzymatch {

namespace {

obs::Counter& MaintenanceRollbacksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("maintenance.rollbacks");
  return *c;
}

obs::Counter& MaintenanceRollbackFailuresCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "maintenance.rollback_failures");
  return *c;
}

obs::Counter& RebuildsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti.rebuilds");
  return *c;
}

obs::Counter& RebuildSideOpsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti.rebuild_side_ops");
  return *c;
}

}  // namespace

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Assemble(
    Database* db, FuzzyMatchConfig config, Table* ref, BuiltEti built) {
  auto matcher = std::unique_ptr<FuzzyMatcher>(new FuzzyMatcher());
  matcher->config_ = std::move(config);
  matcher->config_.eti = built.eti.params();
  matcher->db_ = db;
  matcher->ref_ = ref;
  matcher->eti_ = std::make_unique<Eti>(std::move(built.eti));
  if (matcher->config_.accel_memory_bytes > 0) {
    FM_RETURN_IF_ERROR(matcher->eti_->AttachAccelerator(
        EtiAccelOptions{matcher->config_.accel_memory_bytes}));
  }
  FM_RETURN_IF_ERROR(
      matcher->eti_->SetLookupPath(matcher->config_.lookup_path));
  matcher->weights_ = std::make_unique<IdfWeights>(std::move(built.weights));
  matcher->build_stats_ = built.stats;
  matcher->matcher_ = std::make_unique<EtiMatcher>(
      ref, matcher->eti_.get(), matcher->weights_.get(),
      matcher->config_.matcher);
  return matcher;
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Build(
    Database* db, const std::string& ref_table_name,
    FuzzyMatchConfig config) {
  FM_ASSIGN_OR_RETURN(Table * ref, db->GetTable(ref_table_name));

  EtiBuilder::Options build_options;
  build_options.params = config.eti;
  build_options.cache_kind = config.cache_kind;
  build_options.bounded_buckets = config.bounded_cache_buckets;
  build_options.sort_memory_bytes = config.sort_memory_bytes;
  build_options.temp_dir = config.temp_dir;
  build_options.build_threads = config.build_threads;
  FM_ASSIGN_OR_RETURN(BuiltEti built, EtiBuilder::Build(db, ref,
                                                        build_options));
  return Assemble(db, std::move(config), ref, std::move(built));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Build(
    Database* db, const std::string& ref_table_name) {
  FuzzyMatchConfig config;
  return Build(db, ref_table_name, std::move(config));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Open(
    Database* db, const std::string& ref_table_name,
    const std::string& strategy_name, FuzzyMatchConfig config) {
  FM_ASSIGN_OR_RETURN(Table * ref, db->GetTable(ref_table_name));
  FM_ASSIGN_OR_RETURN(
      BuiltEti built,
      EtiBuilder::Attach(db, ref, strategy_name, config.cache_kind,
                         config.bounded_cache_buckets));
  return Assemble(db, std::move(config), ref, std::move(built));
}

Result<std::unique_ptr<FuzzyMatcher>> FuzzyMatcher::Open(
    Database* db, const std::string& ref_table_name,
    const std::string& strategy_name) {
  FuzzyMatchConfig config;
  return Open(db, ref_table_name, strategy_name, std::move(config));
}

void FuzzyMatcher::OverrideWeights(IdfWeights weights) {
  weights_ = std::make_unique<IdfWeights>(std::move(weights));
  matcher_ = std::make_unique<EtiMatcher>(ref_, eti_.get(), weights_.get(),
                                          config_.matcher);
}

std::string FuzzyMatcher::EtiName() const {
  return ref_->name() + "_eti_" + eti_->params().StrategyName();
}

Result<Tid> FuzzyMatcher::InsertLocked(const Row& row) {
  FM_ASSIGN_OR_RETURN(const Tid tid, ref_->Insert(row));
  const Tokenizer tokenizer = eti_->MakeTokenizer();
  const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
  const Status indexed = eti_->IndexTuple(tid, tokens);
  if (!indexed.ok()) {
    // Roll the half-applied insert back so the tuple ends fully absent
    // (the all-or-nothing maintenance invariant, DESIGN.md 5e). The
    // caller may retry the whole insert; the tid is burned either way.
    MaintenanceRollbacksCounter().Increment();
    const Status unindexed = eti_->UnindexTuple(tid, tokens);
    if (!unindexed.ok() && !unindexed.IsNotFound()) {
      MaintenanceRollbackFailuresCounter().Increment();
      FM_LOG(Warning) << "rollback of partially indexed tuple " << tid
                      << " failed: " << unindexed;
    }
    const Status removed = ref_->Delete(tid);
    if (!removed.ok()) {
      MaintenanceRollbackFailuresCounter().Increment();
      FM_LOG(Warning) << "rollback delete of reference tuple " << tid
                      << " failed: " << removed;
    }
    matcher_->InvalidateCachedTuple(tid);
    return indexed;
  }
  matcher_->InvalidateCachedTuple(tid);
  return tid;
}

Result<Tid> FuzzyMatcher::InsertReferenceTuple(const Row& row) {
  std::unique_lock<std::mutex> lock(maint_mu_);
  maint_cv_.wait(lock, [this] { return !maint_blocked_; });
  if (db_ != nullptr) {
    db_->BeginMaintenance();
  }
  Result<Tid> result = InsertLocked(row);
  if (db_ != nullptr) {
    // Durable-ack: the insert counts only once its pages are in the log.
    // Whatever InsertLocked left in memory — the applied op or its
    // rollback residue — is what gets committed.
    const Status committed = db_->CommitMaintenance();
    if (!committed.ok()) {
      if (result.ok()) {
        // The op cannot be acknowledged; undo it in memory so the served
        // state stays aligned with the durable (pre-op) state, then
        // commit the rollback residue best-effort.
        MaintenanceRollbacksCounter().Increment();
        const Tokenizer tokenizer = eti_->MakeTokenizer();
        const Status unindexed =
            eti_->UnindexTuple(*result, tokenizer.TokenizeTuple(row));
        if (!unindexed.ok() && !unindexed.IsNotFound()) {
          MaintenanceRollbackFailuresCounter().Increment();
          FM_LOG(Warning) << "post-commit-failure unindex of tuple "
                          << *result << " failed: " << unindexed;
        }
        const Status removed = ref_->Delete(*result);
        if (!removed.ok()) {
          MaintenanceRollbackFailuresCounter().Increment();
          FM_LOG(Warning) << "post-commit-failure delete of tuple "
                          << *result << " failed: " << removed;
        }
        matcher_->InvalidateCachedTuple(*result);
        const Status residue = db_->CommitMaintenance();
        if (!residue.ok()) {
          FM_LOG(Warning) << "commit of insert rollback residue failed: "
                          << residue;
        }
      }
      return committed;
    }
  }
  if (result.ok() && capturing_) {
    side_log_.push_back(SideOp{/*add=*/true, *result, row});
  }
  return result;
}

Status FuzzyMatcher::RemoveLocked(Tid tid, Row* removed_row) {
  FM_ASSIGN_OR_RETURN(const Row row, ref_->Get(tid));
  const Tokenizer tokenizer = eti_->MakeTokenizer();
  const Status unindexed =
      eti_->UnindexTuple(tid, tokenizer.TokenizeTuple(row));
  // NotFound means a previous attempt already stripped every coordinate
  // before failing later in this function; finish the removal.
  if (!unindexed.ok() && !unindexed.IsNotFound()) {
    return unindexed;
  }
  matcher_->InvalidateCachedTuple(tid);
  FM_RETURN_IF_ERROR(ref_->Delete(tid));
  *removed_row = row;
  return Status::OK();
}

Status FuzzyMatcher::RemoveReferenceTuple(Tid tid) {
  std::unique_lock<std::mutex> lock(maint_mu_);
  maint_cv_.wait(lock, [this] { return !maint_blocked_; });
  if (db_ != nullptr) {
    db_->BeginMaintenance();
  }
  Row removed_row;
  const Status result = RemoveLocked(tid, &removed_row);
  if (db_ != nullptr) {
    const Status committed = db_->CommitMaintenance();
    if (!committed.ok()) {
      if (result.ok()) {
        // Unacknowledgeable removal: resurrect the tuple (it gets a fresh
        // tid — tids are never reused) so the in-memory state matches the
        // durable one by content, then commit the residue best-effort.
        MaintenanceRollbacksCounter().Increment();
        const Result<Tid> restored = InsertLocked(removed_row);
        if (!restored.ok()) {
          MaintenanceRollbackFailuresCounter().Increment();
          FM_LOG(Warning) << "post-commit-failure resurrection of tuple "
                          << tid << " failed: " << restored.status();
        }
        const Status residue = db_->CommitMaintenance();
        if (!residue.ok()) {
          FM_LOG(Warning) << "commit of removal rollback residue failed: "
                          << residue;
        }
      }
      return committed;
    }
  }
  if (result.ok() && capturing_) {
    side_log_.push_back(SideOp{/*add=*/false, tid, removed_row});
  }
  return result;
}

Status FuzzyMatcher::ReplaySideOp(Eti* target, const SideOp& op) {
  const Tokenizer tokenizer = target->MakeTokenizer();
  const TokenizedTuple tokens = tokenizer.TokenizeTuple(op.row);
  if (op.add) {
    return target->IndexTuple(op.tid, tokens);
  }
  const Status unindexed = target->UnindexTuple(op.tid, tokens);
  // NotFound: the tuple was inserted and removed inside the capture
  // window and the scan saw neither — nothing to strip.
  if (!unindexed.ok() && !unindexed.IsNotFound()) {
    return unindexed;
  }
  return Status::OK();
}

Result<EtiRebuildStats> FuzzyMatcher::RebuildEti() {
  if (db_ == nullptr) {
    return Status::NotSupported("matcher has no database attached");
  }
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    if (rebuild_active_) {
      return Status::AlreadyExists("an ETI rebuild is already running");
    }
    rebuild_active_ = true;
    // Maintenance must not mutate the reference relation under the
    // builder's scan; it resumes (captured) once the scan finishes.
    maint_blocked_ = true;
    capturing_ = true;
    side_log_.clear();
  }
  RebuildsCounter().Increment();
  Timer timer;

  const std::string live_name = EtiName();
  const std::string shadow_name =
      live_name + std::string(kRebuildNameSuffix);

  auto fail = [&](Status status) -> Status {
    {
      std::lock_guard<std::mutex> lock(maint_mu_);
      maint_blocked_ = false;
      capturing_ = false;
      rebuild_active_ = false;
      side_log_.clear();
    }
    maint_cv_.notify_all();
    // Best-effort drop of the half-built shadow; whatever survives a
    // crash here is swept by the next Open().
    (void)db_->DropTable(shadow_name);
    (void)db_->DropIndex(shadow_name + "_idx");
    (void)db_->DropTable(shadow_name + "_meta");
    FM_LOG(Warning) << "online ETI rebuild failed: " << status;
    return status;
  };

  EtiBuilder::Options opts;
  opts.params = eti_->params();
  opts.cache_kind = config_.cache_kind;
  opts.bounded_buckets = config_.bounded_cache_buckets;
  opts.sort_memory_bytes = config_.sort_memory_bytes;
  opts.temp_dir = config_.temp_dir;
  opts.build_threads = config_.build_threads;
  opts.output_name = shadow_name;
  opts.on_scan_complete = [this] {
    {
      std::lock_guard<std::mutex> lock(maint_mu_);
      maint_blocked_ = false;
    }
    maint_cv_.notify_all();
  };

  Result<BuiltEti> built = EtiBuilder::Build(db_, ref_, opts);
  if (!built.ok()) {
    return fail(built.status());
  }

  EtiRebuildStats stats;
  stats.build = built->stats;

  // First replay pass, without blocking maintenance: drain the side ops
  // captured so far onto the shadow index.
  size_t replayed = 0;
  for (;;) {
    SideOp op;
    {
      std::lock_guard<std::mutex> lock(maint_mu_);
      if (replayed >= side_log_.size()) {
        break;
      }
      op = side_log_[replayed];
    }
    const Status s = ReplaySideOp(&built->eti, op);
    if (!s.ok()) {
      return fail(s);
    }
    ++replayed;
  }

  // Re-seed the read accelerators over the shadow rows (still unlocked —
  // these are full scans). Attached to the shadow handle first so the
  // final replay pass below keeps them coherent via InvalidateAccel.
  if (config_.accel_memory_bytes > 0) {
    const Status attached = built->eti.AttachAccelerator(
        EtiAccelOptions{config_.accel_memory_bytes});
    if (!attached.ok()) {
      return fail(attached);
    }
  }
  const Status path_set = built->eti.SetLookupPath(config_.lookup_path);
  if (!path_set.ok()) {
    return fail(path_set);
  }

  // Swap window: block new maintenance, drain the side-log tail, install
  // the shadow storage, move the catalog names, checkpoint. Queries keep
  // flowing throughout — they read whichever storage snapshot they
  // loaded.
  std::unique_lock<std::mutex> lock(maint_mu_);
  capturing_ = false;
  for (; replayed < side_log_.size(); ++replayed) {
    const Status s = ReplaySideOp(&built->eti, side_log_[replayed]);
    if (!s.ok()) {
      lock.unlock();
      return fail(s);
    }
  }
  stats.side_ops_replayed = side_log_.size();
  RebuildSideOpsCounter().Increment(side_log_.size());
  side_log_.clear();

  eti_->SwapStorageFrom(built->eti);

  // Catalog half of the swap: the live names move to the shadow objects;
  // the old objects are retired (kept alive for in-flight readers) and a
  // checkpoint makes it all durable. A crash before the checkpoint
  // completes leaves either the old catalog (shadow swept at Open) or
  // the new one — never a mix, per the checkpoint ordering contract.
  Status swap_status = Status::OK();
  const auto step = [&](Status s) {
    if (swap_status.ok() && !s.ok()) {
      swap_status = s;
    }
  };
  step(db_->RetireTable(live_name));
  step(db_->RetireIndex(live_name + "_idx"));
  step(db_->RetireTable(live_name + "_meta"));
  step(db_->RenameTable(shadow_name, live_name));
  step(db_->RenameIndex(shadow_name + "_idx", live_name + "_idx"));
  step(db_->RenameTable(shadow_name + "_meta", live_name + "_meta"));
  step(db_->Checkpoint());
  rebuild_active_ = false;
  lock.unlock();
  maint_cv_.notify_all();
  if (!swap_status.ok()) {
    FM_LOG(Warning) << "online ETI rebuild: catalog swap: " << swap_status;
    return swap_status;
  }

  stats.total_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace fuzzymatch

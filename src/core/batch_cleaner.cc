#include "core/batch_cleaner.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {

namespace {

/// The cleaner's registry slice, resolved once per process.
struct CleanerMetrics {
  obs::Counter* processed;
  obs::Counter* validated;
  obs::Counter* corrected;
  obs::Counter* routed;
  obs::Histogram* clean_seconds;  // end-to-end latency of one tuple
  obs::Histogram* batch_seconds;
  obs::Gauge* queries_per_second;  // of the most recent batch

  static const CleanerMetrics& Get() {
    static const CleanerMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* metrics = new CleanerMetrics();
      metrics->processed = reg.GetCounter("cleaner.processed");
      metrics->validated = reg.GetCounter("cleaner.validated");
      metrics->corrected = reg.GetCounter("cleaner.corrected");
      metrics->routed = reg.GetCounter("cleaner.routed");
      metrics->clean_seconds = reg.GetHistogram(
          "cleaner.clean_seconds", obs::LatencyHistogramOptions());
      metrics->batch_seconds = reg.GetHistogram(
          "cleaner.batch_seconds", obs::LatencyHistogramOptions());
      metrics->queries_per_second =
          reg.GetGauge("cleaner.queries_per_second");
      return metrics;
    }();
    return *m;
  }
};

}  // namespace

BatchCleaner::BatchCleaner(const MatchSource* matcher, Options options)
    : matcher_(matcher), options_(options) {
  FM_CHECK(matcher != nullptr);
}

Result<CleanResult> BatchCleaner::Clean(const Row& input) const {
  // Request boundary when called outside the server (CLI, benches);
  // under a server worker the worker's trace is already installed.
  obs::MaybeRequestTrace boundary("clean");
  Result<CleanResult> result = CleanImpl(input);
  if (!result.ok()) {
    boundary.SetStatus(result.status());
  }
  return result;
}

Result<CleanResult> BatchCleaner::CleanImpl(const Row& input) const {
  const CleanerMetrics& m = CleanerMetrics::Get();
  FM_TRACE_SPAN("cleaner.clean");
  Timer timer;
  FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                      matcher_->FindMatches(input));
  CleanResult result;
  if (matches.empty() ||
      matches[0].similarity < options_.load_threshold) {
    result.outcome = CleanOutcome::kRouted;
    result.output = input;
    if (!matches.empty()) {
      result.best_match = matches[0];
    }
  } else {
    result.best_match = matches[0];
    FM_ASSIGN_OR_RETURN(result.output,
                        matcher_->GetReferenceTuple(matches[0].tid));
    result.outcome = matches[0].similarity >= 1.0
                         ? CleanOutcome::kValidated
                         : CleanOutcome::kCorrected;
  }
  m.clean_seconds->Observe(timer.ElapsedSeconds());
  m.processed->Increment();
  switch (result.outcome) {
    case CleanOutcome::kValidated:
      m.validated->Increment();
      break;
    case CleanOutcome::kCorrected:
      m.corrected->Increment();
      break;
    case CleanOutcome::kRouted:
      m.routed->Increment();
      break;
  }
  return result;
}

Result<CleanStats> BatchCleaner::CleanBatch(const std::vector<Row>& inputs,
                                            const Sink& sink) const {
  Timer timer;
  CleanStats stats;
  for (size_t i = 0; i < inputs.size(); ++i) {
    FM_ASSIGN_OR_RETURN(const CleanResult result, Clean(inputs[i]));
    ++stats.processed;
    switch (result.outcome) {
      case CleanOutcome::kValidated:
        ++stats.validated;
        break;
      case CleanOutcome::kCorrected:
        ++stats.corrected;
        break;
      case CleanOutcome::kRouted:
        ++stats.routed;
        break;
    }
    if (sink) {
      FM_RETURN_IF_ERROR(sink(i, result));
    }
  }
  stats.elapsed_seconds = timer.ElapsedSeconds();
  const CleanerMetrics& m = CleanerMetrics::Get();
  m.batch_seconds->Observe(stats.elapsed_seconds);
  if (stats.elapsed_seconds > 0.0) {
    m.queries_per_second->Set(static_cast<double>(stats.processed) /
                              stats.elapsed_seconds);
  }
  return stats;
}

Result<CleanStats> BatchCleaner::CleanBatchParallel(
    const std::vector<Row>& inputs, size_t threads, const Sink& sink) const {
  if (threads <= 1 || inputs.size() <= 1) {
    return CleanBatch(inputs, sink);
  }
  threads = std::min(threads, inputs.size());

  Timer timer;
  std::vector<std::optional<CleanResult>> results(inputs.size());
  // Workers pull indices from a shared cursor (cheap work stealing: input
  // tuples vary a lot in cost, so static partitioning would straggle).
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  size_t first_error_index = inputs.size();
  Status first_error = Status::OK();

  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= inputs.size() || failed.load(std::memory_order_relaxed)) {
        return;
      }
      Result<CleanResult> result = Clean(inputs[i]);
      if (!result.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = result.status();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      results[i] = std::move(result).value();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (failed.load(std::memory_order_relaxed)) {
    return first_error;
  }

  // Serial, in-order reduction keeps sink output deterministic.
  CleanStats stats;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const CleanResult& result = *results[i];
    ++stats.processed;
    switch (result.outcome) {
      case CleanOutcome::kValidated:
        ++stats.validated;
        break;
      case CleanOutcome::kCorrected:
        ++stats.corrected;
        break;
      case CleanOutcome::kRouted:
        ++stats.routed;
        break;
    }
    if (sink) {
      FM_RETURN_IF_ERROR(sink(i, result));
    }
  }
  stats.elapsed_seconds = timer.ElapsedSeconds();
  const CleanerMetrics& m = CleanerMetrics::Get();
  m.batch_seconds->Observe(stats.elapsed_seconds);
  if (stats.elapsed_seconds > 0.0) {
    m.queries_per_second->Set(static_cast<double>(stats.processed) /
                              stats.elapsed_seconds);
  }
  return stats;
}

}  // namespace fuzzymatch

#include "core/batch_cleaner.h"

#include "common/logging.h"
#include "common/timer.h"

namespace fuzzymatch {

BatchCleaner::BatchCleaner(const FuzzyMatcher* matcher, Options options)
    : matcher_(matcher), options_(options) {
  FM_CHECK(matcher != nullptr);
}

Result<CleanResult> BatchCleaner::Clean(const Row& input) const {
  FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                      matcher_->FindMatches(input));
  CleanResult result;
  if (matches.empty() ||
      matches[0].similarity < options_.load_threshold) {
    result.outcome = CleanOutcome::kRouted;
    result.output = input;
    if (!matches.empty()) {
      result.best_match = matches[0];
    }
    return result;
  }
  result.best_match = matches[0];
  FM_ASSIGN_OR_RETURN(result.output,
                      matcher_->GetReferenceTuple(matches[0].tid));
  result.outcome = matches[0].similarity >= 1.0 ? CleanOutcome::kValidated
                                                : CleanOutcome::kCorrected;
  return result;
}

Result<CleanStats> BatchCleaner::CleanBatch(const std::vector<Row>& inputs,
                                            const Sink& sink) const {
  Timer timer;
  CleanStats stats;
  for (size_t i = 0; i < inputs.size(); ++i) {
    FM_ASSIGN_OR_RETURN(const CleanResult result, Clean(inputs[i]));
    ++stats.processed;
    switch (result.outcome) {
      case CleanOutcome::kValidated:
        ++stats.validated;
        break;
      case CleanOutcome::kCorrected:
        ++stats.corrected;
        break;
      case CleanOutcome::kRouted:
        ++stats.routed;
        break;
    }
    if (sink) {
      FM_RETURN_IF_ERROR(sink(i, result));
    }
  }
  stats.elapsed_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace fuzzymatch

// BatchCleaner: the productized Figure 1 operator.
//
// Incoming tuples are fuzzily matched against the reference relation and
// routed three ways, exactly as the paper's template prescribes:
//   - kValidated: an exact (similarity 1.0) match — load as-is;
//   - kCorrected: similarity >= the load threshold — load the matched
//     clean reference tuple instead of the input;
//   - kRouted: below the threshold — send to further cleaning.
// This mirrors the shipped incarnation of the paper (SSIS Fuzzy Lookup):
// a lookup transform with a similarity-threshold output split.

#ifndef FUZZYMATCH_CORE_BATCH_CLEANER_H_
#define FUZZYMATCH_CORE_BATCH_CLEANER_H_

#include <functional>

#include "core/fuzzy_match.h"

namespace fuzzymatch {

/// Where one input tuple ended up.
enum class CleanOutcome {
  kValidated,
  kCorrected,
  kRouted,
};

/// The full disposition of one input tuple.
struct CleanResult {
  CleanOutcome outcome = CleanOutcome::kRouted;
  /// The tuple to load: the matched reference tuple for kValidated /
  /// kCorrected, the (unusable) input itself for kRouted.
  Row output;
  /// Best match, if any cleared the matcher's minimum similarity.
  std::optional<Match> best_match;
};

/// Batch totals.
struct CleanStats {
  uint64_t processed = 0;
  uint64_t validated = 0;
  uint64_t corrected = 0;
  uint64_t routed = 0;
  double elapsed_seconds = 0.0;
};

/// Streams dirty tuples through a MatchSource (single-database
/// FuzzyMatcher or sharded coordinator) and routes the results.
///
/// Thread safety: Clean() and CleanBatch() are safe to call from
/// concurrent threads (the matcher's query path is concurrent and the
/// cleaner itself holds no per-query state); CleanBatchParallel fans one
/// batch out over its own worker threads.
class BatchCleaner {
 public:
  struct Options {
    /// c_load: minimum similarity for loading a corrected tuple. Matches
    /// at or above similarity 1.0 count as validated instead.
    double load_threshold = 0.8;
  };

  /// `matcher` must outlive the cleaner.
  BatchCleaner(const MatchSource* matcher, Options options);

  /// Cleans one tuple.
  Result<CleanResult> Clean(const Row& input) const;

  /// Sink invoked per tuple by CleanBatch; receives the input's index.
  using Sink = std::function<Status(size_t index, const CleanResult&)>;

  /// Cleans a whole batch, invoking `sink` for each tuple (pass nullptr
  /// to only collect statistics). Stops at the first sink/match error.
  Result<CleanStats> CleanBatch(const std::vector<Row>& inputs,
                                const Sink& sink = nullptr) const;

  /// Cleans a batch on `threads` worker threads sharing the matcher's
  /// concurrent query path. Routing decisions are identical to the serial
  /// CleanBatch, and `sink` is still invoked serially in input order once
  /// all tuples are processed, so output row order stays deterministic.
  /// On a match error the first (lowest-index) error is returned and the
  /// remaining work is abandoned. `threads` <= 1 degenerates to
  /// CleanBatch.
  Result<CleanStats> CleanBatchParallel(const std::vector<Row>& inputs,
                                        size_t threads,
                                        const Sink& sink = nullptr) const;

  const Options& options() const { return options_; }

 private:
  /// Clean minus the trace boundary (which needs to observe the early
  /// returns' Status).
  Result<CleanResult> CleanImpl(const Row& input) const;

  const MatchSource* matcher_;
  Options options_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_CORE_BATCH_CLEANER_H_

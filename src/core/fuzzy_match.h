// FuzzyMatcher: the library's public entry point.
//
// Implements the paper's end-to-end operation (Figure 1's template): build
// an Error Tolerant Index over a clean reference relation once, then
// fuzzily match incoming tuples against it online.
//
//   Database db = ...;                       // storage engine
//   Table* customers = ...;                  // clean reference relation
//   FM_ASSIGN_OR_RETURN(auto matcher,
//       FuzzyMatcher::Build(&db, "customers", config));
//   auto matches = matcher->Match(dirty_row);
//   if (!matches->empty() && (*matches)[0].similarity >= 0.8) { ... }

#ifndef FUZZYMATCH_CORE_FUZZY_MATCH_H_
#define FUZZYMATCH_CORE_FUZZY_MATCH_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "eti/eti_builder.h"
#include "match/eti_matcher.h"
#include "match/match_source.h"
#include "match/match_types.h"
#include "storage/database.h"

namespace fuzzymatch {

/// Everything configurable about one fuzzy-match deployment.
struct FuzzyMatchConfig {
  /// Index-construction parameters (q, H, Q+T, stop threshold, seed).
  EtiParams eti;
  /// Query-time parameters (K, threshold c, OSC, fms knobs).
  MatcherOptions matcher;
  /// Token-frequency cache flavour (Section 4.4.1).
  FrequencyCacheKind cache_kind = FrequencyCacheKind::kExact;
  size_t bounded_cache_buckets = 1u << 20;
  /// ETI build resources.
  size_t sort_memory_bytes = 64u << 20;
  /// Spill directory for the build's external sort. Empty derives it from
  /// the database's own directory (then $TMPDIR, then /tmp); see
  /// EtiBuilder::Options::temp_dir.
  std::string temp_dir;
  /// ETI build parallelism (EtiBuilder::Options::build_threads): 1 =
  /// serial, 0 = one worker per hardware thread. Output is byte-identical
  /// for any value.
  int build_threads = 1;
  /// Memory budget of the in-memory ETI read accelerator built over the
  /// persisted index at Build/Open time (DESIGN.md 5d); 0 disables it and
  /// every probe takes the B-tree path.
  size_t accel_memory_bytes = 64u << 20;
  /// Lookup-path ablation variant (DESIGN.md 5i): scalar | simd |
  /// learned. Match output is byte-identical across variants; they
  /// differ only in hot-path speed.
  LookupPath lookup_path = LookupPath::kSimd;
};

/// What one online ETI rebuild did (see FuzzyMatcher::RebuildEti).
struct EtiRebuildStats {
  EtiBuildStats build;
  /// Maintenance ops that landed mid-build and were replayed from the
  /// side log onto the shadow index before the swap.
  uint64_t side_ops_replayed = 0;
  double total_seconds = 0;
};

/// A built fuzzy-match operator over one reference relation.
///
/// Thread safety: after Build()/Open() returns, FindMatches and
/// GetReferenceTuple may be called from any number of threads (the
/// storage read path is latched and the matcher's aggregate stats are
/// internally synchronized). InsertReferenceTuple/RemoveReferenceTuple
/// serialize against each other and against RebuildEti internally, but
/// remain writers: do not run them concurrently with queries. RebuildEti
/// itself is safe to run while queries are being served.
class FuzzyMatcher : public MatchSource {
 public:
  /// Builds the ETI and weight table for `ref_table_name` inside `db` and
  /// returns a ready matcher. The ETI persists in `db` as a standard
  /// relation + index named after the table and strategy.
  ///
  /// The config-less overloads (here and on Open) stand in for a
  /// `config = {}` default argument, which GCC 12 -O2 flags with a
  /// spurious -Wmaybe-uninitialized at every call site.
  static Result<std::unique_ptr<FuzzyMatcher>> Build(
      Database* db, const std::string& ref_table_name,
      FuzzyMatchConfig config);
  static Result<std::unique_ptr<FuzzyMatcher>> Build(
      Database* db, const std::string& ref_table_name);

  /// Re-attaches to an ETI built in a previous session (the paper: "we
  /// can use it for subsequent batches of input tuples if the reference
  /// table does not change"). Only the main-memory token-frequency cache
  /// is rebuilt (one reference scan); the index itself is reused.
  /// `strategy_name` is EtiParams::StrategyName() of the original build;
  /// `config.eti` is ignored (the persisted parameters win).
  static Result<std::unique_ptr<FuzzyMatcher>> Open(
      Database* db, const std::string& ref_table_name,
      const std::string& strategy_name, FuzzyMatchConfig config);
  static Result<std::unique_ptr<FuzzyMatcher>> Open(
      Database* db, const std::string& ref_table_name,
      const std::string& strategy_name);

  /// Incremental maintenance (extension; the paper defers it): inserts a
  /// new clean tuple into the reference relation AND the ETI, so later
  /// queries can match against it immediately. IDF weights are a
  /// main-memory snapshot and drift slightly until the next
  /// Build/Open — acceptable because log-scaled frequencies move slowly.
  /// With a WAL-backed database the operation is a durable transaction:
  /// it returns OK only after the dirtied pages are group-committed to
  /// the log, and a commit failure rolls the in-memory state back so the
  /// served index matches what recovery will reconstruct.
  Result<Tid> InsertReferenceTuple(const Row& row);

  /// Removes a reference tuple from both the relation and the ETI. Same
  /// durability contract as InsertReferenceTuple.
  Status RemoveReferenceTuple(Tid tid);

  /// Online ETI rebuild/compaction (DESIGN.md 5j): builds a fresh ETI
  /// beside the live one while queries keep being served, captures
  /// maintenance that lands mid-build in a side log, replays it onto the
  /// shadow index, re-seeds the read accelerators, and atomically swaps
  /// the new index in — queries are never drained. Maintenance blocks
  /// during the reference scan and briefly around the swap. The old
  /// index is retired from the catalog (in-flight readers finish on it)
  /// and the swap is made durable with a checkpoint.
  Result<EtiRebuildStats> RebuildEti();

  /// The K-fuzzy-match operation for one input tuple: at most K reference
  /// tuples with fms >= c, most similar first.
  Result<std::vector<Match>> FindMatches(
      const Row& input, QueryStats* stats = nullptr) const override {
    return matcher_->FindMatches(input, stats);
  }

  /// Fetches a matched reference tuple.
  Result<Row> GetReferenceTuple(Tid tid) const override {
    return ref_->Get(tid);
  }

  const Schema& reference_schema() const override { return ref_->schema(); }

  /// Replaces the IDF weight table and rebuilds the query engine around
  /// it. The sharded tier uses this to install weights computed over the
  /// FULL reference relation, so per-shard similarities are identical to
  /// the single-database matcher's. Not thread-safe: call before serving
  /// queries.
  void OverrideWeights(IdfWeights weights);

  /// A fresh query engine over this matcher's reference table, ETI and
  /// weights — its own tuple cache and stats, shared (read-only) index.
  /// Replica handles of the sharded read fan-out are built from these.
  /// The matcher must outlive the returned engine.
  std::unique_ptr<EtiMatcher> NewQueryEngine() const {
    return std::make_unique<EtiMatcher>(ref_, eti_.get(), weights_.get(),
                                        config_.matcher);
  }

  const Table& reference() const { return *ref_; }
  const Eti& eti() const { return *eti_; }
  /// The query engine (introspection: tuple-cache health for statusz).
  const EtiMatcher& eti_matcher() const { return *matcher_; }
  const IdfWeights& weights() const { return *weights_; }
  const EtiBuildStats& build_stats() const { return build_stats_; }
  /// Snapshot by value — the accumulator is shared across threads.
  AggregateStats aggregate_stats() const {
    return matcher_->aggregate_stats();
  }
  void ResetAggregateStats() { matcher_->ResetAggregateStats(); }
  const FuzzyMatchConfig& config() const { return config_; }

 private:
  /// One captured maintenance op, replayed onto the shadow index.
  struct SideOp {
    bool add = false;
    Tid tid = 0;
    Row row;
  };

  FuzzyMatcher() = default;

  /// Shared tail of Build() and Open(): wires the components together and
  /// attaches the ETI read accelerator (when budgeted).
  static Result<std::unique_ptr<FuzzyMatcher>> Assemble(
      Database* db, FuzzyMatchConfig config, Table* ref, BuiltEti built);

  /// The maintenance bodies, under maint_mu_ with the WAL txn open.
  Result<Tid> InsertLocked(const Row& row);
  Status RemoveLocked(Tid tid, Row* removed_row);

  /// Replays one side-log op onto `target` (the shadow ETI).
  Status ReplaySideOp(Eti* target, const SideOp& op);

  /// Canonical name of the live ETI relation.
  std::string EtiName() const;

  FuzzyMatchConfig config_;
  Database* db_ = nullptr;
  Table* ref_ = nullptr;
  std::unique_ptr<Eti> eti_;
  std::unique_ptr<IdfWeights> weights_;
  EtiBuildStats build_stats_;
  std::unique_ptr<EtiMatcher> matcher_;

  // Maintenance serialization + the rebuild's side-log capture window.
  // maint_mu_ is held for the whole of every maintenance op; the rebuild
  // raises maint_blocked_ while the builder scans the reference relation
  // (maintenance would race the scan) and capturing_ from rebuild start
  // until the swap.
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_blocked_ = false;
  bool capturing_ = false;
  bool rebuild_active_ = false;
  std::vector<SideOp> side_log_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_CORE_FUZZY_MATCH_H_

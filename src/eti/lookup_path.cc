#include "eti/lookup_path.h"

#include <string>

namespace fuzzymatch {

const char* LookupPathName(LookupPath path) {
  switch (path) {
    case LookupPath::kScalar:
      return "scalar";
    case LookupPath::kSimd:
      return "simd";
    case LookupPath::kLearned:
      return "learned";
  }
  return "unknown";
}

Result<LookupPath> ParseLookupPath(std::string_view name) {
  if (name == "scalar") return LookupPath::kScalar;
  if (name == "simd") return LookupPath::kSimd;
  if (name == "learned") return LookupPath::kLearned;
  return Status::InvalidArgument("unknown lookup path: " +
                                 std::string(name) +
                                 " (want scalar|simd|learned)");
}

}  // namespace fuzzymatch

// ETI construction (Section 4.2 of the paper).
//
// The builder scans the reference relation once, feeding both the
// token-frequency cache (for IDF weights) and the pre-ETI row stream
// [QGram, Coordinate, Column, Tid]. The pre-ETI is sorted by an external
// merge sort — standing in for the paper's SQL "ORDER BY" ETI-query — and
// consecutive groups become ETI rows with frequency and (delta-compressed)
// tid-list, persisted as a regular relation plus a B+-tree on
// [QGram, Coordinate, Column].
//
// With Options::build_threads > 1 the whole pipeline fans out (DESIGN.md
// 5f): N scan workers tokenize and min-hash disjoint tuple ranges, routing
// pre-ETI rows to N partition sorters hash-partitioned on the group key
// [QGram, Coordinate, Column]; per-worker token-frequency tallies merge
// into the IdfWeights cache at the post-scan barrier; each partition is
// sorted, grouped and encoded in parallel, and a single ordered writer
// merges the partition streams back into the exact serial row order — the
// persisted ETI relation, index and meta are byte-identical to a
// single-threaded build.

#ifndef FUZZYMATCH_ETI_ETI_BUILDER_H_
#define FUZZYMATCH_ETI_ETI_BUILDER_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "eti/eti.h"
#include "storage/database.h"
#include "text/idf_weights.h"

namespace fuzzymatch {

/// Build-time metrics (drives Figure 7 and the resource analysis of §4.4).
struct EtiBuildStats {
  uint64_t reference_tuples = 0;
  uint64_t pre_eti_rows = 0;
  uint64_t eti_rows = 0;
  uint64_t stop_qgrams = 0;
  uint64_t spilled_runs = 0;
  /// Worker count the build actually ran with (1 = serial path).
  uint32_t build_threads = 1;
  /// Resolved spill directory (see Options::temp_dir).
  std::string temp_dir;
  double scan_seconds = 0;   // reference scan + pre-ETI emission
  double sort_seconds = 0;   // residual sorter drain after the scan
                             // barrier (0 on the serial path: its sort
                             // work happens inside scan and merge)
  double merge_seconds = 0;  // sort/merge + grouping + ETI writes
  double total_seconds = 0;
};

/// Everything query processing needs, produced in one build pass.
struct BuiltEti {
  Eti eti;
  IdfWeights weights;
  EtiBuildStats stats;
};

class EtiBuilder {
 public:
  struct Options {
    EtiParams params;
    /// Token-frequency cache flavour (Section 4.4.1).
    FrequencyCacheKind cache_kind = FrequencyCacheKind::kExact;
    /// Bucket count for the kBounded cache.
    size_t bounded_buckets = 1u << 20;
    /// External sort memory budget, shared across the partition sorters
    /// of a parallel build.
    size_t sort_memory_bytes = 64u << 20;
    /// Spill directory for sort runs. Empty (the default) derives it:
    /// the database's own directory for file-backed stores, else $TMPDIR,
    /// else /tmp. The directory is probed for writability up front so a
    /// full or read-only disk fails with a clear Status instead of a
    /// mysterious fopen error mid-sort; the resolved choice is surfaced
    /// in EtiBuildStats::temp_dir.
    std::string temp_dir;
    /// Build parallelism: number of scan/sort/group workers. 1 runs the
    /// serial reference pipeline; 0 means one worker per hardware
    /// thread. Any value produces byte-identical persisted output.
    int build_threads = 1;
    /// Overrides the ETI relation name (default "<ref>_eti_<strategy>").
    /// The online rebuild builds its shadow index under
    /// "<default>~rebuild" and renames it into place at swap time.
    std::string output_name;
    /// Invoked once when the reference scan has finished (before the
    /// sort/merge phases, which never touch the reference relation). The
    /// online rebuild uses this as the barrier after which maintenance
    /// may resume, captured in a side log.
    std::function<void()> on_scan_complete;
  };

  /// Builds the ETI for `ref` inside `db`. The ETI relation is named
  /// "<ref>_eti_<strategy>" and its index "<ref>_eti_<strategy>_idx";
  /// the build parameters persist in "<ref>_eti_<strategy>_meta".
  /// Building the same strategy twice fails with AlreadyExists.
  static Result<BuiltEti> Build(Database* db, Table* ref,
                                const Options& options);

  /// Re-attaches to an ETI built in an earlier session ("we can use it
  /// for subsequent batches of input tuples", Section 6.2.2.1): reads the
  /// persisted parameters and rebuilds only the main-memory
  /// token-frequency cache with one scan of the reference relation —
  /// skipping the pre-ETI sort and all index writes. `strategy_name` is
  /// EtiParams::StrategyName() of the original build (e.g. "Q+T_3").
  static Result<BuiltEti> Attach(
      Database* db, Table* ref, const std::string& strategy_name,
      FrequencyCacheKind cache_kind = FrequencyCacheKind::kExact,
      size_t bounded_buckets = 1u << 20);
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_ETI_ETI_BUILDER_H_

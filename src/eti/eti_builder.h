// ETI construction (Section 4.2 of the paper).
//
// The builder scans the reference relation once, feeding both the
// token-frequency cache (for IDF weights) and the pre-ETI row stream
// [QGram, Coordinate, Column, Tid]. The pre-ETI is sorted by an external
// merge sort — standing in for the paper's SQL "ORDER BY" ETI-query — and
// consecutive groups become ETI rows with frequency and (delta-compressed)
// tid-list, persisted as a regular relation plus a B+-tree on
// [QGram, Coordinate, Column].

#ifndef FUZZYMATCH_ETI_ETI_BUILDER_H_
#define FUZZYMATCH_ETI_ETI_BUILDER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "eti/eti.h"
#include "storage/database.h"
#include "text/idf_weights.h"

namespace fuzzymatch {

/// Build-time metrics (drives Figure 7 and the resource analysis of §4.4).
struct EtiBuildStats {
  uint64_t reference_tuples = 0;
  uint64_t pre_eti_rows = 0;
  uint64_t eti_rows = 0;
  uint64_t stop_qgrams = 0;
  uint64_t spilled_runs = 0;
  double scan_seconds = 0;   // reference scan + pre-ETI emission
  double merge_seconds = 0;  // sort/merge + grouping + ETI writes
  double total_seconds = 0;
};

/// Everything query processing needs, produced in one build pass.
struct BuiltEti {
  Eti eti;
  IdfWeights weights;
  EtiBuildStats stats;
};

class EtiBuilder {
 public:
  struct Options {
    EtiParams params;
    /// Token-frequency cache flavour (Section 4.4.1).
    FrequencyCacheKind cache_kind = FrequencyCacheKind::kExact;
    /// Bucket count for the kBounded cache.
    size_t bounded_buckets = 1u << 20;
    /// External sort memory budget.
    size_t sort_memory_bytes = 64u << 20;
    /// Spill directory for sort runs.
    std::string temp_dir = "/tmp";
  };

  /// Builds the ETI for `ref` inside `db`. The ETI relation is named
  /// "<ref>_eti_<strategy>" and its index "<ref>_eti_<strategy>_idx";
  /// the build parameters persist in "<ref>_eti_<strategy>_meta".
  /// Building the same strategy twice fails with AlreadyExists.
  static Result<BuiltEti> Build(Database* db, Table* ref,
                                const Options& options);

  /// Re-attaches to an ETI built in an earlier session ("we can use it
  /// for subsequent batches of input tuples", Section 6.2.2.1): reads the
  /// persisted parameters and rebuilds only the main-memory
  /// token-frequency cache with one scan of the reference relation —
  /// skipping the pre-ETI sort and all index writes. `strategy_name` is
  /// EtiParams::StrategyName() of the original build (e.g. "Q+T_3").
  static Result<BuiltEti> Attach(
      Database* db, Table* ref, const std::string& strategy_name,
      FrequencyCacheKind cache_kind = FrequencyCacheKind::kExact,
      size_t bounded_buckets = 1u << 20);
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_ETI_ETI_BUILDER_H_

// LearnedOffsets: a per-segment learned model over the ETI's clustered
// key space that predicts where a [QGram, Coordinate, Column] key's
// posting entry lives, replacing the hash probe + B-tree walk with a
// model evaluation and a bounded-error correction search.
//
// The structure is a sorted array of the persisted ETI entries (full
// encoded clustered keys in an arena, postings kept as persisted
// delta-varints) plus a piecewise-linear model: the array is cut into
// fixed-size segments, and each segment stores the line through its
// endpoint (key-prefix, rank) pairs together with the *exact* maximum
// rank error that line makes over the segment's own keys. A probe:
//
//   1. projects the encoded key to a u64 prefix (its first 8 big-endian
//      bytes — memcmp order on keys implies numeric order on prefixes);
//   2. binary-searches the segment directory (small: n / segment_size);
//   3. evaluates the segment's line to get a predicted rank and
//      binary-searches only [predicted - max_error, predicted + max_error]
//      with full-key compares.
//
// The error bound is exact, not probabilistic: it was measured against
// every key in the segment at build time with the same float arithmetic
// the probe uses, so a key that is present is always inside its window.
// Distinct keys sharing a prefix (the same gram across coordinates)
// collapse to one predicted rank and simply widen that segment's
// measured error. If a window search is inconclusive (the landing spot
// touches a window edge without an exact match), the probe falls back to
// a whole-array binary search — the model is an accelerator, never an
// authority. Metrics split these outcomes: lookup.model_hits (resolved
// inside the window), lookup.model_corrections (whole-array rescue),
// lookup.model_fallbacks (B-tree consulted).
//
// Maintenance coherence mirrors EtiAccel: Invalidate on a known key
// tombstones its entry (probes then fall back to the B-tree); a key the
// structure has never seen cannot be inserted into the sorted array, so
// the structure degrades to incomplete and misses stop being
// authoritative negatives. Thread safety is the repo's shared-read model
// (DESIGN.md 5c): concurrent Probes are fine, Invalidate is writer-phase.

#ifndef FUZZYMATCH_ETI_LEARNED_OFFSETS_H_
#define FUZZYMATCH_ETI_LEARNED_OFFSETS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/simd_varint.h"
#include "eti/eti_accel.h"
#include "storage/table.h"

namespace fuzzymatch {

struct LearnedOffsetsOptions {
  /// Entries per model segment. Smaller segments fit the key
  /// distribution tighter (smaller correction windows) at the cost of a
  /// larger segment directory; 256 keeps the directory ~0.4% of the
  /// entry array while windows stay a few cache lines.
  size_t segment_size = 256;
};

class LearnedOffsets {
 public:
  enum class Outcome {
    kHit,       // entry found; *out filled
    kNegative,  // authoritative "not indexed"
    kFallback,  // tombstoned or incomplete miss: consult the B-tree
  };

  /// Builds the sorted entry array + model in one scan of the persisted
  /// ETI rows. Unlike EtiAccel there is no admission budget: the learned
  /// path is an explicit opt-in and models the whole key space (a
  /// partial sorted array could not answer negatives).
  static Result<std::shared_ptr<LearnedOffsets>> Build(
      const Table* rows, const LearnedOffsetsOptions& options);

  /// Probes for a full encoded clustered key (Eti::IndexKey bytes).
  /// Postings decode into `*scratch` with the given kernel; on kHit,
  /// `out->tids` points at scratch data.
  Outcome Probe(std::string_view key, SimdLevel level,
                std::vector<Tid>* scratch, EtiLookupView* out) const;

  /// Writer-phase coherence hook (same contract as EtiAccel::Invalidate).
  void Invalidate(std::string_view key);

  /// True while misses are authoritative negatives (no unknown-key
  /// invalidation has happened).
  bool complete() const { return complete_; }

  /// Non-tombstoned entries.
  size_t entry_count() const { return resident_entries_; }

  size_t segment_count() const { return segments_.size(); }

  /// The largest per-segment rank error — the widest correction window
  /// any probe can search.
  uint32_t max_error() const { return max_error_; }

  size_t memory_bytes() const;

 private:
  enum EntryState : uint8_t {
    kValid = 0,
    kStop = 1,       // stop q-gram: frequency real, tid-list NULL
    kTombstone = 2,  // invalidated: consult the B-tree
  };

  struct Entry {
    uint64_t prefix = 0;       // first 8 key bytes, big-endian
    uint32_t key_offset = 0;   // full encoded key in key_arena_
    uint32_t key_len = 0;
    uint32_t post_offset = 0;  // persisted tid-list blob in post_arena_
    uint32_t post_len = 0;
    uint32_t frequency = 0;
    uint8_t state = kValid;
  };

  struct Segment {
    uint64_t first_prefix = 0;
    double slope = 0.0;
    uint32_t begin = 0;  // entry rank range [begin, end)
    uint32_t end = 0;
    uint32_t max_error = 0;
  };

  LearnedOffsets() = default;

  std::string_view EntryKey(const Entry& e) const {
    return std::string_view(key_arena_.data() + e.key_offset, e.key_len);
  }

  /// The segment's line, evaluated with the same arithmetic at build and
  /// probe time so the measured error bound is exact.
  static uint32_t PredictRank(const Segment& seg, uint64_t prefix);

  /// lower_bound over entry ranks [lo, hi) by full encoded key.
  uint32_t LowerBound(uint32_t lo, uint32_t hi, std::string_view key) const;

  Outcome FillFromEntry(const Entry& e, SimdLevel level,
                        std::vector<Tid>* scratch, EtiLookupView* out) const;

  std::vector<Entry> entries_;    // sorted by full encoded key
  std::vector<Segment> segments_;
  std::string key_arena_;
  std::string post_arena_;
  size_t resident_entries_ = 0;
  uint32_t max_error_ = 0;
  bool complete_ = true;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_ETI_LEARNED_OFFSETS_H_

#include "eti/learned_offsets.h"

#include <chrono>
#include <cstring>

#include <algorithm>

#include "eti/tid_list.h"
#include "obs/metrics.h"
#include "storage/key_codec.h"

namespace fuzzymatch {

namespace {

obs::Counter& ModelHitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("lookup.model_hits");
  return *c;
}

obs::Counter& ModelCorrectionsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("lookup.model_corrections");
  return *c;
}

obs::Counter& ModelFallbacksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("lookup.model_fallbacks");
  return *c;
}

obs::Counter& ModelNegativesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("lookup.model_negatives");
  return *c;
}

obs::Counter& InvalidationsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "lookup.model_invalidations");
  return *c;
}

Result<uint32_t> DecodeU32Field(const std::optional<std::string>& field) {
  if (!field || field->size() != 4) {
    return Status::Corruption("bad u32 field in ETI row");
  }
  uint32_t v;
  std::memcpy(&v, field->data(), 4);
  return v;
}

/// First 8 key bytes as a big-endian u64 (short keys zero-padded), so
/// numeric order on prefixes equals memcmp order on the keys they open.
uint64_t KeyPrefix(std::string_view key) {
  uint64_t v = 0;
  const size_t n = std::min<size_t>(8, key.size());
  for (size_t i = 0; i < n; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(key[i]))
         << (56 - 8 * i);
  }
  return v;
}

}  // namespace

uint32_t LearnedOffsets::PredictRank(const Segment& seg, uint64_t prefix) {
  if (prefix <= seg.first_prefix) {
    return seg.begin;
  }
  const double pos =
      static_cast<double>(seg.begin) +
      seg.slope * static_cast<double>(prefix - seg.first_prefix);
  if (pos <= static_cast<double>(seg.begin)) {
    return seg.begin;
  }
  if (pos >= static_cast<double>(seg.end - 1)) {
    return seg.end - 1;
  }
  return static_cast<uint32_t>(pos + 0.5);
}

uint32_t LearnedOffsets::LowerBound(uint32_t lo, uint32_t hi,
                                    std::string_view key) const {
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (EntryKey(entries_[mid]) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<std::shared_ptr<LearnedOffsets>> LearnedOffsets::Build(
    const Table* rows, const LearnedOffsetsOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  if (options.segment_size < 2) {
    return Status::InvalidArgument("learned segment_size must be >= 2");
  }

  auto learned = std::shared_ptr<LearnedOffsets>(new LearnedOffsets());
  learned->entries_.reserve(rows->row_count());
  {
    Table::Scanner scanner = rows->Scan();
    Tid tid;
    Row row;
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
      if (!more) break;
      if (row.size() != 5 || !row[0]) {
        return Status::Corruption("ETI row has wrong arity");
      }
      FM_ASSIGN_OR_RETURN(const uint32_t coordinate,
                          DecodeU32Field(row[1]));
      FM_ASSIGN_OR_RETURN(const uint32_t column, DecodeU32Field(row[2]));
      Entry e;
      KeyEncoder enc;
      enc.AppendString(*row[0]).AppendU32(coordinate).AppendU32(column);
      const std::string& key = enc.key();
      e.prefix = KeyPrefix(key);
      e.key_offset = static_cast<uint32_t>(learned->key_arena_.size());
      e.key_len = static_cast<uint32_t>(key.size());
      learned->key_arena_.append(key);
      FM_ASSIGN_OR_RETURN(e.frequency, DecodeU32Field(row[3]));
      if (row[4]) {
        e.post_offset = static_cast<uint32_t>(learned->post_arena_.size());
        e.post_len = static_cast<uint32_t>(row[4]->size());
        learned->post_arena_.append(*row[4]);
        e.state = kValid;
      } else {
        e.state = kStop;
      }
      if (learned->key_arena_.size() > UINT32_MAX ||
          learned->post_arena_.size() > UINT32_MAX) {
        return Status::InvalidArgument(
            "learned-offset arenas exceed 4 GiB");
      }
      learned->entries_.push_back(e);
    }
  }

  std::sort(learned->entries_.begin(), learned->entries_.end(),
            [&](const Entry& a, const Entry& b) {
              if (a.prefix != b.prefix) {
                return a.prefix < b.prefix;
              }
              return learned->EntryKey(a) < learned->EntryKey(b);
            });

  // A duplicate clustered key can appear if a row relocation was
  // interrupted mid-update and left a superseded image behind; neither
  // copy is trustworthy from a heap scan alone (same reasoning as
  // EtiAccel), so the key is kept once as a tombstone and served from
  // the B-tree.
  size_t w = 0;
  for (size_t r = 0; r < learned->entries_.size(); ++r) {
    if (w > 0 && learned->EntryKey(learned->entries_[w - 1]) ==
                     learned->EntryKey(learned->entries_[r])) {
      learned->entries_[w - 1].state = kTombstone;
      continue;
    }
    learned->entries_[w++] = learned->entries_[r];
  }
  learned->entries_.resize(w);
  learned->resident_entries_ = 0;
  for (const Entry& e : learned->entries_) {
    if (e.state != kTombstone) {
      ++learned->resident_entries_;
    }
  }

  const uint32_t n = static_cast<uint32_t>(learned->entries_.size());
  for (uint32_t begin = 0; begin < n;
       begin += static_cast<uint32_t>(options.segment_size)) {
    const uint32_t end = std::min<uint32_t>(
        begin + static_cast<uint32_t>(options.segment_size), n);
    Segment seg;
    seg.begin = begin;
    seg.end = end;
    seg.first_prefix = learned->entries_[begin].prefix;
    const uint64_t last_prefix = learned->entries_[end - 1].prefix;
    seg.slope =
        last_prefix > seg.first_prefix
            ? static_cast<double>(end - 1 - begin) /
                  static_cast<double>(last_prefix - seg.first_prefix)
            : 0.0;
    // Measure the exact worst rank error this line makes over its own
    // keys, with the same arithmetic Probe will use — the bound probes
    // rely on, not an estimate.
    uint32_t max_err = 0;
    for (uint32_t i = begin; i < end; ++i) {
      const uint32_t predicted =
          PredictRank(seg, learned->entries_[i].prefix);
      const uint32_t err = predicted > i ? predicted - i : i - predicted;
      max_err = std::max(max_err, err);
    }
    seg.max_error = max_err;
    learned->max_error_ = std::max(learned->max_error_, max_err);
    learned->segments_.push_back(seg);
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("learned.entries")
      ->Set(static_cast<double>(learned->resident_entries_));
  registry.GetGauge("learned.segments")
      ->Set(static_cast<double>(learned->segments_.size()));
  registry.GetGauge("learned.max_error")
      ->Set(static_cast<double>(learned->max_error_));
  registry.GetGauge("learned.bytes")
      ->Set(static_cast<double>(learned->memory_bytes()));
  registry.GetGauge("learned.build_seconds")->Set(seconds);
  return learned;
}

LearnedOffsets::Outcome LearnedOffsets::FillFromEntry(
    const Entry& e, SimdLevel level, std::vector<Tid>* scratch,
    EtiLookupView* out) const {
  out->found = true;
  out->frequency = e.frequency;
  if (e.state == kStop) {
    out->is_stop = true;
    return Outcome::kHit;
  }
  const std::string_view blob(post_arena_.data() + e.post_offset,
                              e.post_len);
  const Status decoded = DecodeTidListInto(level, blob, scratch);
  if (!decoded.ok()) {
    // Defensive: a corrupt resident blob falls back to the B-tree, which
    // surfaces the corruption through the normal error path.
    *out = EtiLookupView{};
    ModelFallbacksCounter().Increment();
    return Outcome::kFallback;
  }
  out->tids = scratch->data();
  out->num_tids = scratch->size();
  return Outcome::kHit;
}

LearnedOffsets::Outcome LearnedOffsets::Probe(std::string_view key,
                                              SimdLevel level,
                                              std::vector<Tid>* scratch,
                                              EtiLookupView* out) const {
  *out = EtiLookupView{};
  const uint32_t n = static_cast<uint32_t>(entries_.size());
  if (n == 0) {
    if (complete_) {
      ModelNegativesCounter().Increment();
      return Outcome::kNegative;
    }
    ModelFallbacksCounter().Increment();
    return Outcome::kFallback;
  }

  const uint64_t prefix = KeyPrefix(key);
  // Last segment opening at or before the prefix. Equal-prefix runs can
  // span segment boundaries; the edge-landing check below catches any
  // probe this sends one segment too far right.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), prefix,
      [](uint64_t p, const Segment& s) { return p < s.first_prefix; });
  const Segment& seg =
      it == segments_.begin() ? segments_.front() : *(it - 1);

  const uint32_t predicted = PredictRank(seg, prefix);
  const uint32_t lo =
      predicted > seg.max_error ? predicted - seg.max_error : 0;
  const uint32_t hi = std::min<uint32_t>(predicted + seg.max_error + 1, n);
  uint32_t pos = LowerBound(lo, hi, key);
  bool exact = pos < n && EntryKey(entries_[pos]) == key;
  if (exact) {
    ModelHitsCounter().Increment();
  } else {
    // Landing on a window edge is inconclusive (the true position may be
    // outside); anywhere strictly inside, the bound guarantees a present
    // key would have matched. Present keys land inside by construction,
    // so this rescue path only fires for boundary-spanning prefix runs
    // and absent keys near the edges.
    const bool uncertain = (pos == lo && lo > 0) || (pos == hi && hi < n);
    if (uncertain) {
      pos = LowerBound(0, n, key);
      exact = pos < n && EntryKey(entries_[pos]) == key;
      if (exact) {
        ModelCorrectionsCounter().Increment();
      }
    }
  }
  if (!exact) {
    if (complete_) {
      ModelNegativesCounter().Increment();
      return Outcome::kNegative;
    }
    ModelFallbacksCounter().Increment();
    return Outcome::kFallback;
  }
  const Entry& e = entries_[pos];
  if (e.state == kTombstone) {
    ModelFallbacksCounter().Increment();
    return Outcome::kFallback;
  }
  return FillFromEntry(e, level, scratch, out);
}

void LearnedOffsets::Invalidate(std::string_view key) {
  InvalidationsCounter().Increment();
  const uint32_t n = static_cast<uint32_t>(entries_.size());
  const uint32_t pos = LowerBound(0, n, key);
  if (pos < n && EntryKey(entries_[pos]) == key) {
    Entry& e = entries_[pos];
    if (e.state != kTombstone) {
      e.state = kTombstone;
      --resident_entries_;
      obs::MetricsRegistry::Global()
          .GetGauge("learned.entries")
          ->Set(static_cast<double>(resident_entries_));
    }
    return;
  }
  // A key the sorted array has never seen cannot be inserted; misses
  // stop being authoritative so the B-tree (which has the new row) is
  // always consulted. Correct, just slower — same degradation rule as
  // EtiAccel's marker overflow.
  complete_ = false;
}

size_t LearnedOffsets::memory_bytes() const {
  return entries_.capacity() * sizeof(Entry) +
         segments_.capacity() * sizeof(Segment) + key_arena_.capacity() +
         post_arena_.capacity();
}

}  // namespace fuzzymatch
